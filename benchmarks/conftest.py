"""Benchmark configuration.

Every bench prints the regenerated table/series (run with ``-s`` to see
them) and times the regeneration itself with pytest-benchmark.  Cost-model
benches use a single round — the models are deterministic, so repeated
timing only wastes wall clock.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Benchmark a deterministic function with one round/iteration."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
