"""Ablation A5 (extra): workload balancing on power-law graphs (V.D).

GHOST's lanes finish a wave when the highest-degree vertex does; sorting
vertices by degree before dealing them to lanes flattens that tail.  The
effect is largest on power-law graphs, negligible on uniform ones.
"""

import numpy as np

from repro.core.ghost import GHOST, GHOSTConfig
from repro.graphs.generators import barabasi_albert, erdos_renyi
from repro.nn.gnn import GNNKind, make_gnn


def regenerate_balancing_ablation():
    graphs = {
        "uniform (ER)": erdos_renyi(2000, 0.004, rng=np.random.default_rng(0)),
        "power-law (BA)": barabasi_albert(2000, 4, rng=np.random.default_rng(0)),
    }
    model = make_gnn(GNNKind.GCN, in_dim=128, out_dim=8, hidden_dim=64)
    rows = []
    for label, graph in graphs.items():
        on = GHOST(GHOSTConfig(use_balancing=True)).run_gnn(model.config, graph)
        off = GHOST(GHOSTConfig(use_balancing=False)).run_gnn(
            model.config, graph
        )
        rows.append(
            {
                "graph": label,
                "max_degree": graph.max_degree,
                "balanced_us": on.latency.compute_ns / 1e3,
                "unbalanced_us": off.latency.compute_ns / 1e3,
                "win_x": off.latency.compute_ns / on.latency.compute_ns,
            }
        )
    return rows


def test_ablation_balancing(run_once):
    rows = run_once(regenerate_balancing_ablation)
    print("\n=== Ablation A5: workload balancing (GCN, 2000 nodes) ===")
    print(
        f"{'graph':>15s} {'max deg':>8s} {'balanced':>10s} "
        f"{'unbalanced':>11s} {'win':>6s}"
    )
    for row in rows:
        print(
            f"{row['graph']:>15s} {row['max_degree']:>8d} "
            f"{row['balanced_us']:>8.1f}us {row['unbalanced_us']:>9.1f}us "
            f"{row['win_x']:>5.2f}x"
        )
    for row in rows:
        assert row["win_x"] >= 1.0
    power_law = next(r for r in rows if "power-law" in r["graph"])
    assert power_law["win_x"] > 1.0
