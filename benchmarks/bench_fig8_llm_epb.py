"""Fig. 8: EPB comparison across LLM accelerators.

Regenerates the paper's energy-per-bit bar chart: TRON vs. V100, TPU v2,
Xeon, TransPIM, FPGA_Acc1, VAQF and FPGA_Acc2 on the transformer workload
set, at 8-bit precision.  Paper claim: TRON >= 8x better energy
efficiency than every baseline.
"""

from repro.analysis.figures import fig8_llm_epb


def test_fig8_llm_epb(run_once):
    data = run_once(fig8_llm_epb)
    print()
    print(data.format())
    assert data.min_win_ratio() >= 8.0
    # TRON has the lowest EPB on every workload.
    for workload in data.table.workloads:
        tron = data.table.value("TRON", workload)
        for platform in data.table.platforms:
            if platform != "TRON":
                assert tron < data.table.value(platform, workload)
