"""Extension bench: sequence-length scaling of TRON's latency.

Attention's S^2 score/context matmuls eventually dominate the S-linear
projection and FF work; this bench sweeps BERT-base's sequence length and
verifies the superlinear latency growth plus the MHA/FF crossover the
architecture's array allocation is balanced around.
"""

from repro.core.tron import TRON, TRONConfig
from repro.nn.models import bert_base


def regenerate_seqlen_scaling():
    tron = TRON(TRONConfig(batch=8))
    rows = []
    for seq_len in (128, 256, 512, 1024):
        model = bert_base(seq_len=seq_len)
        report = tron.run_transformer(model)
        mha = tron.mha_unit.block_cost(seq_len, model.d_model, model.num_heads)
        ff = tron.ff_unit.block_cost(seq_len, model.d_model, model.d_ff)
        rows.append(
            {
                "seq_len": seq_len,
                "latency_us": report.latency_ns / 1e3,
                "gops": report.gops,
                "mha_us": mha.latency.total_ns / 1e3,
                "ff_us": ff.latency.total_ns / 1e3,
            }
        )
    return rows


def test_seqlen_scaling(run_once):
    rows = run_once(regenerate_seqlen_scaling)
    print("\n=== Sequence-length scaling (BERT-base on TRON) ===")
    print(
        f"{'S':>6s} {'latency (us)':>13s} {'GOPS':>10s} "
        f"{'MHA/layer us':>13s} {'FF/layer us':>12s}"
    )
    for row in rows:
        print(
            f"{row['seq_len']:>6d} {row['latency_us']:>13.1f} "
            f"{row['gops']:>10.0f} {row['mha_us']:>13.2f} "
            f"{row['ff_us']:>12.2f}"
        )
    # Superlinear overall: 8x the tokens costs more than 8x the time
    # of the shortest run only if S^2 terms bite; check 128 -> 1024.
    first, last = rows[0], rows[-1]
    assert last["latency_us"] / first["latency_us"] > 8.0
    # FF dominates at short sequences; MHA catches up as S grows.
    mha_share = [row["mha_us"] / row["ff_us"] for row in rows]
    assert mha_share == sorted(mha_share)
