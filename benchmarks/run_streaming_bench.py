"""Emit BENCH_streaming.json: the streaming workload subsystem.

Usage::

    PYTHONPATH=src python benchmarks/run_streaming_bench.py [output.json]
    PYTHONPATH=src python benchmarks/run_streaming_bench.py --quick

Three measurements, one per streaming pillar:

1. **Decode** — tokens/second and energy per token vs. context length
   on the GPT-2 decode path, evaluated through the stacked SoA series
   and gated bit-identical to the scalar per-step loop.  The recorded
   series is what ``bench_decode_scaling.py`` regression-gates against.
2. **Temporal reuse** — GHOST over an evolving-graph delta stream with
   the stage-cost memo warm vs. deliberately cleared per snapshot,
   recording the measured stage hit rate and wall-clock speedup.
3. **Diurnal fleet** — the sharded serving fleet under a multi-tenant
   trace with diurnal + bursty open-loop arrivals, recording completion
   and tail-latency (p99) accounting.
"""

import argparse
import json
import pathlib
import sys
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

import numpy as np  # noqa: E402

from repro.core.base import get_workload  # noqa: E402
from repro.core.ghost import GHOST  # noqa: E402
from repro.core.tron import TRON, TRONConfig  # noqa: E402
from repro.nn.models import gpt2_small  # noqa: E402
from repro.serving.fleet import ServingFleet  # noqa: E402
from repro.serving.trace import record_tenant, record_to_request  # noqa: E402
from repro.streaming import (  # noqa: E402
    TrafficModel,
    decode_series,
    decode_series_batch,
    parse_shaped_arrivals,
    run_temporal,
)

DECODE_BATCH = 8
DECODE_GENERATED = 32
DECODE_PROMPTS = (64, 256, 768)
TEMPORAL_WORKLOAD = "GCN-ba-temporal"
FLEET_TENANTS = 3
FLEET_SEED = 0
WINDOW = 64


def measure_decode(prompts=DECODE_PROMPTS, generated=DECODE_GENERATED):
    """Pillar 1: the per-token decode series across context lengths."""
    tron = TRON(TRONConfig(batch=DECODE_BATCH))
    model = gpt2_small()
    episodes = [(prompt, generated) for prompt in prompts]
    t0 = time.perf_counter()
    stacked = decode_series_batch(tron, model, episodes)
    stacked_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    scalar = [
        decode_series(tron, model, p, g, stacked=False) for p, g in episodes
    ]
    scalar_wall = time.perf_counter() - t0

    bit_identical = all(
        np.array_equal(s.per_token_ns, r.per_token_ns)
        and np.array_equal(s.per_token_pj, r.per_token_pj)
        and s.to_generation_report() == r.to_generation_report()
        for s, r in zip(stacked, scalar)
    )
    series = []
    for s in stacked:
        episode = s.to_generation_report()
        series.append(
            {
                "prompt": s.prompt_tokens,
                "generated": s.generated_tokens,
                "tokens_per_s": round(episode.tokens_per_second, 3),
                "uj_per_token": round(episode.energy_per_token_uj, 6),
                "prefill_ms": round(episode.prefill.latency_ns / 1e6, 6),
                "first_token_us": round(float(s.per_token_ns[0]) / 1e3, 4),
                "last_token_us": round(float(s.per_token_ns[-1]) / 1e3, 4),
            }
        )
    return {
        "model": model.name,
        "batch": DECODE_BATCH,
        "series": series,
        "stacked_equals_scalar": bit_identical,
        "stacked_wall_s": round(stacked_wall, 6),
        "scalar_wall_s": round(scalar_wall, 6),
    }


def measure_temporal_stream(workload_name, iterations):
    """One evolving stream: in-stream and warm-replay stage reuse.

    Growth streams change the node count every snapshot, so in-stream
    reuse is near zero by construction; churn streams keep ``n`` fixed
    and reuse the node-keyed stages immediately.  Warm replay (the
    serving regime — the same stream re-costed as traffic repeats)
    reuses everything either way.
    """
    workload = get_workload(workload_name)
    snapshots = workload.snapshots
    model = workload.model_config

    warm_ghost = GHOST()
    first = run_temporal(warm_ghost, model, snapshots)  # fresh-memo pass
    replay = run_temporal(warm_ghost, model, snapshots)
    assert replay.total == first.total  # memoized == recomputed, bitwise
    t0 = time.perf_counter()
    for _ in range(iterations):
        run_temporal(warm_ghost, model, snapshots)
    warm_wall = (time.perf_counter() - t0) / iterations

    cold_ghost = GHOST()
    t0 = time.perf_counter()
    for _ in range(iterations):
        for graph in snapshots:
            cold_ghost.reset_stage_memo()
            cold_ghost.run_gnn(model, graph)
    cold_wall = (time.perf_counter() - t0) / iterations

    return {
        "workload": workload_name,
        "snapshots": len(snapshots),
        "nodes": [g.num_nodes for g in snapshots],
        "edges": [g.num_edges for g in snapshots],
        "stream_stage_hit_rate": round(first.stage_hit_rate, 4),
        "warm_replay_stage_hit_rate": round(replay.stage_hit_rate, 4),
        "total_latency_ms": round(first.total.latency_ns / 1e6, 6),
        "warm_wall_s": round(warm_wall, 6),
        "cold_wall_s": round(cold_wall, 6),
        "reuse_speedup": round(cold_wall / warm_wall, 2),
    }


def measure_temporal(iterations):
    """Pillar 2: stage-cost reuse across both evolution regimes."""
    return {
        "growth": measure_temporal_stream(TEMPORAL_WORKLOAD, iterations),
        "churn": measure_temporal_stream("GAT-sbm-temporal", iterations),
    }


def measure_fleet(num_requests, workers, rate_rps):
    """Pillar 3: the fleet under a diurnal multi-tenant mix."""
    model = TrafficModel.uniform_tenants(FLEET_TENANTS, seed=FLEET_SEED)
    records = model.generate(num_requests=num_requests)
    requests = [record_to_request(r) for r in records]
    tenants = [record_tenant(r) for r in records]
    for request in requests:
        get_workload(request.workload).materialize()
    arrivals = f"diurnal:poisson:{rate_rps:g}"
    process = parse_shaped_arrivals(arrivals)
    with ServingFleet(workers=workers, window=WINDOW) as fleet:
        fleet.serve(requests, tenants=tenants)  # warm the shard caches
        result = fleet.run_open_loop(
            requests, process, tenants=tenants, seed=FLEET_SEED
        )
    run = result.to_dict()
    return {
        "tenants": FLEET_TENANTS,
        "requests": num_requests,
        "workers": workers,
        "arrivals": arrivals,
        "completed": run["completed"],
        "shed": run["shed"],
        "errors": run["errors"],
        "throughput_rps": round(run["throughput_rps"], 1),
        "p50_latency_s": run["p50_latency_s"],
        "p99_latency_s": run["p99_latency_s"],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "output",
        nargs="?",
        default=str(REPO / "BENCH_streaming.json"),
        help="where to write the benchmark record",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer requests/iterations, 1 fleet worker",
    )
    args = parser.parse_args()

    print("measuring decode series ...", file=sys.stderr)
    decode = measure_decode()
    print("measuring temporal stage reuse ...", file=sys.stderr)
    temporal = measure_temporal(iterations=3 if args.quick else 20)
    print("measuring diurnal fleet tail latency ...", file=sys.stderr)
    fleet = measure_fleet(
        num_requests=120 if args.quick else 600,
        workers=1 if args.quick else 2,
        rate_rps=500.0,
    )

    rates = [row["tokens_per_s"] for row in decode["series"]]
    gates = {
        "decode_stacked_equals_scalar": decode["stacked_equals_scalar"],
        "decode_rate_monotone": rates == sorted(rates, reverse=True),
        "temporal_churn_reuses_in_stream": temporal["churn"][
            "stream_stage_hit_rate"
        ]
        > 0.0,
        "temporal_warm_replay_reuses_fully": temporal["growth"][
            "warm_replay_stage_hit_rate"
        ]
        == 1.0,
        "fleet_accounted": fleet["completed"] + fleet["shed"] + fleet["errors"]
        == fleet["requests"],
    }
    record = {
        "bench": "streaming workloads: decode series, temporal reuse, "
        "diurnal multi-tenant fleet",
        "quick": args.quick,
        "decode": decode,
        "temporal": temporal,
        "fleet": fleet,
        "gates": gates,
    }
    pathlib.Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    if not all(gates.values()):
        print("GATE FAILURE", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
