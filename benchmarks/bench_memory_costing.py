"""Measurement harness behind ``run_memory_bench.py``.

Two arms:

- **Primitive speedups** — the closed-form HBM costing path (what every
  ``stream_offchip`` / ``burst_offchip`` / ``random_offchip`` call runs)
  against the retained per-burst loop oracle (``_walk_*``), per
  primitive x transfer size, with a bit-exactness check on every pair
  (latencies identical, energies to 1e-12 relative).  The memo is
  bypassed on both sides — this times the arithmetic, not the cache.
- **SoA sweep throughput** — a TRON design-space sweep through the
  array-resident strategy per memory backend (``analytic`` / ``hbm`` /
  ``hbm-pim``), in points/sec, with a scalar-oracle parity check on a
  sample of points.  This is the number that used to fall off a cliff
  when ``hbm-pim`` points were gated out of the SoA path.
"""

import math
import time
from dataclasses import replace

from repro.analysis.sweep import (
    run_sweep_soa,
    tron_sweep_space,
    with_corners,
)
from repro.core.context import standard_corners
from repro.core.engine import clear_physics_cache
from repro.core.engine.hbm.geometry import HBMGeometry
from repro.core.engine.hbm.model import HBMMemoryModel
from repro.core.tron.accelerator import TRON
from repro.electronics.memory import MemorySystem

KIB = 1024
MIB = 1024 * 1024

#: Transfer sizes per arm: (label, bytes, loop-oracle repetitions).
FULL_SIZES = (("64KiB", 64 * KIB, 5), ("1MiB", MIB, 3), ("16MiB", 16 * MIB, 1))
QUICK_SIZES = (("64KiB", 64 * KIB, 3), ("1MiB", MIB, 1))

MEMORY_BACKENDS = ("analytic", "hbm", "hbm-pim")


def _time_per_call(fn, min_seconds=0.05, min_reps=1):
    """Seconds per call, repeating until the clock stops lying."""
    reps = min_reps
    while True:
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds or reps >= 4096:
            return elapsed / reps
        reps *= 4


def measure_primitive_speedups(quick=False):
    """Closed-form vs loop-oracle cost per primitive x size."""
    model = HBMMemoryModel(MemorySystem(), geometry=HBMGeometry())
    primitives = (
        ("stream", model._stream_compute, model._walk_stream),
        ("burst", lambda n: model._sequential_dram(n, "RD"),
         model._walk_sequential),
        ("random", model._random_compute, model._walk_scattered),
    )
    sizes = QUICK_SIZES if quick else FULL_SIZES
    rows = []
    for name, fast, walk in primitives:
        for label, num_bytes, walk_reps in sizes:
            got = fast(num_bytes)
            want = walk(num_bytes)
            assert got.latency_ns == want.latency_ns, (name, label)
            assert math.isclose(
                got.energy_pj, want.energy_pj, rel_tol=1e-12
            ), (name, label)
            fast_s = _time_per_call(lambda: fast(num_bytes), min_reps=64)
            walk_s = _time_per_call(
                lambda: walk(num_bytes),
                min_seconds=0.0 if quick else 0.05,
                min_reps=walk_reps,
            )
            rows.append(
                {
                    "primitive": name,
                    "size": label,
                    "bytes": num_bytes,
                    "closed_form_us": round(fast_s * 1e6, 3),
                    "loop_reference_us": round(walk_s * 1e6, 3),
                    "speedup": round(walk_s / fast_s, 1),
                }
            )
    return rows


def _backend_space(backend, quick=False):
    """The TRON sweep space with every point pinned to ``backend``."""
    if quick:
        space = tron_sweep_space(
            head_units=(4, 8),
            array_sizes=(32, 64),
            clocks_ghz=(2.5, 5.0),
        )
    else:
        space = tron_sweep_space(
            head_units=(1, 2, 4, 6, 8, 12, 16, 32),
            array_sizes=(16, 32, 64, 128),
            clocks_ghz=(1.25, 2.5, 5.0, 10.0),
        )
        space = with_corners(space, standard_corners())
    base_config = space.build_config

    def build_config(knobs):
        return replace(base_config(knobs), memory_backend=backend)

    return replace(
        space,
        name=f"{space.name}-{backend}",
        build_config=build_config,
        build_accelerator=lambda knobs: TRON(build_config(knobs)),
    )


def measure_soa_backends(quick=False, parity_samples=3):
    """Array-resident sweep points/sec per memory backend."""
    rows = []
    for backend in MEMORY_BACKENDS:
        space = _backend_space(backend, quick=quick)
        evaluations = space.evaluations()
        clear_physics_cache()
        start = time.perf_counter()
        result = run_sweep_soa(space)
        elapsed = time.perf_counter() - start
        stride = max(1, len(evaluations) // parity_samples)
        mismatches = 0
        for index in range(0, len(evaluations), stride):
            knobs, _, ctx = evaluations[index]
            point = result.point(index)
            workload = space.build_workload()
            want = (
                space.build_accelerator(knobs)
                .run(workload, ctx=ctx)
                .to_dict()
            )
            if point.report.to_dict() != want:
                mismatches += 1
        rows.append(
            {
                "backend": backend,
                "points": len(evaluations),
                "wall_s": round(elapsed, 4),
                "points_per_sec": round(len(evaluations) / elapsed, 1),
                "parity_mismatches": mismatches,
            }
        )
    return rows
