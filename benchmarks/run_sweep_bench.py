"""Emit BENCH_sweep.json: batched sweep speedup at production grid scale.

Usage::

    PYTHONPATH=src python benchmarks/run_sweep_bench.py [output.json] [--quick]

Records the >= 500 point combined TRON + GHOST design-space sweep
through the configuration-batched engine (one workload
materialization, one vectorized device-physics kernel call,
signature-grouped run-path evaluation) against the naive sequential
per-point baseline.  Every Pareto-frontier point is re-evaluated
through a fresh scalar run and compared bit-exactly; any mismatch
fails the bench.  ``--quick`` runs an 8-point smoke grid (the CI
gate) with a relaxed speedup floor.
"""

import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from bench_sweep_batched import measure_batched_sweep  # noqa: E402


def main() -> int:
    argv = [a for a in sys.argv[1:]]
    quick = "--quick" in argv
    argv = [a for a in argv if a != "--quick"]
    out_path = pathlib.Path(
        argv[0]
        if argv
        else pathlib.Path(__file__).resolve().parent.parent / "BENCH_sweep.json"
    )
    record = measure_batched_sweep(quick=quick)
    if quick:
        record["bench"] += " (quick smoke grid)"
    print(json.dumps(record, indent=2))
    if quick:
        # CI gate: batched == scalar is the deterministic invariant; a
        # wall-clock ratio on an 8-point grid would flake on shared
        # runners, so the speedup floor applies to the full bench only.
        return 0 if record["frontier_mismatches"] == 0 else 1
    ok = (
        record["frontier_mismatches"] == 0
        and record["speedup"] >= 30.0
        and record["points"] >= 500
    )
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
