"""Emit BENCH_sweep.json: sweep-engine speedups at production grid scale.

Usage::

    PYTHONPATH=src python benchmarks/run_sweep_bench.py \
        [output.json] [--quick] [--perf-smoke]

Records the >= 500 point combined TRON + GHOST design-space sweep
through the array-resident ``soa`` strategy (the whole grid evaluated
as stacked NumPy columns) and the configuration-batched strategy (one
workload materialization, one vectorized device-physics kernel call,
signature-grouped run-path evaluation) against the naive sequential
per-point baseline.  Every Pareto-frontier point is re-evaluated
through a fresh scalar run and compared bit-exactly, and every soa
point is compared bit-exactly against its batched twin; any mismatch
fails the bench.  ``--quick`` runs an 8-point smoke grid (the CI gate);
``--perf-smoke`` additionally requires the soa strategy to hold at
least the batched strategy's points/sec (the CI perf-smoke gate).
"""

import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from bench_sweep_batched import (  # noqa: E402
    measure_batched_sweep,
    measure_perf_smoke,
)


def main() -> int:
    argv = [a for a in sys.argv[1:]]
    quick = "--quick" in argv
    perf_smoke = "--perf-smoke" in argv
    argv = [a for a in argv if a not in ("--quick", "--perf-smoke")]
    out_path = pathlib.Path(
        argv[0]
        if argv
        else pathlib.Path(__file__).resolve().parent.parent / "BENCH_sweep.json"
    )
    record = measure_batched_sweep(quick=quick)
    if quick:
        record["bench"] += " (quick smoke grid)"
    print(json.dumps(record, indent=2))
    exact = (
        record["frontier_mismatches"] == 0 and record["soa_mismatches"] == 0
    )
    if quick:
        # CI gate: engine == scalar is the deterministic invariant; a
        # naive-vs-batched wall-clock ratio on an 8-point grid would
        # flake on shared runners, so the absolute speedup floors apply
        # to the full bench only.  --perf-smoke adds the one relative
        # bar that must never regress — the array-resident path at
        # least matching the batched path it replaces — measured on a
        # 128-point grid where per-point cost dominates the setup.
        ok = exact
        if perf_smoke:
            smoke = measure_perf_smoke()
            print(json.dumps(smoke, indent=2))
            ok = (
                ok
                and smoke["soa_mismatches"] == 0
                and smoke["soa_points_per_sec"] >= smoke["points_per_sec"]
            )
            status = "ok" if ok else "FAIL"
            print(
                f"perf-smoke {status}: soa {smoke['soa_points_per_sec']} "
                f"vs batched {smoke['points_per_sec']} points/sec "
                f"({smoke['soa_vs_batched']}x)"
            )
        return 0 if ok else 1
    ok = (
        exact
        and record["speedup"] >= 30.0
        and record["soa_points_per_sec"] >= 5.0 * record["points_per_sec"]
        and record["points"] >= 500
    )
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
