"""The unified sweep engine vs. naive per-point re-evaluation.

The engine memoizes the materialized workload (graph synthesis is the
dominant cost of a GNN point) and the device-physics curves across
points, and evaluates points concurrently; the naive baseline
re-materializes everything per point, strictly sequentially.  The
combined TRON + GHOST sweep must run at least 2x faster — the number
``run_engine_bench.py`` records in BENCH_engine.json.
"""

import time

from repro.analysis.sweep import (
    combined_sweep,
    ghost_sweep_space,
    pareto_frontier,
    tron_sweep_space,
)


def _spaces():
    return [tron_sweep_space(), ghost_sweep_space()]


def measure_sweep_speedup():
    """(engine_s, naive_s, num_points, frontiers) for the combined sweep."""
    spaces = _spaces()
    t0 = time.perf_counter()
    naive = combined_sweep(spaces, memoize=False, parallel=False)
    naive_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    fast = combined_sweep(spaces)
    engine_s = time.perf_counter() - t0

    # Same frontiers either way — the speedup must be free of drift.
    frontiers = {}
    for name in fast:
        fast_frontier = [p.label for p in pareto_frontier(fast[name])]
        naive_frontier = [p.label for p in pareto_frontier(naive[name])]
        assert fast_frontier == naive_frontier, (
            f"{name}: {fast_frontier} != {naive_frontier}"
        )
        frontiers[name] = fast_frontier
    num_points = sum(len(points) for points in fast.values())
    return engine_s, naive_s, num_points, frontiers


def test_engine_sweep_speedup(run_once):
    engine_s, naive_s, num_points, frontiers = run_once(measure_sweep_speedup)
    speedup = naive_s / engine_s
    print()
    print(f"combined sweep: {num_points} points")
    print(f"engine {engine_s * 1e3:.1f} ms, naive {naive_s * 1e3:.1f} ms "
          f"-> {speedup:.1f}x")
    for name, frontier in frontiers.items():
        print(f"{name} frontier: {frontier}")
    assert speedup >= 2.0
