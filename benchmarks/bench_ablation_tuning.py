"""Ablation A1: hybrid EO+TO tuning vs. EO-only and TO-only (Section V.A).

The paper's hybrid policy uses EO for the frequent small shifts of
parameter imprinting and engages TO only for rare large shifts.  This
bench sweeps a realistic shift distribution (imprint shifts of an MR bank
holding quantized weights) and reports the mean hold power per ring under
each policy.
"""

import numpy as np

from repro.photonics.microring import Microring, MicroringDesign
from repro.photonics.tuning import HybridTuner, TOTuner


def regenerate_tuning_ablation():
    """Mean per-ring hold power (mW) for each tuning policy."""
    rng = np.random.default_rng(0)
    ring = Microring.at_wavelength(MicroringDesign(), 1550.0)
    # Imprint shifts for uniformly distributed 8-bit weight magnitudes.
    values = rng.integers(0, 256, 4096) / 255.0
    shifts = np.array([ring.imprint(v) for v in values])

    hybrid = HybridTuner()
    to_only = TOTuner(max_shift_nm=ring.fsr_nm * 1.05)
    to_with_ted = TOTuner(max_shift_nm=ring.fsr_nm * 1.05, ted_power_factor=0.5)

    return {
        "max_shift_nm": float(shifts.max()),
        "hybrid_mw": hybrid.average_hold_power_mw(shifts),
        "to_only_mw": float(
            np.mean([to_only.power_for_shift_mw(s) for s in shifts])
        ),
        "to_ted_mw": float(
            np.mean([to_with_ted.power_for_shift_mw(s) for s in shifts])
        ),
        "eo_reachable_fraction": float(
            np.mean([hybrid.eo.can_reach(s) for s in shifts])
        ),
    }


def test_ablation_tuning_policies(run_once):
    data = run_once(regenerate_tuning_ablation)
    print("\n=== Ablation A1: tuning policy, mean hold power per ring ===")
    print(f"  TO-only        : {data['to_only_mw']:.4f} mW")
    print(f"  TO + TED       : {data['to_ted_mw']:.4f} mW")
    print(f"  hybrid (paper) : {data['hybrid_mw']:.4f} mW")
    print(
        f"  (EO range covers {100 * data['eo_reachable_fraction']:.0f}% "
        f"of imprint shifts; max shift {data['max_shift_nm']:.2f} nm)"
    )
    # The paper's ordering: hybrid < TO+TED < TO-only.
    assert data["hybrid_mw"] < data["to_ted_mw"] < data["to_only_mw"]
