"""Extension bench: autoregressive decode throughput vs. context length.

Complements Fig. 9 with the decode-phase view: tokens/second and energy
per token as the KV context grows — the serving regime that dominates
LLM deployments.  The photonic accelerator's per-token rate degrades
gracefully (attention's 1 x L row grows linearly) while staying orders of
magnitude above electronic batch-1 decode rates.
"""

from repro.core.tron import TRON, TRONConfig, run_generation
from repro.nn.models import gpt2_small


def regenerate_decode_scaling():
    tron = TRON(TRONConfig(batch=8))
    rows = []
    for prompt in (64, 256, 768):
        episode = run_generation(
            tron, gpt2_small(), prompt_tokens=prompt, generated_tokens=32
        )
        rows.append(
            {
                "prompt": prompt,
                "tokens_per_s": episode.tokens_per_second,
                "uj_per_token": episode.energy_per_token_uj,
                "prefill_ms": episode.prefill.latency_ns / 1e6,
            }
        )
    return rows


def test_decode_scaling(run_once):
    rows = run_once(regenerate_decode_scaling)
    print("\n=== Decode throughput vs. context (GPT-2 on TRON) ===")
    print(
        f"{'prompt':>7s} {'tok/s':>12s} {'uJ/tok':>8s} {'prefill':>9s}"
    )
    for row in rows:
        print(
            f"{row['prompt']:>7d} {row['tokens_per_s']:>12,.0f} "
            f"{row['uj_per_token']:>8.2f} {row['prefill_ms']:>7.2f}ms"
        )
    rates = [row["tokens_per_s"] for row in rows]
    assert rates == sorted(rates, reverse=True)  # longer context -> slower
    assert rates[-1] > 1_000.0  # still far beyond electronic batch-1 decode
