"""Extension bench: autoregressive decode throughput vs. context length.

Complements Fig. 9 with the decode-phase view: tokens/second and energy
per token as the KV context grows — the serving regime that dominates
LLM deployments.  Rides the streaming subsystem's stacked decode series
(one column pass over every episode) and regression-gates the rates
against the recorded ``BENCH_streaming.json`` instead of a loose
hardcoded floor: the cost model is deterministic, so the live numbers
must match the committed record exactly.
"""

import json
import pathlib

import pytest

from repro.core.tron import TRON, TRONConfig
from repro.nn.models import gpt2_small
from repro.streaming import decode_series_batch

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_streaming.json"


def regenerate_decode_scaling():
    recorded = json.loads(BENCH_PATH.read_text())["decode"]
    tron = TRON(TRONConfig(batch=recorded["batch"]))
    episodes = [
        (row["prompt"], row["generated"]) for row in recorded["series"]
    ]
    rows = []
    for series in decode_series_batch(tron, gpt2_small(), episodes):
        episode = series.to_generation_report()
        rows.append(
            {
                "prompt": series.prompt_tokens,
                "tokens_per_s": episode.tokens_per_second,
                "uj_per_token": episode.energy_per_token_uj,
                "prefill_ms": episode.prefill.latency_ns / 1e6,
            }
        )
    return rows, recorded


def test_decode_scaling(run_once):
    rows, recorded = run_once(regenerate_decode_scaling)
    print("\n=== Decode throughput vs. context (GPT-2 on TRON) ===")
    print(
        f"{'prompt':>7s} {'tok/s':>12s} {'uJ/tok':>8s} {'prefill':>9s}"
    )
    for row in rows:
        print(
            f"{row['prompt']:>7d} {row['tokens_per_s']:>12,.0f} "
            f"{row['uj_per_token']:>8.2f} {row['prefill_ms']:>7.2f}ms"
        )
    rates = [row["tokens_per_s"] for row in rows]
    assert rates == sorted(rates, reverse=True)  # longer context -> slower
    # The committed BENCH_streaming.json is the regression bar: the
    # model is deterministic, so the live series must reproduce it to
    # the record's rounding.
    for row, reference in zip(rows, recorded["series"]):
        assert row["tokens_per_s"] == pytest.approx(
            reference["tokens_per_s"], abs=5e-4
        )
        assert row["uj_per_token"] == pytest.approx(
            reference["uj_per_token"], abs=5e-7
        )
        assert row["prefill_ms"] == pytest.approx(
            reference["prefill_ms"], abs=5e-7
        )
