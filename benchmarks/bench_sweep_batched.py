"""The configuration-batched sweep engine vs. naive per-point re-evaluation.

The production-scale complement of ``bench_engine_sweep``: a >= 500
point combined TRON + GHOST knob grid evaluated through the batched
strategy (one workload materialization, one vectorized device-physics
kernel call, signature-grouped run-path evaluation) against the naive
sequential baseline (per-point workload rebuild + physics recompute).
The batched reports must be **bit-identical** to scalar runs — every
Pareto-frontier point is re-evaluated naively and compared exactly —
and the speedup must reach 30x, the number ``run_sweep_bench.py``
records in BENCH_sweep.json.
"""

import time

from repro.analysis.sweep import (
    ghost_sweep_space,
    pareto_frontier,
    run_sweep,
    tron_sweep_space,
)
from repro.core.engine import clear_physics_cache


def production_spaces(quick: bool = False):
    """The benchmark grid: >= 500 combined points (8 in quick mode)."""
    if quick:
        return [
            tron_sweep_space(
                head_units=(4, 8), array_sizes=(32, 64), clocks_ghz=(5.0,)
            ),
            ghost_sweep_space(lanes=(8, 16), edge_units=(16, 32)),
        ]
    return [
        tron_sweep_space(
            head_units=(2, 3, 4, 6, 8, 12, 16, 24),
            array_sizes=(16, 24, 32, 48, 64, 96, 128, 160),
            clocks_ghz=(1.25, 2.5, 4.0, 5.0),
        ),
        ghost_sweep_space(
            lanes=(4, 6, 8, 12, 16, 20, 24, 28, 32, 40, 48, 56, 64, 80, 96, 128),
            edge_units=(4, 6, 8, 12, 16, 20, 24, 28, 32, 48, 64, 96, 128, 160, 192, 256),
        ),
    ]


def _evaluate_point_naively(space, point):
    """One fresh scalar evaluation of a sweep point (cold caches)."""
    clear_physics_cache()
    workload = space.build_workload()
    knobs = {k: v for k, v in point.knobs.items() if k != "corner"}
    return space.build_accelerator(knobs).run(workload, ctx=None)


def measure_batched_sweep(quick: bool = False):
    """Benchmark record of the batched sweep vs. the naive baseline.

    Returns a dict with wall times, the speedup, the per-space frontier
    labels and the number of batched-vs-scalar mismatches over every
    frontier point (which must be 0).
    """
    spaces = production_spaces(quick=quick)

    clear_physics_cache()
    t0 = time.perf_counter()
    naive = {
        space.name: run_sweep(space, memoize=False, parallel=False)
        for space in spaces
    }
    naive_s = time.perf_counter() - t0

    clear_physics_cache()
    t0 = time.perf_counter()
    batched = {
        space.name: run_sweep(space, strategy="batched") for space in spaces
    }
    batched_s = time.perf_counter() - t0

    num_points = sum(len(points) for points in batched.values())
    frontiers = {}
    mismatches = 0
    frontier_points = 0
    for space in spaces:
        batched_frontier = pareto_frontier(batched[space.name])
        naive_frontier = pareto_frontier(naive[space.name])
        assert [p.label for p in batched_frontier] == [
            p.label for p in naive_frontier
        ], f"{space.name}: frontier drift between batched and naive sweeps"
        frontiers[space.name] = [p.label for p in batched_frontier]
        # Bit-exact reconstruction check: every frontier point re-costed
        # through a fresh scalar run must match the batched report.
        for point in batched_frontier:
            frontier_points += 1
            scalar = _evaluate_point_naively(space, point)
            if (
                scalar.latency_ns != point.report.latency_ns
                or scalar.energy_pj != point.report.energy_pj
            ):
                mismatches += 1
    return {
        "bench": "combined TRON+GHOST batched design-space sweep",
        "points": num_points,
        "batched_wall_s": round(batched_s, 4),
        "naive_sequential_wall_s": round(naive_s, 4),
        "speedup": round(naive_s / batched_s, 2),
        "points_per_sec": round(num_points / batched_s, 1),
        "frontier_points_checked": frontier_points,
        "frontier_mismatches": mismatches,
        "pareto_frontiers": frontiers,
    }


def test_batched_sweep_speedup(run_once):
    record = run_once(measure_batched_sweep, quick=True)
    print()
    print(
        f"quick grid: {record['points']} points, "
        f"{record['speedup']:.1f}x vs naive"
    )
    assert record["frontier_mismatches"] == 0
    # The quick grid is tiny (8 points), so the batched advantage is
    # bounded by the per-point workload rebuild it amortizes away.
    assert record["speedup"] >= 2.0
