"""The sweep engine strategies vs. naive per-point re-evaluation.

The production-scale complement of ``bench_engine_sweep``: a >= 500
point combined TRON + GHOST knob grid evaluated through the batched
strategy (one workload materialization, one vectorized device-physics
kernel call, signature-grouped run-path evaluation) and the ``soa``
strategy (the array-resident path: the whole grid as stacked NumPy
columns, scalar reports materialized from the stack) against the naive
sequential baseline (per-point workload rebuild + physics recompute).
Both engine strategies must be **bit-identical** to scalar runs —
every Pareto-frontier point is re-evaluated naively and compared
exactly, and every soa point is compared against its batched twin —
and the speedups must hold the bars ``run_sweep_bench.py`` gates on
when it records BENCH_sweep.json.
"""

import time

from repro.analysis.sweep import (
    ghost_sweep_space,
    pareto_frontier,
    run_sweep,
    tron_sweep_space,
)
from repro.core.engine import clear_physics_cache
from repro.workloads import clear_graph_memo


def production_spaces(quick: bool = False):
    """The benchmark grid: >= 500 combined points (8 in quick mode)."""
    if quick:
        return [
            tron_sweep_space(
                head_units=(4, 8), array_sizes=(32, 64), clocks_ghz=(5.0,)
            ),
            ghost_sweep_space(lanes=(8, 16), edge_units=(16, 32)),
        ]
    return [
        tron_sweep_space(
            head_units=(2, 3, 4, 6, 8, 12, 16, 24),
            array_sizes=(16, 24, 32, 48, 64, 96, 128, 160),
            clocks_ghz=(1.25, 2.5, 4.0, 5.0),
        ),
        ghost_sweep_space(
            lanes=(4, 6, 8, 12, 16, 20, 24, 28, 32, 40, 48, 56, 64, 80, 96, 128),
            edge_units=(4, 6, 8, 12, 16, 20, 24, 28, 32, 48, 64, 96, 128, 160, 192, 256),
        ),
    ]


def _evaluate_point_naively(space, point):
    """One fresh scalar evaluation of a sweep point (cold caches)."""
    clear_physics_cache()
    clear_graph_memo()
    workload = space.build_workload()
    knobs = {k: v for k, v in point.knobs.items() if k != "corner"}
    return space.build_accelerator(knobs).run(workload, ctx=None)


def measure_batched_sweep(quick: bool = False):
    """Benchmark record of the batched sweep vs. the naive baseline.

    Returns a dict with wall times, the speedup, the per-space frontier
    labels and the number of batched-vs-scalar mismatches over every
    frontier point (which must be 0).
    """
    spaces = production_spaces(quick=quick)

    clear_physics_cache()
    clear_graph_memo()
    t0 = time.perf_counter()
    naive = {
        space.name: run_sweep(space, memoize=False, parallel=False)
        for space in spaces
    }
    naive_s = time.perf_counter() - t0

    # Warm the graph memo outside the timed regions: both engine arms
    # then measure evaluation cost rather than one-time dataset
    # synthesis (the naive baseline clears the memo per point above).
    for space in spaces:
        space.build_workload().materialize()

    clear_physics_cache()
    t0 = time.perf_counter()
    batched = {
        space.name: run_sweep(space, strategy="batched") for space in spaces
    }
    batched_s = time.perf_counter() - t0

    clear_physics_cache()
    t0 = time.perf_counter()
    soa = {
        space.name: run_sweep(space, strategy="soa") for space in spaces
    }
    soa_s = time.perf_counter() - t0

    num_points = sum(len(points) for points in batched.values())
    frontiers = {}
    mismatches = 0
    soa_mismatches = 0
    frontier_points = 0
    for space in spaces:
        batched_frontier = pareto_frontier(batched[space.name])
        naive_frontier = pareto_frontier(naive[space.name])
        assert [p.label for p in batched_frontier] == [
            p.label for p in naive_frontier
        ], f"{space.name}: frontier drift between batched and naive sweeps"
        frontiers[space.name] = [p.label for p in batched_frontier]
        # Bit-exact reconstruction check: every frontier point re-costed
        # through a fresh scalar run must match the batched report.
        for point in batched_frontier:
            frontier_points += 1
            scalar = _evaluate_point_naively(space, point)
            if (
                scalar.latency_ns != point.report.latency_ns
                or scalar.energy_pj != point.report.energy_pj
            ):
                mismatches += 1
        # Every soa point (not just the frontier) must reproduce its
        # batched twin bit for bit — the array-resident path's contract.
        for soa_point, batched_point in zip(
            soa[space.name], batched[space.name]
        ):
            if soa_point.report.to_dict() != batched_point.report.to_dict():
                soa_mismatches += 1
    return {
        "bench": "combined TRON+GHOST design-space sweep (soa/batched/naive)",
        "points": num_points,
        "soa_wall_s": round(soa_s, 4),
        "batched_wall_s": round(batched_s, 4),
        "naive_sequential_wall_s": round(naive_s, 4),
        "speedup": round(naive_s / batched_s, 2),
        "soa_speedup": round(naive_s / soa_s, 2),
        "soa_vs_batched": round(batched_s / soa_s, 2),
        "points_per_sec": round(num_points / batched_s, 1),
        "soa_points_per_sec": round(num_points / soa_s, 1),
        "frontier_points_checked": frontier_points,
        "frontier_mismatches": mismatches,
        "soa_mismatches": soa_mismatches,
        "pareto_frontiers": frontiers,
    }


def measure_perf_smoke():
    """soa vs batched points/sec on a medium grid (no naive arm).

    The 8-point quick grid is dominated by one-time physics setup, so a
    throughput ratio there is noise; this 128-point grid is big enough
    for the per-point cost to dominate while staying CI-fast.  Returns
    both strategies' wall times and points/sec plus the point-for-point
    mismatch count (must be 0).
    """
    spaces = [
        tron_sweep_space(
            head_units=(2, 4, 8, 16),
            array_sizes=(32, 64, 128, 160),
            clocks_ghz=(1.25, 2.5, 4.0, 5.0),
        ),
        ghost_sweep_space(
            lanes=(4, 8, 16, 32, 48, 64, 96, 128),
            edge_units=(8, 16, 32, 48, 64, 96, 128, 256),
        ),
    ]
    for space in spaces:  # warm the graph memo outside both timings
        space.build_workload().materialize()

    clear_physics_cache()
    t0 = time.perf_counter()
    batched = {
        space.name: run_sweep(space, strategy="batched") for space in spaces
    }
    batched_s = time.perf_counter() - t0

    clear_physics_cache()
    t0 = time.perf_counter()
    soa = {
        space.name: run_sweep(space, strategy="soa") for space in spaces
    }
    soa_s = time.perf_counter() - t0

    num_points = sum(len(points) for points in batched.values())
    mismatches = 0
    for space in spaces:
        for soa_point, batched_point in zip(
            soa[space.name], batched[space.name]
        ):
            if soa_point.report.to_dict() != batched_point.report.to_dict():
                mismatches += 1
    return {
        "bench": "soa vs batched sweep perf smoke",
        "points": num_points,
        "soa_wall_s": round(soa_s, 4),
        "batched_wall_s": round(batched_s, 4),
        "points_per_sec": round(num_points / batched_s, 1),
        "soa_points_per_sec": round(num_points / soa_s, 1),
        "soa_vs_batched": round(batched_s / soa_s, 2),
        "soa_mismatches": mismatches,
    }


def test_batched_sweep_speedup(run_once):
    record = run_once(measure_batched_sweep, quick=True)
    print()
    print(
        f"quick grid: {record['points']} points, "
        f"{record['speedup']:.1f}x batched / "
        f"{record['soa_speedup']:.1f}x soa vs naive"
    )
    assert record["frontier_mismatches"] == 0
    assert record["soa_mismatches"] == 0
    # The quick grid is tiny (8 points), so the batched advantage is
    # bounded by the per-point workload rebuild it amortizes away.
    assert record["speedup"] >= 2.0
