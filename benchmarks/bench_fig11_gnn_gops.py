"""Fig. 11: throughput (GOPS) comparison across GNN accelerators.

Regenerates the paper's throughput chart for the GHOST comparison.
Paper claim: GHOST >= 10.2x higher throughput than every baseline.
"""

from repro.analysis.figures import fig11_gnn_gops


def test_fig11_gnn_gops(run_once):
    data = run_once(fig11_gnn_gops)
    print()
    print(data.format())
    assert data.min_win_ratio() >= 10.2
    for workload in data.table.workloads:
        ghost = data.table.value("GHOST", workload)
        for platform in data.table.platforms:
            if platform != "GHOST":
                assert ghost > data.table.value(platform, workload)
