"""Emit BENCH_memory.json: HBM(-PIM) costing speedups and SoA residency.

Usage::

    PYTHONPATH=src python benchmarks/run_memory_bench.py \
        [output.json] [--quick]

Records (1) the closed-form HBM costing path against the retained
per-burst loop oracle, per primitive x transfer size, and (2) the
array-resident TRON sweep throughput (points/sec) for all three memory
backends now that ``hbm-pim`` rides the SoA path.  Both arms carry
exactness checks: every primitive pair is pinned (latency bit-identical,
energy to 1e-12 relative) and sampled sweep points are compared
bit-exactly against fresh scalar runs.

``--quick`` runs the CI ``memory-smoke`` gate: smaller sizes, an 8-point
grid, no JSON written; exits nonzero unless every closed-form primitive
is at least as fast as its loop reference and parity holds.
"""

import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from bench_memory_costing import (  # noqa: E402
    measure_primitive_speedups,
    measure_soa_backends,
)


def main() -> int:
    argv = [a for a in sys.argv[1:]]
    quick = "--quick" in argv
    argv = [a for a in argv if a != "--quick"]
    out_path = pathlib.Path(
        argv[0]
        if argv
        else pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_memory.json"
    )
    primitives = measure_primitive_speedups(quick=quick)
    backends = measure_soa_backends(quick=quick)
    record = {
        "bench": "HBM(-PIM) closed-form costing + SoA backend sweeps"
        + (" (quick smoke)" if quick else ""),
        "primitive_speedups": primitives,
        "soa_backend_sweeps": backends,
    }
    print(json.dumps(record, indent=2))
    # The deterministic gates: the closed form must never lose to the
    # per-burst walk, and the SoA path must stay bit-identical to the
    # scalar oracle for every backend.
    ok = all(row["speedup"] >= 1.0 for row in primitives) and all(
        row["parity_mismatches"] == 0 for row in backends
    )
    if not quick:
        out_path.write_text(json.dumps(record, indent=2) + "\n")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
