"""Emit BENCH_engine.json: sweep wall-time and points/sec trajectory.

Usage::

    PYTHONPATH=src python benchmarks/run_engine_bench.py [output.json]

Records the combined TRON + GHOST design-space sweep through the unified
engine (memoized workloads + device-physics curves, concurrent point
evaluation) against naive sequential per-point re-evaluation, so future
PRs can track the perf trajectory of the sweep path.
"""

import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from bench_engine_sweep import measure_sweep_speedup  # noqa: E402


def main() -> int:
    out_path = pathlib.Path(
        sys.argv[1]
        if len(sys.argv) > 1
        else pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    )
    engine_s, naive_s, num_points, frontiers = measure_sweep_speedup()
    record = {
        "bench": "combined TRON+GHOST design-space sweep",
        "points": num_points,
        "engine_wall_s": round(engine_s, 4),
        "naive_sequential_wall_s": round(naive_s, 4),
        "speedup": round(naive_s / engine_s, 2),
        "points_per_sec": round(num_points / engine_s, 1),
        "pareto_frontiers": frontiers,
    }
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    return 0 if record["speedup"] >= 2.0 else 1


if __name__ == "__main__":
    sys.exit(main())
