"""Ablation A3: buffer-and-partition on/off (Section V.D).

Runs GHOST over the paper's datasets with the blocking optimization
enabled and disabled, reporting memory energy and total latency.  The
unblocked variant pays one irregular fetch per edge at the random-access
penalty; the blocked variant streams each vertex's features once per
layer sweep.
"""

from repro.core.ghost import GHOST, GHOSTConfig
from repro.graphs.datasets import get_dataset_stats, synthesize_dataset
from repro.nn.gnn import GNNKind, make_gnn

import numpy as np


def regenerate_partition_ablation():
    rows = []
    for name in ("cora", "citeseer", "pubmed"):
        stats = get_dataset_stats(name)
        graph, _ = synthesize_dataset(stats, rng=np.random.default_rng(0))
        model = make_gnn(
            GNNKind.GCN,
            in_dim=stats.feature_dim,
            out_dim=stats.num_classes,
            hidden_dim=64,
        )
        blocked = GHOST(GHOSTConfig(use_partitioning=True)).run_gnn(
            model.config, graph
        )
        unblocked = GHOST(GHOSTConfig(use_partitioning=False)).run_gnn(
            model.config, graph
        )
        rows.append(
            {
                "dataset": name,
                "blocked_mem_uj": blocked.energy.memory_pj / 1e6,
                "unblocked_mem_uj": unblocked.energy.memory_pj / 1e6,
                "mem_saving_x": (
                    unblocked.energy.memory_pj / blocked.energy.memory_pj
                ),
                "latency_saving_x": unblocked.latency_ns / blocked.latency_ns,
            }
        )
    return rows


def test_ablation_partition(run_once):
    rows = run_once(regenerate_partition_ablation)
    print("\n=== Ablation A3: buffer-and-partition on/off (GCN) ===")
    print(
        f"{'dataset':>10s} {'blocked uJ':>11s} {'unblocked uJ':>13s} "
        f"{'mem win':>8s} {'lat win':>8s}"
    )
    for row in rows:
        print(
            f"{row['dataset']:>10s} {row['blocked_mem_uj']:>11.1f} "
            f"{row['unblocked_mem_uj']:>13.1f} "
            f"{row['mem_saving_x']:>7.1f}x {row['latency_saving_x']:>7.1f}x"
        )
    for row in rows:
        assert row["mem_saving_x"] > 1.0
        assert row["latency_saving_x"] >= 1.0
