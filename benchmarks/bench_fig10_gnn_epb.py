"""Fig. 10: EPB comparison across GNN accelerators.

Regenerates the paper's energy-per-bit chart: GHOST vs. GRIP, HyGCN,
EnGN, HW_ACC, ReGNN, ReGraphX, TPU v4, Xeon and A100 on GNN x dataset
workloads.  Paper claim: GHOST >= 3.8x better energy efficiency.
"""

from repro.analysis.figures import fig10_gnn_epb


def test_fig10_gnn_epb(run_once):
    data = run_once(fig10_gnn_epb)
    print()
    print(data.format())
    assert data.min_win_ratio() >= 3.8
    for workload in data.table.workloads:
        ghost = data.table.value("GHOST", workload)
        for platform in data.table.platforms:
            if platform != "GHOST":
                assert ghost < data.table.value(platform, workload)
