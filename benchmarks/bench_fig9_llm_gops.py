"""Fig. 9: throughput (GOPS) comparison across LLM accelerators.

Regenerates the paper's throughput bar chart for the TRON comparison.
Paper claim: TRON >= 14x higher throughput than every baseline.
"""

from repro.analysis.figures import fig9_llm_gops


def test_fig9_llm_gops(run_once):
    data = run_once(fig9_llm_gops)
    print()
    print(data.format())
    assert data.min_win_ratio() >= 14.0
    for workload in data.table.workloads:
        tron = data.table.value("TRON", workload)
        for platform in data.table.platforms:
            if platform != "TRON":
                assert tron > data.table.value(platform, workload)
