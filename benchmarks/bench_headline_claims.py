"""The paper's abstract claims, evaluated end to end.

"Both hardware accelerators achieve at least 10.2x throughput improvement
and 3.8x better energy efficiency over multiple state-of-the-art
electronic hardware accelerators" — regenerated across all four figures.
"""

from repro.analysis.claims import check_headline_claims


def test_headline_claims(run_once):
    checks = run_once(check_headline_claims)
    print()
    for check in checks:
        print(check.format())
    assert all(check.holds for check in checks)
