"""Emit BENCH_serving.json: batched serving vs. the naive request loop.

Usage::

    PYTHONPATH=src python benchmarks/run_serving_bench.py [output.json]

Replays a 1000-request mixed LLM+GNN trace (Zipf repeat skew, four
execution corners, multiple dies and batch sizes) three ways:

- **naive** — the baseline a user would write today: per request, build
  a fresh accelerator and run the workload, with nothing shared between
  requests (physics caches cleared each time, mirroring the Monte-Carlo
  bench's naive convention).
- **served (cold)** — the serving engine with an empty cache, micro-
  batching submissions through the batching scheduler (dedup + batched
  corner physics).
- **served (warm replay)** — the same trace again on the same engine;
  every request must hit the report cache and return a report
  bit-identical to the cold run's.

It then offers the warm trace **open-loop** at half the measured warm
replay rate: arrival times are scheduled in advance from a Poisson
process and each request is submitted on schedule no matter how the
engine is doing, with latency measured from the *scheduled arrival* to
completion.  Closed-loop replay lets the engine's own pace throttle the
offered load, which understates latency exactly when the engine is
slow (coordinated omission); the ``open_loop`` block carries the honest
p50/p95/p99.

Exits non-zero if the cold-serve speedup falls below the 5x bar, the
replay hit rate falls below 80%, or any replayed report differs from
its cold-run counterpart.
"""

import json
import pathlib
import sys
import threading
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.core.base import WorkloadKind, get_workload  # noqa: E402
from repro.core.engine import clear_physics_cache  # noqa: E402
from repro.core.ghost import GHOST  # noqa: E402
from repro.core.tron import TRON, TRONConfig  # noqa: E402
from repro.errors import YieldError  # noqa: E402
from repro.serving import (  # noqa: E402
    ArrivalProcess,
    ServingEngine,
    generate_trace,
    latency_quantiles,
    record_to_request,
)

NUM_REQUESTS = 1000
CATALOG_SIZE = 48
TRACE_SEED = 0
WINDOW = 64
SPEEDUP_BAR = 5.0
HIT_RATE_BAR = 0.8


def run_naive(requests):
    """The per-request loop: fresh platform, nothing shared or reused."""
    reports = []
    for request in requests:
        clear_physics_cache()
        workload = get_workload(request.workload)
        platform = request.resolve_platform(workload.kind)
        if platform == "ghost":
            accelerator = GHOST()
        else:
            accelerator = TRON(TRONConfig(batch=request.batch))
        try:
            reports.append(accelerator.run(workload, ctx=request.ctx))
        except YieldError:
            reports.append(None)
    clear_physics_cache()
    return reports


def run_served(engine, requests):
    """Replay the trace through the engine's async submission path."""
    futures = [engine.submit(request) for request in requests]
    engine.drain()
    return [future.result() for future in futures]


def run_open_loop(engine, requests, process, seed=0):
    """Offer ``requests`` on the arrival schedule; honest latencies.

    Latency is scheduled-arrival to completion (stamped by the future's
    done callback), so queueing delay behind a slow engine counts —
    the closed-loop replay above cannot see it.
    """
    times = process.times(len(requests), seed=seed)
    latencies = []
    lock = threading.Lock()

    def record_completion(target_s):
        def callback(_future):
            latency = time.perf_counter() - target_s
            with lock:
                latencies.append(latency)

        return callback

    start = time.perf_counter()
    for request, offset in zip(requests, times):
        target = start + float(offset)
        while True:
            gap = target - time.perf_counter()
            if gap <= 0.0:
                break
            engine.flush()  # don't let buffered work idle while pacing
            time.sleep(min(gap, 0.001))
        engine.submit(request).add_done_callback(record_completion(target))
    engine.drain()
    duration = time.perf_counter() - start
    with lock:
        quantiles = latency_quantiles(latencies)
    return {
        "arrivals": process.describe(),
        "offered_rps": process.rate_rps,
        "completed": len(requests),
        "duration_s": round(duration, 4),
        "throughput_rps": round(len(requests) / duration, 1),
        **{key: round(value, 6) for key, value in quantiles.items()},
    }


def main() -> int:
    out_path = pathlib.Path(
        sys.argv[1]
        if len(sys.argv) > 1
        else pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_serving.json"
    )
    records = generate_trace(
        num_requests=NUM_REQUESTS,
        seed=TRACE_SEED,
        catalog_size=CATALOG_SIZE,
    )
    requests = [record_to_request(record) for record in records]
    distinct = len({tuple(sorted(record.items())) for record in records})

    # Materialize the lazy GNN graphs up front so neither contender pays
    # for one-time synthesis inside its timed region.
    for request in requests:
        get_workload(request.workload).materialize()

    t0 = time.perf_counter()
    naive_reports = run_naive(requests)
    naive_s = time.perf_counter() - t0

    engine = ServingEngine(max_pending=WINDOW)
    t0 = time.perf_counter()
    cold = run_served(engine, requests)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = run_served(engine, requests)
    warm_s = time.perf_counter() - t0

    # Open loop at half the measured warm replay rate (sub-saturation):
    # honest arrival-to-completion percentiles at a sustainable load.
    open_loop = run_open_loop(
        engine,
        requests,
        ArrivalProcess("poisson", max(1.0, 0.5 * len(requests) / warm_s)),
        seed=TRACE_SEED,
    )

    replay_hits = sum(response.cached for response in warm)
    hit_rate = replay_hits / len(warm)
    bit_identical = all(
        (a.report is None and b.report is None)
        or (
            a.report is not None
            and b.report is not None
            and a.report.to_dict() == b.report.to_dict()
        )
        for a, b in zip(cold, warm)
    )
    # Sanity: the serving path agrees with the naive loop (dead dies
    # fail on both; live reports match to float tolerance).
    mismatches = 0
    for response, report in zip(cold, naive_reports):
        if (response.report is None) != (report is None):
            mismatches += 1
        elif report is not None and not (
            response.report.latency_ns == report.latency_ns
            and abs(response.report.energy_pj - report.energy_pj)
            <= 1e-9 * report.energy_pj
        ):
            mismatches += 1

    record = {
        "bench": "batched serving engine vs naive per-request loop",
        "trace": {
            "requests": NUM_REQUESTS,
            "distinct_types": distinct,
            "catalog_size": CATALOG_SIZE,
            "seed": TRACE_SEED,
            "window": WINDOW,
        },
        "naive_s": round(naive_s, 3),
        "served_cold_s": round(cold_s, 3),
        "served_warm_s": round(warm_s, 3),
        "speedup_cold": round(naive_s / cold_s, 2),
        "speedup_warm": round(naive_s / warm_s, 2),
        "replay_hit_rate": round(hit_rate, 4),
        "open_loop": open_loop,
        "bit_identical_replay": bit_identical,
        "naive_mismatches": mismatches,
        "stats": engine.stats.to_dict(),
        "cache": engine.cache.stats.to_dict(),
        "scheduler": engine.scheduler.stats.to_dict(),
    }
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    ok = (
        record["speedup_cold"] >= SPEEDUP_BAR
        and record["replay_hit_rate"] > HIT_RATE_BAR
        and bit_identical
        and mismatches == 0
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
