"""Emit BENCH_serving.json: batched serving vs. the naive request loop.

Usage::

    PYTHONPATH=src python benchmarks/run_serving_bench.py [output.json]

Replays a 1000-request mixed LLM+GNN trace (Zipf repeat skew, four
execution corners, multiple dies and batch sizes) three ways:

- **naive** — the baseline a user would write today: per request, build
  a fresh accelerator and run the workload, with nothing shared between
  requests (physics caches cleared each time, mirroring the Monte-Carlo
  bench's naive convention).
- **served (cold)** — the serving engine with an empty cache, micro-
  batching submissions through the batching scheduler (dedup + batched
  corner physics).
- **served (warm replay)** — the same trace again on the same engine;
  every request must hit the report cache and return a report
  bit-identical to the cold run's.

Exits non-zero if the cold-serve speedup falls below the 5x bar, the
replay hit rate falls below 80%, or any replayed report differs from
its cold-run counterpart.
"""

import json
import pathlib
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.core.base import WorkloadKind, get_workload  # noqa: E402
from repro.core.engine import clear_physics_cache  # noqa: E402
from repro.core.ghost import GHOST  # noqa: E402
from repro.core.tron import TRON, TRONConfig  # noqa: E402
from repro.errors import YieldError  # noqa: E402
from repro.serving import (  # noqa: E402
    ServingEngine,
    generate_trace,
    record_to_request,
)

NUM_REQUESTS = 1000
CATALOG_SIZE = 48
TRACE_SEED = 0
WINDOW = 64
SPEEDUP_BAR = 5.0
HIT_RATE_BAR = 0.8


def run_naive(requests):
    """The per-request loop: fresh platform, nothing shared or reused."""
    reports = []
    for request in requests:
        clear_physics_cache()
        workload = get_workload(request.workload)
        platform = request.resolve_platform(workload.kind)
        if platform == "ghost":
            accelerator = GHOST()
        else:
            accelerator = TRON(TRONConfig(batch=request.batch))
        try:
            reports.append(accelerator.run(workload, ctx=request.ctx))
        except YieldError:
            reports.append(None)
    clear_physics_cache()
    return reports


def run_served(engine, requests):
    """Replay the trace through the engine's async submission path."""
    futures = [engine.submit(request) for request in requests]
    engine.drain()
    return [future.result() for future in futures]


def main() -> int:
    out_path = pathlib.Path(
        sys.argv[1]
        if len(sys.argv) > 1
        else pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_serving.json"
    )
    records = generate_trace(
        num_requests=NUM_REQUESTS,
        seed=TRACE_SEED,
        catalog_size=CATALOG_SIZE,
    )
    requests = [record_to_request(record) for record in records]
    distinct = len({tuple(sorted(record.items())) for record in records})

    # Materialize the lazy GNN graphs up front so neither contender pays
    # for one-time synthesis inside its timed region.
    for request in requests:
        get_workload(request.workload).materialize()

    t0 = time.perf_counter()
    naive_reports = run_naive(requests)
    naive_s = time.perf_counter() - t0

    engine = ServingEngine(max_pending=WINDOW)
    t0 = time.perf_counter()
    cold = run_served(engine, requests)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = run_served(engine, requests)
    warm_s = time.perf_counter() - t0

    replay_hits = sum(response.cached for response in warm)
    hit_rate = replay_hits / len(warm)
    bit_identical = all(
        (a.report is None and b.report is None)
        or (
            a.report is not None
            and b.report is not None
            and a.report.to_dict() == b.report.to_dict()
        )
        for a, b in zip(cold, warm)
    )
    # Sanity: the serving path agrees with the naive loop (dead dies
    # fail on both; live reports match to float tolerance).
    mismatches = 0
    for response, report in zip(cold, naive_reports):
        if (response.report is None) != (report is None):
            mismatches += 1
        elif report is not None and not (
            response.report.latency_ns == report.latency_ns
            and abs(response.report.energy_pj - report.energy_pj)
            <= 1e-9 * report.energy_pj
        ):
            mismatches += 1

    record = {
        "bench": "batched serving engine vs naive per-request loop",
        "trace": {
            "requests": NUM_REQUESTS,
            "distinct_types": distinct,
            "catalog_size": CATALOG_SIZE,
            "seed": TRACE_SEED,
            "window": WINDOW,
        },
        "naive_s": round(naive_s, 3),
        "served_cold_s": round(cold_s, 3),
        "served_warm_s": round(warm_s, 3),
        "speedup_cold": round(naive_s / cold_s, 2),
        "speedup_warm": round(naive_s / warm_s, 2),
        "replay_hit_rate": round(hit_rate, 4),
        "bit_identical_replay": bit_identical,
        "naive_mismatches": mismatches,
        "stats": engine.stats.to_dict(),
        "cache": engine.cache.stats.to_dict(),
        "scheduler": engine.scheduler.stats.to_dict(),
    }
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    ok = (
        record["speedup_cold"] >= SPEEDUP_BAR
        and record["replay_hit_rate"] > HIT_RATE_BAR
        and bit_identical
        and mismatches == 0
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
