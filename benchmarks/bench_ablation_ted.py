"""Ablation A2: thermal eigenmode decomposition on/off (Section V.A).

Sweeps MR bank sizes and reports total heater power with the naive
per-ring controller vs. the TED solve, plus the worst-case temperature
error the naive controller leaves behind (which TED eliminates).
"""

import numpy as np

from repro.photonics.thermal import ThermalGrid, ted_power_mw


def regenerate_ted_ablation():
    rows = []
    rng = np.random.default_rng(0)
    for heaters in (8, 16, 32, 64):
        grid = ThermalGrid(num_heaters=heaters)
        targets = rng.uniform(5.0, 30.0, heaters)
        naive = ted_power_mw(grid, targets, use_ted=False)
        ted = ted_power_mw(grid, targets, use_ted=True)
        error = float(np.abs(grid.crosstalk_error_k(targets)).max())
        rows.append(
            {
                "heaters": heaters,
                "naive_mw": naive,
                "ted_mw": ted,
                "saving_pct": 100.0 * (1.0 - ted / naive),
                "naive_error_k": error,
            }
        )
    return rows


def test_ablation_ted(run_once):
    rows = run_once(regenerate_ted_ablation)
    print("\n=== Ablation A2: TED on/off, total heater power ===")
    print(
        f"{'heaters':>8s} {'naive (mW)':>11s} {'TED (mW)':>9s} "
        f"{'saving':>7s} {'naive err (K)':>14s}"
    )
    for row in rows:
        print(
            f"{row['heaters']:>8d} {row['naive_mw']:>11.2f} "
            f"{row['ted_mw']:>9.2f} {row['saving_pct']:>6.1f}% "
            f"{row['naive_error_k']:>14.2f}"
        )
    for row in rows:
        assert row["ted_mw"] < row["naive_mw"]
        assert row["naive_error_k"] > 1.0  # naive leaves real detuning error
    # Denser banks suffer more crosstalk, so TED's saving grows.
    savings = [row["saving_pct"] for row in rows]
    assert savings[-1] > savings[0]
