"""Fig. 3(a): MR through-port transmission before/after imprinting.

Regenerates the transmission spectra of a parameter-imprinting MR: the
untuned resonance dip, and the dip shifted by imprinting three parameter
levels.  The printed series are the curves the paper's Fig. 3(a) plots.
"""

import numpy as np

from repro.photonics.microring import Microring, MicroringDesign


def regenerate_fig3a():
    """Return {label: (wavelengths, transmission)} curves."""
    design = MicroringDesign()
    ring = Microring.at_wavelength(design, 1550.0)
    wavelengths = np.linspace(
        ring.resonance_nm - 1.0, ring.resonance_nm + 1.0, 600
    )
    curves = {"untuned": (wavelengths, ring.through_transmission(wavelengths))}
    for value in (0.25, 0.5, 0.9):
        shifted = Microring.at_wavelength(design, 1550.0)
        shifted.apply_shift(shifted.imprint(value))
        curves[f"imprint {value:.2f}"] = (
            wavelengths,
            shifted.through_transmission(wavelengths),
        )
    return curves


def test_fig3a_mr_transmission(run_once):
    curves = run_once(regenerate_fig3a)
    print("\n=== Fig. 3(a): through-port transmission at the probe ===")
    design = MicroringDesign()
    probe_ring = Microring.at_wavelength(design, 1550.0)
    probe = probe_ring.resonance_nm
    for label, (wavelengths, transmission) in curves.items():
        at_probe = float(np.interp(probe, wavelengths, transmission))
        print(f"  {label:>14s}: T(probe) = {at_probe:.4f}")
    # Imprinting monotonically raises the probe-wavelength transmission.
    probes = [
        float(np.interp(probe, w, t)) for w, t in curves.values()
    ]
    assert probes == sorted(probes)
    assert probes[0] < 0.01  # untuned dip is deep
    assert probes[-1] > 0.5  # large imprint opens the through port
