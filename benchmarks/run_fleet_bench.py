"""Emit BENCH_fleet.json: the sharded multi-process serving tier.

Usage::

    PYTHONPATH=src python benchmarks/run_fleet_bench.py [output.json]
    PYTHONPATH=src python benchmarks/run_fleet_bench.py --quick

What it measures, on the same mixed LLM+GNN trace as
``run_serving_bench.py``:

1. **Correctness** — a 1-worker fleet must produce report payloads
   equal to the in-process ``ServingEngine`` on the identical request
   stream (the worker runs the same scheduler on the same documents;
   only pickled dicts cross the process boundary).
2. **Aggregate warm throughput** — N sharded workers replaying the
   trace closed-loop with hot shard caches, gated at
   ``SPEEDUP_BAR`` x the single-process ``throughput_rps``
   ``BENCH_serving.json`` recorded when the fleet tier was specced
   (``BASELINE_RPS``).  The bar is pinned to that figure rather than
   re-read live: the single-process number moves with unrelated engine
   work (the SoA batched-physics path alone shrank scheduler busy time
   ~5x), and a ratio against a moving baseline would fail the fleet
   whenever the engine it wraps gets faster.  The live figure is still
   recorded alongside for context.
3. **Open-loop saturation sweep** — Poisson offered load at 0.5x / 1x /
   2x the measured aggregate throughput, reporting honest
   arrival-to-completion p50/p95/p99.  The 2x (past-saturation) run
   must *complete* — bounded queues shed the excess with explicit
   responses instead of queueing without bound — and must actually
   shed (``shed > 0``).

``--quick`` is the CI smoke variant: a small trace, 2 workers, gating
only on zero mismatches and shed-not-hang.

Exits non-zero if any gate fails.
"""

import argparse
import json
import pathlib
import sys
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.base import get_workload  # noqa: E402
from repro.serving import (  # noqa: E402
    ArrivalProcess,
    ServingEngine,
    ServingFleet,
    generate_trace,
    record_to_request,
)

CATALOG_SIZE = 48
TRACE_SEED = 0
WINDOW = 64
SPEEDUP_BAR = 5.0
#: Single-process serving throughput (``stats.throughput_rps``) in the
#: BENCH_serving.json the fleet tier was specced against.  The
#: aggregate-throughput gate is SPEEDUP_BAR x this, i.e. ~32k req/s.
BASELINE_RPS = 6413.5
WARM_REPLAYS = 5
PAST_SATURATION_TIMEOUT_S = 120.0


def count_mismatches(reference, responses):
    """Report payloads that differ between the two serving paths."""
    mismatches = 0
    for ref, response in zip(reference, responses):
        ref_report = ref.to_dict()["report"]
        if ref_report != response.report:
            mismatches += 1
    return mismatches


def check_identity(requests, workers=1):
    """Gate 1: the sharded tier is bit-identical to in-process serving."""
    with ServingEngine(max_pending=WINDOW) as engine:
        reference = engine.serve(requests)
    with ServingFleet(workers=workers, window=WINDOW) as fleet:
        responses = fleet.serve(requests)
    return count_mismatches(reference, responses)


def measure_warm_throughput(fleet, requests, replays=WARM_REPLAYS):
    """Gate 2: closed-loop aggregate req/s with hot shard caches."""
    fleet.serve(requests)  # warm every shard's caches
    t0 = time.perf_counter()
    for _ in range(replays):
        fleet.serve(requests)
    wall = time.perf_counter() - t0
    return replays * len(requests) / wall


def saturation_sweep(fleet, requests, saturation_rps, factors):
    """Gate 3: open-loop runs at the given multiples of saturation."""
    runs = []
    for factor in factors:
        process = ArrivalProcess("poisson", factor * saturation_rps)
        result = fleet.run_open_loop(
            requests,
            process,
            seed=TRACE_SEED,
            drain_timeout=PAST_SATURATION_TIMEOUT_S,
        )
        entry = {"saturation_factor": factor, **result.to_dict()}
        runs.append(entry)
        print(
            f"  open loop {factor:.1f}x: offered "
            f"{entry['offered_rps']:.0f} rps, completed "
            f"{entry['completed']}, shed {entry['shed']}, p99 "
            f"{1e3 * entry['p99_latency_s']:.2f} ms",
            file=sys.stderr,
        )
    return runs


def single_process_rps(num_requests):
    """The live single-process throughput, for context (not the gate)."""
    bench_path = REPO / "BENCH_serving.json"
    if bench_path.exists():
        record = json.loads(bench_path.read_text())
        recorded = record.get("stats", {}).get("throughput_rps")
        if recorded:
            return float(recorded), "BENCH_serving.json"
    records = generate_trace(
        num_requests=num_requests, seed=TRACE_SEED, catalog_size=CATALOG_SIZE
    )
    requests = [record_to_request(record) for record in records]
    with ServingEngine(max_pending=WINDOW) as engine:
        engine.serve(requests)
        t0 = time.perf_counter()
        engine.serve(requests)
        wall = time.perf_counter() - t0
    return len(requests) / wall, "measured warm replay"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "output",
        nargs="?",
        default=str(REPO / "BENCH_fleet.json"),
        help="where to write the benchmark record",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small trace, 2 workers, correctness + "
        "shed-not-hang gates only",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fleet width (default: 2 quick, 4 full)",
    )
    args = parser.parse_args()

    num_requests = 200 if args.quick else 1000
    workers = args.workers or (2 if args.quick else 4)
    # Keep the per-shard bound well under the trace size so the 2x
    # (past-saturation) open-loop run demonstrably sheds; closed-loop
    # replay applies backpressure instead, so the bound never distorts
    # the identity or throughput measurements.
    max_queue = 32 if args.quick else 64
    records = generate_trace(
        num_requests=num_requests, seed=TRACE_SEED, catalog_size=CATALOG_SIZE
    )
    requests = [record_to_request(record) for record in records]
    # Materialize lazy GNN graphs up front: neither contender pays for
    # one-time synthesis inside a timed region, and forked workers
    # inherit the materialized graphs.
    for request in requests:
        get_workload(request.workload).materialize()

    print("checking 1-worker bit-identity ...", file=sys.stderr)
    mismatches = check_identity(requests)

    baseline_rps, baseline_source = single_process_rps(num_requests)

    fleet = ServingFleet(workers=workers, window=WINDOW, max_queue=max_queue)
    with fleet:
        print(
            f"measuring warm aggregate throughput ({workers} workers) ...",
            file=sys.stderr,
        )
        aggregate_rps = measure_warm_throughput(fleet, requests)
        factors = (2.0,) if args.quick else (0.5, 1.0, 2.0)
        open_loop = saturation_sweep(fleet, requests, aggregate_rps, factors)
    fleet_stats = fleet.fleet_stats()

    past_saturation = open_loop[-1]
    shed_not_hang = (
        past_saturation["submitted"]
        == past_saturation["completed"]
        + past_saturation["shed"]
        + past_saturation["errors"]
    )
    speedup = aggregate_rps / BASELINE_RPS
    gates = {
        "mismatches_zero": mismatches == 0,
        "shed_not_hang": shed_not_hang,
        "past_saturation_sheds": past_saturation["shed"] > 0,
    }
    if not args.quick:
        gates["aggregate_speedup"] = speedup >= SPEEDUP_BAR

    record = {
        "bench": "sharded multi-process fleet vs single-process serving",
        "quick": args.quick,
        "trace": {
            "requests": num_requests,
            "catalog_size": CATALOG_SIZE,
            "seed": TRACE_SEED,
            "window": WINDOW,
        },
        "workers": workers,
        "max_queue": max_queue,
        "baseline_rps": BASELINE_RPS,
        "live_single_process_rps": round(baseline_rps, 1),
        "live_single_process_source": baseline_source,
        "aggregate_warm_rps": round(aggregate_rps, 1),
        "aggregate_speedup": round(speedup, 2),
        "speedup_bar": SPEEDUP_BAR,
        "one_worker_mismatches": mismatches,
        "open_loop": open_loop,
        "admission": fleet_stats["admission"],
        "shard_requests": fleet_stats["shard_requests"],
        "gates": gates,
    }
    out_path = pathlib.Path(args.output)
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    if not all(gates.values()):
        failed = sorted(name for name, ok in gates.items() if not ok)
        print(f"FAILED gates: {failed}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
