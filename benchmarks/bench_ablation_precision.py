"""Ablation A4: operating precision (Section VI's 8-bit choice).

Two views:

1. Algorithmic: RMS quantization error of realistic weight tensors vs.
   bit width — 8-bit error is sub-1%, which is the paper's argument for
   running the accelerators at 8-bit.
2. Architectural: TRON's EPB vs. bit width with Walden-scaled converters
   — higher precision costs conversion energy superlinearly, lower
   precision saves little once other terms dominate.
"""

import numpy as np

from repro.core.tron import TRON, TRONConfig
from repro.nn.models import bert_base
from repro.nn.quantization import quantization_error


def regenerate_precision_ablation():
    rng = np.random.default_rng(0)
    weights = rng.normal(0.0, 0.25, 50_000)
    rows = []
    for bits in (4, 6, 8, 10, 12):
        config = TRONConfig(batch=8, bits=bits)
        config = TRONConfig(
            batch=8,
            bits=bits,
            dac=config.dac.scaled_to_bits(bits),
            adc=config.adc.scaled_to_bits(bits),
        )
        report = TRON(config).run_transformer(bert_base())
        rows.append(
            {
                "bits": bits,
                "quant_error_pct": 100.0 * quantization_error(weights, bits=bits),
                "epb_pj": report.epb_pj,
                "latency_ms": report.latency_ns / 1e6,
            }
        )
    return rows


def test_ablation_precision(run_once):
    rows = run_once(regenerate_precision_ablation)
    print("\n=== Ablation A4: precision sweep (TRON, BERT-base) ===")
    print(
        f"{'bits':>5s} {'quant err':>10s} {'EPB (pJ/b)':>11s} {'latency':>10s}"
    )
    for row in rows:
        print(
            f"{row['bits']:>5d} {row['quant_error_pct']:>9.3f}% "
            f"{row['epb_pj']:>11.4f} {row['latency_ms']:>8.2f}ms"
        )
    by_bits = {row["bits"]: row for row in rows}
    # The paper's 8-bit argument: ~1% RMS error is algorithmically
    # negligible, while 4-bit error is an order of magnitude worse.
    assert by_bits[8]["quant_error_pct"] < 1.5
    assert by_bits[4]["quant_error_pct"] > 5.0
    # Conversion energy makes high precision expensive.
    assert by_bits[12]["epb_pj"] > by_bits[8]["epb_pj"]
