"""soa vs. grouped vs. naive Monte-Carlo robustness, and yield-aware Pareto.

Two scenarios mirror how the MC engine is used:

- **TRON / BERT-base** — transformer robustness; the naive baseline pays
  per-sample accelerator construction, physics-cache recomputation and a
  scalar context-physics evaluation per die.
- **GHOST / GCN-cora** — GNN robustness; the naive baseline additionally
  re-materializes the workload (graph synthesis) per die, which the
  engine strategies memoize once.

Three strategies per scenario: ``soa`` (the array-resident default —
every yield signature's affine replay evaluates in one stacked pass),
``grouped`` (the scalar per-signature replay loop), and ``naive`` (N
cold scalar runs).  soa must be bit-identical to grouped, grouped must
match naive to float tolerance, and the combined wall-clock speedups at
N=256 samples are the numbers ``run_mc_bench.py`` records in
BENCH_montecarlo.json, each with a >= 10x bar.

The yield-aware Pareto bench sweeps array geometry under a tight tuner
range, where big arrays are fast but rarely fab fully functional — the
frontier a fab could ship differs from the nominal frontier.
"""

import time

import numpy as np

from repro.analysis.robustness import (
    monte_carlo_sweep,
    run_monte_carlo,
    yield_aware_pareto,
)
from repro.analysis.sweep import SweepSpace
from repro.core import ExecutionContext, GHOST, GHOSTConfig, TRON, TRONConfig
from repro.nn.gnn import GNNKind
from repro.nn.models import MODEL_ZOO
from repro.photonics.variation import ProcessVariationModel
from repro.workloads import TransformerWorkload, make_gnn_workload

#: The sampled die population of every bench scenario.
BENCH_CONTEXT = ExecutionContext(variation=ProcessVariationModel(), seed=7)

#: Tuner correction range (nm) of the yield-aware Pareto scenario —
#: tight enough that large arrays rarely fab fully functional.
PARETO_TUNER_RANGE_NM = 8.5

#: Tuner range of the many-signature speedup scenario: tight enough
#: that sampled dies land on dozens of distinct yield signatures, so
#: the per-signature replay loop (what the soa strategy collapses into
#: one stacked pass) actually dominates the engine's work.
MANY_SIG_TUNER_RANGE_NM = 5.0


def _make_bert_workload():
    return TransformerWorkload(model=MODEL_ZOO["BERT-base"])


def _make_cora_workload():
    return make_gnn_workload(
        GNNKind.GCN, "cora", hidden_dim=64, rng_seed=0, name="GCN-cora"
    )


def _scenarios():
    import dataclasses

    tight = dataclasses.replace(
        BENCH_CONTEXT, tuner_range_nm=MANY_SIG_TUNER_RANGE_NM
    )
    return (
        ("TRON", "BERT-base", lambda: TRON(), _make_bert_workload,
         BENCH_CONTEXT),
        ("GHOST", "GCN-cora", lambda: GHOST(), _make_cora_workload,
         BENCH_CONTEXT),
        ("TRON", "BERT-base/tight-tuner", lambda: TRON(),
         _make_bert_workload, tight),
    )


def measure_mc_speedup(samples: int = 256):
    """(records, speedups) of the MC strategies vs. the naive baseline.

    Each record holds all three wall times, the per-scenario speedups
    and the yield; ``speedups`` is ``{"grouped": x, "soa": y}`` combined
    over both scenarios.  soa is asserted bit-identical to grouped and
    grouped is asserted against naive to float tolerance before any
    number is reported.
    """
    records = []
    total_soa_s = 0.0
    total_grouped_s = 0.0
    total_naive_s = 0.0
    for (
        platform,
        workload,
        make_accelerator,
        make_workload,
        context,
    ) in _scenarios():
        # Warm the graph memo outside the timed regions: the engine
        # arms then measure evaluation cost, not one-time dataset
        # synthesis (the naive arm clears the memo per sample).
        make_workload().materialize()
        t0 = time.perf_counter()
        soa = run_monte_carlo(
            make_accelerator,
            make_workload,
            context,
            samples=samples,
            strategy="soa",
        )
        soa_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        grouped = run_monte_carlo(
            make_accelerator,
            make_workload,
            context,
            samples=samples,
            strategy="grouped",
        )
        grouped_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        naive = run_monte_carlo(
            make_accelerator,
            make_workload,
            context,
            samples=samples,
            vectorized=False,
        )
        naive_s = time.perf_counter() - t0
        # The array-resident path reproduces the scalar replay loop bit
        # for bit; the replay loop matches naive to float tolerance
        # (its affine reconstruction rounds differently in the last ulp).
        assert np.array_equal(soa.operational, grouped.operational)
        assert np.array_equal(soa.fully_functional, grouped.fully_functional)
        assert np.array_equal(
            soa.energy_pj, grouped.energy_pj, equal_nan=True
        )
        assert np.array_equal(
            soa.latency_ns, grouped.latency_ns, equal_nan=True
        )
        assert np.array_equal(grouped.operational, naive.operational)
        assert np.array_equal(
            grouped.fully_functional, naive.fully_functional
        )
        assert np.allclose(
            grouped.energy_pj, naive.energy_pj, rtol=1e-9, equal_nan=True
        )
        assert np.allclose(
            grouped.latency_ns, naive.latency_ns, rtol=1e-9, equal_nan=True
        )
        total_soa_s += soa_s
        total_grouped_s += grouped_s
        total_naive_s += naive_s
        records.append(
            {
                "platform": platform,
                "workload": workload,
                "samples": samples,
                "soa_wall_s": round(soa_s, 4),
                "grouped_wall_s": round(grouped_s, 4),
                "naive_wall_s": round(naive_s, 4),
                "soa_speedup": round(naive_s / soa_s, 2),
                "speedup": round(naive_s / grouped_s, 2),
                "soa_groups": (soa.evaluation or {}).get("groups", 0),
                "yield": soa.yield_fraction,
                "mean_energy_uj": round(soa.mean_energy_pj / 1e6, 2),
                "mean_latency_us": round(soa.mean_latency_ns / 1e3, 2),
            }
        )
    return records, {
        "grouped": total_naive_s / total_grouped_s,
        "soa": total_naive_s / total_soa_s,
    }


def _tron_pareto_space() -> SweepSpace:
    def build(knobs):
        size = int(knobs["array_size"])
        return TRON(
            TRONConfig(array_rows=size, array_cols=size, batch=8)
        )

    return SweepSpace(
        name="tron",
        knobs=SweepSpace.ordered_knobs({"array_size": (32, 64, 128)}),
        build_accelerator=build,
        build_workload=_make_bert_workload,
        label=lambda knobs: f"A{knobs['array_size']}",
    )


def _ghost_pareto_space() -> SweepSpace:
    def build(knobs):
        size = int(knobs["array_size"])
        return GHOST(
            GHOSTConfig(
                lanes=int(knobs["lanes"]), array_rows=size, array_cols=size
            )
        )

    return SweepSpace(
        name="ghost",
        knobs=SweepSpace.ordered_knobs(
            {"lanes": (8, 16), "array_size": (32, 64, 128)}
        ),
        build_accelerator=build,
        build_workload=_make_cora_workload,
        label=lambda knobs: f"V{knobs['lanes']}/A{knobs['array_size']}",
    )


def compute_yield_pareto(samples: int = 128, yield_threshold: float = 0.7):
    """Yield-aware Pareto frontiers of both accelerators.

    Returns ``{platform: {"points": [...], "frontier": [...]}}`` where
    each point records its yield and operational-die mean metrics.  The
    tight tuner range makes yield a real axis: the biggest arrays win
    the nominal frontier but rarely fab fully functional.
    """
    import dataclasses

    context = dataclasses.replace(
        BENCH_CONTEXT, tuner_range_nm=PARETO_TUNER_RANGE_NM
    )
    frontiers = {}
    for space in (_tron_pareto_space(), _ghost_pareto_space()):
        points = monte_carlo_sweep(space, context, samples=samples)
        frontier = yield_aware_pareto(points, yield_threshold=yield_threshold)
        frontiers[space.name] = {
            "yield_threshold": yield_threshold,
            "tuner_range_nm": PARETO_TUNER_RANGE_NM,
            "points": [p.to_dict() for p in points],
            "frontier": [p.label for p in frontier],
        }
    return frontiers


def test_mc_vectorized_speedup(run_once):
    records, speedups = run_once(measure_mc_speedup, samples=64)
    print()
    for record in records:
        print(
            f"{record['platform']}/{record['workload']}: "
            f"{record['speedup']}x grouped / {record['soa_speedup']}x soa "
            f"(yield {record['yield']:.2f})"
        )
    print(
        f"combined speedup at N=64: {speedups['grouped']:.1f}x grouped, "
        f"{speedups['soa']:.1f}x soa"
    )
    # The >= 10x bars apply at the recorded N=256 (run_mc_bench.py);
    # the in-suite smoke run at N=64 just guards against regressions.
    assert speedups["grouped"] >= 3.0
    assert speedups["soa"] >= 3.0


def test_yield_pareto_nonempty(run_once):
    frontiers = run_once(compute_yield_pareto, samples=32)
    print()
    for name, data in frontiers.items():
        yields = {p["label"]: round(p["yield"], 3) for p in data["points"]}
        print(f"{name}: yields {yields} -> frontier {data['frontier']}")
        assert data["frontier"], f"{name}: no configuration met the yield bar"
        # Yield-awareness must actually cut something at this tuner range.
        assert len(data["frontier"]) < len(data["points"])
