"""Fig. 3(d): MR bank spectral response and heterodyne crosstalk.

Regenerates the WDM comb picture of the paper's Fig. 3(d): per-channel
resonance positions across one FSR and the heterodyne crosstalk each
channel suffers, as a function of channel spacing (CS) and Q.
"""

import numpy as np

from repro.photonics.crosstalk import ChannelPlan
from repro.photonics.microring import Microring, MicroringDesign
from repro.units import linear_to_db


def regenerate_fig3d():
    """Crosstalk-vs-spacing series for the default ring's Q and FSR."""
    ring = Microring.at_wavelength(MicroringDesign(), 1550.0)
    q = ring.quality_factor
    fsr = ring.fsr_nm
    series = []
    for count in (4, 8, 12, 16, 24):
        spacing = fsr / count
        plan = ChannelPlan(
            num_channels=count, channel_spacing_nm=spacing, fsr_nm=fsr
        )
        ratio = plan.worst_case_crosstalk_ratio(q)
        series.append(
            {
                "channels": count,
                "spacing_nm": spacing,
                "crosstalk_db": linear_to_db(ratio),
                "snr_db": linear_to_db(1.0 / ratio),
            }
        )
    return {"q_factor": q, "fsr_nm": fsr, "series": series}


def test_fig3d_heterodyne_crosstalk(run_once):
    data = run_once(regenerate_fig3d)
    print(
        f"\n=== Fig. 3(d): heterodyne crosstalk, Q={data['q_factor']:.0f}, "
        f"FSR={data['fsr_nm']:.2f} nm ==="
    )
    print(f"{'channels':>9s} {'CS (nm)':>9s} {'xtalk (dB)':>11s} {'SNR (dB)':>9s}")
    for row in data["series"]:
        print(
            f"{row['channels']:>9d} {row['spacing_nm']:>9.3f} "
            f"{row['crosstalk_db']:>11.1f} {row['snr_db']:>9.1f}"
        )
    # The figure's message: crosstalk grows as channels pack tighter.
    xtalk = [row["crosstalk_db"] for row in data["series"]]
    assert xtalk == sorted(xtalk)
    # And a moderate comb (8 channels) stays above a 20 dB SNR.
    eight = next(r for r in data["series"] if r["channels"] == 8)
    assert eight["snr_db"] > 20.0
