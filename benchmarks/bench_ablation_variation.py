"""Ablation A7: fabrication process variation (paper conclusion).

Monte-Carlo the resonance-error distribution of fabricated MR banks and
its cost: mean trimming (tuning) power per ring and bank yield under a
bounded tuner range, across variation severities.
"""

import numpy as np

from repro.photonics.microring import MicroringDesign
from repro.photonics.variation import ProcessVariationModel, variation_impact


def regenerate_variation_ablation():
    rows = []
    for label, width_sigma, thickness_sigma in (
        ("tight (mature fab)", 0.5, 0.25),
        ("typical", 2.0, 1.0),
        ("loose (MPW run)", 4.0, 2.0),
    ):
        impact = variation_impact(
            MicroringDesign(),
            bank_size=64,
            model=ProcessVariationModel(
                width_sigma_nm=width_sigma, thickness_sigma_nm=thickness_sigma
            ),
            trials=200,
            rng=np.random.default_rng(0),
        )
        rows.append(
            {
                "process": label,
                "mean_correction_nm": impact.mean_correction_nm,
                "mean_power_mw": impact.mean_tuning_power_mw,
                "bank_yield_pct": 100.0 * impact.bank_yield,
            }
        )
    return rows


def test_ablation_process_variation(run_once):
    rows = run_once(regenerate_variation_ablation)
    print("\n=== Ablation A7: process variation (64-MR banks) ===")
    print(
        f"{'process':>20s} {'corr (nm)':>10s} {'trim (mW)':>10s} "
        f"{'yield':>7s}"
    )
    for row in rows:
        print(
            f"{row['process']:>20s} {row['mean_correction_nm']:>10.2f} "
            f"{row['mean_power_mw']:>10.2f} {row['bank_yield_pct']:>6.1f}%"
        )
    powers = [row["mean_power_mw"] for row in rows]
    assert powers == sorted(powers)  # worse process -> more trim power
    assert rows[0]["bank_yield_pct"] >= rows[-1]["bank_yield_pct"]
    assert rows[0]["bank_yield_pct"] > 95.0  # mature fabs yield well
