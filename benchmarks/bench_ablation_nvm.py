"""Ablation A6: non-volatile PCM weight cells (paper conclusion).

The paper's conclusion points to "alternative non-volatile optical memory
cells" as future work.  This bench quantifies the trade on both
accelerators: PCM weights eliminate the weight-DAC refresh and the weight
MRs' tuning hold power, at the cost of write energy whenever weights
change.  Weight-stationary GHOST wins outright; TRON wins once its
refresh window is long enough.
"""

from repro.core.ghost import GHOST, GHOSTConfig
from repro.core.tron import TRON, TRONConfig
from repro.graphs.datasets import get_dataset_stats, synthesize_dataset
from repro.nn.gnn import GNNKind, make_gnn
from repro.nn.models import bert_base
from repro.photonics.pcm import NonVolatileWeightBank, PCMCell

import numpy as np


def regenerate_nvm_ablation():
    pcm = PCMCell()
    results = {}

    # Device-level crossover.
    bank = NonVolatileWeightBank(cell=pcm)
    results["breakeven_reuse_cycles"] = bank.breakeven_reuse_cycles()

    # TRON at its default refresh window.
    volatile_tron = TRON(TRONConfig(batch=8)).run_transformer(bert_base())
    pcm_tron = TRON(TRONConfig(batch=8, pcm=pcm)).run_transformer(bert_base())
    results["tron_volatile_epb"] = volatile_tron.epb_pj
    results["tron_pcm_epb"] = pcm_tron.epb_pj

    # GHOST: weights are layer-stationary — one layer's sweep over Cora
    # reuses the tile for ~60k photonic cycles, so both variants are
    # evaluated at that realistic refresh window.
    stats = get_dataset_stats("cora")
    graph, _ = synthesize_dataset(stats, rng=np.random.default_rng(0))
    model = make_gnn(
        GNNKind.GCN,
        in_dim=stats.feature_dim,
        out_dim=stats.num_classes,
        hidden_dim=64,
    )
    reuse = 60_000
    volatile_ghost = GHOST(
        GHOSTConfig(weight_refresh_cycles=reuse)
    ).run_gnn(model.config, graph)
    pcm_ghost = GHOST(
        GHOSTConfig(weight_refresh_cycles=reuse, pcm=pcm)
    ).run_gnn(model.config, graph)
    results["ghost_volatile_epb"] = volatile_ghost.epb_pj
    results["ghost_pcm_epb"] = pcm_ghost.epb_pj
    results["ghost_volatile_tuning_nj"] = volatile_ghost.energy.tuning_pj / 1e3
    results["ghost_pcm_tuning_nj"] = pcm_ghost.energy.tuning_pj / 1e3
    return results


def test_ablation_nonvolatile_weights(run_once):
    data = run_once(regenerate_nvm_ablation)
    print("\n=== Ablation A6: non-volatile PCM weight cells ===")
    print(
        f"  device breakeven: PCM wins beyond "
        f"{data['breakeven_reuse_cycles']} reuse cycles"
    )
    print(
        f"  TRON  EPB: volatile {data['tron_volatile_epb']:.4f} -> "
        f"PCM {data['tron_pcm_epb']:.4f} pJ/bit"
    )
    print(
        f"  GHOST EPB: volatile {data['ghost_volatile_epb']:.4f} -> "
        f"PCM {data['ghost_pcm_epb']:.4f} pJ/bit"
    )
    print(
        f"  GHOST tuning energy: {data['ghost_volatile_tuning_nj']:.1f} -> "
        f"{data['ghost_pcm_tuning_nj']:.1f} nJ"
    )
    # GHOST's layer-stationary weights clearly benefit.
    assert data["ghost_pcm_tuning_nj"] < data["ghost_volatile_tuning_nj"]
    assert data["ghost_pcm_epb"] <= data["ghost_volatile_epb"]
    # The device crossover exists and is finite.
    assert 1 < data["breakeven_reuse_cycles"] < 10**6
