"""Emit BENCH_montecarlo.json: soa/grouped vs. naive Monte-Carlo speedup.

Usage::

    PYTHONPATH=src python benchmarks/run_mc_bench.py [output.json]

Records the array-resident ``soa`` Monte-Carlo engine (every yield
signature's affine replay evaluated in one stacked pass) and the
scalar ``grouped`` replay loop (batched variation physics, memoized
workload materialization, signature-grouped run-path evaluation)
against the naive N-scalar-runs baseline at N=256 samples on both
accelerators, plus the yield-aware Pareto frontiers of TRON and GHOST
under a tight tuner range.  Exits non-zero if either combined speedup
falls below the 10x bar or a frontier comes back empty.
"""

import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from bench_mc_robustness import (  # noqa: E402
    compute_yield_pareto,
    measure_mc_speedup,
)

SAMPLES = 256


def main() -> int:
    out_path = pathlib.Path(
        sys.argv[1]
        if len(sys.argv) > 1
        else pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_montecarlo.json"
    )
    records, speedups = measure_mc_speedup(samples=SAMPLES)
    frontiers = compute_yield_pareto(samples=128)
    record = {
        "bench": "soa/grouped vs naive Monte-Carlo variation robustness",
        "samples": SAMPLES,
        "scenarios": records,
        "speedup": round(speedups["grouped"], 2),
        "soa_speedup": round(speedups["soa"], 2),
        "yield_aware_pareto": frontiers,
    }
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    ok = (
        record["speedup"] >= 10.0
        and record["soa_speedup"] >= 10.0
        and all(data["frontier"] for data in frontiers.values())
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
