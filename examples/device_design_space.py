"""MR device design-space exploration — the paper's Section V.B flow.

Replays the role Ansys Lumerical plays in the paper: sweep ring designs,
apply the crosstalk/SNR/tuning-power feasibility constraints, and pick
the MR bank configuration the accelerators are built from.  Also prints
the laser-power link budget that bounds the maximum array size.

Usage::

    python examples/device_design_space.py
"""

from repro.photonics.dse import MRDesignSpaceExplorer
from repro.photonics.microring import Microring
from repro.photonics.waveguide import LaserPowerSolver


def main():
    explorer = MRDesignSpaceExplorer(min_snr_db=20.0, max_homodyne_db=-25.0)
    points = explorer.sweep()
    print(f"Feasible design points: {len(points)}")
    print(
        f"{'radius':>7s} {'coupling':>9s} {'gap':>6s} {'Q':>7s} "
        f"{'channels':>9s} {'SNR dB':>7s} {'homodyne':>9s} {'tune mW':>8s}"
    )
    for point in points[:10]:
        print(
            f"{point.design.radius_um:>6.1f}u "
            f"{point.design.self_coupling:>9.3f} "
            f"{point.design.coupling_gap_nm:>5.0f}n "
            f"{point.q_factor:>7.0f} {point.plan.num_channels:>9d} "
            f"{point.heterodyne_snr_db:>7.1f} "
            f"{point.homodyne_crosstalk_db:>8.1f} "
            f"{point.tuning_power_full_fsr_mw:>8.1f}"
        )

    best = explorer.best()
    print(f"\nSelected design: R={best.design.radius_um} um, "
          f"r={best.design.self_coupling}, gap={best.design.coupling_gap_nm} nm")
    ring = Microring.at_wavelength(best.design, 1550.0)
    print(f"  Q = {ring.quality_factor:.0f}, FSR = {ring.fsr_nm:.2f} nm, "
          f"extinction = {ring.extinction_ratio_db:.1f} dB")
    print(f"  WDM plan: {best.plan.num_channels} channels at "
          f"{best.plan.channel_spacing_nm:.3f} nm spacing")

    solver = LaserPowerSolver()
    for laser_mw in (0.5, 1.0, 2.0, 5.0):
        size = solver.max_array_size(laser_mw)
        print(f"  link budget: {laser_mw:>4.1f} mW/channel supports up to "
              f"{size}x{size} MR bank arrays")


if __name__ == "__main__":
    main()
