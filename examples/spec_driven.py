"""Spec-driven experiments: the declarative front door.

Usage::

    PYTHONPATH=src python examples/spec_driven.py

Loads a shipped ``repro.spec/1`` experiment spec, runs it through the
:class:`repro.api.Session` facade, then builds the same experiment in
Python and shows the two are the same object — same fingerprint, same
numbers.  See docs/api.md for the full spec format.
"""

import pathlib

from repro.api import (
    ContextSpec,
    ExperimentSpec,
    PlatformSpec,
    Session,
    load_spec,
)

SPECS = pathlib.Path(__file__).parent / "specs"


def main():
    session = Session()

    # --- 1. run a checked-in spec file -------------------------------
    spec = load_spec(SPECS / "run_bert_typical.json")
    result = session.execute(spec)
    print(f"spec {spec.fingerprint()} -> {result.report.summary()}")

    # --- 2. the same experiment, built in Python ---------------------
    programmatic = ExperimentSpec(
        platform=PlatformSpec(name="tron", overrides={"batch": 8}),
        workload="BERT-base",
        context=ContextSpec(corner="typical", seed=3),
    )
    assert programmatic == spec
    assert programmatic.fingerprint() == spec.fingerprint()

    # --- 3. results own their machine-readable envelopes -------------
    envelope = result.envelope()
    print(
        f"envelope {envelope['schema']} (build {envelope['repro_version']}) "
        f"epb={envelope['epb_pj']:.4f} pJ/bit"
    )

    # --- 4. direct Session calls are the same path -------------------
    direct = session.run("BERT-base", platform="tron", batch=8,
                         corner="typical", seed=3)
    assert direct.envelope() == envelope
    print("spec-driven and direct Session runs are bit-identical")


if __name__ == "__main__":
    main()
