"""Analog noise vs. inference accuracy — why 8-bit operation suffices.

Sweeps the analog noise model's parameters (imprint error, residual
crosstalk, readout ADC resolution) and measures the effective bits and
prediction agreement of optical GNN inference against the electronic
reference — the analysis behind the paper's Section VI claim that 8-bit
operation matches full precision.

Usage::

    python examples/noise_vs_accuracy.py
"""

import numpy as np

from repro.core.ghost import GHOST, GHOSTConfig
from repro.graphs.generators import erdos_renyi
from repro.nn.gnn import GNNKind, make_gnn
from repro.photonics.noise import AnalogNoiseModel, effective_bits


def run_noisy(sigma, crosstalk_scale, adc_bits, graph, features, model, ref):
    ghost = GHOST(
        GHOSTConfig(
            lanes=4,
            edge_units=8,
            array_rows=16,
            array_cols=16,
            noise=AnalogNoiseModel(
                relative_sigma=sigma,
                crosstalk_fraction_scale=crosstalk_scale,
                adc_bits=adc_bits,
                rng=np.random.default_rng(0),
            ),
        )
    )
    out = ghost.forward(model, graph, features)
    enob = effective_bits(ref, out)
    agreement = float(np.mean(out.argmax(1) == ref.argmax(1)))
    return enob, agreement


def main():
    rng = np.random.default_rng(3)
    graph = erdos_renyi(80, 0.08, rng=rng)
    features = rng.normal(0.0, 1.0, (graph.num_nodes, 16))
    model = make_gnn(GNNKind.GCN, in_dim=16, out_dim=4, hidden_dim=16)
    reference = model.forward(graph, features)

    print("== Imprint-error sweep (no crosstalk, no readout quantization) ==")
    for sigma in (0.0005, 0.002, 0.01, 0.05):
        enob, agreement = run_noisy(
            sigma, 0.0, None, graph, features, model, reference
        )
        print(
            f"  sigma={sigma:<7.4f} ENOB={enob:5.2f} bits, "
            f"prediction agreement={100 * agreement:5.1f}%"
        )

    print("\n== Residual-crosstalk sweep (sigma=0.002) ==")
    for scale in (0.0, 0.05, 0.2, 1.0):
        enob, agreement = run_noisy(
            0.002, scale, None, graph, features, model, reference
        )
        print(
            f"  crosstalk x{scale:<5.2f} ENOB={enob:5.2f} bits, "
            f"agreement={100 * agreement:5.1f}%"
        )

    print("\n== Readout ADC resolution sweep (sigma=0.002, low crosstalk) ==")
    for bits in (4, 6, 8, 10):
        enob, agreement = run_noisy(
            0.002, 0.05, bits, graph, features, model, reference
        )
        print(
            f"  {bits:>2d}-bit ADC  ENOB={enob:5.2f} bits, "
            f"agreement={100 * agreement:5.1f}%"
        )


if __name__ == "__main__":
    main()
