"""Graph processing study on GHOST: datasets, GNN variants, optimizations.

Reproduces the paper's Section V.D story on real workload shapes:

1. runs all four GNN architectures over the citation datasets,
2. shows what the buffer-and-partition and workload-balancing
   optimizations buy on a hub-dominated (power-law) graph,
3. runs a small *functional* GNN inference through the optical datapath
   and verifies it matches the electronic reference.

Usage::

    python examples/graph_processing_ghost.py
"""

import numpy as np

from repro.core.ghost import GHOST, GHOSTConfig
from repro.graphs.datasets import get_dataset_stats, synthesize_dataset
from repro.graphs.generators import barabasi_albert
from repro.nn.gnn import GNNKind, make_gnn


def dataset_sweep():
    print("== GNN x dataset sweep on GHOST ==")
    ghost = GHOST()
    for dataset in ("cora", "citeseer", "pubmed"):
        stats = get_dataset_stats(dataset)
        graph, _ = synthesize_dataset(stats, rng=np.random.default_rng(0))
        for kind in (GNNKind.GCN, GNNKind.SAGE, GNNKind.GIN, GNNKind.GAT):
            model = make_gnn(
                kind,
                in_dim=stats.feature_dim,
                out_dim=stats.num_classes,
                hidden_dim=64,
                heads=2 if kind is GNNKind.GAT else 1,
                name=f"{kind.value}-{dataset}",
            )
            report = ghost.run_gnn(model.config, graph)
            print(
                f"  {model.config.name:<22s} {report.latency_ns / 1e3:8.1f} us  "
                f"{report.energy_pj / 1e6:8.1f} uJ  "
                f"{report.gops / 1e3:6.1f} TOPS  {report.epb_pj:.4f} pJ/bit"
            )
    print()


def optimization_study():
    print("== Optimization study on a power-law graph (BA, 4000 nodes) ==")
    graph = barabasi_albert(4000, 5, rng=np.random.default_rng(1))
    model = make_gnn(GNNKind.GCN, in_dim=256, out_dim=16, hidden_dim=64)
    variants = {
        "all optimizations": GHOSTConfig(),
        "no partitioning": GHOSTConfig(use_partitioning=False),
        "no balancing": GHOSTConfig(use_balancing=False),
        "neither": GHOSTConfig(use_partitioning=False, use_balancing=False),
    }
    for label, config in variants.items():
        report = GHOST(config).run_gnn(model.config, graph)
        print(
            f"  {label:<18s} {report.latency_ns / 1e3:9.1f} us  "
            f"{report.energy_pj / 1e6:9.1f} uJ"
        )
    print()


def functional_check():
    print("== Functional optical inference vs. electronic reference ==")
    rng = np.random.default_rng(2)
    graph = barabasi_albert(60, 3, rng=rng)
    features = rng.normal(0.0, 1.0, (graph.num_nodes, 16))
    model = make_gnn(GNNKind.GCN, in_dim=16, out_dim=4, hidden_dim=12)
    ghost = GHOST(GHOSTConfig(lanes=4, edge_units=8, array_rows=16, array_cols=16))
    optical = ghost.forward(model, graph, features)
    reference = model.forward(graph, features)
    err = np.abs(optical - reference).max()
    agree = np.mean(optical.argmax(1) == reference.argmax(1))
    print(f"  max |optical - reference| = {err:.2e}")
    print(f"  class prediction agreement = {100 * agree:.1f}%")


if __name__ == "__main__":
    dataset_sweep()
    optimization_study()
    functional_check()
