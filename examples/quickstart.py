"""Quickstart: run both photonic accelerators on one workload each.

Usage::

    python examples/quickstart.py

Estimates a BERT-base inference on TRON and a 2-layer GCN over a
Cora-like graph on GHOST, printing latency, energy, throughput (GOPS)
and energy-per-bit (EPB) — the metrics of the paper's Figs. 8-11.
"""

import numpy as np

from repro import (
    GHOST,
    GNNKind,
    TRON,
    bert_base,
    get_dataset_stats,
    make_gnn,
    synthesize_dataset,
)


def main():
    # --- TRON: the transformer/LLM accelerator (paper Section V.C) ---
    tron = TRON()
    print(tron.describe())
    report = tron.run_transformer(bert_base())
    print(report.summary())
    print()

    # --- GHOST: the GNN accelerator (paper Section V.D) ---
    ghost = GHOST()
    print(ghost.describe())
    stats = get_dataset_stats("cora")
    graph, _ = synthesize_dataset(stats, rng=np.random.default_rng(0))
    model = make_gnn(
        GNNKind.GCN,
        in_dim=stats.feature_dim,
        out_dim=stats.num_classes,
        hidden_dim=64,
        name="GCN-cora",
    )
    report = ghost.run_gnn(model.config, graph)
    print(report.summary())
    print()
    print("Energy breakdown (nJ):")
    for category, pj in report.energy.as_dict().items():
        if pj > 0.0:
            print(f"  {category:<14s} {pj / 1e3:12.1f}")


if __name__ == "__main__":
    main()
