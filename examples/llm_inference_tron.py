"""LLM serving study on TRON: the paper's Fig. 8/9 scenario, expanded.

Sweeps the transformer model zoo and batch sizes, printing how TRON's
throughput and energy-per-bit compare against the strongest electronic
baseline for each model — the comparison that motivates the paper's
"at least 14x throughput, 8x energy efficiency" claim.

Usage::

    python examples/llm_inference_tron.py
"""

from repro.baselines.llm import llm_baseline_platforms
from repro.core.tron import TRON, TRONConfig
from repro.nn.counting import transformer_op_count
from repro.nn.models import MODEL_ZOO


def best_baseline(ops, workload):
    """Strongest electronic platform for a workload: (gops, epb, name)."""
    best_gops, best_epb = 0.0, float("inf")
    gops_name = epb_name = ""
    for platform in llm_baseline_platforms():
        report = platform.run_ops(ops, workload)
        if report.gops > best_gops:
            best_gops, gops_name = report.gops, platform.name
        if report.epb_pj < best_epb:
            best_epb, epb_name = report.epb_pj, platform.name
    return best_gops, gops_name, best_epb, epb_name


def generation_study():
    from repro.core.tron import run_generation
    from repro.nn.models import gpt2_small

    print("== Autoregressive decode (GPT-2, 32 generated tokens) ==")
    tron = TRON(TRONConfig(batch=8))
    for prompt in (64, 512):
        episode = run_generation(
            tron, gpt2_small(), prompt_tokens=prompt, generated_tokens=32
        )
        print(f"  prompt {prompt:>4d}: {episode.summary()}")
    print()


def main():
    print("== Batch sweep: weight-streaming amortization ==")
    for batch in (1, 4, 16):
        tron = TRON(TRONConfig(batch=batch))
        report = tron.run_transformer(MODEL_ZOO["BERT-base"])
        print(
            f"  batch {batch:>2d}: {report.latency_ns / 1e6:7.3f} ms/inference, "
            f"{report.gops / 1e3:7.1f} TOPS, {report.epb_pj:.4f} pJ/bit"
        )
    print()

    print("== Model zoo vs. strongest electronic baseline (batch 8) ==")
    tron = TRON(TRONConfig(batch=8))
    header = (
        f"{'model':<12s} {'TRON TOPS':>10s} {'best-base TOPS':>15s} "
        f"{'thru win':>9s} {'EPB win':>8s}"
    )
    print(header)
    for name, config in MODEL_ZOO.items():
        report = tron.run_transformer(config)
        ops = transformer_op_count(config, bytes_per_value=1)
        base_gops, gops_name, base_epb, _ = best_baseline(ops, name)
        print(
            f"{name:<12s} {report.gops / 1e3:>10.1f} "
            f"{base_gops / 1e3:>10.1f} ({gops_name[:4]})"
            f"{report.gops / base_gops:>8.1f}x"
            f"{base_epb / report.epb_pj:>8.1f}x"
        )
    print()
    generation_study()


if __name__ == "__main__":
    main()
