"""Typed result objects: every Session entry point returns one.

Each result owns two renderings of itself:

- :meth:`envelope` — the schema-versioned machine-readable JSON
  envelope (``{"schema": "repro.<cmd>/1", "repro_version": ...,
  "context": {...}, ...}``) the CLI's ``--json`` flag prints.  The
  single :func:`json_envelope` builder here is what every command
  shares — there is exactly one place the envelope shape is defined.
- :meth:`format` — the human-readable text the CLI prints otherwise.

The envelopes are validatable: :mod:`repro.api.schemas` carries a JSON
Schema per tag, and the CI schema job checks every ``--json`` command
output against them.

Example:
    >>> env = json_envelope("run", {"corner": "nominal", "seed": 0},
    ...                     {"latency_ns": 12.5})
    >>> env["schema"], env["latency_ns"]
    ('repro.run/1', 12.5)
    >>> from repro._version import __version__
    >>> env["repro_version"] == __version__
    True
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro._version import __version__
from repro.core.reports import RunReport

#: Version suffix of every JSON envelope this build emits.
JSON_SCHEMA_VERSION = 1


def json_envelope(
    command: str, context: Dict[str, Any], payload: Dict[str, Any]
) -> Dict[str, Any]:
    """The uniform machine-readable envelope of ``--json`` output.

    Every JSON-emitting command wraps its payload as
    ``{"schema": "repro.<command>/<version>", "repro_version": "...",
    "context": {...}, ...}`` so consumers can dispatch on the schema
    tag, know which build produced the numbers, and always know which
    corner/seed (or trace) they describe.  The schemas are documented
    in ``docs/cli.md`` and machine-checkable via
    :mod:`repro.api.schemas`.
    """
    return {
        "schema": f"repro.{command}/{JSON_SCHEMA_VERSION}",
        "repro_version": __version__,
        "context": context,
        **payload,
    }


@dataclass
class RunResult:
    """One costed workload: the report plus the corner it ran at.

    Example:
        >>> from repro.api import Session
        >>> result = Session().run("MLP-mnist")
        >>> result.report.platform
        'TRON'
        >>> result.envelope()["schema"]
        'repro.run/1'
    """

    report: RunReport
    corner: str = "nominal"
    seed: int = 0
    #: Non-default memory-backend block (backend name, trace digest);
    #: ``None`` on the analytic default so its envelope stays
    #: byte-identical to pre-backend builds.
    memory: Optional[Dict[str, Any]] = None
    #: Per-token decode-series block (decode workloads only); ``None``
    #: everywhere else so existing envelopes stay byte-identical.
    decode: Optional[Dict[str, Any]] = None

    def envelope(self) -> Dict[str, Any]:
        """The ``repro.run/1`` JSON envelope."""
        payload = self.report.to_dict()
        if self.memory is not None:
            payload["memory"] = self.memory
        if self.decode is not None:
            payload["decode"] = self.decode
        return json_envelope(
            "run",
            {"corner": self.corner, "seed": self.seed},
            payload,
        )

    def format(self) -> str:
        """The CLI's human-readable report text."""
        lines = [self.report.summary(), "energy breakdown (uJ):"]
        for key, pj in self.report.energy.as_dict().items():
            if pj > 0.0:
                lines.append(f"  {key:<14s} {pj / 1e6:10.2f}")
        if self.memory is not None:
            line = f"memory backend: {self.memory['backend']}"
            trace = self.memory.get("trace")
            if trace:
                line += (
                    f" ({trace['commands']} DRAM commands, "
                    f"{trace['data_bytes']} data bytes)"
                )
            path = self.memory.get("trace_path")
            if path:
                line += f" -> {path}"
            lines.append(line)
        if self.decode is not None:
            lines.append(
                f"decode: {self.decode['tokens_per_second']:,.0f} tok/s, "
                f"token latency {self.decode['first_token_ns'] / 1e3:.2f} -> "
                f"{self.decode['last_token_ns'] / 1e3:.2f} us over "
                f"{self.decode['generated_tokens']} tokens"
            )
        return "\n".join(lines)


@dataclass
class SweepResult:
    """One or more swept spaces with their Pareto frontiers.

    Attributes:
        points: space name → evaluated points (grid order).
        frontiers: space name → Pareto-optimal subset.
        corners_axis: whether the standard-corner axis was swept.
        seed: die-selection seed of the corner axis.
        physics_cache: engine memo/disk cache counters after the sweep.
        evaluation: space name → evaluation-strategy stats (strategy
            name, point/group counts, materialized reports, scalar
            fallbacks — :class:`repro.core.engine.SoAStats`).
    """

    points: "Dict[str, List]"
    frontiers: "Dict[str, List]"
    corners_axis: bool = False
    seed: int = 0
    physics_cache: Dict[str, Any] = field(default_factory=dict)
    evaluation: Dict[str, Any] = field(default_factory=dict)

    def envelope(self) -> Dict[str, Any]:
        """The ``repro.sweep/1`` JSON envelope."""
        spaces = {}
        for name, space_points in self.points.items():
            on_frontier = {id(p) for p in self.frontiers[name]}
            spaces[name] = [
                dict(
                    label=p.label,
                    knobs={k: str(v) for k, v in p.knobs.items()},
                    latency_ns=p.latency_ns,
                    energy_pj=p.energy_pj,
                    gops=p.report.gops,
                    pareto=id(p) in on_frontier,
                )
                for p in space_points
            ]
        return json_envelope(
            "sweep",
            {"corners_axis": self.corners_axis, "seed": self.seed},
            {
                "spaces": spaces,
                "physics_cache": self.physics_cache,
                "evaluation": self.evaluation,
            },
        )

    def format(self) -> str:
        """Per-space tables with Pareto marks (the CLI text output)."""
        from repro.analysis.sweep import format_sweep

        blocks = []
        for name, space_points in self.points.items():
            frontier = self.frontiers[name]
            blocks.append(
                f"--- {name} ---\n"
                f"{format_sweep(space_points, frontier)}\n\n"
                f"{len(frontier)} Pareto-optimal of "
                f"{len(space_points)} configs\n"
            )
        return "\n".join(blocks)


@dataclass
class MonteCarloRunResult:
    """A Monte-Carlo robustness analysis plus the corner it sampled.

    ``result`` is the underlying
    :class:`repro.analysis.robustness.MonteCarloResult` (per-die
    distributions, yield fractions, the nominal report).
    """

    result: Any
    corner: str = "typical"
    seed: int = 0

    def envelope(self) -> Dict[str, Any]:
        """The ``repro.mc/1`` JSON envelope."""
        return json_envelope(
            "mc",
            {"corner": self.corner, "seed": self.seed},
            self.result.to_dict(),
        )

    def format(self) -> str:
        """The distribution table (`MonteCarloResult.summary`)."""
        return self.result.summary()


@dataclass
class CornersResult:
    """The standard corner grid evaluated on the stock scenarios."""

    rows: List[Dict[str, Any]]
    seed: int = 0

    def envelope(self) -> Dict[str, Any]:
        """The ``repro.corners/1`` JSON envelope."""
        return json_envelope("corners", {"seed": self.seed}, {"rows": self.rows})

    def format(self) -> str:
        """The per-(corner, platform) table the CLI prints."""
        lines = [
            f"{'corner':>10s} {'platform':>8s} {'workload':<12s} "
            f"{'latency(us)':>12s} {'energy(uJ)':>11s} {'pJ/bit':>8s} "
            f"{'corr(mW)':>9s} {'yield':>6s}"
        ]
        for row in self.rows:
            lines.append(
                f"{row['corner']:>10s} {row['platform']:>8s} "
                f"{row['workload']:<12s} {row['latency_ns'] / 1e3:>12.2f} "
                f"{row['energy_pj'] / 1e6:>11.2f} {row['epb_pj']:>8.4f} "
                f"{row['correction_power_mw']:>9.1f} "
                f"{row['ring_yield']:>6.3f}"
            )
        return "\n".join(lines)


@dataclass
class ServeResult:
    """One trace replay through the serving engine, fully accounted.

    Attributes:
        trace: the trace path replayed (or a label for in-memory
            request lists).
        repeat / window: replay parameters.
        served: requests resolved.
        stats / cache / scheduler / physics_cache: the engine's
            accounting dicts (fleet runs: summed over workers, with
            throughput and latency percentiles measured open-loop at
            the fleet front door).
        cache_len / cache_bound: report-cache occupancy after the run.
        fleet: the fleet-tier accounting block (worker count, shard
            load spread, admission/shed counters, per-run open-loop
            results) — ``None`` for in-process serving.
    """

    trace: str
    repeat: int
    window: int
    served: int
    stats: Dict[str, Any]
    cache: Dict[str, Any]
    scheduler: Dict[str, Any]
    physics_cache: Dict[str, Any]
    cache_len: int = 0
    cache_bound: int = 0
    fleet: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        """Whether every request produced a report."""
        return self.stats.get("errors", 0) == 0

    def envelope(self) -> Dict[str, Any]:
        """The ``repro.serve/1`` JSON envelope."""
        payload = {
            "stats": self.stats,
            "cache": self.cache,
            "scheduler": self.scheduler,
            "physics_cache": self.physics_cache,
        }
        if self.fleet is not None:
            payload["fleet"] = self.fleet
        return json_envelope(
            "serve",
            {"trace": self.trace, "repeat": self.repeat, "window": self.window},
            payload,
        )

    def format(self, detailed: bool = False) -> str:
        """The serving summary (``detailed`` adds the fleet stats)."""
        stats, scheduler, cache = self.stats, self.scheduler, self.cache
        lines = [
            f"served {self.served} requests in {stats['busy_s']:.2f} s "
            f"({stats['throughput_rps']:.0f} req/s)"
        ]
        if self.fleet is not None:
            admission = self.fleet.get("admission", {})
            lines[0] = (
                f"served {self.served} requests over "
                f"{self.fleet['workers']} workers "
                f"({stats['throughput_rps']:.0f} req/s aggregate, "
                f"{admission.get('shed_queue', 0) + admission.get('shed_quota', 0)} shed)"
            )
            # Percentiles are measured at the fleet front door either
            # way; only an arrival schedule makes them "open-loop".
            kind = (
                "open-loop"
                if self.fleet.get("arrivals")
                else "submit-to-completion"
            )
            lines.append(
                f"  {kind} p50/p95/p99 "
                f"{1e3 * stats['p50_latency_s']:.2f} / "
                f"{1e3 * stats['p95_latency_s']:.2f} / "
                f"{1e3 * stats['p99_latency_s']:.2f} ms"
            )
        if detailed:
            physics = self.physics_cache
            breakdown = physics["breakdown"]
            context = physics["context_physics"]
            disk = physics["disk"]
            lines += [
                f"  cache hit rate   {100 * stats['hit_rate']:.1f}%",
                f"  deduplicated     {stats['deduped']}",
                f"  run-path evals   {scheduler['evaluated']}",
                f"  request groups   {scheduler['groups']}",
                f"  physics batches  {scheduler['physics_batches']}",
                f"  batched dies     {scheduler['batched_dies']}",
                f"  errors           {stats['errors']}",
                f"  latency mean/p95 {1e3 * stats['mean_latency_s']:.2f} / "
                f"{1e3 * stats['p95_latency_s']:.2f} ms",
                f"  cache entries    {self.cache_len} "
                f"(bound {self.cache_bound}, "
                f"{cache['evictions']} evicted)",
                f"  physics memo     {100 * breakdown['hit_rate']:.1f}% "
                f"breakdown hits, {100 * context['hit_rate']:.1f}% context "
                f"hits ({breakdown['evictions'] + context['evictions']} "
                "evicted)",
                f"  physics disk     {disk['hits']} hits / "
                f"{disk['misses']} misses, {disk['writes']} writes",
            ]
        return "\n".join(lines)


@dataclass
class CacheResult:
    """State of the persistent physics cache."""

    enabled: bool
    path: Optional[str] = None
    entries: int = 0
    cleared: Optional[int] = None

    def envelope(self) -> Dict[str, Any]:
        """The ``repro.cache/1`` JSON envelope."""
        return json_envelope(
            "cache", {}, {"path": self.path, "entries": self.entries}
        )

    def format(self) -> str:
        """The one-line cache status the CLI prints."""
        if not self.enabled:
            return "persistent physics cache disabled (REPRO_DISK_CACHE=0)"
        if self.cleared is not None:
            return f"cleared {self.cleared} entries from {self.path}"
        return (
            f"persistent physics cache: {self.path} "
            f"({self.entries} entries)"
        )


@dataclass
class TraceResult:
    """A synthesized request trace (optionally written to disk)."""

    records: List[Dict[str, Any]]
    output: Optional[str] = None
    #: Arrival-spec hint stored in the trace (shaped traffic only).
    arrivals: Optional[str] = None

    @property
    def distinct(self) -> int:
        """Distinct request types in the trace."""
        # Canonical-JSON fingerprints: tenant-wrapped records nest the
        # embedded spec, which sorted-items tuples cannot hash.
        return len({json.dumps(r, sort_keys=True) for r in self.records})

    @property
    def tenants(self) -> List[str]:
        """Tenant names appearing in the trace (sorted; empty when flat)."""
        return sorted({r["tenant"] for r in self.records if "tenant" in r})

    def format(self) -> str:
        """The confirmation line the CLI prints."""
        where = f" to {self.output}" if self.output else ""
        tenants = self.tenants
        mix = f", {len(tenants)} tenants" if tenants else ""
        shaped = f", arrivals {self.arrivals}" if self.arrivals else ""
        return (
            f"wrote {len(self.records)} requests "
            f"({self.distinct} distinct types{mix}{shaped}){where}"
        )
