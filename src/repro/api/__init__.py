"""The declarative experiment API: specs, the platform registry, and
the :class:`Session` facade.

This package is the library's single programmatic surface — the CLI
subcommands are thin adapters over it, and the serving engine accepts
its specs directly:

- :mod:`repro.api.registry` — the **platform registry**
  (:func:`register_platform` / :func:`get_platform`), mirroring the
  workload registry: TRON, GHOST and the roofline baselines behind one
  factory API with validated config overrides.
- :mod:`repro.api.spec` — the versioned **ExperimentSpec**
  (``repro.spec/1``): platform + overrides + workload + context +
  analysis, round-tripping through JSON/TOML and fingerprinting with
  the cache digest scheme.
- :mod:`repro.api.session` — the **Session** facade
  (``run`` / ``sweep`` / ``monte_carlo`` / ``corners`` / ``serve`` /
  ``execute``) returning typed result objects.
- :mod:`repro.api.results` — those result types, each owning its
  schema-versioned JSON envelope and its human-readable rendering.
- :mod:`repro.api.schemas` — machine-checkable JSON Schemas of every
  interchange format (the CI schema job validates against them).

Example:
    >>> from repro.api import Session, ExperimentSpec
    >>> Session().run("MLP-mnist").report.platform
    'TRON'
    >>> ExperimentSpec.from_dict(
    ...     {"schema": "repro.spec/1", "workload": "MLP-mnist"}).workload
    'MLP-mnist'
"""

from repro.api.registry import (
    PlatformInfo,
    get_platform,
    get_platform_info,
    list_platforms,
    register_platform,
    resolve_platform,
)
from repro.api.results import (
    JSON_SCHEMA_VERSION,
    CacheResult,
    CornersResult,
    MonteCarloRunResult,
    RunResult,
    ServeResult,
    SweepResult,
    TraceResult,
    json_envelope,
)
from repro.api.schemas import SCHEMAS, schema_for, validate_payload
from repro.api.session import Session
from repro.api.spec import (
    ANALYSIS_KINDS,
    SPEC_SCHEMA,
    AnalysisSpec,
    ContextSpec,
    ExperimentSpec,
    PlatformSpec,
    load_spec,
)

__all__ = [
    "Session",
    "ExperimentSpec",
    "PlatformSpec",
    "ContextSpec",
    "AnalysisSpec",
    "load_spec",
    "SPEC_SCHEMA",
    "ANALYSIS_KINDS",
    "PlatformInfo",
    "register_platform",
    "get_platform",
    "get_platform_info",
    "list_platforms",
    "resolve_platform",
    "RunResult",
    "SweepResult",
    "MonteCarloRunResult",
    "CornersResult",
    "ServeResult",
    "CacheResult",
    "TraceResult",
    "json_envelope",
    "JSON_SCHEMA_VERSION",
    "SCHEMAS",
    "schema_for",
    "validate_payload",
]
