"""Machine-checkable JSON Schemas of every versioned interchange format.

One schema per tag:

- the ``--json`` envelopes — ``repro.run/1``, ``repro.sweep/1``,
  ``repro.mc/1``, ``repro.corners/1``, ``repro.serve/1``,
  ``repro.cache/1``;
- the declarative spec format ``repro.spec/1``;
- the serving trace format ``repro.trace/1``.

:func:`schema_for` looks a schema up by tag, and
:func:`validate_payload` dispatches on a payload's own ``schema`` field
and validates it (requires the optional ``jsonschema`` package — the CI
schema job installs it; the library itself never imports it at module
scope).

Example:
    >>> schema_for("repro.run/1")["properties"]["schema"]["const"]
    'repro.run/1'
    >>> sorted(SCHEMAS)[:3]
    ['repro.cache/1', 'repro.corners/1', 'repro.mc/1']
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import ConfigurationError

_NUMBER = {"type": "number"}
_NON_NEGATIVE_INT = {"type": "integer", "minimum": 0}
_POSITIVE_INT = {"type": "integer", "minimum": 1}
_STRING = {"type": "string"}
_BOOL = {"type": "boolean"}

#: A float-valued breakdown dict (category -> value).
_BREAKDOWN = {"type": "object", "additionalProperties": _NUMBER}

#: The distribution stats blocks of the mc payload.
_STATS_BLOCK = {
    "type": "object",
    "properties": {
        "mean": _NUMBER,
        "p5": _NUMBER,
        "p50": _NUMBER,
        "p95": _NUMBER,
    },
    "required": ["mean", "p5", "p50", "p95"],
}

#: Array-resident evaluation stats (``repro.core.engine.SoAStats``):
#: which strategy ran and how much work it collapsed.
_SOA_STATS = {
    "type": "object",
    "properties": {
        "strategy": _STRING,
        "points": _NON_NEGATIVE_INT,
        "groups": _NON_NEGATIVE_INT,
        "materialized_reports": _NON_NEGATIVE_INT,
        "fallback_points": _NON_NEGATIVE_INT,
    },
    "required": [
        "strategy",
        "points",
        "groups",
        "materialized_reports",
        "fallback_points",
    ],
}

#: A serialized RunReport (the ``run`` payload; embedded by ``mc``).
_RUN_REPORT = {
    "type": "object",
    "properties": {
        "platform": _STRING,
        "workload": _STRING,
        "bits_per_value": _POSITIVE_INT,
        "latency_ns": _NUMBER,
        "energy_pj": _NUMBER,
        "gops": _NUMBER,
        "epb_pj": _NUMBER,
        "total_ops": _NON_NEGATIVE_INT,
        "latency_breakdown_ns": _BREAKDOWN,
        "energy_breakdown_pj": _BREAKDOWN,
    },
    "required": [
        "platform",
        "workload",
        "bits_per_value",
        "latency_ns",
        "energy_pj",
        "gops",
        "epb_pj",
        "total_ops",
        "latency_breakdown_ns",
        "energy_breakdown_pj",
    ],
}


#: The optional memory block of a run envelope: present only when the
#: run used a non-default memory backend (the analytic default keeps
#: the envelope byte-identical to pre-backend builds).
_MEMORY_BLOCK = {
    "type": "object",
    "properties": {
        "backend": _STRING,
        "trace": {
            "type": "object",
            "properties": {
                "commands": _NON_NEGATIVE_INT,
                "ops": {
                    "type": "object",
                    "additionalProperties": _NON_NEGATIVE_INT,
                },
                "data_bytes": _NON_NEGATIVE_INT,
                "energy_pj": _NUMBER,
            },
            "required": ["commands", "ops", "data_bytes", "energy_pj"],
        },
        "trace_path": _STRING,
    },
    "required": ["backend"],
}


#: The optional decode block of a run envelope: the per-token series
#: of a decode workload (absent everywhere else, so non-decode
#: envelopes stay byte-identical).
_DECODE_BLOCK = {
    "type": "object",
    "properties": {
        "prompt_tokens": _POSITIVE_INT,
        "generated_tokens": _POSITIVE_INT,
        "tokens_per_second": _NUMBER,
        "first_token_ns": _NUMBER,
        "last_token_ns": _NUMBER,
        "context": {"type": "array", "items": _POSITIVE_INT},
        "per_token_ns": {"type": "array", "items": _NUMBER},
        "per_token_pj": {"type": "array", "items": _NUMBER},
    },
    "required": [
        "prompt_tokens",
        "generated_tokens",
        "tokens_per_second",
        "first_token_ns",
        "last_token_ns",
        "context",
        "per_token_ns",
        "per_token_pj",
    ],
}


#: The serving-engine accounting block (``ServingStats.to_dict``) —
#: fleet runs emit the same shape with fleet-wide counters and
#: open-loop (arrival-to-completion) latency percentiles.
_SERVE_STATS = {
    "type": "object",
    "properties": {
        "requests": _NON_NEGATIVE_INT,
        "errors": _NON_NEGATIVE_INT,
        "cache_hits": _NON_NEGATIVE_INT,
        "deduped": _NON_NEGATIVE_INT,
        "flushes": _NON_NEGATIVE_INT,
        "busy_s": _NUMBER,
        "hit_rate": _NUMBER,
        "throughput_rps": _NUMBER,
        "mean_latency_s": _NUMBER,
        "p50_latency_s": _NUMBER,
        "p95_latency_s": _NUMBER,
        "p99_latency_s": _NUMBER,
    },
    "required": [
        "requests",
        "errors",
        "cache_hits",
        "deduped",
        "flushes",
        "busy_s",
        "hit_rate",
        "throughput_rps",
        "mean_latency_s",
        "p50_latency_s",
        "p95_latency_s",
        "p99_latency_s",
    ],
}

#: The open-loop latency quantile block
#: (``repro.serving.arrivals.latency_quantiles``).
_LATENCY_QUANTILES = {
    "type": "object",
    "properties": {
        "mean_latency_s": _NUMBER,
        "p50_latency_s": _NUMBER,
        "p95_latency_s": _NUMBER,
        "p99_latency_s": _NUMBER,
    },
    "required": [
        "mean_latency_s",
        "p50_latency_s",
        "p95_latency_s",
        "p99_latency_s",
    ],
}

#: The fleet-tier block of a ``--workers N`` serve run: worker count,
#: shard load spread, admission/shed accounting, per-repeat open-loop
#: results.
_FLEET_BLOCK = {
    "type": "object",
    "properties": {
        "workers": _POSITIVE_INT,
        "granularity": {"enum": ["type", "config"]},
        "completed": _NON_NEGATIVE_INT,
        "wall_s": _NUMBER,
        "throughput_rps": _NUMBER,
        "open_loop_latency": _LATENCY_QUANTILES,
        "admission": {
            "type": "object",
            "properties": {
                "submitted": _NON_NEGATIVE_INT,
                "admitted": _NON_NEGATIVE_INT,
                "shed_queue": _NON_NEGATIVE_INT,
                "shed_quota": _NON_NEGATIVE_INT,
                "shed_rate": _NUMBER,
            },
            "required": [
                "submitted",
                "admitted",
                "shed_queue",
                "shed_quota",
                "shed_rate",
            ],
        },
        "shard_requests": {
            "type": "array",
            "items": _NON_NEGATIVE_INT,
        },
        "worker_stats": {"type": "array", "items": {"type": "object"}},
        "arrivals": {"type": ["string", "null"]},
        "open_loop": {
            "type": "array",
            "items": {
                "type": "object",
                "properties": {
                    "arrivals": _STRING,
                    "offered_rps": _NUMBER,
                    "submitted": _NON_NEGATIVE_INT,
                    "completed": _NON_NEGATIVE_INT,
                    "shed": _NON_NEGATIVE_INT,
                    "errors": _NON_NEGATIVE_INT,
                    "duration_s": _NUMBER,
                    "throughput_rps": _NUMBER,
                    **_LATENCY_QUANTILES["properties"],
                },
                "required": [
                    "arrivals",
                    "offered_rps",
                    "submitted",
                    "completed",
                    "shed",
                    "errors",
                    "duration_s",
                    "throughput_rps",
                    *_LATENCY_QUANTILES["required"],
                ],
            },
        },
    },
    "required": [
        "workers",
        "granularity",
        "completed",
        "throughput_rps",
        "admission",
        "shard_requests",
    ],
}


def _envelope(
    command: str,
    context_properties: Dict[str, Any],
    payload_properties: Dict[str, Any],
    required: list,
) -> Dict[str, Any]:
    """The shared envelope shape of one ``--json`` command schema."""
    return {
        "$schema": "http://json-schema.org/draft-07/schema#",
        "type": "object",
        "properties": {
            "schema": {"const": f"repro.{command}/1"},
            "repro_version": _STRING,
            "context": {
                "type": "object",
                "properties": context_properties,
                "required": sorted(context_properties),
            },
            **payload_properties,
        },
        "required": ["schema", "repro_version", "context", *required],
    }


#: The declarative spec format (also embedded inside trace records).
_SPEC_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "properties": {
        "schema": {"const": "repro.spec/1"},
        "platform": {
            "type": "object",
            "properties": {
                "name": _STRING,
                "overrides": {"type": "object"},
            },
            "additionalProperties": False,
        },
        "workload": {"type": ["string", "null"]},
        "context": {
            "type": "object",
            "properties": {
                "corner": _STRING,
                "seed": _NON_NEGATIVE_INT,
                "tuner_range_nm": {
                    "type": ["number", "null"],
                    "exclusiveMinimum": 0,
                },
            },
            "additionalProperties": False,
        },
        "analysis": {
            "type": "object",
            "properties": {
                "kind": {
                    "enum": ["run", "sweep", "mc", "corners", "serve"]
                },
                "samples": _POSITIVE_INT,
                "vectorized": _BOOL,
                "corners_axis": _BOOL,
                "trace": {"type": ["string", "null"]},
                "repeat": _POSITIVE_INT,
                "window": _POSITIVE_INT,
                "cache_entries": _POSITIVE_INT,
                "batched_physics": _BOOL,
                "workers": _NON_NEGATIVE_INT,
                "arrivals": {"type": ["string", "null"]},
            },
            "additionalProperties": False,
        },
    },
    "required": ["schema"],
    "additionalProperties": False,
}

#: One trace record: the flat form, an embedded spec document, or the
#: tenant-wrapped form the multi-tenant traffic model emits.
_TRACE_RECORD = {
    "oneOf": [
        {
            "type": "object",
            "properties": {
                "workload": _STRING,
                "platform": _STRING,
                "corner": _STRING,
                "seed": _NON_NEGATIVE_INT,
                "batch": _POSITIVE_INT,
            },
            "required": ["workload"],
            "additionalProperties": False,
        },
        _SPEC_SCHEMA,
        {
            "type": "object",
            "properties": {
                "tenant": _STRING,
                "spec": _SPEC_SCHEMA,
            },
            "required": ["tenant", "spec"],
            "additionalProperties": False,
        },
    ]
}

SCHEMAS: Dict[str, Dict[str, Any]] = {
    "repro.run/1": _envelope(
        "run",
        {"corner": _STRING, "seed": _NON_NEGATIVE_INT},
        {
            **_RUN_REPORT["properties"],
            "memory": _MEMORY_BLOCK,
            "decode": _DECODE_BLOCK,
        },
        list(_RUN_REPORT["required"]),
    ),
    "repro.mc/1": _envelope(
        "mc",
        {"corner": _STRING, "seed": _NON_NEGATIVE_INT},
        {
            "platform": _STRING,
            "workload": _STRING,
            "samples": _POSITIVE_INT,
            "seed": _NON_NEGATIVE_INT,
            "yield": _NUMBER,
            "operational_fraction": _NUMBER,
            "nominal": _RUN_REPORT,
            "latency_ns": _STATS_BLOCK,
            "energy_pj": _STATS_BLOCK,
            "gops": _STATS_BLOCK,
            "epb_pj": _STATS_BLOCK,
            "tuning_power_mw": _STATS_BLOCK,
            "evaluation": _SOA_STATS,
        },
        [
            "platform",
            "workload",
            "samples",
            "yield",
            "operational_fraction",
            "nominal",
            "latency_ns",
            "energy_pj",
            "evaluation",
        ],
    ),
    "repro.corners/1": _envelope(
        "corners",
        {"seed": _NON_NEGATIVE_INT},
        {
            "rows": {
                "type": "array",
                "items": {
                    "type": "object",
                    "properties": {
                        "corner": _STRING,
                        "platform": _STRING,
                        "workload": _STRING,
                        "latency_ns": _NUMBER,
                        "energy_pj": _NUMBER,
                        "epb_pj": _NUMBER,
                        "correction_power_mw": _NUMBER,
                        "ring_yield": _NUMBER,
                    },
                    "required": [
                        "corner",
                        "platform",
                        "workload",
                        "latency_ns",
                        "energy_pj",
                        "epb_pj",
                        "correction_power_mw",
                        "ring_yield",
                    ],
                },
            }
        },
        ["rows"],
    ),
    "repro.sweep/1": _envelope(
        "sweep",
        {"corners_axis": _BOOL, "seed": _NON_NEGATIVE_INT},
        {
            "spaces": {
                "type": "object",
                "additionalProperties": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "properties": {
                            "label": _STRING,
                            "knobs": {
                                "type": "object",
                                "additionalProperties": _STRING,
                            },
                            "latency_ns": _NUMBER,
                            "energy_pj": _NUMBER,
                            "gops": _NUMBER,
                            "pareto": _BOOL,
                        },
                        "required": [
                            "label",
                            "knobs",
                            "latency_ns",
                            "energy_pj",
                            "gops",
                            "pareto",
                        ],
                    },
                },
            },
            "physics_cache": {"type": "object"},
            "evaluation": {
                "type": "object",
                "additionalProperties": _SOA_STATS,
            },
        },
        ["spaces", "physics_cache", "evaluation"],
    ),
    "repro.serve/1": _envelope(
        "serve",
        {"trace": _STRING, "repeat": _POSITIVE_INT, "window": _POSITIVE_INT},
        {
            "stats": _SERVE_STATS,
            "cache": {"type": "object"},
            "scheduler": {"type": "object"},
            "physics_cache": {"type": "object"},
            "fleet": _FLEET_BLOCK,
        },
        ["stats", "cache", "scheduler", "physics_cache"],
    ),
    "repro.cache/1": _envelope(
        "cache",
        {},
        {
            "path": _STRING,
            "entries": _NON_NEGATIVE_INT,
        },
        ["path", "entries"],
    ),
    "repro.spec/1": _SPEC_SCHEMA,
    "repro.trace/1": {
        "$schema": "http://json-schema.org/draft-07/schema#",
        "type": "object",
        "properties": {
            "schema": {"const": "repro.trace/1"},
            "requests": {"type": "array", "items": _TRACE_RECORD},
            "arrivals": _STRING,
        },
        "required": ["schema", "requests"],
    },
}


def schema_for(tag: str) -> Dict[str, Any]:
    """The JSON Schema registered for an interchange tag.

    Example:
        >>> schema_for("repro.spec/1")["properties"]["schema"]["const"]
        'repro.spec/1'
    """
    if tag not in SCHEMAS:
        raise ConfigurationError(
            f"no schema registered for {tag!r}; known tags: "
            f"{sorted(SCHEMAS)}"
        )
    return SCHEMAS[tag]


def validate_payload(payload: Dict[str, Any]) -> str:
    """Validate a payload against the schema its own tag names.

    Returns the tag on success; raises ``jsonschema.ValidationError``
    on mismatch (and :class:`~repro.errors.ConfigurationError` if the
    payload carries no known tag or ``jsonschema`` is unavailable).
    """
    try:
        import jsonschema
    except ImportError:  # pragma: no cover - env without jsonschema
        raise ConfigurationError(
            "payload validation needs the optional 'jsonschema' package"
        ) from None
    tag = payload.get("schema") if isinstance(payload, dict) else None
    if not isinstance(tag, str):
        raise ConfigurationError(
            f"payload carries no schema tag: {str(payload)[:120]}"
        )
    jsonschema.validate(payload, schema_for(tag))
    return tag
