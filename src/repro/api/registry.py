"""The platform registry: every accelerator behind one factory API.

Mirrors the workload registry in :mod:`repro.core.base` — platforms are
registered by name and resolved through :func:`get_platform`, so the
CLI, the :class:`~repro.api.session.Session` facade and the serving
layer all build ``"tron"`` or ``"ghost"`` (or any roofline baseline)
the same way:

- **Configurable platforms** (TRON, GHOST) register with their config
  dataclass; :func:`get_platform` accepts either a full config instance
  or a sparse ``overrides`` mapping that deep-merges into the defaults
  and re-validates (unknown keys and out-of-range values fail with the
  offending path).
- **Fixed platforms** (the Figs. 8-11 roofline/reported baselines)
  register as-is; asking them to take overrides is a
  :class:`~repro.errors.ConfigurationError`.

Example:
    >>> sorted(p for p in list_platforms() if p.islower())
    ['ghost', 'tron']
    >>> get_platform("tron").config.batch
    1
    >>> get_platform("tron", overrides={"batch": 8}).config.batch
    8
    >>> get_platform("warp-drive")
    Traceback (most recent call last):
        ...
    repro.errors.ConfigurationError: unknown platform 'warp-drive'; known platforms: ['A100 GPU', 'EnGN', 'FPGA_Acc1', 'FPGA_Acc2', 'GRIP', 'HW_ACC', 'HyGCN', 'ReGNN', 'ReGraphX', 'TPU v2', 'TPU v4', 'TransPIM', 'V100 GPU', 'VAQF', 'Xeon CPU', 'ghost', 'tron']
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.core.base import Accelerator, WorkloadKind
from repro.core.serialization import config_from_dict, merge_overrides
from repro.errors import ConfigurationError

#: A platform factory: takes an optional config instance, returns a
#: ready accelerator.
PlatformFactory = Callable[[Optional[object]], Accelerator]


@dataclass(frozen=True)
class PlatformInfo:
    """One registry entry.

    Attributes:
        name: registry key (as the CLI/specs spell it).
        factory: builds the accelerator from an optional config.
        config_type: the platform's config dataclass, or ``None`` for
            fixed (non-configurable) platforms.
        description: one-line human-readable note.
    """

    name: str
    factory: PlatformFactory
    config_type: Optional[type] = None
    description: str = ""

    @property
    def configurable(self) -> bool:
        """Whether this platform accepts a config / overrides."""
        return self.config_type is not None


_PLATFORMS: Dict[str, PlatformInfo] = {}
_DEFAULTS_REGISTERED = False


def register_platform(
    name: str,
    factory: PlatformFactory,
    config_type: Optional[type] = None,
    description: str = "",
) -> None:
    """Register a platform factory under a unique name.

    Example:
        >>> register_platform("tron", lambda config=None: None)
        Traceback (most recent call last):
            ...
        repro.errors.ConfigurationError: platform 'tron' is already registered
    """
    _ensure_defaults()
    if name in _PLATFORMS:
        raise ConfigurationError(f"platform {name!r} is already registered")
    _PLATFORMS[name] = PlatformInfo(
        name=name,
        factory=factory,
        config_type=config_type,
        description=description,
    )


def _fixed_factory(platform: Accelerator) -> PlatformFactory:
    """The factory of a fixed (non-configurable) platform."""

    def build(config: Optional[object] = None) -> Accelerator:
        if config is not None:
            raise ConfigurationError(
                f"platform {platform.name!r} takes no configuration"
            )
        return platform

    return build


def _ensure_defaults() -> None:
    """Register the stock platforms once (lazily, on first use)."""
    global _DEFAULTS_REGISTERED
    if _DEFAULTS_REGISTERED:
        return
    _DEFAULTS_REGISTERED = True
    from repro.baselines.gnn import gnn_baseline_platforms
    from repro.baselines.llm import llm_baseline_platforms
    from repro.core.ghost import GHOST, GHOSTConfig
    from repro.core.tron import TRON, TRONConfig

    _PLATFORMS["tron"] = PlatformInfo(
        name="tron",
        factory=lambda config=None: TRON(
            config if config is not None else TRONConfig()
        ),
        config_type=TRONConfig,
        description="silicon-photonic transformer accelerator",
    )
    _PLATFORMS["ghost"] = PlatformInfo(
        name="ghost",
        factory=lambda config=None: GHOST(
            config if config is not None else GHOSTConfig()
        ),
        config_type=GHOSTConfig,
        description="silicon-photonic GNN accelerator",
    )
    for platform in (*llm_baseline_platforms(), *gnn_baseline_platforms()):
        if platform.name in _PLATFORMS:
            continue  # e.g. "Xeon CPU" appears in both baseline sets
        _PLATFORMS[platform.name] = PlatformInfo(
            name=platform.name,
            factory=_fixed_factory(platform),
            config_type=None,
            description="fixed baseline platform (Figs. 8-11)",
        )


def get_platform_info(name: str) -> PlatformInfo:
    """The registry entry for ``name`` (helpful error on unknowns)."""
    _ensure_defaults()
    if name not in _PLATFORMS:
        raise ConfigurationError(
            f"unknown platform {name!r}; known platforms: "
            f"{list_platforms()}"
        )
    return _PLATFORMS[name]


def list_platforms() -> List[str]:
    """Sorted names of all registered platforms.

    Example:
        >>> "tron" in list_platforms() and "V100 GPU" in list_platforms()
        True
    """
    _ensure_defaults()
    return sorted(_PLATFORMS)


def resolve_platform(name: str, kind: WorkloadKind) -> str:
    """The concrete platform ``name`` denotes for a workload kind.

    ``"auto"`` routes graph workloads (static and temporal) to GHOST
    and everything else to TRON — the single routing rule the CLI, the
    serving layer and the Session facade share.

    Example:
        >>> resolve_platform("auto", WorkloadKind.GNN)
        'ghost'
        >>> resolve_platform("auto", WorkloadKind.TEMPORAL_GNN)
        'ghost'
        >>> resolve_platform("auto", WorkloadKind.TRANSFORMER)
        'tron'
        >>> resolve_platform("auto", WorkloadKind.DECODE)
        'tron'
        >>> resolve_platform("tron", WorkloadKind.MLP)
        'tron'
    """
    if name == "auto":
        graph_kinds = (WorkloadKind.GNN, WorkloadKind.TEMPORAL_GNN)
        return "ghost" if kind in graph_kinds else "tron"
    get_platform_info(name)  # validate eagerly, with the helpful error
    return name


def platform_config(
    name: str, overrides: Optional[Mapping[str, Any]] = None
) -> Optional[object]:
    """The config instance ``(name, overrides)`` denotes.

    ``None`` overrides (or ``{}``) yield the platform's default config;
    fixed platforms return ``None`` (and reject overrides).  Sparse
    overrides deep-merge into the defaults and re-validate, so an
    override dict is exactly equivalent to constructing the config by
    hand.

    Example:
        >>> platform_config("ghost", {"lanes": 8}).lanes
        8
        >>> from repro.core.tron import TRONConfig
        >>> platform_config("tron", {"batch": 8}) == TRONConfig(batch=8)
        True
    """
    info = get_platform_info(name)
    if not info.configurable:
        if overrides:
            raise ConfigurationError(
                f"platform {name!r} takes no configuration overrides"
            )
        return None
    if not overrides:
        return info.config_type()
    base = info.config_type().to_dict()
    return config_from_dict(
        info.config_type,
        merge_overrides(base, overrides),
        path=f"{name}.overrides",
    )


def get_platform(
    name: str,
    config: Optional[object] = None,
    overrides: Optional[Mapping[str, Any]] = None,
) -> Accelerator:
    """Build a registered platform.

    Args:
        name: registered platform name (``"tron"``, ``"ghost"``, or a
            baseline name; *not* ``"auto"`` — resolve that first with
            :func:`resolve_platform`).
        config: a full config instance (mutually exclusive with
            ``overrides``).
        overrides: sparse knob overrides merged into the default config.

    Example:
        >>> get_platform("ghost").name
        'GHOST'
    """
    if config is not None and overrides:
        raise ConfigurationError(
            "pass either a config instance or overrides, not both"
        )
    info = get_platform_info(name)
    if config is None and info.configurable:
        config = platform_config(name, overrides)
    elif overrides:
        platform_config(name, overrides)  # raises the no-config error
    return info.factory(config)
