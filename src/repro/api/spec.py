"""The declarative experiment spec: ``repro.spec/1``.

An :class:`ExperimentSpec` is the serialized form of one experiment —
what a CLI invocation, a queued serving job, or a checked-in experiment
definition all reduce to.  It names **what** to evaluate, never **how**
to print it::

    {"schema": "repro.spec/1",
     "platform": {"name": "tron", "overrides": {"batch": 8}},
     "workload": "BERT-base",
     "context": {"corner": "typical", "seed": 3, "tuner_range_nm": null},
     "analysis": {"kind": "run", ...}}

The four blocks:

- **platform** (:class:`PlatformSpec`) — a registered platform name
  (``"auto"`` routes by workload kind; for ``kind="sweep"`` it is the
  sweep target ``tron``/``ghost``/``all``) plus sparse config
  overrides, validated against the platform's config dataclass.
- **workload** — a registered workload name (``repro workloads``).
- **context** (:class:`ContextSpec`) — a standard corner name + die
  seed (+ optional tuner range), resolved through the same
  :func:`repro.core.context.resolve_corner` rule as the CLI flags.
- **analysis** (:class:`AnalysisSpec`) — which evaluation to run
  (``run`` / ``sweep`` / ``mc`` / ``corners`` / ``serve``) and its
  parameters.

Specs round-trip losslessly through dicts, JSON, and TOML (reading TOML
needs Python 3.11+ ``tomllib``), and :meth:`ExperimentSpec.fingerprint`
digests the canonical form — library version included — with the same
scheme as the report/physics caches, so cached artifacts can be keyed
by the spec that produced them.

Example:
    >>> spec = ExperimentSpec(workload="BERT-base")
    >>> ExperimentSpec.from_dict(spec.to_dict()) == spec
    True
    >>> spec.fingerprint() == spec.fingerprint()
    True
    >>> ExperimentSpec.from_json(spec.to_json()) == spec
    True
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, List, Mapping, Optional, Union

from repro._version import __version__
from repro.core.context import ExecutionContext, resolve_corner
from repro.core.engine.diskcache import fingerprint as _digest
from repro.core.serialization import config_from_dict, config_to_dict
from repro.errors import ConfigurationError

#: Schema tag of the spec interchange format.
SPEC_SCHEMA = "repro.spec/1"

#: The analysis kinds a spec can declare (= the Session entry points).
ANALYSIS_KINDS = ("run", "sweep", "mc", "corners", "serve")


def _canonical(value: Any) -> Any:
    """``value`` with every nested mapping key-sorted (deterministic
    serialization for fingerprints and round-trip comparisons)."""
    if isinstance(value, Mapping):
        return {key: _canonical(value[key]) for key in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    return value


def _freeze(value: Any) -> Any:
    """A hashable deep-frozen view of a canonical value tree."""
    if isinstance(value, Mapping):
        return tuple((key, _freeze(item)) for key, item in value.items())
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


@dataclass(frozen=True)
class PlatformSpec:
    """The platform block: a registry name plus sparse overrides.

    Example:
        >>> spec = PlatformSpec(name="tron", overrides={"batch": 8})
        >>> spec.build().config.batch
        8
        >>> PlatformSpec.from_dict(spec.to_dict()) == spec
        True
    """

    name: str = "auto"
    overrides: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a platform spec needs a name")
        if not isinstance(self.overrides, Mapping):
            raise ConfigurationError(
                f"platform overrides must be a mapping, "
                f"got {self.overrides!r}"
            )
        object.__setattr__(self, "overrides", _canonical(self.overrides))

    def __hash__(self) -> int:
        # The generated hash would reject the overrides dict; hash the
        # canonical frozen form instead (specs are natural set members).
        return hash((self.name, _freeze(self.overrides)))

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (canonically key-sorted overrides)."""
        return {"name": self.name, "overrides": dict(self.overrides)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlatformSpec":
        """Reconstruct from :meth:`to_dict` output (validating keys)."""
        return config_from_dict(cls, data, path="platform")

    def build(self, batch: Optional[int] = None):
        """The configured accelerator this block denotes.

        ``batch`` (when not ``None``) overrides the ``batch`` knob —
        the serving/CLI convention for TRON's weight-streaming batch.
        """
        from repro.api.registry import get_platform

        overrides = dict(self.overrides)
        if batch is not None:
            overrides["batch"] = batch
        return get_platform(self.name, overrides=overrides or None)


@dataclass(frozen=True)
class ContextSpec:
    """The context block: corner name + die seed (+ tuner range).

    Resolution follows :func:`repro.core.context.resolve_corner` — the
    exact rule behind the CLI's ``--corner``/``--seed`` flags — so a
    spec and the equivalent CLI invocation evaluate the same die.

    Example:
        >>> ContextSpec(corner="typical", seed=3).resolve().seed
        3
        >>> ContextSpec().resolve() is None     # nominal = context-free
        True
    """

    corner: str = "nominal"
    seed: int = 0
    tuner_range_nm: Optional[float] = None

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ConfigurationError(f"seed must be >= 0, got {self.seed}")
        if self.tuner_range_nm is not None and self.tuner_range_nm <= 0.0:
            raise ConfigurationError(
                f"tuner range must be > 0 nm, got {self.tuner_range_nm}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form."""
        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ContextSpec":
        """Reconstruct from :meth:`to_dict` output (validating keys)."""
        return config_from_dict(cls, data, path="context")

    def resolve(self) -> Optional[ExecutionContext]:
        """The :class:`ExecutionContext` this block denotes (``None``
        for the nominal corner — the context-free path).

        Raises:
            ConfigurationError: if a tuner range is set on the nominal
                corner — there is no variation for it to constrain, and
                silently ignoring a declared constraint would report
                numbers the spec does not describe.
        """
        ctx = resolve_corner(self.corner, self.seed)
        if ctx is None:
            if self.tuner_range_nm is not None:
                raise ConfigurationError(
                    "tuner_range_nm only applies where process variation "
                    f"exists; corner {self.corner!r} resolves to the "
                    "nominal (context-free) path"
                )
            return None
        if self.tuner_range_nm is not None:
            ctx = replace(ctx, tuner_range_nm=self.tuner_range_nm)
        return ctx


@dataclass(frozen=True)
class AnalysisSpec:
    """The analysis block: which evaluation to run, and its knobs.

    Attributes:
        kind: one of :data:`ANALYSIS_KINDS`.
        samples: Monte-Carlo die count (``mc``).
        vectorized: batched Monte-Carlo engine vs. the N-scalar-runs
            baseline — same numbers either way (``mc``).
        corners_axis: add the standard-corner axis to the sweep grid
            (``sweep``).
        trace: request-trace path to replay (``serve``).
        repeat: trace replays, cache kept warm between them (``serve``).
        window: micro-batch window — requests coalesced per flush
            (``serve``).
        cache_entries: report-cache bound (``serve``).
        batched_physics: batched corner-physics path (``serve``).
        workers: worker-process count of the sharded fleet tier; ``0``
            serves in process (``serve``).
        arrivals: open-loop arrival spec, e.g. ``"poisson:5000"`` or
            ``"bursty:2000:16"`` — needs ``workers >= 1`` (``serve``).

    Example:
        >>> AnalysisSpec(kind="mc", samples=64).samples
        64
        >>> AnalysisSpec(kind="teleport")
        Traceback (most recent call last):
            ...
        repro.errors.ConfigurationError: unknown analysis kind 'teleport'; pick one of ('run', 'sweep', 'mc', 'corners', 'serve')
    """

    kind: str = "run"
    samples: int = 128
    vectorized: bool = True
    corners_axis: bool = False
    trace: Optional[str] = None
    repeat: int = 1
    window: int = 64
    cache_entries: int = 1024
    batched_physics: bool = True
    workers: int = 0
    arrivals: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ANALYSIS_KINDS:
            raise ConfigurationError(
                f"unknown analysis kind {self.kind!r}; "
                f"pick one of {ANALYSIS_KINDS}"
            )
        for name in ("samples", "repeat", "window", "cache_entries"):
            if getattr(self, name) < 1:
                raise ConfigurationError(
                    f"analysis.{name} must be >= 1, "
                    f"got {getattr(self, name)}"
                )
        if self.workers < 0:
            raise ConfigurationError(
                f"analysis.workers must be >= 0, got {self.workers}"
            )
        if self.arrivals is not None:
            # Fail at spec construction, not mid-serve: the arrival
            # spec must parse and the fleet tier must be requested.
            from repro.serving.arrivals import parse_arrivals

            parse_arrivals(self.arrivals)
            if self.workers < 1:
                raise ConfigurationError(
                    "analysis.arrivals needs analysis.workers >= 1 "
                    "(open-loop load runs on the fleet tier)"
                )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (always the complete canonical field set)."""
        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AnalysisSpec":
        """Reconstruct from :meth:`to_dict` output (validating keys)."""
        return config_from_dict(cls, data, path="analysis")


@dataclass(frozen=True)
class ExperimentSpec:
    """One complete, serializable experiment definition.

    Example:
        >>> spec = ExperimentSpec(
        ...     platform=PlatformSpec(name="tron", overrides={"batch": 8}),
        ...     workload="BERT-base",
        ...     context=ContextSpec(corner="typical", seed=3))
        >>> spec.to_dict()["platform"]["overrides"]
        {'batch': 8}
        >>> ExperimentSpec.from_json(spec.to_json()) == spec
        True
    """

    platform: PlatformSpec = PlatformSpec()
    workload: Optional[str] = None
    context: ContextSpec = ContextSpec()
    analysis: AnalysisSpec = AnalysisSpec()

    def to_dict(self) -> Dict[str, Any]:
        """The complete canonical dict form (schema tag included)."""
        return {
            "schema": SPEC_SCHEMA,
            "platform": self.platform.to_dict(),
            "workload": self.workload,
            "context": self.context.to_dict(),
            "analysis": self.analysis.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Reconstruct a spec, validating the schema tag and every key.

        Missing blocks keep their defaults, so a minimal spec is just
        ``{"schema": "repro.spec/1", "workload": "BERT-base"}``.
        """
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"a spec must be a mapping, got {type(data).__name__}"
            )
        schema = data.get("schema")
        if schema != SPEC_SCHEMA:
            raise ConfigurationError(
                f"unsupported spec schema {schema!r} "
                f"(this build reads {SPEC_SCHEMA!r})"
            )
        known = {"schema", "platform", "workload", "context", "analysis"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"spec has unknown field(s) {unknown}; "
                f"known fields: {sorted(known)}"
            )
        workload = data.get("workload")
        if workload is not None and not isinstance(workload, str):
            raise ConfigurationError(
                f"spec workload must be a registered name, got {workload!r}"
            )
        return cls(
            platform=PlatformSpec.from_dict(data.get("platform", {})),
            workload=workload,
            context=ContextSpec.from_dict(data.get("context", {})),
            analysis=AnalysisSpec.from_dict(data.get("analysis", {})),
        )

    # ------------------------------------------------------------------
    # JSON
    # ------------------------------------------------------------------

    def to_json(self, indent: int = 2) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Parse a JSON spec document."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid JSON spec: {exc}") from None
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # TOML
    # ------------------------------------------------------------------

    def to_toml(self) -> str:
        """The spec as a TOML document (``None`` fields omitted — TOML
        has no null; they reconstruct to their defaults)."""
        return _emit_toml(self.to_dict())

    @classmethod
    def from_toml(cls, text: str) -> "ExperimentSpec":
        """Parse a TOML spec document (Python 3.11+)."""
        try:
            import tomllib
        except ImportError:  # pragma: no cover - py3.10 fallback
            raise ConfigurationError(
                "reading TOML specs needs Python 3.11+ (tomllib); "
                "use the JSON form instead"
            ) from None
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ConfigurationError(f"invalid TOML spec: {exc}") from None
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Files + fingerprinting
    # ------------------------------------------------------------------

    def save(self, path: Union[str, pathlib.Path]) -> None:
        """Write the spec to ``path`` (format chosen by extension)."""
        path = pathlib.Path(path)
        if path.suffix == ".toml":
            path.write_text(self.to_toml())
        elif path.suffix == ".json":
            path.write_text(self.to_json())
        else:
            raise ConfigurationError(
                f"spec files must end in .json or .toml, got {path.name!r}"
            )

    def fingerprint(self) -> str:
        """A short stable digest of the canonical spec — the scheme of
        the report/physics caches (:func:`repro.core.engine.diskcache.
        fingerprint`), with the library version folded in so artifacts
        from different builds never collide.
        """
        canonical = json.dumps(_canonical(self.to_dict()), sort_keys=True)
        return _digest((SPEC_SCHEMA, __version__, canonical))


def load_spec(path: Union[str, pathlib.Path]) -> ExperimentSpec:
    """Read an :class:`ExperimentSpec` from a ``.json`` or ``.toml`` file.

    Example:
        >>> import tempfile, pathlib
        >>> p = pathlib.Path(tempfile.mkdtemp()) / "spec.json"
        >>> ExperimentSpec(workload="MLP-mnist").save(p)
        >>> load_spec(p).workload
        'MLP-mnist'
    """
    path = pathlib.Path(path)
    text = path.read_text()
    if path.suffix == ".toml":
        return ExperimentSpec.from_toml(text)
    if path.suffix == ".json":
        return ExperimentSpec.from_json(text)
    raise ConfigurationError(
        f"spec files must end in .json or .toml, got {path.name!r}"
    )


# ----------------------------------------------------------------------
# Minimal TOML emission (specs only nest tables + scalars)
# ----------------------------------------------------------------------


def _toml_scalar(value: Any) -> str:
    """One TOML scalar (strings/bools/ints/floats/flat lists)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return json.dumps(value)  # valid TOML basic string
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_scalar(item) for item in value) + "]"
    raise ConfigurationError(f"cannot write {value!r} to TOML")


def _emit_toml(data: Mapping[str, Any], prefix: str = "") -> str:
    """A nested dict as TOML (``None`` values omitted)."""
    lines: List[str] = []
    tables: List[str] = []
    for key, value in data.items():
        if value is None:
            continue
        if isinstance(value, Mapping):
            name = f"{prefix}.{key}" if prefix else key
            body = _emit_toml(value, name)
            tables.append(f"[{name}]\n{body}" if body else f"[{name}]\n")
        else:
            lines.append(f"{key} = {_toml_scalar(value)}")
    parts = []
    if lines:
        parts.append("\n".join(lines) + "\n")
    parts.extend(tables)
    return "\n".join(parts)
