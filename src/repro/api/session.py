"""The :class:`Session` facade: one object, every evaluation path.

A Session is the single programmatic entry point to the library — the
CLI subcommands are thin argument-parsing adapters over it, and the
serving engine's spec intake routes through the same conversions.  It
exposes:

- :meth:`Session.run` — cost one workload on one platform at a corner.
- :meth:`Session.sweep` — the design-space sweeps with Pareto analysis.
- :meth:`Session.monte_carlo` — Monte-Carlo yield/variation analysis.
- :meth:`Session.corners` — the standard corner grid.
- :meth:`Session.serve` — replay a request trace through the batching
  serving engine.
- :meth:`Session.execute` — dispatch a declarative
  :class:`~repro.api.spec.ExperimentSpec` to whichever of the above its
  analysis block names.

All entry points return typed result objects
(:mod:`repro.api.results`) that own both the schema-versioned JSON
envelope and the human-readable rendering, so callers never rebuild
either.  Numbers are bit-identical to the corresponding CLI
invocations — the Session *is* the CLI's implementation.

Example:
    >>> session = Session()
    >>> result = session.run("MLP-mnist")
    >>> result.report.platform, result.report.workload
    ('TRON', 'MLP-mnist')
    >>> session.run("GCN-cora").report.platform    # auto-routing
    'GHOST'
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.api.results import (
    CacheResult,
    CornersResult,
    MonteCarloRunResult,
    RunResult,
    ServeResult,
    SweepResult,
    TraceResult,
)
from repro.api.spec import ExperimentSpec
from repro.errors import ConfigurationError


def _reject_unused_spec_fields(spec: ExperimentSpec) -> None:
    """Fail loudly on spec fields the declared analysis cannot honor.

    A sweep cannot apply platform overrides (the classic spaces own
    their configurations), ``corners``/``serve`` take no workload or
    platform at all, and so on — accepting such a spec would silently
    evaluate a different experiment than it declares.
    """
    kind = spec.analysis.kind
    problems = []
    if kind in ("sweep", "corners", "serve"):
        if spec.platform.overrides:
            problems.append("platform.overrides")
        if spec.workload is not None:
            problems.append("workload")
        if spec.context.tuner_range_nm is not None:
            problems.append("context.tuner_range_nm")
        if spec.context.corner != "nominal":
            # sweep's corner axis is analysis.corners_axis (the whole
            # grid); corners/serve define their own corner handling.
            problems.append("context.corner")
    if kind in ("corners", "serve") and spec.platform.name != "auto":
        problems.append("platform.name")
    if kind == "serve" and spec.context != type(spec.context)():
        problems.append("context")
    if problems:
        raise ConfigurationError(
            f"a {kind!r} spec cannot honor {problems}; remove the "
            "field(s) or change the analysis kind"
        )


class Session:
    """A configured handle on the library's evaluation paths.

    Args:
        disk_cache: attach the persistent physics cache for this
            process (what the CLI does for ``run``/``sweep``/``mc``/
            ``serve``).  ``REPRO_DISK_CACHE=0`` still opts out and
            ``REPRO_CACHE_DIR`` still relocates the directory.
    """

    def __init__(self, disk_cache: bool = False) -> None:
        self.disk_cache = disk_cache
        if disk_cache:
            from repro.core.engine import configure_disk_cache

            configure_disk_cache()

    # ------------------------------------------------------------------
    # Single runs
    # ------------------------------------------------------------------

    def run(
        self,
        workload,
        platform: str = "auto",
        batch: Optional[int] = None,
        corner: str = "nominal",
        seed: int = 0,
        overrides: Optional[Mapping[str, Any]] = None,
        tuner_range_nm: Optional[float] = None,
        memory_backend: Optional[str] = None,
        trace_dump: Optional[str] = None,
    ) -> RunResult:
        """Cost one workload on one platform at a named corner.

        Args:
            workload: a registered workload name or a
                :class:`~repro.core.base.Workload` instance.
            platform: a registered platform name, or ``"auto"`` (GNN
                workloads route to GHOST, everything else to TRON).
            batch: inferences sharing one weight-streaming pass —
                folded into the TRON configuration; GHOST costs
                full-graph inferences and rejects ``batch > 1``.
            corner: standard corner name (see
                :func:`repro.core.context.standard_corners`).
            seed: die-selection seed where variation exists.
            overrides: sparse platform-config overrides (validated).
            tuner_range_nm: TO tuner correction range override.
            memory_backend: registered memory backend name
                (``"analytic"``/``"hbm"``/``"hbm-pim"``); shorthand for
                an ``overrides["memory_backend"]`` entry.
            trace_dump: write the DRAM command trace here — forces
                ``hbm.op_trace`` on; needs a tracing backend.
        """
        from repro.api.registry import get_platform, resolve_platform
        from repro.api.spec import ContextSpec
        from repro.core.base import Workload, WorkloadKind, get_workload

        if not isinstance(workload, Workload):
            workload = get_workload(workload)
        resolved = resolve_platform(platform, workload.kind)
        merged: Dict[str, Any] = dict(overrides or {})
        if batch is not None and batch != 1:
            if resolved == "ghost":
                raise ConfigurationError(
                    "--batch only applies to TRON (GHOST costs full-graph "
                    "inferences); rerun without it or with --platform tron"
                )
            merged["batch"] = batch
        if memory_backend is not None:
            merged["memory_backend"] = memory_backend
        backend = merged.get("memory_backend", "analytic")
        if trace_dump is not None:
            if backend == "analytic":
                raise ConfigurationError(
                    "the analytic backend issues no DRAM commands; pass "
                    "memory_backend='hbm' (or 'hbm-pim') to dump a trace"
                )
            hbm = merged.get("hbm")
            if hbm is None:
                hbm = {}
            elif isinstance(hbm, Mapping):
                hbm = dict(hbm)
            else:  # an HBMGeometry instance from a programmatic caller
                from dataclasses import asdict

                hbm = asdict(hbm)
            hbm["op_trace"] = True
            merged["hbm"] = hbm
        accelerator = get_platform(resolved, overrides=merged or None)
        ctx = ContextSpec(
            corner=corner, seed=seed, tuner_range_nm=tuner_range_nm
        ).resolve()
        report = accelerator.run(workload, ctx=ctx)
        memory: Optional[Dict[str, Any]] = None
        if backend != "analytic":
            # The context-bound clone ran the workload; its model holds
            # any recorded trace.
            bound = (
                accelerator.bind(ctx)
                if hasattr(accelerator, "bind")
                else accelerator
            )
            memory = {"backend": backend}
            trace = getattr(
                getattr(bound, "memory_model", None), "trace", None
            )
            if trace is not None:
                memory["trace"] = trace.summary()
                if trace_dump is not None:
                    trace.save(str(trace_dump))
                    memory["trace_path"] = str(trace_dump)
        decode: Optional[Dict[str, Any]] = None
        if workload.kind is WorkloadKind.DECODE:
            # Surface the per-token series next to the episode totals
            # (the stacked pass; bit-identical to the scalar loop).
            series = accelerator.decode_series(workload, ctx=ctx)
            generation = series.to_generation_report()
            decode = {
                "prompt_tokens": series.prompt_tokens,
                "generated_tokens": series.generated_tokens,
                "tokens_per_second": generation.tokens_per_second,
                "first_token_ns": float(series.per_token_ns[0]),
                "last_token_ns": float(series.per_token_ns[-1]),
                "context": series.context.tolist(),
                "per_token_ns": series.per_token_ns.tolist(),
                "per_token_pj": series.per_token_pj.tolist(),
            }
        return RunResult(
            report=report, corner=corner, seed=seed, memory=memory,
            decode=decode,
        )

    # ------------------------------------------------------------------
    # Design-space sweeps
    # ------------------------------------------------------------------

    def sweep(
        self,
        target: str = "all",
        corners: bool = False,
        seed: int = 0,
        strategy: Optional[str] = None,
    ) -> SweepResult:
        """Run the classic design-space sweep(s) with Pareto marking.

        Args:
            target: ``"tron"``, ``"ghost"``, or ``"all"``.
            corners: add the standard execution-corner axis.
            seed: die-selection seed of the corner axis.
            strategy: sweep evaluation strategy override (see
                :func:`repro.analysis.sweep.run_sweep`).
        """
        from repro.analysis.sweep import (
            ghost_sweep_space,
            pareto_frontier,
            run_sweep_with_stats,
            tron_sweep_space,
            with_corners,
        )
        from repro.core.context import resolve_corner, standard_corners
        from repro.core.engine import physics_cache_stats

        spaces = {
            "tron": (tron_sweep_space,),
            "ghost": (ghost_sweep_space,),
            "all": (tron_sweep_space, ghost_sweep_space),
        }
        if target not in spaces:
            raise ConfigurationError(
                f"unknown sweep target {target!r}; "
                f"pick one of {sorted(spaces)}"
            )
        points: Dict[str, List] = {}
        frontiers: Dict[str, List] = {}
        evaluation: Dict[str, Dict[str, Any]] = {}
        for make_space in spaces[target]:
            space = make_space()
            if corners:
                corner_map = {
                    name: resolve_corner(name, seed)
                    for name in standard_corners()
                }
                space = with_corners(space, corner_map)
            space_points, stats = run_sweep_with_stats(
                space, strategy=strategy
            )
            points[space.name] = space_points
            frontiers[space.name] = pareto_frontier(space_points)
            evaluation[space.name] = stats.to_dict()
        return SweepResult(
            points=points,
            frontiers=frontiers,
            corners_axis=corners,
            seed=seed,
            physics_cache=physics_cache_stats(),
            evaluation=evaluation,
        )

    # ------------------------------------------------------------------
    # Variation analysis
    # ------------------------------------------------------------------

    def monte_carlo(
        self,
        workload,
        platform: str = "auto",
        samples: int = 128,
        corner: str = "typical",
        seed: int = 0,
        tuner_range_nm: Optional[float] = None,
        vectorized: bool = True,
        overrides: Optional[Mapping[str, Any]] = None,
        strategy: Optional[str] = None,
    ) -> MonteCarloRunResult:
        """Monte-Carlo variation analysis over ``samples`` sampled dies.

        The sampling population is the named corner's variation
        statistics; the nominal corner falls back to the typical
        statistics (a die population must exist to sample from).
        ``strategy`` picks the evaluation engine explicitly
        (``"soa"``/``"grouped"``/``"naive"``, see
        :func:`repro.analysis.robustness.run_monte_carlo`); when left
        ``None`` it resolves from ``vectorized``.
        """
        from dataclasses import replace

        from repro.analysis.robustness import run_monte_carlo
        from repro.api.registry import get_platform, resolve_platform
        from repro.core.base import Workload, get_workload
        from repro.core.context import standard_corners
        from repro.photonics.variation import ProcessVariationModel

        if not isinstance(workload, Workload):
            workload = get_workload(workload)
        resolved = resolve_platform(platform, workload.kind)
        corners = standard_corners()
        if corner not in corners:
            raise ConfigurationError(
                f"unknown corner {corner!r}; known corners: "
                f"{sorted(corners)}"
            )
        base = corners[corner]
        if base.variation is None:
            # Monte-Carlo over the nominal corner still needs a die
            # population to sample from.
            base = replace(base, variation=ProcessVariationModel())
        ctx = replace(base, seed=seed, tuner_range_nm=tuner_range_nm)
        result = run_monte_carlo(
            make_accelerator=lambda: get_platform(
                resolved, overrides=dict(overrides) if overrides else None
            ),
            make_workload=lambda: workload,
            context=ctx,
            samples=samples,
            vectorized=vectorized,
            strategy=strategy,
        )
        return MonteCarloRunResult(result=result, corner=corner, seed=seed)

    def corners(self, seed: int = 0) -> CornersResult:
        """Evaluate the standard corner grid on the stock scenarios
        (BERT-base on TRON, GCN-cora on GHOST)."""
        from repro.api.registry import get_platform
        from repro.core.base import get_workload
        from repro.core.context import resolve_corner, standard_corners
        from repro.core.engine import context_physics

        scenarios = (
            (get_platform("tron"), get_workload("BERT-base")),
            (get_platform("ghost"), get_workload("GCN-cora")),
        )
        rows = []
        for name in standard_corners():
            ctx = resolve_corner(name, seed)
            for accelerator, workload in scenarios:
                report = accelerator.run(workload, ctx=ctx)
                physics = context_physics(accelerator.array_specs()[0], ctx)
                rows.append(
                    dict(
                        corner=name,
                        platform=accelerator.name,
                        workload=workload.name,
                        latency_ns=report.latency_ns,
                        energy_pj=report.energy_pj,
                        epb_pj=report.epb_pj,
                        correction_power_mw=(
                            physics.correction_power_mw if physics else 0.0
                        ),
                        ring_yield=physics.ring_yield if physics else 1.0,
                    )
                )
        return CornersResult(rows=rows, seed=seed)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def serve(
        self,
        trace: Optional[str] = None,
        requests: Optional[Sequence] = None,
        repeat: int = 1,
        window: int = 64,
        cache_entries: int = 1024,
        batched_physics: bool = True,
        workers: int = 0,
        arrivals: Optional[str] = None,
        max_queue: int = 256,
        tenant_rate: Optional[float] = None,
        granularity: str = "type",
        seed: int = 0,
    ) -> ServeResult:
        """Replay a request stream through the batching serving engine.

        Args:
            trace: a trace file path (see ``repro gen-trace`` and
                :mod:`repro.serving.trace`); mutually exclusive with
                ``requests``.
            requests: an in-memory request sequence — each element a
                :class:`~repro.serving.request.ServeRequest`, a trace
                record dict, or a run-kind :class:`ExperimentSpec`.
            repeat: replay the stream N times (the cache stays warm).
            window: micro-batch window (requests coalesced per flush).
            cache_entries: report-cache bound (LRU beyond it).
            batched_physics: batched corner-physics path (disable for
                the scalar benchmarking baseline; same numbers).
            workers: ``0`` serves in process; ``>= 1`` shards the
                stream over that many worker processes
                (:class:`~repro.serving.fleet.ServingFleet`).
            arrivals: open-loop arrival spec (``poisson:RATE``,
                ``bursty:RATE[:BURSTINESS]``, ``uniform:RATE``, any of
                them behind a ``diurnal:`` envelope prefix, or the
                literal ``"trace"`` to adopt the replayed trace's
                recorded arrival hint) — fleet mode only; ``None``
                replays closed-loop.
            max_queue: fleet per-shard in-flight bound (admission
                control sheds beyond it).
            tenant_rate: fleet per-tenant token-bucket rate (req/s).
            granularity: fleet shard-key granularity (``"type"`` or
                ``"config"``).
            seed: arrival-schedule seed (fleet open loop).
        """
        from repro.core.engine import physics_cache_stats
        from repro.serving import ServingEngine
        from repro.serving.request import ServeRequest
        from repro.serving.trace import (
            load_trace_payload,
            record_tenant,
            record_to_request,
        )

        if (trace is None) == (requests is None):
            raise ConfigurationError(
                "serve needs exactly one of a trace path or a request "
                "sequence"
            )
        if arrivals is not None and not workers:
            raise ConfigurationError(
                "open-loop arrivals need a worker fleet; pass workers >= 1"
            )
        tenants: List[Optional[str]] = []
        if trace is not None:
            payload = load_trace_payload(trace)
            stream = [record_to_request(r) for r in payload["requests"]]
            tenants = [record_tenant(r) for r in payload["requests"]]
            if arrivals == "trace":
                arrivals = payload.get("arrivals")
                if arrivals is None:
                    raise ConfigurationError(
                        f"{trace} records no arrival hint; pass an "
                        "explicit --arrivals spec"
                    )
            label = str(trace)
        else:
            if arrivals == "trace":
                raise ConfigurationError(
                    "arrivals='trace' needs a trace file to read the "
                    "hint from"
                )
            stream = []
            for item in requests:
                if isinstance(item, ServeRequest):
                    stream.append(item)
                    tenants.append(None)
                elif isinstance(item, ExperimentSpec):
                    stream.append(ServeRequest.from_spec(item))
                    tenants.append(None)
                elif isinstance(item, Mapping):
                    stream.append(record_to_request(dict(item)))
                    tenants.append(record_tenant(dict(item)))
                else:
                    raise ConfigurationError(
                        f"cannot serve {item!r}; pass ServeRequests, "
                        "trace records, or run-kind ExperimentSpecs"
                    )
            label = f"<{len(stream)} in-memory requests>"
        if workers:
            return self._serve_fleet(
                stream,
                label,
                tenants=(
                    tenants if any(t is not None for t in tenants) else None
                ),
                repeat=repeat,
                window=window,
                cache_entries=cache_entries,
                batched_physics=batched_physics,
                workers=workers,
                arrivals=arrivals,
                max_queue=max_queue,
                tenant_rate=tenant_rate,
                granularity=granularity,
                seed=seed,
            )
        engine = ServingEngine(
            cache_entries=cache_entries,
            max_pending=window,
            use_batched_physics=batched_physics,
        )
        with engine:
            for _ in range(repeat):
                for request in stream:
                    engine.submit(request)
                engine.drain()
        return ServeResult(
            trace=label,
            repeat=repeat,
            window=window,
            served=engine.stats.requests,
            stats=engine.stats.to_dict(),
            cache=engine.cache.stats.to_dict(),
            scheduler=engine.scheduler.stats.to_dict(),
            physics_cache=physics_cache_stats(),
            cache_len=len(engine.cache),
            cache_bound=engine.cache.max_entries,
        )

    def _serve_fleet(
        self,
        stream: Sequence,
        label: str,
        repeat: int,
        window: int,
        cache_entries: int,
        batched_physics: bool,
        workers: int,
        arrivals: Optional[str],
        max_queue: int,
        tenant_rate: Optional[float],
        granularity: str,
        seed: int,
        tenants: Optional[Sequence[Optional[str]]] = None,
    ) -> ServeResult:
        """The fleet arm of :meth:`serve`: shard ``stream`` over worker
        processes, open-loop when an arrival spec is given."""
        from repro.serving.fleet import ServingFleet, merge_counters
        from repro.streaming.traffic import parse_shaped_arrivals

        process = parse_shaped_arrivals(arrivals) if arrivals else None
        fleet = ServingFleet(
            workers=workers,
            window=window,
            cache_entries=cache_entries,
            use_batched_physics=batched_physics,
            max_queue=max_queue,
            tenant_rate_rps=tenant_rate,
            granularity=granularity,
        )
        open_loop = []
        with fleet:
            for round_index in range(repeat):
                if process is None:
                    fleet.serve(stream, tenants=tenants)
                else:
                    result = fleet.run_open_loop(
                        stream,
                        process,
                        tenants=tenants,
                        seed=seed + round_index,
                    )
                    open_loop.append(result.to_dict())
        worker_stats = [
            fleet.worker_stats.get(i, {}) for i in range(workers)
        ]
        cache = merge_counters([w.get("cache", {}) for w in worker_stats])
        fleet_block = fleet.fleet_stats()
        fleet_block["arrivals"] = arrivals
        fleet_block["open_loop"] = open_loop
        stats = fleet.aggregate_stats()
        return ServeResult(
            trace=label,
            repeat=repeat,
            window=window,
            served=stats["requests"],
            stats=stats,
            cache=cache,
            scheduler=merge_counters(
                [w.get("scheduler", {}) for w in worker_stats]
            ),
            physics_cache=merge_counters(
                [w.get("physics_cache", {}) for w in worker_stats]
            ),
            cache_len=int(
                cache.get("insertions", 0) - cache.get("evictions", 0)
            ),
            cache_bound=cache_entries * workers,
            fleet=fleet_block,
        )

    def generate_trace(
        self,
        output: Optional[str] = None,
        requests: int = 1000,
        seed: int = 0,
        catalog: int = 48,
        llm_fraction: float = 0.7,
        skew: float = 1.1,
        tenants: int = 0,
        shape: str = "flat",
        rate: float = 500.0,
    ) -> TraceResult:
        """Synthesize a request trace (optionally saved).

        ``tenants == 0`` (the default) draws the classic single-catalog
        flat-record mix; ``tenants >= 1`` routes through the
        multi-tenant :class:`repro.streaming.traffic.TrafficModel`
        (tenant-wrapped records over embedded specs, ``catalog`` split
        as the per-tenant catalog size).  ``shape != "flat"`` stores an
        arrival hint (``"<shape>:poisson:<rate>"``) in the trace so
        replay can reproduce the intended open-loop schedule.
        """
        from repro.serving import save_trace

        if tenants < 0:
            raise ConfigurationError(f"tenants must be >= 0, got {tenants}")
        if tenants:
            from repro.streaming.traffic import generate_tenant_trace

            records = generate_tenant_trace(
                num_requests=requests,
                num_tenants=tenants,
                seed=seed,
                catalog_size=catalog,
                llm_fraction=llm_fraction,
                skew=skew,
            )
        else:
            from repro.serving import generate_trace

            records = generate_trace(
                num_requests=requests,
                seed=seed,
                catalog_size=catalog,
                llm_fraction=llm_fraction,
                skew=skew,
            )
        arrivals: Optional[str] = None
        if shape != "flat":
            from repro.streaming.traffic import parse_shaped_arrivals

            arrivals = f"{shape}:poisson:{rate:g}"
            parse_shaped_arrivals(arrivals)  # validate the hint eagerly
        if output is not None:
            save_trace(records, output, arrivals=arrivals)
        return TraceResult(records=records, output=output, arrivals=arrivals)

    # ------------------------------------------------------------------
    # Spec dispatch
    # ------------------------------------------------------------------

    def execute(self, spec: ExperimentSpec):
        """Run whatever a declarative spec describes.

        Dispatches on ``spec.analysis.kind`` to the matching entry
        point; the returned result is the same type (and bit-identical
        numbers) as calling that entry point directly.

        Example:
            >>> from repro.api.spec import ExperimentSpec
            >>> spec = ExperimentSpec(workload="MLP-mnist")
            >>> Session().execute(spec).report.workload
            'MLP-mnist'
        """
        kind = spec.analysis.kind
        _reject_unused_spec_fields(spec)
        if kind == "run":
            if not spec.workload:
                raise ConfigurationError("a run spec needs a workload")
            return self.run(
                spec.workload,
                platform=spec.platform.name,
                corner=spec.context.corner,
                seed=spec.context.seed,
                overrides=spec.platform.overrides,
                tuner_range_nm=spec.context.tuner_range_nm,
            )
        if kind == "sweep":
            target = "all" if spec.platform.name == "auto" else spec.platform.name
            return self.sweep(
                target=target,
                corners=spec.analysis.corners_axis,
                seed=spec.context.seed,
            )
        if kind == "mc":
            if not spec.workload:
                raise ConfigurationError("an mc spec needs a workload")
            return self.monte_carlo(
                spec.workload,
                platform=spec.platform.name,
                samples=spec.analysis.samples,
                corner=spec.context.corner,
                seed=spec.context.seed,
                tuner_range_nm=spec.context.tuner_range_nm,
                vectorized=spec.analysis.vectorized,
                overrides=spec.platform.overrides,
            )
        if kind == "corners":
            return self.corners(seed=spec.context.seed)
        if kind == "serve":
            if not spec.analysis.trace:
                raise ConfigurationError("a serve spec needs a trace path")
            return self.serve(
                trace=spec.analysis.trace,
                repeat=spec.analysis.repeat,
                window=spec.analysis.window,
                cache_entries=spec.analysis.cache_entries,
                batched_physics=spec.analysis.batched_physics,
                workers=spec.analysis.workers,
                arrivals=spec.analysis.arrivals,
            )
        raise ConfigurationError(  # pragma: no cover - spec validates kind
            f"unknown analysis kind {kind!r}"
        )

    # ------------------------------------------------------------------
    # Introspection + housekeeping
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """Both photonic accelerators' configuration summaries."""
        from repro.api.registry import get_platform

        return "\n".join(
            get_platform(name).describe() for name in ("tron", "ghost")
        )

    def workloads(self) -> List[str]:
        """Sorted registered workload names."""
        from repro.core.base import list_workloads

        return list_workloads()

    def describe_workload(self, name: str) -> str:
        """One workload's ``[kind] description`` listing line."""
        from repro.core.base import get_workload

        workload = get_workload(name)
        return f"[{workload.kind.value:<11s}] {workload.describe()}"

    def gnn_workload(
        self,
        kind: str,
        dataset: str,
        hidden_dim: int = 64,
        rng_seed: int = 0,
        name: Optional[str] = None,
    ):
        """An ad-hoc GNN workload over a synthesized dataset replica
        (the deprecated ``run-gnn`` CLI path builds through this)."""
        from repro.nn.gnn import GNNKind
        from repro.workloads import make_gnn_workload

        return make_gnn_workload(
            GNNKind(kind),
            dataset,
            hidden_dim=hidden_dim,
            rng_seed=rng_seed,
            name=name,
        )

    def claims(self) -> List:
        """The paper's headline-claim checks plus the streaming-extension
        floors (all regenerated)."""
        from repro.analysis.claims import (
            check_headline_claims,
            check_streaming_claims,
        )

        return check_headline_claims() + check_streaming_claims()

    def figures(self) -> List:
        """The regenerated Figs. 8-11 and streaming-extension tables."""
        from repro.analysis.figures import (
            ext_decode_epb,
            ext_decode_gops,
            ext_temporal_epb,
            ext_temporal_gops,
            fig8_llm_epb,
            fig9_llm_gops,
            fig10_gnn_epb,
            fig11_gnn_gops,
        )

        return [
            fn()
            for fn in (
                fig8_llm_epb,
                fig9_llm_gops,
                fig10_gnn_epb,
                fig11_gnn_gops,
                ext_decode_epb,
                ext_decode_gops,
                ext_temporal_epb,
                ext_temporal_gops,
            )
        ]

    def cache_info(self) -> CacheResult:
        """State of the persistent physics cache."""
        from repro.core.engine import configure_disk_cache

        cache = configure_disk_cache()
        if cache is None:
            return CacheResult(enabled=False)
        return CacheResult(
            enabled=True, path=str(cache.path), entries=len(cache)
        )

    def clear_cache(self) -> CacheResult:
        """Empty the persistent physics cache."""
        from repro.core.engine import configure_disk_cache

        cache = configure_disk_cache()
        if cache is None:
            return CacheResult(enabled=False)
        removed = cache.clear()
        return CacheResult(
            enabled=True, path=str(cache.path), entries=0, cleared=removed
        )
