"""Concrete workloads and the default registry.

Every scenario the library evaluates — the Fig. 8/9 transformer set, the
Fig. 10/11 GNN set, MLP serving batches, and mixed suites — is a
:class:`repro.core.base.Workload` registered by name here, so the CLI
(``python -m repro run <name>``), the sweep engine and the figure
generators all resolve the same objects.

Materialization is lazy and cached: a GNN workload synthesizes its graph
on first use and shares it afterwards — on the workload object *and* in
a process-level memo keyed by ``(dataset, rng_seed)`` (synthesis is
deterministic in those), which is what makes repeated design-space
sweeps and fresh workload instances over one dataset cheap.  The naive
benchmarking baselines call :func:`clear_graph_memo` per point to stay
genuinely cold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.base import Workload, WorkloadKind, register_workload
from repro.errors import ConfigurationError
from repro.graphs.datasets import get_dataset_stats, synthesize_dataset
from repro.graphs.graph import CSRGraph
from repro.nn.counting import OpCount, gnn_op_count, transformer_op_count
from repro.nn.gnn import GNNConfig, GNNKind
from repro.nn.models import MODEL_ZOO
from repro.nn.transformer import TransformerConfig

#: Process-level graph-synthesis memo: (dataset, rng_seed) -> CSRGraph.
#: Synthesis is deterministic in the key, so sharing is bit-safe; the
#: graph is read-only to every evaluator.
_GRAPH_MEMO: dict = {}


def clear_graph_memo() -> None:
    """Forget every memoized synthesized graph.

    The naive benchmarking baselines (``run_sweep(memoize=False)``,
    Monte-Carlo ``strategy="naive"``) call this per point so a fresh
    workload really pays graph synthesis, the way a cold process would.
    """
    _GRAPH_MEMO.clear()


@dataclass(frozen=True)
class TransformerWorkload(Workload):
    """One full transformer inference at the model's sequence length.

    Example:
        >>> from repro.nn.models import MODEL_ZOO
        >>> workload = TransformerWorkload(model=MODEL_ZOO["BERT-base"])
        >>> workload.name, workload.kind.value
        ('BERT-base', 'transformer')
    """

    model: TransformerConfig

    @property
    def name(self) -> str:
        return self.model.name

    @property
    def kind(self) -> WorkloadKind:
        return WorkloadKind.TRANSFORMER

    def op_count(self, bytes_per_value: int = 1) -> OpCount:
        return transformer_op_count(self.model, bytes_per_value=bytes_per_value)

    def describe(self) -> str:
        m = self.model
        return (
            f"{m.name}: {m.num_layers} layers, d_model {m.d_model}, "
            f"{m.num_heads} heads, seq {m.seq_len}"
        )


@dataclass
class GNNWorkload(Workload):
    """One full-graph GNN inference over a synthesized dataset replica.

    The graph materializes lazily from the dataset statistics (graph
    synthesis is the expensive part of a GNN evaluation) and is cached on
    the workload, so every platform and every sweep point shares it.

    Example:
        >>> workload = make_gnn_workload(GNNKind.GCN, "cora")
        >>> workload.name, workload.kind.value    # no graph synthesis yet
        ('GCN-cora', 'gnn')
    """

    model_config: GNNConfig
    dataset: str
    rng_seed: int = 7
    # The cached graph is derived state: excluded from repr (so
    # config/spec fingerprints never see it) *and* from comparison (so
    # workload identity is stable before vs. after materialization).
    _graph: Optional[CSRGraph] = field(default=None, repr=False, compare=False)

    @property
    def name(self) -> str:
        return self.model_config.name

    @property
    def kind(self) -> WorkloadKind:
        return WorkloadKind.GNN

    @property
    def graph(self) -> CSRGraph:
        """The synthesized graph (materialized once, then shared)."""
        if self._graph is None:
            key = (self.dataset, self.rng_seed)
            cached = _GRAPH_MEMO.get(key)
            if cached is None:
                stats = get_dataset_stats(self.dataset)
                cached, _ = synthesize_dataset(
                    stats, rng=np.random.default_rng(self.rng_seed)
                )
                _GRAPH_MEMO[key] = cached
            self._graph = cached
        return self._graph

    def materialize(self) -> None:
        self.graph

    def op_count(self, bytes_per_value: int = 1) -> OpCount:
        return gnn_op_count(
            self.model_config, self.graph, bytes_per_value=bytes_per_value
        )

    def describe(self) -> str:
        # Describe from the published stats, not the graph — listing
        # workloads must not trigger graph synthesis.
        cfg = self.model_config
        stats = get_dataset_stats(self.dataset)
        return (
            f"{cfg.name}: {cfg.kind.value} x {cfg.num_layers} layers on "
            f"{self.dataset} ({stats.num_nodes} nodes, "
            f"{2 * stats.num_edges} arcs)"
        )


@dataclass(frozen=True)
class MLPWorkload(Workload):
    """A batched dense MLP inference (the serving-style scenario).

    Attributes:
        mlp_name: workload name.
        widths: layer widths input -> hidden... -> output.
        samples: batch of inputs costed per inference.

    Example:
        >>> workload = MLPWorkload(mlp_name="tiny", widths=(4, 3, 2),
        ...                        samples=2)
        >>> workload.layer_dims
        ((4, 3), (3, 2))
        >>> workload.op_count().macs     # 2 x (4*3 + 3*2)
        36
    """

    mlp_name: str
    widths: Tuple[int, ...]
    samples: int = 1

    def __post_init__(self) -> None:
        if len(self.widths) < 2:
            raise ConfigurationError(
                f"an MLP needs >= 2 widths, got {self.widths}"
            )
        if any(w < 1 for w in self.widths):
            raise ConfigurationError(f"widths must be >= 1, got {self.widths}")
        if self.samples < 1:
            raise ConfigurationError(f"samples must be >= 1, got {self.samples}")

    @property
    def name(self) -> str:
        return self.mlp_name

    @property
    def kind(self) -> WorkloadKind:
        return WorkloadKind.MLP

    @property
    def layer_dims(self) -> Tuple[Tuple[int, int], ...]:
        """(in, out) dims per dense layer."""
        return tuple(zip(self.widths[:-1], self.widths[1:]))

    def op_count(self, bytes_per_value: int = 1) -> OpCount:
        macs = sum(d_in * d_out for d_in, d_out in self.layer_dims)
        hidden = sum(d_out for _, d_out in self.layer_dims[:-1])
        weight_values = macs + sum(d_out for _, d_out in self.layer_dims)
        activation_values = sum(self.widths)
        return OpCount(
            macs=self.samples * macs,
            activations=self.samples * hidden,
            weight_bytes=weight_values * bytes_per_value,
            activation_bytes=self.samples * activation_values * bytes_per_value,
        )

    def describe(self) -> str:
        arch = "-".join(str(w) for w in self.widths)
        return f"{self.mlp_name}: MLP {arch}, batch {self.samples}"


@dataclass(frozen=True)
class WorkloadSuite(Workload):
    """A mixed batch of workloads executed back to back (serving mix).

    Example:
        >>> suite = WorkloadSuite(suite_name="pair", members=(
        ...     MLPWorkload(mlp_name="a", widths=(4, 2)),
        ...     MLPWorkload(mlp_name="b", widths=(4, 2))))
        >>> len(suite.parts()), suite.op_count().macs   # 2 x 4*2
        (2, 16)
    """

    suite_name: str
    members: Tuple[Workload, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise ConfigurationError("a suite needs at least one member")

    @property
    def name(self) -> str:
        return self.suite_name

    @property
    def kind(self) -> WorkloadKind:
        return WorkloadKind.SUITE

    def parts(self) -> Sequence[Workload]:
        return self.members

    def op_count(self, bytes_per_value: int = 1) -> OpCount:
        total = OpCount()
        for member in self.members:
            total = total + member.op_count(bytes_per_value=bytes_per_value)
        return total

    def describe(self) -> str:
        names = ", ".join(member.name for member in self.members)
        return f"{self.suite_name}: suite of [{names}]"


# ----------------------------------------------------------------------
# Default registrations
# ----------------------------------------------------------------------

#: The (model kind, hidden width, dataset) GNN workloads of Figs. 10/11.
GNN_WORKLOAD_SPECS: Tuple[Tuple[GNNKind, int, str], ...] = (
    (GNNKind.GCN, 64, "cora"),
    (GNNKind.GCN, 64, "citeseer"),
    (GNNKind.GCN, 64, "pubmed"),
    (GNNKind.SAGE, 64, "cora"),
    (GNNKind.GIN, 64, "citeseer"),
    (GNNKind.GAT, 64, "pubmed"),
)


def make_gnn_workload(
    kind: GNNKind,
    dataset: str,
    hidden_dim: int = 64,
    num_layers: int = 2,
    rng_seed: int = 7,
    name: Optional[str] = None,
) -> GNNWorkload:
    """A GNN workload over a dataset replica (figure naming convention).

    Example:
        >>> make_gnn_workload(GNNKind.GAT, "pubmed").model_config.heads
        2
    """
    stats = get_dataset_stats(dataset)
    config = GNNConfig(
        name=name or f"{kind.value.upper()}-{dataset}",
        kind=kind,
        num_layers=num_layers,
        hidden_dim=hidden_dim,
        in_dim=stats.feature_dim,
        out_dim=stats.num_classes,
        heads=2 if kind is GNNKind.GAT else 1,
    )
    return GNNWorkload(model_config=config, dataset=dataset, rng_seed=rng_seed)


def make_decode_workload(
    model_name: str = "GPT-2",
    prompt_tokens: int = 128,
    generated_tokens: int = 64,
    label: Optional[str] = None,
):
    """An autoregressive prompt + generate episode over a zoo decoder.

    Example:
        >>> make_decode_workload(label="decode-gpt2-small").name
        'decode-gpt2-small'
    """
    # Local import: the streaming package layers on top of the registry.
    from repro.streaming.decode import DecodeWorkload

    return DecodeWorkload(
        model=MODEL_ZOO[model_name],
        prompt_tokens=prompt_tokens,
        generated_tokens=generated_tokens,
        label=label,
    )


#: The evolving-graph scenarios: (name, model kind, delta stream kind,
#: stream parameters).  One per evolution regime the delta generator
#: supports — growth by preferential attachment, R-MAT densification,
#: and community churn.
TEMPORAL_WORKLOAD_SPECS: Tuple[Tuple[str, GNNKind, str, Tuple], ...] = (
    (
        "GCN-ba-temporal",
        GNNKind.GCN,
        "ba-growth",
        (("num_nodes", 64), ("attachment", 2), ("nodes_per_delta", 8)),
    ),
    (
        "GIN-rmat-temporal",
        GNNKind.GIN,
        "rmat-growth",
        (("scale", 7), ("edge_factor", 4), ("edges_per_delta", 64)),
    ),
    (
        "GAT-sbm-temporal",
        GNNKind.GAT,
        "sbm-churn",
        (("block_sizes", (32, 32, 32)), ("rewire_fraction", 0.05)),
    ),
)


def make_temporal_workload(
    name: str,
    kind: GNNKind,
    delta_kind: str,
    params: Tuple = (),
    hidden_dim: int = 64,
    in_dim: int = 32,
    out_dim: int = 8,
    num_layers: int = 2,
    seed: int = 7,
    num_deltas: int = 4,
):
    """An evolving-graph GNN workload over a deterministic delta stream.

    Example:
        >>> make_temporal_workload(
        ...     "GCN-ba-temporal", GNNKind.GCN, "ba-growth").name
        'GCN-ba-temporal'
    """
    from repro.streaming.temporal import DeltaKind, TemporalGraphWorkload

    config = GNNConfig(
        name=name,
        kind=kind,
        num_layers=num_layers,
        hidden_dim=hidden_dim,
        in_dim=in_dim,
        out_dim=out_dim,
        heads=2 if kind is GNNKind.GAT else 1,
    )
    return TemporalGraphWorkload(
        model_config=config,
        delta_kind=DeltaKind(delta_kind),
        label=name,
        seed=seed,
        num_deltas=num_deltas,
        params=tuple(params),
    )


def _register_defaults() -> None:
    for model_name, model in MODEL_ZOO.items():
        register_workload(
            model_name,
            lambda model=model: TransformerWorkload(model=model),
        )
    for kind, hidden, dataset in GNN_WORKLOAD_SPECS:
        wl_name = f"{kind.value.upper()}-{dataset}"
        register_workload(
            wl_name,
            lambda kind=kind, dataset=dataset, hidden=hidden: make_gnn_workload(
                kind, dataset, hidden_dim=hidden
            ),
        )
    # The new scenarios: batched MLP serving and a mixed LLM suite.
    register_workload(
        "MLP-mnist",
        lambda: MLPWorkload(
            mlp_name="MLP-mnist", widths=(784, 512, 256, 10), samples=64
        ),
    )
    register_workload(
        "MLP-recsys",
        lambda: MLPWorkload(
            mlp_name="MLP-recsys",
            widths=(1024, 2048, 1024, 512, 1),
            samples=256,
        ),
    )
    # Streaming scenarios: autoregressive decode episodes (TRON) and
    # evolving-graph delta streams (GHOST).
    register_workload(
        "decode-gpt2-small",
        lambda: make_decode_workload(label="decode-gpt2-small"),
    )
    register_workload(
        "decode-gpt2-small-long",
        lambda: make_decode_workload(
            prompt_tokens=512,
            generated_tokens=256,
            label="decode-gpt2-small-long",
        ),
    )
    for wl_name, kind, delta_kind, params in TEMPORAL_WORKLOAD_SPECS:
        register_workload(
            wl_name,
            lambda wl_name=wl_name, kind=kind, delta_kind=delta_kind, params=params: (
                make_temporal_workload(wl_name, kind, delta_kind, params)
            ),
        )
    register_workload(
        "LLM-serving-mix",
        lambda: WorkloadSuite(
            suite_name="LLM-serving-mix",
            members=(
                TransformerWorkload(model=MODEL_ZOO["BERT-base"]),
                TransformerWorkload(model=MODEL_ZOO["DistilBERT"]),
                TransformerWorkload(model=MODEL_ZOO["ViT-base"]),
                MLPWorkload(
                    mlp_name="MLP-rerank", widths=(768, 512, 1), samples=128
                ),
            ),
        ),
    )


_register_defaults()
