"""The Fig. 8 / Fig. 9 baseline set: LLM platforms compared against TRON.

Platform list from the paper (Section VI): "Tesla V100-SXM2 GPU, TPU v2,
Intel Xeon CPU, TransPIM, FPGA transformer accelerator in [13]
(FPGA_Acc1), VAQF, and FPGA transformer accelerator in [14] (FPGA_Acc2)."

Calibration notes (recorded per-platform and in EXPERIMENTS.md):

- GPU/TPU/CPU: peak specs from datasheets; compute utilization set to the
  single-digit percentages typical of **batch-1 transformer inference**
  (the latency-oriented deployment the paper's figures imply).  A V100
  running BERT-base batch-1 sustains a few TOPS-equivalent — consistent
  with published MLPerf-inference single-stream results.
- TransPIM (HPCA'22): the paper reports ~20x+ speedup over a batch-1 GPU
  baseline with a ~10 W HBM-PIM budget; that puts sustained throughput in
  the low-TOPS range.
- FPGA accelerators: SOCC'20 MHA+FF accelerator, VAQF (ViT), and the
  ICCAD'21 compression co-design all report ~0.5-1.5 TOPS sustained at
  ~10-25 W on mid-range FPGAs.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.baselines.platforms import RooflinePlatform
from repro.baselines.reported import ReportedAccelerator

BaselinePlatform = Union[RooflinePlatform, ReportedAccelerator]


def llm_baseline_platforms() -> List[BaselinePlatform]:
    """The seven baseline platforms of Figs. 8 and 9."""
    return [
        RooflinePlatform(
            platform_name="V100 GPU",
            peak_gops=125_000.0,  # 125 TOPS tensor-core fp16/int8-equivalent
            memory_bandwidth_gbps=900.0,
            tdp_w=300.0,
            compute_utilization=0.035,  # batch-1 transformer inference
            bandwidth_utilization=0.6,
            spec_source="NVIDIA V100-SXM2 datasheet; MLPerf single-stream",
        ),
        RooflinePlatform(
            platform_name="TPU v2",
            peak_gops=45_000.0,  # 45 TFLOPS bf16 per chip
            memory_bandwidth_gbps=600.0,
            tdp_w=280.0,
            compute_utilization=0.06,  # systolic array, small batches
            bandwidth_utilization=0.6,
            spec_source="Jouppi et al., TPU v2/v3 ISCA'21 retrospective",
        ),
        RooflinePlatform(
            platform_name="Xeon CPU",
            peak_gops=8_000.0,  # AVX-512 VNNI int8, ~28 cores
            memory_bandwidth_gbps=120.0,
            tdp_w=205.0,
            compute_utilization=0.05,
            bandwidth_utilization=0.5,
            spec_source="Intel Xeon Platinum 8180 datasheet",
        ),
        ReportedAccelerator(
            platform_name="TransPIM",
            effective_gops=2_800.0,
            power_w=9.8,
            derivation=(
                "HPCA'22: ~22x speedup over batch-1 GPU baseline at ~10 W "
                "HBM-PIM power -> low-TOPS sustained throughput"
            ),
        ),
        ReportedAccelerator(
            platform_name="FPGA_Acc1",
            effective_gops=1_100.0,
            power_w=22.0,
            derivation=(
                "SOCC'20 MHA+FF accelerator on Xilinx VU13P: ~1 TOPS "
                "sustained at ~22 W"
            ),
        ),
        ReportedAccelerator(
            platform_name="VAQF",
            effective_gops=1_400.0,
            power_w=19.0,
            derivation=(
                "VAQF (arXiv'22) binary/low-bit ViT on ZCU102-class FPGA: "
                "~1.4 TOPS-equivalent sustained at ~19 W"
            ),
        ),
        ReportedAccelerator(
            platform_name="FPGA_Acc2",
            effective_gops=900.0,
            power_w=15.0,
            derivation=(
                "ICCAD'21 hardware/compression co-design: ~0.9 TOPS "
                "sustained at ~15 W"
            ),
        ),
    ]


#: Platform registry keyed by figure label.
LLM_BASELINES: Dict[str, BaselinePlatform] = {
    platform.name: platform for platform in llm_baseline_platforms()
}
