"""Baseline platform models for the Figs. 8-11 comparisons.

Two kinds, mirroring the paper's methodology (Section VI):

- :mod:`repro.baselines.platforms` — roofline models of the GPU / TPU /
  CPU platforms the authors ran directly ("directly acquired outcomes
  from model executions on the GPU, CPU, and TPU platforms").
- :mod:`repro.baselines.reported` — published-number records for the
  competing accelerators ("we utilized reported power, latency, and
  energy values for the chosen accelerators").

:mod:`repro.baselines.llm` and :mod:`repro.baselines.gnn` assemble the
exact platform lists of Figs. 8/9 and Figs. 10/11 respectively.
"""

from repro.baselines.platforms import RooflinePlatform
from repro.baselines.reported import ReportedAccelerator
from repro.baselines.llm import LLM_BASELINES, llm_baseline_platforms
from repro.baselines.gnn import GNN_BASELINES, gnn_baseline_platforms

__all__ = [
    "RooflinePlatform",
    "ReportedAccelerator",
    "LLM_BASELINES",
    "llm_baseline_platforms",
    "GNN_BASELINES",
    "gnn_baseline_platforms",
]
