"""The Fig. 10 / Fig. 11 baseline set: GNN platforms compared to GHOST.

Platform list from the paper (Section VI): "GRIP, HyGCN, EnGN, HW_ACC,
ReGNN, ReGraphX, TPU v4, Intel Xeon CPU, and NVIDIA A100 GPU."

Calibration notes:

- A100 / TPU v4 / Xeon: full-graph GNN inference is overwhelmingly
  memory-bound with irregular gathers, so compute utilization is in the
  low single digits and effective bandwidth is a small fraction of peak
  (partial cache lines on random vertex access).
- The dedicated GNN accelerators report sustained throughput of roughly
  0.5-2 TOPS at single-digit-to-tens of watts in their own evaluations
  (HyGCN: ~6.7 W ASIC; GRIP: ~5 W; EnGN: ~2.6 W; ReRAM designs: a few W
  with high efficiency but modest absolute rate).
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.baselines.platforms import RooflinePlatform
from repro.baselines.reported import ReportedAccelerator

BaselinePlatform = Union[RooflinePlatform, ReportedAccelerator]


def gnn_baseline_platforms() -> List[BaselinePlatform]:
    """The nine baseline platforms of Figs. 10 and 11."""
    return [
        RooflinePlatform(
            platform_name="A100 GPU",
            peak_gops=624_000.0,  # int8 tensor-core peak
            memory_bandwidth_gbps=1555.0,
            tdp_w=400.0,
            # Full-graph GNN inference through DGL/PyG-style frameworks
            # runs dense fp32 kernels over mostly-sparse work; published
            # results sustain well under 1% of the int8 tensor peak.
            compute_utilization=0.005,
            bandwidth_utilization=0.15,  # irregular gathers
            spec_source="NVIDIA A100-SXM4 datasheet",
        ),
        RooflinePlatform(
            platform_name="TPU v4",
            peak_gops=275_000.0,
            memory_bandwidth_gbps=1200.0,
            tdp_w=170.0,
            compute_utilization=0.006,
            bandwidth_utilization=0.15,
            spec_source="Jouppi et al., TPU v4 ISCA'23",
        ),
        RooflinePlatform(
            platform_name="Xeon CPU",
            peak_gops=8_000.0,
            memory_bandwidth_gbps=120.0,
            tdp_w=205.0,
            compute_utilization=0.04,
            bandwidth_utilization=0.3,
            spec_source="Intel Xeon Platinum 8180 datasheet",
        ),
        ReportedAccelerator(
            platform_name="GRIP",
            effective_gops=1_300.0,
            power_w=4.9,
            derivation="GRIP (IEEE TC'22): ~1.3 TOPS sustained at 4.9 W",
        ),
        ReportedAccelerator(
            platform_name="HyGCN",
            effective_gops=1_900.0,
            power_w=6.7,
            derivation=(
                "HyGCN (HPCA'20): hybrid aggregation+combination engines, "
                "~2 TOPS sustained at 6.7 W ASIC power"
            ),
        ),
        ReportedAccelerator(
            platform_name="EnGN",
            effective_gops=1_600.0,
            power_w=2.6,
            derivation="EnGN (TC'20): ~1.6 TOPS sustained at 2.56 W",
        ),
        ReportedAccelerator(
            platform_name="HW_ACC",
            effective_gops=700.0,
            power_w=3.2,
            derivation=(
                "DAC'19 GNN accelerator (Auten et al.): ~0.7 TOPS at ~3 W"
            ),
        ),
        ReportedAccelerator(
            platform_name="ReGNN",
            effective_gops=1_500.0,
            power_w=3.5,
            derivation="ReGNN (DAC'22) ReRAM PIM: ~1.5 TOPS at ~3.5 W",
        ),
        ReportedAccelerator(
            platform_name="ReGraphX",
            effective_gops=1_100.0,
            power_w=4.2,
            derivation=(
                "ReGraphX (DATE'21) 3D ReRAM (training-oriented): ~1.1 "
                "TOPS-equivalent inference rate at ~4.2 W"
            ),
        ),
    ]


#: Platform registry keyed by figure label.
GNN_BASELINES: Dict[str, BaselinePlatform] = {
    platform.name: platform for platform in gnn_baseline_platforms()
}
