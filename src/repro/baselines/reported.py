"""Published-number records for competing accelerators.

The paper "utilized reported power, latency, and energy values for the
chosen accelerators" (Section VI); this module does the same.  Each
record carries an *effective* throughput and power derived from the cited
publication's own results (not peak datasheet numbers), plus the
provenance note.  Where a paper reports speedup relative to a GPU rather
than absolute GOPS, the derivation is described in ``derivation``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import Accelerator, Workload
from repro.core.reports import EnergyReport, LatencyReport, RunReport
from repro.errors import ConfigurationError
from repro.nn.counting import OpCount


@dataclass(frozen=True)
class ReportedAccelerator(Accelerator):
    """An accelerator modelled from its publication's reported results.

    Attributes:
        platform_name: figure label.
        effective_gops: sustained throughput on this workload class, from
            the publication's evaluation.
        power_w: reported (average) power.
        derivation: how the numbers were obtained from the publication.
    """

    platform_name: str
    effective_gops: float
    power_w: float
    derivation: str = ""

    def __post_init__(self) -> None:
        if self.effective_gops <= 0.0:
            raise ConfigurationError(
                f"effective throughput must be > 0, got {self.effective_gops}"
            )
        if self.power_w <= 0.0:
            raise ConfigurationError(f"power must be > 0 W, got {self.power_w}")

    @property
    def name(self) -> str:
        return self.platform_name

    def _run_workload(self, workload: Workload, ctx=None) -> RunReport:
        # Reported numbers are nominal-silicon measurements; photonic
        # execution contexts do not apply.
        return self.run_ops(workload.op_count(bytes_per_value=1), workload.name)

    def run_ops(
        self, ops: OpCount, workload: str, bits_per_value: int = 8
    ) -> RunReport:
        """Cost of one inference at the reported sustained rate."""
        latency_ns = ops.total_ops / self.effective_gops
        energy_pj = self.power_w * 1e3 * latency_ns
        return RunReport(
            platform=self.name,
            workload=workload,
            ops=ops,
            latency=LatencyReport(compute_ns=latency_ns),
            energy=EnergyReport(digital_pj=energy_pj),
            bits_per_value=bits_per_value,
        )
