"""Roofline models of commodity platforms (GPU / TPU / CPU).

Latency is the roofline maximum of compute time (ops over *effective*
throughput) and memory time (bytes over *effective* bandwidth); energy is
TDP-derived power over that latency plus an idle floor.  Effective
figures are peak specs scaled by workload-dependent utilizations:
batch-1 transformer inference keeps tensor cores a few percent busy, and
sparse GNN aggregation wastes most of the DRAM bandwidth on partial
cache lines — these utilizations are the calibration knobs documented in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import Accelerator, Workload
from repro.core.reports import EnergyReport, LatencyReport, RunReport
from repro.errors import ConfigurationError
from repro.nn.counting import OpCount


@dataclass(frozen=True)
class RooflinePlatform(Accelerator):
    """A peak-spec platform with workload-derated utilizations.

    Attributes:
        platform_name: figure label.
        peak_gops: peak throughput at the evaluation precision (int8
            where supported).
        memory_bandwidth_gbps: peak DRAM bandwidth, in gigaBYTES/s.
        tdp_w: board power at full activity.
        compute_utilization: fraction of peak throughput achieved on this
            workload class.
        bandwidth_utilization: fraction of peak bandwidth achieved (low
            for irregular sparse access).
        idle_power_fraction: fraction of TDP drawn regardless of activity.
        spec_source: provenance note for the peak numbers.
    """

    platform_name: str
    peak_gops: float
    memory_bandwidth_gbps: float
    tdp_w: float
    compute_utilization: float = 0.1
    bandwidth_utilization: float = 0.6
    idle_power_fraction: float = 0.3
    spec_source: str = ""

    def __post_init__(self) -> None:
        if self.peak_gops <= 0.0 or self.memory_bandwidth_gbps <= 0.0:
            raise ConfigurationError("peak throughput and bandwidth must be > 0")
        if self.tdp_w <= 0.0:
            raise ConfigurationError(f"TDP must be > 0 W, got {self.tdp_w}")
        for attr in (
            "compute_utilization",
            "bandwidth_utilization",
            "idle_power_fraction",
        ):
            value = getattr(self, attr)
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(f"{attr} must be in (0, 1], got {value}")

    @property
    def name(self) -> str:
        return self.platform_name

    @property
    def effective_gops(self) -> float:
        """Peak throughput derated by the workload utilization."""
        return self.peak_gops * self.compute_utilization

    @property
    def effective_bandwidth_gbps(self) -> float:
        """Peak bandwidth derated by the access-pattern utilization."""
        return self.memory_bandwidth_gbps * self.bandwidth_utilization

    def _run_workload(self, workload: Workload, ctx=None) -> RunReport:
        # Rooflines cost any workload family: only the op counts matter.
        # Photonic execution contexts (variation samples, thermal corners)
        # model MR physics, so electronic baselines ignore them.
        return self.run_ops(workload.op_count(bytes_per_value=1), workload.name)

    def run_ops(
        self, ops: OpCount, workload: str, bits_per_value: int = 8
    ) -> RunReport:
        """Roofline cost of one inference of a counted workload."""
        compute_ns = ops.total_ops / self.effective_gops
        memory_ns = ops.total_bytes / self.effective_bandwidth_gbps
        latency_ns = max(compute_ns, memory_ns)
        # Active power applies over the busy time; idle floor always.
        active_power_mw = self.tdp_w * 1e3 * (1.0 - self.idle_power_fraction)
        idle_power_mw = self.tdp_w * 1e3 * self.idle_power_fraction
        busy_fraction = (
            compute_ns / latency_ns if latency_ns > 0 else 1.0
        )
        compute_pj = active_power_mw * latency_ns * busy_fraction
        static_pj = idle_power_mw * latency_ns
        # Memory energy at a DRAM-typical 15 pJ/bit for commodity DDR/HBM
        # subsystems (controller + IO + array).
        memory_pj = ops.total_bytes * 8 * 15.0
        return RunReport(
            platform=self.name,
            workload=workload,
            ops=ops,
            latency=LatencyReport(
                compute_ns=compute_ns,
                memory_ns=max(latency_ns - compute_ns, 0.0),
            ),
            energy=EnergyReport(
                digital_pj=compute_pj,
                memory_pj=memory_pj,
                static_pj=static_pj,
            ),
            bits_per_value=bits_per_value,
        )
