"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so a
caller embedding the simulators can catch one type.  Subclasses separate
configuration mistakes (bad parameters, impossible design points) from
runtime modelling failures (e.g. a link budget that cannot close).
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was configured with invalid or inconsistent parameters."""


class DesignSpaceError(ReproError):
    """No feasible design point exists for the requested constraints."""


class LinkBudgetError(ReproError):
    """The optical link budget cannot close (insufficient laser power or
    signal below photodetector sensitivity)."""


class MappingError(ReproError):
    """A workload cannot be mapped onto the requested hardware configuration."""


class YieldError(MappingError):
    """A fabricated instance (a process-variation sample) has no usable
    hardware left after yield gating — the sampled die is non-functional."""


class QuantizationError(ReproError):
    """Invalid quantization request (bit-width, scale, or range)."""
