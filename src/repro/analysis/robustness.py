"""Vectorized Monte-Carlo robustness analysis and yield-aware Pareto.

The paper's conclusion names fabrication-process variation as the open
challenge; this module turns the library into a variation-aware design
tool.  :func:`run_monte_carlo` evaluates one accelerator configuration
over N sampled dies and reports the **yield** plus the **latency,
energy, throughput and tuning-power distributions**;
:func:`monte_carlo_sweep` runs a whole design-space grid through it and
:func:`yield_aware_pareto` keeps only the configurations a fab could
actually ship (yield above threshold) before computing the
latency-energy frontier.

Two evaluation paths produce the same numbers:

- **naive** (``vectorized=False``): N scalar runs — per sample, rebuild
  the workload and accelerator, clear the physics caches, and cost the
  die through ``Accelerator.run(workload, ctx=ctx.for_sample(i))``.
  This is the baseline a user would write today, and what the
  ``BENCH_montecarlo.json`` bench compares against.
- **vectorized** (the default): the workload materializes once, every
  die's ring errors / TED heater solves / yield gating evaluate in one
  batched numpy pass per array geometry
  (:func:`repro.core.engine.batch_context_physics`), samples collapse
  into groups sharing a yield signature, and each group costs through
  the run path exactly once per unknown (a zero-correction run plus one
  unit-correction run per geometry — report energy is linear in the
  standing correction power, so every sample in the group is an exact
  affine combination).

The vectorized path resolves its unknowns through one of two strategies:
``"soa"`` (the default) stacks every signature's pinned contexts into a
single array-resident evaluation
(:func:`repro.core.engine.soa_evaluator`) — the sample axis becomes one
more tensor axis, and the whole unknown set costs as a handful of NumPy
ops; ``"grouped"`` is the scalar per-signature replay (one
``Accelerator.run`` per unknown, groups evaluated concurrently), which
platforms without a registered evaluator fall back to automatically.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import Accelerator, Workload
from repro.core.context import ExecutionContext, PinnedArrayPhysics
from repro.core.engine import (
    SoAStats,
    batch_context_physics,
    clear_physics_cache,
    context_physics,
    soa_config_supported,
    soa_evaluator,
)
from repro.core.reports import RunReport
from repro.errors import ConfigurationError, YieldError

#: Default yield threshold of the yield-aware Pareto frontier.
DEFAULT_YIELD_THRESHOLD = 0.9

#: The Monte-Carlo evaluation strategies of :func:`run_monte_carlo`.
MC_STRATEGIES = ("soa", "grouped", "naive")


# ----------------------------------------------------------------------
# Result containers
# ----------------------------------------------------------------------


def _stats(values: np.ndarray) -> Dict[str, float]:
    """mean / p5 / p50 / p95 of a metric over the operational samples."""
    if len(values) == 0:
        return {"mean": 0.0, "p5": 0.0, "p50": 0.0, "p95": 0.0}
    return {
        "mean": float(np.mean(values)),
        "p5": float(np.percentile(values, 5)),
        "p50": float(np.percentile(values, 50)),
        "p95": float(np.percentile(values, 95)),
    }


@dataclass
class MonteCarloResult:
    """Distributions of one configuration over N sampled dies.

    Attributes:
        platform / workload: what was evaluated.
        nominal: the nominal-corner report (the number the figures show).
        operational: per-sample mask — the die has usable hardware.
        fully_functional: per-sample mask — every ring correctable (the
            classic bank-yield criterion; these dies meet nominal spec).
        latency_ns / energy_pj / tuning_power_mw: per-sample metrics
            (``nan`` where the die is dead).  Tuning power is the
            standing variation-correction power of one array per
            geometry.
        samples: sample count N.
        seed: base seed the dies derive from.
        evaluation: stats of the evaluation strategy that ran (see
            :class:`repro.core.engine.SoAStats`), or ``None`` for
            results built outside the Monte-Carlo engine.
    """

    platform: str
    workload: str
    nominal: RunReport
    operational: np.ndarray
    fully_functional: np.ndarray
    latency_ns: np.ndarray
    energy_pj: np.ndarray
    tuning_power_mw: np.ndarray
    samples: int
    seed: int
    evaluation: Optional[Dict[str, object]] = None

    @property
    def yield_fraction(self) -> float:
        """Fraction of dies meeting nominal spec (no gated rows/cols)."""
        return float(np.mean(self.fully_functional))

    @property
    def operational_fraction(self) -> float:
        """Fraction of dies with any usable hardware at all."""
        return float(np.mean(self.operational))

    def _operational_values(self, values: np.ndarray) -> np.ndarray:
        return values[self.operational]

    @property
    def mean_latency_ns(self) -> float:
        """Mean latency over the operational dies (nan if none work)."""
        values = self._operational_values(self.latency_ns)
        return float(np.mean(values)) if len(values) else float("nan")

    @property
    def mean_energy_pj(self) -> float:
        """Mean energy over the operational dies (nan if none work)."""
        values = self._operational_values(self.energy_pj)
        return float(np.mean(values)) if len(values) else float("nan")

    @property
    def gops(self) -> np.ndarray:
        """Per-sample throughput (nan for dead dies)."""
        return self.nominal.ops.total_ops / self.latency_ns

    @property
    def epb_pj(self) -> np.ndarray:
        """Per-sample energy per bit (nan for dead dies)."""
        bits = self.nominal.ops.total_ops * self.nominal.bits_per_value
        return self.energy_pj / bits

    def to_dict(self) -> Dict:
        """JSON-serializable summary (no per-sample arrays)."""
        operational = self.operational
        summary = {
            "platform": self.platform,
            "workload": self.workload,
            "samples": self.samples,
            "seed": self.seed,
            "yield": self.yield_fraction,
            "operational_fraction": self.operational_fraction,
            "nominal": self.nominal.to_dict(),
            "latency_ns": _stats(self.latency_ns[operational]),
            "energy_pj": _stats(self.energy_pj[operational]),
            "gops": _stats(self.gops[operational]),
            "epb_pj": _stats(self.epb_pj[operational]),
            "tuning_power_mw": _stats(self.tuning_power_mw[operational]),
        }
        if self.evaluation is not None:
            summary["evaluation"] = dict(self.evaluation)
        return summary

    def summary(self) -> str:
        """Human-readable distribution table."""
        lines = [
            f"{self.platform} | {self.workload} | {self.samples} sampled dies "
            f"(seed {self.seed})",
            f"  yield: {100 * self.yield_fraction:.1f}% fully functional, "
            f"{100 * self.operational_fraction:.1f}% operational",
            f"  nominal: {self.nominal.latency_ns / 1e3:.2f} us, "
            f"{self.nominal.energy_pj / 1e6:.2f} uJ",
        ]
        rows = (
            ("latency (us)", self.latency_ns, 1e3),
            ("energy (uJ)", self.energy_pj, 1e6),
            ("GOPS", self.gops, 1.0),
            ("tuning (mW)", self.tuning_power_mw, 1.0),
        )
        lines.append(
            f"  {'metric':<14s} {'mean':>12s} {'p5':>12s} {'p50':>12s} "
            f"{'p95':>12s}"
        )
        for label, values, scale in rows:
            stats = _stats(values[self.operational] / scale)
            lines.append(
                f"  {label:<14s} {stats['mean']:>12.2f} {stats['p5']:>12.2f} "
                f"{stats['p50']:>12.2f} {stats['p95']:>12.2f}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The Monte-Carlo engine
# ----------------------------------------------------------------------


def _unique_geometries(accelerator: Accelerator) -> List:
    """The accelerator's distinct array geometries (one spec each)."""
    specs = getattr(accelerator, "array_specs", None)
    if specs is None:
        raise ConfigurationError(
            f"{accelerator.name} does not expose array_specs(); "
            "Monte-Carlo robustness needs the photonic array geometries"
        )
    unique = {}
    for spec in specs():
        unique.setdefault((spec.rows, spec.cols), spec)
    return list(unique.values())


def run_monte_carlo(
    make_accelerator: Callable[[], Accelerator],
    make_workload: Callable[[], Workload],
    context: ExecutionContext,
    samples: int = 256,
    vectorized: bool = True,
    max_workers: Optional[int] = None,
    strategy: Optional[str] = None,
) -> MonteCarloResult:
    """Evaluate one configuration over ``samples`` sampled dies.

    Args:
        make_accelerator: factory for the configuration under test.
        make_workload: factory for the workload (materialized once on
            the vectorized path, per sample on the naive path).
        context: the sampling corner — its variation model, thermal
            corner and tuner range define the die population; its seed
            picks the population's first die.
        samples: number of dies (N).
        vectorized: batched engine (default) vs. the naive N-scalar-runs
            baseline; both produce the same distributions.
        max_workers: thread pool width of the vectorized group runs.
        strategy: explicit evaluation strategy — ``"soa"`` (the default
            with ``vectorized=True``) resolves every yield-signature
            unknown in one stacked array-resident evaluation,
            ``"grouped"`` replays each unknown through the scalar run
            path, ``"naive"`` is the N-scalar-runs baseline.  All three
            produce bit-identical distributions.

    Example:
        >>> from repro.core import TRON, get_workload
        >>> from repro.core.context import ExecutionContext
        >>> from repro.photonics.variation import ProcessVariationModel
        >>> result = run_monte_carlo(
        ...     make_accelerator=TRON,
        ...     make_workload=lambda: get_workload("MLP-mnist"),
        ...     context=ExecutionContext(variation=ProcessVariationModel()),
        ...     samples=4)
        >>> result.samples
        4
        >>> 0.0 <= result.yield_fraction <= 1.0
        True
    """
    if samples < 1:
        raise ConfigurationError(f"need >= 1 sample, got {samples}")
    if context.pinned:
        raise ConfigurationError(
            "Monte-Carlo needs a sampling context (no pinned overrides)"
        )
    if strategy is None:
        strategy = "soa" if vectorized else "naive"
    if strategy not in MC_STRATEGIES:
        raise ConfigurationError(
            f"unknown Monte-Carlo strategy {strategy!r}; pick one of "
            f"{MC_STRATEGIES}"
        )
    if strategy == "naive":
        return _run_naive(make_accelerator, make_workload, context, samples)
    return _run_vectorized(
        make_accelerator,
        make_workload,
        context,
        samples,
        max_workers,
        use_soa=(strategy == "soa"),
    )


def _result(
    accelerator: Accelerator,
    workload: Workload,
    nominal: RunReport,
    context: ExecutionContext,
    operational: np.ndarray,
    fully_functional: np.ndarray,
    latency_ns: np.ndarray,
    energy_pj: np.ndarray,
    tuning_power_mw: np.ndarray,
    evaluation: Optional[SoAStats] = None,
) -> MonteCarloResult:
    return MonteCarloResult(
        platform=accelerator.name,
        workload=workload.name,
        nominal=nominal,
        operational=operational,
        fully_functional=fully_functional,
        latency_ns=latency_ns,
        energy_pj=energy_pj,
        tuning_power_mw=tuning_power_mw,
        samples=len(operational),
        seed=context.seed,
        evaluation=evaluation.to_dict() if evaluation else None,
    )


def _run_naive(
    make_accelerator, make_workload, context, samples
) -> MonteCarloResult:
    """The baseline: N scalar runs, nothing shared between samples."""
    from repro.workloads import clear_graph_memo

    operational = np.zeros(samples, dtype=bool)
    fully_functional = np.zeros(samples, dtype=bool)
    latency_ns = np.full(samples, np.nan)
    energy_pj = np.full(samples, np.nan)
    tuning_power_mw = np.full(samples, np.nan)
    for i in range(samples):
        clear_physics_cache()
        clear_graph_memo()
        workload = make_workload()
        accelerator = make_accelerator()
        ctx = context.for_sample(i)
        geometries = _unique_geometries(accelerator)
        try:
            report = accelerator.run(workload, ctx=ctx)
        except YieldError:
            continue
        operational[i] = True
        latency_ns[i] = report.latency_ns
        energy_pj[i] = report.energy_pj
        physics = [context_physics(spec, ctx) for spec in geometries]
        fully_functional[i] = all(
            p is None or p.ring_yield >= 1.0 for p in physics
        )
        tuning_power_mw[i] = sum(
            p.correction_power_mw for p in physics if p is not None
        )
    clear_physics_cache()
    workload = make_workload()
    accelerator = make_accelerator()
    nominal = accelerator.run(workload)
    return _result(
        accelerator,
        workload,
        nominal,
        context,
        operational,
        fully_functional,
        latency_ns,
        energy_pj,
        tuning_power_mw,
        evaluation=SoAStats(strategy="naive", points=samples),
    )


def _run_vectorized(
    make_accelerator, make_workload, context, samples, max_workers,
    use_soa: bool = True,
) -> MonteCarloResult:
    """One batched physics pass + one run-path evaluation per unknown."""
    workload = make_workload()
    workload.materialize()  # once, shared by every sample
    probe = make_accelerator()
    geometries = _unique_geometries(probe)
    nominal = probe.run(workload)

    # One batched numpy pass per array geometry: every die's ring draws,
    # folding, TED heater solves and yield gating at once.
    batches = [
        batch_context_physics(spec, context, samples) for spec in geometries
    ]
    operational = np.ones(samples, dtype=bool)
    fully_functional = np.ones(samples, dtype=bool)
    tuning_power_mw = np.zeros(samples)
    for batch in batches:
        operational &= batch.functional
        fully_functional &= batch.fully_functional
        tuning_power_mw += batch.correction_power_mw
    tuning_power_mw[~operational] = np.nan

    # Samples sharing a yield signature differ only in their standing
    # correction power, which report energy is linear in — so each group
    # costs through the run path once at zero correction plus once per
    # geometry at unit correction.
    signatures: Dict[Tuple, List[int]] = {}
    for i in np.flatnonzero(operational):
        signature = tuple(
            (int(b.usable_rows[i]), int(b.usable_cols[i])) for b in batches
        )
        signatures.setdefault(signature, []).append(i)

    latency_ns = np.full(samples, np.nan)
    energy_pj = np.full(samples, np.nan)
    signature_items = list(signatures.items())

    evaluator = None
    config = getattr(probe, "config", None)
    if use_soa and config is not None and soa_config_supported(config):
        evaluator = soa_evaluator(probe.name, workload.kind)

    if evaluator is not None:
        # Array-resident resolution: every signature's unknowns — the
        # zero-correction base plus one unit-correction context per
        # geometry — stack into ONE evaluation (the sample axis is just
        # one more tensor axis), then each sample reconstructs as the
        # scalar path's exact affine combination.  An empty signature
        # set (no operational dies) has nothing to evaluate.
        stride = 1 + len(geometries)
        contexts = []
        for signature, _ in signature_items:
            pinned = {
                (spec.rows, spec.cols): PinnedArrayPhysics(rows, cols, 0.0)
                for spec, (rows, cols) in zip(geometries, signature)
            }
            contexts.append(context.with_pinned(pinned))
            for spec, (rows, cols) in zip(geometries, signature):
                unit_pinned = dict(pinned)
                unit_pinned[(spec.rows, spec.cols)] = PinnedArrayPhysics(
                    rows, cols, 1.0
                )
                contexts.append(context.with_pinned(unit_pinned))
        if contexts:
            stacked = evaluator([config] * len(contexts), contexts, workload)
            stacked_latency = stacked.latency_ns
            stacked_energy = stacked.energy_pj
        for group, (signature, indices) in enumerate(signature_items):
            base_index = group * stride
            base_latency = float(stacked_latency[base_index])
            base_energy = float(stacked_energy[base_index])
            slopes = [
                float(stacked_energy[base_index + 1 + g]) - base_energy
                for g in range(len(geometries))
            ]
            for i in indices:
                latency_ns[i] = base_latency
                energy_pj[i] = base_energy + sum(
                    slope * float(batch.correction_power_mw[i])
                    for slope, batch in zip(slopes, batches)
                )
        return _result(
            probe,
            workload,
            nominal,
            context,
            operational,
            fully_functional,
            latency_ns,
            energy_pj,
            tuning_power_mw,
            evaluation=SoAStats(
                strategy="soa",
                points=samples,
                groups=len(signature_items),
            ),
        )

    def evaluate_group(item) -> None:
        signature, indices = item
        pinned = {
            (spec.rows, spec.cols): PinnedArrayPhysics(rows, cols, 0.0)
            for spec, (rows, cols) in zip(geometries, signature)
        }
        base = make_accelerator().run(
            workload, ctx=context.with_pinned(pinned)
        )
        slopes = []
        for spec, (rows, cols) in zip(geometries, signature):
            unit_pinned = dict(pinned)
            unit_pinned[(spec.rows, spec.cols)] = PinnedArrayPhysics(
                rows, cols, 1.0
            )
            unit = make_accelerator().run(
                workload, ctx=context.with_pinned(unit_pinned)
            )
            slopes.append(unit.energy_pj - base.energy_pj)
        for i in indices:
            latency_ns[i] = base.latency_ns
            energy_pj[i] = base.energy_pj + sum(
                slope * float(batch.correction_power_mw[i])
                for slope, batch in zip(slopes, batches)
            )

    if len(signature_items) > 1:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            list(pool.map(evaluate_group, signature_items))
    else:
        for item in signature_items:
            evaluate_group(item)

    return _result(
        probe,
        workload,
        nominal,
        context,
        operational,
        fully_functional,
        latency_ns,
        energy_pj,
        tuning_power_mw,
        evaluation=SoAStats(
            strategy="soa" if use_soa else "grouped",
            points=samples,
            groups=len(signature_items),
            fallback_points=samples if use_soa else 0,
        ),
    )


# ----------------------------------------------------------------------
# Yield-aware design-space analysis
# ----------------------------------------------------------------------


@dataclass
class RobustPoint:
    """One design point's Monte-Carlo outcome (sweep-compatible).

    Exposes ``latency_ns`` / ``energy_pj`` as the operational-die means,
    so :func:`repro.analysis.sweep.pareto_frontier` works on robust
    points exactly as on nominal sweep points.

    Example:
        >>> from repro.core import TRON, get_workload
        >>> from repro.core.context import ExecutionContext
        >>> from repro.photonics.variation import ProcessVariationModel
        >>> result = run_monte_carlo(
        ...     make_accelerator=TRON,
        ...     make_workload=lambda: get_workload("MLP-mnist"),
        ...     context=ExecutionContext(variation=ProcessVariationModel()),
        ...     samples=2)
        >>> point = RobustPoint(label="demo", knobs={}, result=result)
        >>> point.to_dict()["label"]
        'demo'
    """

    label: str
    knobs: Dict
    result: MonteCarloResult

    @property
    def yield_fraction(self) -> float:
        return self.result.yield_fraction

    @property
    def latency_ns(self) -> float:
        return self.result.mean_latency_ns

    @property
    def energy_pj(self) -> float:
        return self.result.mean_energy_pj

    def to_dict(self) -> Dict:
        return {
            "label": self.label,
            "knobs": dict(self.knobs),
            "yield": self.yield_fraction,
            "mean_latency_ns": self.latency_ns,
            "mean_energy_pj": self.energy_pj,
        }


def yield_aware_pareto(
    points: Sequence[RobustPoint],
    yield_threshold: float = DEFAULT_YIELD_THRESHOLD,
) -> List[RobustPoint]:
    """The latency-energy frontier over configurations a fab could ship.

    A configuration only competes if at least ``yield_threshold`` of its
    sampled dies are fully functional — and at least one die is
    operational at all (a config with no working dies has no metrics to
    compete with, even at ``yield_threshold=0``).  The survivors'
    frontier uses the operational-die mean latency/energy.  A
    fast-but-fragile design that dominates the nominal frontier is cut
    here — the yield-aware frontier is the actionable one.

    Example:
        >>> yield_aware_pareto([])           # nothing survives nothing
        []
        >>> yield_aware_pareto([], yield_threshold=1.5)
        Traceback (most recent call last):
            ...
        repro.errors.ConfigurationError: yield threshold must be in [0, 1], got 1.5
    """
    from repro.analysis.sweep import pareto_frontier

    if not 0.0 <= yield_threshold <= 1.0:
        raise ConfigurationError(
            f"yield threshold must be in [0, 1], got {yield_threshold}"
        )
    survivors = [
        p
        for p in points
        if p.yield_fraction >= yield_threshold
        and p.result.operational_fraction > 0.0
    ]
    if not survivors:
        return []
    return pareto_frontier(survivors)


def monte_carlo_sweep(
    space,
    context: ExecutionContext,
    samples: int = 128,
    max_workers: Optional[int] = None,
) -> List[RobustPoint]:
    """Monte-Carlo every knob setting of a sweep space at one corner.

    The workload materializes once and is shared by every point and
    every sample; each point runs the vectorized engine.

    Example:
        >>> from repro.analysis.sweep import tron_sweep_space
        >>> from repro.core.context import ExecutionContext
        >>> from repro.photonics.variation import ProcessVariationModel
        >>> space = tron_sweep_space(
        ...     head_units=(4,), array_sizes=(32,), clocks_ghz=(5.0,))
        >>> points = monte_carlo_sweep(
        ...     space,
        ...     ExecutionContext(variation=ProcessVariationModel()),
        ...     samples=2)
        >>> len(points) == space.num_points
        True
    """
    workload = space.build_workload()
    workload.materialize()
    points = []
    for knobs in space.enumerate():
        result = run_monte_carlo(
            make_accelerator=lambda knobs=knobs: space.build_accelerator(knobs),
            make_workload=lambda: workload,
            context=context,
            samples=samples,
            vectorized=True,
            max_workers=max_workers,
        )
        points.append(
            RobustPoint(label=space.label(knobs), knobs=knobs, result=result)
        )
    return points
