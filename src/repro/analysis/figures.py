"""Regenerates the data series behind the paper's Figs. 8-11.

Each ``figN_*`` function returns a :class:`FigureData` holding the
(platform x workload) metric grid the corresponding bar chart plots:

- Fig. 8: EPB across LLM platforms (TRON + 7 baselines).
- Fig. 9: throughput (GOPS) across LLM platforms.
- Fig. 10: EPB across GNN platforms (GHOST + 9 baselines).
- Fig. 11: throughput (GOPS) across GNN platforms.

Workloads follow Section VI: multiple transformer models (BERT / GPT /
ViT families) and multiple GNN models x datasets at 8-bit precision.

The ``ext_*`` functions extend the same comparisons to the streaming
regimes the paper's batch figures do not cover (autoregressive decode
episodes on TRON, evolving-graph snapshot streams on GHOST): the wins
narrow — decode is dominated by low-arithmetic-intensity KV steps and
temporal snapshots repeat sparse aggregation — but both platforms keep
beating every baseline on every streaming workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis.metrics import ComparisonTable, speedup_over_best_baseline
from repro.baselines.gnn import gnn_baseline_platforms
from repro.baselines.llm import llm_baseline_platforms
from repro.core.base import get_workload
from repro.core.ghost import GHOST
from repro.core.tron import TRON, TRONConfig
from repro.nn.gnn import GNNKind
from repro.workloads import GNN_WORKLOAD_SPECS

#: The transformer workloads of Figs. 8 and 9 (registry names).
LLM_WORKLOADS = ("BERT-base", "BERT-large", "GPT-2", "ViT-base")

#: The (model kind, hidden width, dataset) workloads of Figs. 10 and 11.
GNN_WORKLOADS: Tuple[Tuple[GNNKind, int, str], ...] = GNN_WORKLOAD_SPECS

#: The autoregressive decode episodes of the streaming extension.
DECODE_WORKLOADS = ("decode-gpt2-small", "decode-gpt2-small-long")

#: The evolving-graph streams of the streaming extension.
TEMPORAL_WORKLOADS = (
    "GCN-ba-temporal",
    "GIN-rmat-temporal",
    "GAT-sbm-temporal",
)


@dataclass(frozen=True)
class FigureData:
    """One figure's regenerated data.

    Attributes:
        figure: figure label ("Fig. 8" ... "Fig. 11").
        metric: 'epb' or 'gops'.
        table: the (platform x workload) grid.
        our_platform: TRON or GHOST, for the win-ratio view.
    """

    figure: str
    metric: str
    table: ComparisonTable
    our_platform: str

    def win_ratios(self) -> Dict[str, float]:
        """Per-workload factor by which our platform beats the strongest
        baseline (>= 1 means a win)."""
        return speedup_over_best_baseline(self.table, self.our_platform)

    def min_win_ratio(self) -> float:
        """The 'at least Nx' number the paper's abstract quotes."""
        return min(self.win_ratios().values())

    def format(self) -> str:
        """Printable table plus the win-ratio summary row."""
        ratios = self.win_ratios()
        summary = " | ".join(
            f"{workload[:12]}: {ratio:6.1f}x" for workload, ratio in ratios.items()
        )
        return (
            f"=== {self.figure} ({self.metric.upper()}) ===\n"
            f"{self.table.format()}\n"
            f"win vs best baseline -> {summary}\n"
            f"minimum win ratio: {self.min_win_ratio():.1f}x"
        )


def _llm_table(metric: str, tron: Optional[TRON] = None) -> ComparisonTable:
    table = ComparisonTable(metric=metric)
    tron = tron or TRON(TRONConfig(batch=8))
    baselines = llm_baseline_platforms()
    for name in LLM_WORKLOADS:
        workload = get_workload(name)
        table.add(tron.run(workload))
        for platform in baselines:
            table.add(platform.run(workload))
    return table


def _gnn_table(metric: str, ghost: Optional[GHOST] = None) -> ComparisonTable:
    table = ComparisonTable(metric=metric)
    ghost = ghost or GHOST()
    baselines = gnn_baseline_platforms()
    for kind, _hidden, dataset in GNN_WORKLOADS:
        workload = get_workload(f"{kind.value.upper()}-{dataset}")
        table.add(ghost.run(workload))
        for platform in baselines:
            table.add(platform.run(workload))
    return table


def fig8_llm_epb(tron: Optional[TRON] = None) -> FigureData:
    """Fig. 8: EPB comparison across LLM accelerators."""
    return FigureData(
        figure="Fig. 8",
        metric="epb",
        table=_llm_table("epb", tron),
        our_platform="TRON",
    )


def fig9_llm_gops(tron: Optional[TRON] = None) -> FigureData:
    """Fig. 9: throughput comparison across LLM accelerators."""
    return FigureData(
        figure="Fig. 9",
        metric="gops",
        table=_llm_table("gops", tron),
        our_platform="TRON",
    )


def fig10_gnn_epb(ghost: Optional[GHOST] = None) -> FigureData:
    """Fig. 10: EPB comparison across GNN accelerators."""
    return FigureData(
        figure="Fig. 10",
        metric="epb",
        table=_gnn_table("epb", ghost),
        our_platform="GHOST",
    )


def fig11_gnn_gops(ghost: Optional[GHOST] = None) -> FigureData:
    """Fig. 11: throughput comparison across GNN accelerators."""
    return FigureData(
        figure="Fig. 11",
        metric="gops",
        table=_gnn_table("gops", ghost),
        our_platform="GHOST",
    )


def _decode_table(metric: str, tron: Optional[TRON] = None) -> ComparisonTable:
    table = ComparisonTable(metric=metric)
    tron = tron or TRON(TRONConfig(batch=8))
    baselines = llm_baseline_platforms()
    for name in DECODE_WORKLOADS:
        workload = get_workload(name)
        table.add(tron.run(workload))
        for platform in baselines:
            table.add(platform.run(workload))
    return table


def _temporal_table(
    metric: str, ghost: Optional[GHOST] = None
) -> ComparisonTable:
    table = ComparisonTable(metric=metric)
    ghost = ghost or GHOST()
    baselines = gnn_baseline_platforms()
    for name in TEMPORAL_WORKLOADS:
        workload = get_workload(name)
        table.add(ghost.run(workload))
        for platform in baselines:
            table.add(platform.run(workload))
    return table


def ext_decode_epb(tron: Optional[TRON] = None) -> FigureData:
    """Extension: EPB on autoregressive decode episodes (Fig. 8 regime)."""
    return FigureData(
        figure="Ext. decode EPB",
        metric="epb",
        table=_decode_table("epb", tron),
        our_platform="TRON",
    )


def ext_decode_gops(tron: Optional[TRON] = None) -> FigureData:
    """Extension: throughput on decode episodes (Fig. 9 regime)."""
    return FigureData(
        figure="Ext. decode GOPS",
        metric="gops",
        table=_decode_table("gops", tron),
        our_platform="TRON",
    )


def ext_temporal_epb(ghost: Optional[GHOST] = None) -> FigureData:
    """Extension: EPB on evolving-graph streams (Fig. 10 regime)."""
    return FigureData(
        figure="Ext. temporal EPB",
        metric="epb",
        table=_temporal_table("epb", ghost),
        our_platform="GHOST",
    )


def ext_temporal_gops(ghost: Optional[GHOST] = None) -> FigureData:
    """Extension: throughput on evolving-graph streams (Fig. 11 regime)."""
    return FigureData(
        figure="Ext. temporal GOPS",
        metric="gops",
        table=_temporal_table("gops", ghost),
        our_platform="GHOST",
    )
