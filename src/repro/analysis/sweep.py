"""Workload-agnostic design-space sweeps and Pareto analysis.

Section VI: "The specific architectural details of each hardware
accelerator ... were determined through detailed design-space analysis."
This module replays that analysis with a single sweep engine: a
:class:`SweepSpace` names the knob grid, how to build an accelerator at
a point, and which workload to evaluate — the engine enumerates the
cartesian product and evaluates every point through one of the
strategies of :func:`run_sweep`.

The default **soa** strategy is the array-resident production path: the
whole grid becomes structure-of-arrays columns and a registered platform
evaluator (:func:`repro.core.engine.soa_evaluator`) computes every
point's energy / latency breakdown as a handful of NumPy ops, with
scalar :class:`SweepPoint` reports materialized from the stacked columns
afterwards (lazily, in :func:`run_sweep_soa`).  Spaces without an
evaluator fall back to the **batched** strategy: the workload
materializes once, every distinct array geometry's device physics is
computed in one vectorized kernel call
(:func:`repro.core.engine.prime_breakdown_cache`), points collapse into
groups sharing a run-path signature — platform, full configuration and
normalized execution context, exactly how
:mod:`repro.analysis.robustness` groups Monte-Carlo dies — and each
group costs through the run path once.  Both paths are bit-identical to
scalar runs because the kernels replicate the scalar operation order.

The classic TRON and GHOST sweeps are thin wrappers
(:func:`sweep_tron` / :func:`sweep_ghost`); any registered workload and
any config space sweeps the same way.
"""

from __future__ import annotations

import importlib
import itertools
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import Accelerator, Workload
from repro.core.context import ExecutionContext
from repro.core.engine import (
    SoAStats,
    clear_physics_cache,
    pareto_mask,
    prime_breakdown_cache,
    soa_config_supported,
    soa_evaluator,
)
from repro.core.ghost import GHOST, GHOSTConfig
from repro.core.reports import RunReport, StackedRunReports
from repro.core.tron import TRON, TRONConfig
from repro.errors import ConfigurationError
from repro.nn.gnn import GNNKind
from repro.nn.models import bert_base
from repro.workloads import TransformerWorkload, make_gnn_workload

#: The sweep evaluation strategies of :func:`run_sweep`.
STRATEGIES = ("soa", "batched", "serial", "threads")


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated configuration.

    Attributes:
        label: human-readable knob setting.
        knobs: the swept parameter values.
        report: the workload RunReport at this configuration.
    """

    label: str
    knobs: Dict[str, float]
    report: RunReport

    @property
    def latency_ns(self) -> float:
        return self.report.latency_ns

    @property
    def energy_pj(self) -> float:
        return self.report.energy_pj


def pareto_frontier(points: Sequence[SweepPoint]) -> List[SweepPoint]:
    """Latency-energy Pareto-optimal subset (both minimized).

    A point survives if no other point is at least as good on both axes
    and strictly better on one; exact duplicates therefore survive
    together.  The frontier sorts by (latency, energy, label) so ties
    break deterministically.
    """
    if not points:
        raise ConfigurationError("need at least one sweep point")
    frontier = []
    for candidate in points:
        dominated = any(
            other.latency_ns <= candidate.latency_ns
            and other.energy_pj <= candidate.energy_pj
            and (
                other.latency_ns < candidate.latency_ns
                or other.energy_pj < candidate.energy_pj
            )
            for other in points
        )
        if not dominated:
            frontier.append(candidate)
    frontier.sort(key=lambda p: (p.latency_ns, p.energy_pj, p.label))
    return frontier


@dataclass(frozen=True)
class SweepSpace:
    """A named config space evaluated on one workload.

    Attributes:
        name: space name (for reports and benches).
        knobs: ordered knob name -> candidate values.
        build_accelerator: knob values -> configured accelerator.
        build_workload: materializes the reference workload (called once
            per sweep when memoizing; per point in the naive baseline).
        label: knob values -> human-readable point label.
        corners: optional corner axis — named execution contexts every
            knob setting is additionally evaluated at (see
            :func:`with_corners`).  Empty = nominal-only, the classic
            sweep.
        platform: platform name of the accelerators this space builds
            (e.g. ``"TRON"``), keying the array-resident evaluator
            registry.  ``None`` keeps the space on the scalar strategies
            (the ``soa`` strategy then falls back to ``batched``).
        build_config: knob values -> bare platform configuration, the
            cheap counterpart of ``build_accelerator`` the array-resident
            path uses (no executor / block construction per point).
    """

    name: str
    knobs: Tuple[Tuple[str, Tuple[Any, ...]], ...]
    build_accelerator: Callable[[Dict[str, Any]], Accelerator]
    build_workload: Callable[[], Workload]
    label: Callable[[Dict[str, Any]], str]
    corners: Tuple[Tuple[str, Optional[ExecutionContext]], ...] = ()
    platform: Optional[str] = None
    build_config: Optional[Callable[[Dict[str, Any]], Any]] = None

    @staticmethod
    def ordered_knobs(
        knobs: Mapping[str, Sequence[Any]]
    ) -> Tuple[Tuple[str, Tuple[Any, ...]], ...]:
        """Normalize a knob mapping into the hashable internal form."""
        return tuple((name, tuple(values)) for name, values in knobs.items())

    def enumerate(self) -> List[Dict[str, Any]]:
        """All knob combinations, in deterministic grid order."""
        if not self.knobs:
            raise ConfigurationError(f"sweep space {self.name!r} has no knobs")
        names = [name for name, _ in self.knobs]
        grids = [values for _, values in self.knobs]
        if any(len(values) == 0 for values in grids):
            raise ConfigurationError(
                f"sweep space {self.name!r} has an empty knob grid"
            )
        return [
            dict(zip(names, combo)) for combo in itertools.product(*grids)
        ]

    @property
    def num_points(self) -> int:
        """Grid size (including the corner axis, when present)."""
        size = 1
        for _, values in self.knobs:
            size *= len(values)
        return size * max(1, len(self.corners))

    def evaluations(self) -> List[Tuple[Dict[str, Any], str, Optional[ExecutionContext]]]:
        """All (knobs, label, context) evaluations of this space.

        Without corners this is the plain knob grid at the nominal
        context; with corners every knob setting is repeated per corner,
        the label gains an ``@corner`` suffix and the knob dict a
        ``corner`` entry.
        """
        evaluations = []
        for knobs in self.enumerate():
            if not self.corners:
                evaluations.append((knobs, self.label(knobs), None))
                continue
            for corner_name, ctx in self.corners:
                corner_knobs = dict(knobs, corner=corner_name)
                evaluations.append(
                    (corner_knobs, f"{self.label(knobs)}@{corner_name}", ctx)
                )
        return evaluations


def with_corners(
    space: SweepSpace, corners: Mapping[str, Optional[ExecutionContext]]
) -> SweepSpace:
    """A sweep space extended with a corner axis.

    Every knob setting is evaluated once per named execution context —
    fabrication-process corners become one more swept dimension, so the
    Pareto analysis sees nominal and corner behaviour side by side::

        space = with_corners(tron_sweep_space(), standard_corners())
    """
    if not corners:
        raise ConfigurationError("need at least one corner")
    return replace(space, corners=tuple(corners.items()))


def _normalized_context(
    ctx: Optional[ExecutionContext],
) -> Optional[ExecutionContext]:
    """``None`` and nominal contexts share one run-path signature (they
    cost bit-identically by construction)."""
    if ctx is None or ctx.is_nominal:
        return None
    return ctx


def _physics_requests(accelerator: Accelerator) -> List[Tuple]:
    """The nominal breakdown-cache keys this accelerator's run will hit.

    Every unit costs with the default average weight magnitude; the
    refresh windows in play are the config's weight-stationary window
    and the un-amortized default.
    """
    specs = getattr(accelerator, "array_specs", None)
    if specs is None:
        return []
    refresh = getattr(accelerator.config, "weight_refresh_cycles", 1)
    requests = []
    for spec in specs():
        requests.append((spec, 0.5, refresh))
        if refresh != 1:
            requests.append((spec, 0.5, 1))
    return requests


def _run_batched(
    space: SweepSpace, evaluations: List[Tuple]
) -> List[SweepPoint]:
    """The configuration-batched sweep path (see :func:`run_sweep`)."""
    workload = space.build_workload()
    workload.materialize()  # once, shared by every point

    accelerators = [
        space.build_accelerator(knobs) for knobs, _, _ in evaluations
    ]
    # One vectorized kernel call computes every distinct array
    # geometry's device-physics curve before any point runs.
    requests = []
    for accelerator in accelerators:
        requests.extend(_physics_requests(accelerator))
    prime_breakdown_cache(requests)

    # Group points by run-path signature — platform, configuration and
    # normalized context — exactly how the Monte-Carlo engine groups
    # dies by yield signature: each group costs through the run path
    # once and every member reuses the report (requests differing only
    # in label, e.g. duplicated corner axes, never re-run).
    groups: Dict[Tuple, List[int]] = {}
    signatures = []
    for index, ((knobs, label, ctx), accelerator) in enumerate(
        zip(evaluations, accelerators)
    ):
        signature = (
            type(accelerator).__name__,
            repr(accelerator.config),
            _normalized_context(ctx),
        )
        signatures.append(signature)
        groups.setdefault(signature, []).append(index)

    reports: Dict[Tuple, RunReport] = {}
    for signature, members in groups.items():
        knobs, _, ctx = evaluations[members[0]]
        reports[signature] = accelerators[members[0]].run(workload, ctx=ctx)
    return [
        SweepPoint(label=label, knobs=knobs, report=reports[signature])
        for (knobs, label, _), signature in zip(evaluations, signatures)
    ]


def _soa_stack(
    space: SweepSpace, evaluations: List[Tuple]
) -> Optional[Tuple[StackedRunReports, SoAStats]]:
    """Evaluate a space through its array-resident evaluator.

    Returns ``None`` when the space carries no platform / bare-config
    factory or no evaluator is registered for (platform, workload kind)
    — the callers then fall back to the batched scalar path.
    """
    if space.platform is None or space.build_config is None:
        return None
    workload = space.build_workload()
    workload.materialize()
    evaluator = soa_evaluator(space.platform, workload.kind)
    if evaluator is None:
        return None
    configs = [space.build_config(knobs) for knobs, _, _ in evaluations]
    if not all(soa_config_supported(cfg) for cfg in configs):
        # All registry backends (analytic, hbm, hbm-pim) are covered
        # today; the guard stays for third-party configs that opt out.
        return None
    contexts = [_normalized_context(ctx) for _, _, ctx in evaluations]
    stacked = evaluator(configs, contexts, workload)
    stats = SoAStats(
        strategy="soa", points=len(evaluations), groups=stacked.groups
    )
    return stacked, stats


def _run_soa(
    space: SweepSpace, evaluations: List[Tuple]
) -> Tuple[List[SweepPoint], SoAStats]:
    """The array-resident sweep path (see :func:`run_sweep`), with its
    evaluation stats.  Falls back to :func:`_run_batched` (recorded as
    ``fallback_points``) when the space has no registered evaluator."""
    stack = _soa_stack(space, evaluations)
    if stack is None:
        points = _run_batched(space, evaluations)
        stats = SoAStats(
            strategy="soa",
            points=len(points),
            fallback_points=len(points),
        )
        return points, stats
    stacked, stats = stack
    points = [
        SweepPoint(label=label, knobs=knobs, report=stacked.materialize(i))
        for i, (knobs, label, _) in enumerate(evaluations)
    ]
    stats.materialized_reports = len(points)
    return points, stats


@dataclass
class SoASweepResult:
    """A sweep held as stacked columns, materialized on demand.

    The array-resident counterpart of a ``List[SweepPoint]``: the full
    latency / energy tensors are resident as NumPy columns, and scalar
    :class:`SweepPoint` objects only materialize for the points a caller
    asks for (the Pareto frontier, typically).  ``stats`` tracks how many
    reports actually materialized.
    """

    space: SweepSpace
    evaluations: List[Tuple]
    stacked: StackedRunReports
    stats: SoAStats

    def __len__(self) -> int:
        return len(self.evaluations)

    @property
    def latency_ns(self):
        """Per-point total latency column (ns)."""
        return self.stacked.latency_ns

    @property
    def energy_pj(self):
        """Per-point total energy column (pJ)."""
        return self.stacked.energy_pj

    def point(self, index: int) -> SweepPoint:
        """Materialize one scalar sweep point from the stack."""
        knobs, label, _ = self.evaluations[index]
        self.stats.materialized_reports += 1
        return SweepPoint(
            label=label, knobs=knobs, report=self.stacked.materialize(index)
        )

    def points(self) -> List[SweepPoint]:
        """Materialize every point (grid order)."""
        return [self.point(i) for i in range(len(self.evaluations))]

    def frontier(self) -> List[SweepPoint]:
        """The latency-energy Pareto frontier, materializing only the
        non-dominated points.

        The dominance test runs as one boolean-mask reduction over the
        stacked columns; the result is bit-identical to
        :func:`pareto_frontier` over the fully materialized sweep (same
        totals, same ``(latency, energy, label)`` ordering).
        """
        mask = pareto_mask(self.stacked.latency_ns, self.stacked.energy_pj)
        frontier = [self.point(i) for i in np.flatnonzero(mask)]
        frontier.sort(key=lambda p: (p.latency_ns, p.energy_pj, p.label))
        return frontier


def run_sweep_soa(space: SweepSpace) -> SoASweepResult:
    """Evaluate a sweep space array-resident, without materializing
    per-point reports.

    The whole grid is evaluated as stacked NumPy columns and stays that
    way — callers reduce over the columns (frontier, yield masks) and
    materialize only the points they need.  Requires a space with a
    registered array-resident evaluator.

    Raises:
        ConfigurationError: if the space has no registered evaluator
            (use :func:`run_sweep` for the scalar fallback).
    """
    evaluations = space.evaluations()
    stack = _soa_stack(space, evaluations)
    if stack is None:
        raise ConfigurationError(
            f"sweep space {space.name!r} has no array-resident evaluator; "
            "set SweepSpace.platform / build_config or use run_sweep()"
        )
    stacked, stats = stack
    return SoASweepResult(
        space=space, evaluations=evaluations, stacked=stacked, stats=stats
    )


def run_sweep(
    space: SweepSpace,
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
    memoize: bool = True,
    strategy: Optional[str] = None,
) -> List[SweepPoint]:
    """Evaluate every point of a sweep space.

    Strategies (``strategy``; the executor-choice heuristic):

    - ``"soa"`` — the default and the array-resident production path:
      the whole grid evaluates as structure-of-arrays NumPy columns
      through the platform's registered evaluator (no per-point
      accelerator or executor construction), and scalar reports
      materialize from the stacked columns afterwards.  Spaces without
      an evaluator (no ``platform`` / ``build_config``, or an
      unregistered workload kind) transparently fall back to
      ``"batched"``.  Use :func:`run_sweep_soa` to keep the columns
      resident and skip materialization entirely.
    - ``"batched"`` — the scalar production path (and the ``soa``
      fallback): materialize the workload once, compute all device
      physics in one vectorized kernel call, group points by run-path
      signature and cost each group once.  Point evaluation is pure
      Python/numpy compute, so **a thread pool cannot speed it up — the
      GIL serializes it**; batching the math is what wins.
    - ``"threads"`` — the legacy pool (also selected by
      ``parallel=True``).  Kept *only* for I/O-ish paths: when the
      physics caches are already warm (or the persistent disk cache
      serves them), point evaluation degenerates to cache lookups and
      numpy kernels that release the GIL, and overlapping points can
      hide the remaining stalls.  Never the right choice for a cold
      CPU-bound grid.
    - ``"serial"`` — one plain scalar run per point (memoized state,
      no grouping; also selected by ``parallel=False``); the reference
      the batched path is tested against, and the path to use when
      every point must own a distinct report object (batched grouping
      shares one report across duplicate-signature points).
    - For non-batchable spaces (factories that resist signature
      grouping) on multi-core hosts, use
      :func:`run_sweep_in_processes` — a ``ProcessPoolExecutor`` over
      importable space factories sidesteps the GIL entirely.

    ``memoize=False`` is the naive baseline the benchmarks compare
    against: every point re-materializes its workload and recomputes
    the physics curves, **strictly sequentially** — requesting
    ``parallel=True`` with it is a contradiction and raises.
    """
    points, _ = run_sweep_with_stats(
        space,
        parallel=parallel,
        max_workers=max_workers,
        memoize=memoize,
        strategy=strategy,
    )
    return points


def run_sweep_with_stats(
    space: SweepSpace,
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
    memoize: bool = True,
    strategy: Optional[str] = None,
) -> Tuple[List[SweepPoint], SoAStats]:
    """:func:`run_sweep` plus the evaluation stats of the strategy that
    ran (what the ``--json`` envelopes surface).

    For scalar strategies the stats record the resolved strategy name
    and point count; the ``soa`` strategy additionally reports its group
    collapse, materialization count and any scalar fallback.
    """
    evaluations = space.evaluations()

    if not memoize:
        if parallel:
            raise ConfigurationError(
                "memoize=False is the sequential per-point baseline; "
                "it cannot run in parallel (the physics cache is cleared "
                "per point)"
            )
        from repro.workloads import clear_graph_memo

        points = []
        for knobs, label, ctx in evaluations:
            clear_physics_cache()
            clear_graph_memo()
            workload = space.build_workload()
            report = space.build_accelerator(knobs).run(workload, ctx=ctx)
            points.append(SweepPoint(label=label, knobs=knobs, report=report))
        return points, SoAStats(strategy="naive", points=len(points))

    if strategy is None:
        # Back-compat mapping: parallel=True is the legacy thread pool,
        # parallel=False the legacy strict per-point serial loop (each
        # point owns a distinct report object); only the unspecified
        # default upgrades to the array-resident path.
        if parallel is True:
            strategy = "threads"
        elif parallel is False:
            strategy = "serial"
        else:
            strategy = "soa"
    if strategy not in STRATEGIES:
        raise ConfigurationError(
            f"unknown sweep strategy {strategy!r}; pick one of {STRATEGIES} "
            "(or run_sweep_in_processes for the multi-process fallback)"
        )

    if strategy == "soa":
        return _run_soa(space, evaluations)
    if strategy == "batched":
        points = _run_batched(space, evaluations)
        return points, SoAStats(strategy="batched", points=len(points))

    workload = space.build_workload()
    workload.materialize()  # once, outside the worker pool

    def evaluate(evaluation) -> SweepPoint:
        knobs, label, ctx = evaluation
        report = space.build_accelerator(knobs).run(workload, ctx=ctx)
        return SweepPoint(label=label, knobs=knobs, report=report)

    if strategy == "threads" and len(evaluations) > 1:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            points = list(pool.map(evaluate, evaluations))
    else:
        points = [evaluate(evaluation) for evaluation in evaluations]
    return points, SoAStats(strategy=strategy, points=len(points))


def _resolve_space_factory(factory) -> Callable[..., SweepSpace]:
    """A space factory from a callable or an ``"module:attr"`` string."""
    if callable(factory):
        return factory
    if isinstance(factory, str) and ":" in factory:
        module_name, attr = factory.split(":", 1)
        return getattr(importlib.import_module(module_name), attr)
    raise ConfigurationError(
        "space factory must be a callable or 'module:attribute' string, "
        f"got {factory!r}"
    )


def _process_chunk(payload) -> List[Tuple]:
    """Worker: rebuild the space in-process and run one index chunk."""
    factory, kwargs, indices = payload
    space = _resolve_space_factory(factory)(**kwargs)
    evaluations = space.evaluations()
    chunk = [evaluations[i] for i in indices]
    points = _run_batched(space, chunk)
    return [
        (index, point.label, point.knobs, point.report)
        for index, point in zip(indices, points)
    ]


def run_sweep_in_processes(
    space_factory,
    factory_kwargs: Optional[Mapping[str, Any]] = None,
    max_workers: int = 2,
) -> List[SweepPoint]:
    """Evaluate a sweep space across worker *processes*.

    The GIL-free fallback for grids the batched path cannot help (e.g.
    custom spaces whose points share no run-path structure) on
    multi-core hosts.  Because worker processes cannot receive closures,
    the space is named by a picklable **factory** — a module-level
    callable or an ``"module:attribute"`` string — plus keyword
    arguments, and each worker rebuilds it locally and evaluates an
    index chunk through the batched path.  Results are returned in grid
    order and are bit-identical to an in-process sweep (same code, same
    inputs).

    Example:
        >>> points = run_sweep_in_processes(
        ...     "repro.analysis.sweep:tron_sweep_space",
        ...     {"head_units": (4,), "array_sizes": (32, 64),
        ...      "clocks_ghz": (5.0,)},
        ...     max_workers=2)
        >>> [p.label for p in points]
        ['H4/A32/5.0GHz', 'H4/A64/5.0GHz']
    """
    if max_workers < 1:
        raise ConfigurationError(f"need >= 1 worker, got {max_workers}")
    factory = space_factory
    kwargs = dict(factory_kwargs or {})
    # Validate eagerly in the parent (workers would fail opaquely).
    space = _resolve_space_factory(factory)(**kwargs)
    num_points = len(space.evaluations())
    chunk_count = min(max_workers, num_points)
    chunks = [
        list(range(start, num_points, chunk_count))
        for start in range(chunk_count)
    ]
    payloads = [(factory, kwargs, indices) for indices in chunks]
    results: List[Optional[SweepPoint]] = [None] * num_points
    if chunk_count == 1:
        chunk_results = [_process_chunk(payloads[0])]
    else:
        with ProcessPoolExecutor(max_workers=chunk_count) as pool:
            chunk_results = list(pool.map(_process_chunk, payloads))
    for chunk in chunk_results:
        for index, label, knobs, report in chunk:
            results[index] = SweepPoint(label=label, knobs=knobs, report=report)
    return list(results)


def combined_sweep(
    spaces: Sequence[SweepSpace],
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
    memoize: bool = True,
    strategy: Optional[str] = None,
) -> Dict[str, List[SweepPoint]]:
    """Run several sweep spaces, sharing the memoized engine state."""
    return {
        space.name: run_sweep(
            space,
            parallel=parallel,
            max_workers=max_workers,
            memoize=memoize,
            strategy=strategy,
        )
        for space in spaces
    }


# ----------------------------------------------------------------------
# The classic TRON / GHOST spaces
# ----------------------------------------------------------------------


def tron_sweep_space(
    head_units: Sequence[int] = (4, 8, 16),
    array_sizes: Sequence[int] = (32, 64, 128),
    clocks_ghz: Sequence[float] = (2.5, 5.0),
    batch: int = 8,
    model_factory: Callable = bert_base,
) -> SweepSpace:
    """TRON's structural knobs on a transformer workload."""

    def build_config(knobs: Dict[str, Any]) -> TRONConfig:
        return TRONConfig(
            num_head_units=int(knobs["head_units"]),
            array_rows=int(knobs["array_size"]),
            array_cols=int(knobs["array_size"]),
            clock_ghz=float(knobs["clock_ghz"]),
            batch=batch,
        )

    def build(knobs: Dict[str, Any]) -> TRON:
        return TRON(build_config(knobs))

    return SweepSpace(
        name="tron",
        knobs=SweepSpace.ordered_knobs(
            {
                "head_units": head_units,
                "array_size": array_sizes,
                "clock_ghz": clocks_ghz,
            }
        ),
        build_accelerator=build,
        build_workload=lambda: TransformerWorkload(model=model_factory()),
        label=lambda knobs: (
            f"H{knobs['head_units']}/A{knobs['array_size']}/"
            f"{knobs['clock_ghz']:.1f}GHz"
        ),
        platform="TRON",
        build_config=build_config,
    )


def ghost_sweep_space(
    lanes: Sequence[int] = (8, 16, 32),
    edge_units: Sequence[int] = (16, 32, 64),
    dataset: str = "cora",
    hidden_dim: int = 64,
) -> SweepSpace:
    """GHOST's structural knobs on a GCN workload."""

    def build_config(knobs: Dict[str, Any]) -> GHOSTConfig:
        return GHOSTConfig(
            lanes=int(knobs["lanes"]), edge_units=int(knobs["edge_units"])
        )

    def build(knobs: Dict[str, Any]) -> GHOST:
        return GHOST(build_config(knobs))

    return SweepSpace(
        name="ghost",
        knobs=SweepSpace.ordered_knobs(
            {"lanes": lanes, "edge_units": edge_units}
        ),
        build_accelerator=build,
        build_workload=lambda: make_gnn_workload(
            GNNKind.GCN,
            dataset,
            hidden_dim=hidden_dim,
            rng_seed=0,
            name=f"GCN-{dataset}",
        ),
        label=lambda knobs: f"V{knobs['lanes']}/N{knobs['edge_units']}",
        platform="GHOST",
        build_config=build_config,
    )


def sweep_tron(
    head_units: Sequence[int] = (4, 8, 16),
    array_sizes: Sequence[int] = (32, 64, 128),
    clocks_ghz: Sequence[float] = (2.5, 5.0),
    batch: int = 8,
    model_factory: Callable = bert_base,
) -> List[SweepPoint]:
    """Sweep TRON's structural knobs on a transformer workload."""
    return run_sweep(
        tron_sweep_space(
            head_units=head_units,
            array_sizes=array_sizes,
            clocks_ghz=clocks_ghz,
            batch=batch,
            model_factory=model_factory,
        )
    )


def sweep_ghost(
    lanes: Sequence[int] = (8, 16, 32),
    edge_units: Sequence[int] = (16, 32, 64),
    dataset: str = "cora",
    hidden_dim: int = 64,
) -> List[SweepPoint]:
    """Sweep GHOST's structural knobs on a GCN workload."""
    return run_sweep(
        ghost_sweep_space(
            lanes=lanes,
            edge_units=edge_units,
            dataset=dataset,
            hidden_dim=hidden_dim,
        )
    )


def format_sweep(points: Sequence[SweepPoint], frontier: Sequence[SweepPoint]) -> str:
    """Text table of a sweep with Pareto points marked."""
    on_frontier = {id(p) for p in frontier}
    lines = [
        f"{'config':>18s} {'latency (us)':>13s} {'energy (uJ)':>12s} "
        f"{'GOPS':>12s} {'pareto':>7s}"
    ]
    for point in sorted(points, key=lambda p: p.latency_ns):
        marker = "*" if id(point) in on_frontier else ""
        lines.append(
            f"{point.label:>18s} {point.latency_ns / 1e3:>13.2f} "
            f"{point.energy_pj / 1e6:>12.2f} {point.report.gops:>12.1f} "
            f"{marker:>7s}"
        )
    return "\n".join(lines)
