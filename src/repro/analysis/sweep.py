"""Workload-agnostic design-space sweeps and Pareto analysis.

Section VI: "The specific architectural details of each hardware
accelerator ... were determined through detailed design-space analysis."
This module replays that analysis with a single sweep engine: a
:class:`SweepSpace` names the knob grid, how to build an accelerator at
a point, and which workload to evaluate — the engine enumerates the
cartesian product, evaluates points concurrently, and memoizes the
expensive shared state (the materialized workload and the engine's
device-physics curves) across points.

The classic TRON and GHOST sweeps are thin wrappers
(:func:`sweep_tron` / :func:`sweep_ghost`); any registered workload and
any config space sweeps the same way.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.base import Accelerator, Workload
from repro.core.context import ExecutionContext
from repro.core.engine import clear_physics_cache
from repro.core.ghost import GHOST, GHOSTConfig
from repro.core.reports import RunReport
from repro.core.tron import TRON, TRONConfig
from repro.errors import ConfigurationError
from repro.nn.gnn import GNNKind
from repro.nn.models import bert_base
from repro.workloads import TransformerWorkload, make_gnn_workload


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated configuration.

    Attributes:
        label: human-readable knob setting.
        knobs: the swept parameter values.
        report: the workload RunReport at this configuration.
    """

    label: str
    knobs: Dict[str, float]
    report: RunReport

    @property
    def latency_ns(self) -> float:
        return self.report.latency_ns

    @property
    def energy_pj(self) -> float:
        return self.report.energy_pj


def pareto_frontier(points: Sequence[SweepPoint]) -> List[SweepPoint]:
    """Latency-energy Pareto-optimal subset (both minimized).

    A point survives if no other point is at least as good on both axes
    and strictly better on one; exact duplicates therefore survive
    together.  The frontier sorts by (latency, energy, label) so ties
    break deterministically.
    """
    if not points:
        raise ConfigurationError("need at least one sweep point")
    frontier = []
    for candidate in points:
        dominated = any(
            other.latency_ns <= candidate.latency_ns
            and other.energy_pj <= candidate.energy_pj
            and (
                other.latency_ns < candidate.latency_ns
                or other.energy_pj < candidate.energy_pj
            )
            for other in points
        )
        if not dominated:
            frontier.append(candidate)
    frontier.sort(key=lambda p: (p.latency_ns, p.energy_pj, p.label))
    return frontier


@dataclass(frozen=True)
class SweepSpace:
    """A named config space evaluated on one workload.

    Attributes:
        name: space name (for reports and benches).
        knobs: ordered knob name -> candidate values.
        build_accelerator: knob values -> configured accelerator.
        build_workload: materializes the reference workload (called once
            per sweep when memoizing; per point in the naive baseline).
        label: knob values -> human-readable point label.
        corners: optional corner axis — named execution contexts every
            knob setting is additionally evaluated at (see
            :func:`with_corners`).  Empty = nominal-only, the classic
            sweep.
    """

    name: str
    knobs: Tuple[Tuple[str, Tuple[Any, ...]], ...]
    build_accelerator: Callable[[Dict[str, Any]], Accelerator]
    build_workload: Callable[[], Workload]
    label: Callable[[Dict[str, Any]], str]
    corners: Tuple[Tuple[str, Optional[ExecutionContext]], ...] = ()

    @staticmethod
    def ordered_knobs(
        knobs: Mapping[str, Sequence[Any]]
    ) -> Tuple[Tuple[str, Tuple[Any, ...]], ...]:
        """Normalize a knob mapping into the hashable internal form."""
        return tuple((name, tuple(values)) for name, values in knobs.items())

    def enumerate(self) -> List[Dict[str, Any]]:
        """All knob combinations, in deterministic grid order."""
        if not self.knobs:
            raise ConfigurationError(f"sweep space {self.name!r} has no knobs")
        names = [name for name, _ in self.knobs]
        grids = [values for _, values in self.knobs]
        if any(len(values) == 0 for values in grids):
            raise ConfigurationError(
                f"sweep space {self.name!r} has an empty knob grid"
            )
        return [
            dict(zip(names, combo)) for combo in itertools.product(*grids)
        ]

    @property
    def num_points(self) -> int:
        """Grid size (including the corner axis, when present)."""
        size = 1
        for _, values in self.knobs:
            size *= len(values)
        return size * max(1, len(self.corners))

    def evaluations(self) -> List[Tuple[Dict[str, Any], str, Optional[ExecutionContext]]]:
        """All (knobs, label, context) evaluations of this space.

        Without corners this is the plain knob grid at the nominal
        context; with corners every knob setting is repeated per corner,
        the label gains an ``@corner`` suffix and the knob dict a
        ``corner`` entry.
        """
        evaluations = []
        for knobs in self.enumerate():
            if not self.corners:
                evaluations.append((knobs, self.label(knobs), None))
                continue
            for corner_name, ctx in self.corners:
                corner_knobs = dict(knobs, corner=corner_name)
                evaluations.append(
                    (corner_knobs, f"{self.label(knobs)}@{corner_name}", ctx)
                )
        return evaluations


def with_corners(
    space: SweepSpace, corners: Mapping[str, Optional[ExecutionContext]]
) -> SweepSpace:
    """A sweep space extended with a corner axis.

    Every knob setting is evaluated once per named execution context —
    fabrication-process corners become one more swept dimension, so the
    Pareto analysis sees nominal and corner behaviour side by side::

        space = with_corners(tron_sweep_space(), standard_corners())
    """
    if not corners:
        raise ConfigurationError("need at least one corner")
    return replace(space, corners=tuple(corners.items()))


def run_sweep(
    space: SweepSpace,
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
    memoize: bool = True,
) -> List[SweepPoint]:
    """Evaluate every point of a sweep space.

    With ``memoize`` (the default) the workload materializes once and the
    engine's device-physics curves persist across points; points then
    evaluate concurrently (``parallel`` defaults to True).
    ``memoize=False`` is the naive baseline the benchmarks compare
    against: every point re-materializes its workload and recomputes the
    physics curves, **strictly sequentially** — requesting
    ``parallel=True`` with it is a contradiction and raises.
    """
    evaluations = space.evaluations()

    if not memoize:
        if parallel:
            raise ConfigurationError(
                "memoize=False is the sequential per-point baseline; "
                "it cannot run in parallel (the physics cache is cleared "
                "per point)"
            )
        points = []
        for knobs, label, ctx in evaluations:
            clear_physics_cache()
            workload = space.build_workload()
            report = space.build_accelerator(knobs).run(workload, ctx=ctx)
            points.append(SweepPoint(label=label, knobs=knobs, report=report))
        return points

    workload = space.build_workload()
    workload.materialize()  # once, outside the worker pool

    def evaluate(evaluation) -> SweepPoint:
        knobs, label, ctx = evaluation
        report = space.build_accelerator(knobs).run(workload, ctx=ctx)
        return SweepPoint(label=label, knobs=knobs, report=report)

    if parallel is None:
        parallel = True
    if parallel and len(evaluations) > 1:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(evaluate, evaluations))
    return [evaluate(evaluation) for evaluation in evaluations]


def combined_sweep(
    spaces: Sequence[SweepSpace],
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
    memoize: bool = True,
) -> Dict[str, List[SweepPoint]]:
    """Run several sweep spaces, sharing the memoized engine state."""
    return {
        space.name: run_sweep(
            space, parallel=parallel, max_workers=max_workers, memoize=memoize
        )
        for space in spaces
    }


# ----------------------------------------------------------------------
# The classic TRON / GHOST spaces
# ----------------------------------------------------------------------


def tron_sweep_space(
    head_units: Sequence[int] = (4, 8, 16),
    array_sizes: Sequence[int] = (32, 64, 128),
    clocks_ghz: Sequence[float] = (2.5, 5.0),
    batch: int = 8,
    model_factory: Callable = bert_base,
) -> SweepSpace:
    """TRON's structural knobs on a transformer workload."""

    def build(knobs: Dict[str, Any]) -> TRON:
        return TRON(
            TRONConfig(
                num_head_units=int(knobs["head_units"]),
                array_rows=int(knobs["array_size"]),
                array_cols=int(knobs["array_size"]),
                clock_ghz=float(knobs["clock_ghz"]),
                batch=batch,
            )
        )

    return SweepSpace(
        name="tron",
        knobs=SweepSpace.ordered_knobs(
            {
                "head_units": head_units,
                "array_size": array_sizes,
                "clock_ghz": clocks_ghz,
            }
        ),
        build_accelerator=build,
        build_workload=lambda: TransformerWorkload(model=model_factory()),
        label=lambda knobs: (
            f"H{knobs['head_units']}/A{knobs['array_size']}/"
            f"{knobs['clock_ghz']:.1f}GHz"
        ),
    )


def ghost_sweep_space(
    lanes: Sequence[int] = (8, 16, 32),
    edge_units: Sequence[int] = (16, 32, 64),
    dataset: str = "cora",
    hidden_dim: int = 64,
) -> SweepSpace:
    """GHOST's structural knobs on a GCN workload."""

    def build(knobs: Dict[str, Any]) -> GHOST:
        return GHOST(
            GHOSTConfig(
                lanes=int(knobs["lanes"]), edge_units=int(knobs["edge_units"])
            )
        )

    return SweepSpace(
        name="ghost",
        knobs=SweepSpace.ordered_knobs(
            {"lanes": lanes, "edge_units": edge_units}
        ),
        build_accelerator=build,
        build_workload=lambda: make_gnn_workload(
            GNNKind.GCN,
            dataset,
            hidden_dim=hidden_dim,
            rng_seed=0,
            name=f"GCN-{dataset}",
        ),
        label=lambda knobs: f"V{knobs['lanes']}/N{knobs['edge_units']}",
    )


def sweep_tron(
    head_units: Sequence[int] = (4, 8, 16),
    array_sizes: Sequence[int] = (32, 64, 128),
    clocks_ghz: Sequence[float] = (2.5, 5.0),
    batch: int = 8,
    model_factory: Callable = bert_base,
) -> List[SweepPoint]:
    """Sweep TRON's structural knobs on a transformer workload."""
    return run_sweep(
        tron_sweep_space(
            head_units=head_units,
            array_sizes=array_sizes,
            clocks_ghz=clocks_ghz,
            batch=batch,
            model_factory=model_factory,
        )
    )


def sweep_ghost(
    lanes: Sequence[int] = (8, 16, 32),
    edge_units: Sequence[int] = (16, 32, 64),
    dataset: str = "cora",
    hidden_dim: int = 64,
) -> List[SweepPoint]:
    """Sweep GHOST's structural knobs on a GCN workload."""
    return run_sweep(
        ghost_sweep_space(
            lanes=lanes,
            edge_units=edge_units,
            dataset=dataset,
            hidden_dim=hidden_dim,
        )
    )


def format_sweep(points: Sequence[SweepPoint], frontier: Sequence[SweepPoint]) -> str:
    """Text table of a sweep with Pareto points marked."""
    on_frontier = {id(p) for p in frontier}
    lines = [
        f"{'config':>18s} {'latency (us)':>13s} {'energy (uJ)':>12s} "
        f"{'GOPS':>12s} {'pareto':>7s}"
    ]
    for point in sorted(points, key=lambda p: p.latency_ns):
        marker = "*" if id(point) in on_frontier else ""
        lines.append(
            f"{point.label:>18s} {point.latency_ns / 1e3:>13.2f} "
            f"{point.energy_pj / 1e6:>12.2f} {point.report.gops:>12.1f} "
            f"{marker:>7s}"
        )
    return "\n".join(lines)
