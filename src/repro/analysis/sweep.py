"""Accelerator design-space sweeps and Pareto analysis.

Section VI: "The specific architectural details of each hardware
accelerator ... were determined through detailed design-space analysis."
This module replays that analysis: sweep TRON and GHOST configurations
over their main structural knobs, evaluate each on a reference workload,
and extract the latency-energy Pareto frontier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.ghost import GHOST, GHOSTConfig
from repro.core.reports import RunReport
from repro.core.tron import TRON, TRONConfig
from repro.errors import ConfigurationError
from repro.graphs.datasets import get_dataset_stats, synthesize_dataset
from repro.nn.gnn import GNNKind, make_gnn
from repro.nn.models import bert_base


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated configuration.

    Attributes:
        label: human-readable knob setting.
        knobs: the swept parameter values.
        report: the workload RunReport at this configuration.
    """

    label: str
    knobs: Dict[str, float]
    report: RunReport

    @property
    def latency_ns(self) -> float:
        return self.report.latency_ns

    @property
    def energy_pj(self) -> float:
        return self.report.energy_pj


def pareto_frontier(points: Sequence[SweepPoint]) -> List[SweepPoint]:
    """Latency-energy Pareto-optimal subset (both minimized).

    A point survives if no other point is at least as good on both axes
    and strictly better on one.
    """
    if not points:
        raise ConfigurationError("need at least one sweep point")
    frontier = []
    for candidate in points:
        dominated = any(
            other.latency_ns <= candidate.latency_ns
            and other.energy_pj <= candidate.energy_pj
            and (
                other.latency_ns < candidate.latency_ns
                or other.energy_pj < candidate.energy_pj
            )
            for other in points
        )
        if not dominated:
            frontier.append(candidate)
    frontier.sort(key=lambda p: p.latency_ns)
    return frontier


def sweep_tron(
    head_units: Sequence[int] = (4, 8, 16),
    array_sizes: Sequence[int] = (32, 64, 128),
    clocks_ghz: Sequence[float] = (2.5, 5.0),
    batch: int = 8,
    model_factory: Callable = bert_base,
) -> List[SweepPoint]:
    """Sweep TRON's structural knobs on a transformer workload."""
    model = model_factory()
    points = []
    for units in head_units:
        for size in array_sizes:
            for clock in clocks_ghz:
                config = TRONConfig(
                    num_head_units=units,
                    array_rows=size,
                    array_cols=size,
                    clock_ghz=clock,
                    batch=batch,
                )
                report = TRON(config).run_transformer(model)
                points.append(
                    SweepPoint(
                        label=f"H{units}/A{size}/{clock:.1f}GHz",
                        knobs={
                            "head_units": units,
                            "array_size": size,
                            "clock_ghz": clock,
                        },
                        report=report,
                    )
                )
    return points


def sweep_ghost(
    lanes: Sequence[int] = (8, 16, 32),
    edge_units: Sequence[int] = (16, 32, 64),
    dataset: str = "cora",
    hidden_dim: int = 64,
) -> List[SweepPoint]:
    """Sweep GHOST's structural knobs on a GCN workload."""
    stats = get_dataset_stats(dataset)
    graph, _ = synthesize_dataset(stats, rng=np.random.default_rng(0))
    model = make_gnn(
        GNNKind.GCN,
        in_dim=stats.feature_dim,
        out_dim=stats.num_classes,
        hidden_dim=hidden_dim,
        name=f"GCN-{dataset}",
    )
    points = []
    for v in lanes:
        for n in edge_units:
            config = GHOSTConfig(lanes=v, edge_units=n)
            report = GHOST(config).run_gnn(model.config, graph)
            points.append(
                SweepPoint(
                    label=f"V{v}/N{n}",
                    knobs={"lanes": v, "edge_units": n},
                    report=report,
                )
            )
    return points


def format_sweep(points: Sequence[SweepPoint], frontier: Sequence[SweepPoint]) -> str:
    """Text table of a sweep with Pareto points marked."""
    on_frontier = {id(p) for p in frontier}
    lines = [
        f"{'config':>18s} {'latency (us)':>13s} {'energy (uJ)':>12s} "
        f"{'GOPS':>12s} {'pareto':>7s}"
    ]
    for point in sorted(points, key=lambda p: p.latency_ns):
        marker = "*" if id(point) in on_frontier else ""
        lines.append(
            f"{point.label:>18s} {point.latency_ns / 1e3:>13.2f} "
            f"{point.energy_pj / 1e6:>12.2f} {point.report.gops:>12.1f} "
            f"{marker:>7s}"
        )
    return "\n".join(lines)
