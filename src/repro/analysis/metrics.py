"""Cross-platform comparison tables built from RunReports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.reports import RunReport
from repro.errors import ConfigurationError


@dataclass
class ComparisonTable:
    """A (platform x workload) grid of RunReports with metric views.

    Attributes:
        metric: 'gops' or 'epb' — which RunReport property the value
            views expose.
    """

    metric: str = "gops"
    _reports: Dict[str, Dict[str, RunReport]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.metric not in ("gops", "epb"):
            raise ConfigurationError(
                f"metric must be 'gops' or 'epb', got {self.metric!r}"
            )

    def add(self, report: RunReport) -> None:
        """Insert one report into the grid."""
        self._reports.setdefault(report.platform, {})[report.workload] = report

    @property
    def platforms(self) -> List[str]:
        """Platforms in insertion order."""
        return list(self._reports)

    @property
    def workloads(self) -> List[str]:
        """Union of workloads across platforms, in first-seen order."""
        seen: Dict[str, None] = {}
        for by_workload in self._reports.values():
            for workload in by_workload:
                seen.setdefault(workload)
        return list(seen)

    def report(self, platform: str, workload: str) -> RunReport:
        """Fetch one cell; raises with a helpful message if missing."""
        try:
            return self._reports[platform][workload]
        except KeyError:
            raise ConfigurationError(
                f"no report for ({platform!r}, {workload!r}); have platforms "
                f"{self.platforms} and workloads {self.workloads}"
            ) from None

    def value(self, platform: str, workload: str) -> float:
        """The configured metric for one cell."""
        report = self.report(platform, workload)
        return report.gops if self.metric == "gops" else report.epb_pj

    def row(self, platform: str) -> Dict[str, float]:
        """{workload: value} for one platform."""
        return {
            workload: self.value(platform, workload)
            for workload in self._reports.get(platform, {})
        }

    def geomean(self, platform: str) -> float:
        """Geometric mean of the metric across the platform's workloads."""
        values = list(self.row(platform).values())
        if not values:
            raise ConfigurationError(f"no reports for platform {platform!r}")
        product = 1.0
        for value in values:
            product *= value
        return product ** (1.0 / len(values))

    def format(self) -> str:
        """Fixed-width text table (what the benches print)."""
        workloads = self.workloads
        header = f"{'platform':>14s} | " + " | ".join(
            f"{w[:16]:>16s}" for w in workloads
        )
        lines = [header, "-" * len(header)]
        for platform in self.platforms:
            cells = []
            for workload in workloads:
                try:
                    cells.append(f"{self.value(platform, workload):16.4f}")
                except ConfigurationError:
                    cells.append(f"{'-':>16s}")
            lines.append(f"{platform:>14s} | " + " | ".join(cells))
        return "\n".join(lines)


def speedup_over_best_baseline(
    table: ComparisonTable, ours: str, higher_is_better: Optional[bool] = None
) -> Dict[str, float]:
    """Per-workload ratio of ``ours`` vs. the *strongest* other platform.

    For throughput (gops) the ratio is ours/best-baseline; for EPB (lower
    is better) it is best-baseline/ours.  Both therefore read ">= 1 means
    we win by that factor".
    """
    if higher_is_better is None:
        higher_is_better = table.metric == "gops"
    results: Dict[str, float] = {}
    for workload in table.workloads:
        our_value = table.value(ours, workload)
        baseline_values = [
            table.value(platform, workload)
            for platform in table.platforms
            if platform != ours
        ]
        if not baseline_values:
            raise ConfigurationError("no baseline platforms in the table")
        if higher_is_better:
            results[workload] = our_value / max(baseline_values)
        else:
            results[workload] = min(baseline_values) / our_value
    return results
