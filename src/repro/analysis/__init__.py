"""Analysis layer: metrics, figures, claims, sweeps and robustness.

- :mod:`repro.analysis.metrics` — cross-platform comparison tables.
- :mod:`repro.analysis.figures` — regenerates the data series behind the
  paper's Figs. 8-11.
- :mod:`repro.analysis.claims` — evaluates the headline claims (>=10.2x
  throughput / >=3.8x energy efficiency overall; >=14x / >=8x for TRON)
  plus the streaming-extension floors (decode / temporal regimes).
- :mod:`repro.analysis.sweep` — the workload-agnostic design-space sweep
  engine (with an execution-corner axis).
- :mod:`repro.analysis.robustness` — vectorized Monte-Carlo variation
  analysis and the yield-aware Pareto frontier.
"""

from repro.analysis.metrics import ComparisonTable, speedup_over_best_baseline
from repro.analysis.robustness import (
    MonteCarloResult,
    RobustPoint,
    monte_carlo_sweep,
    run_monte_carlo,
    yield_aware_pareto,
)
from repro.analysis.figures import (
    FigureData,
    ext_decode_epb,
    ext_decode_gops,
    ext_temporal_epb,
    ext_temporal_gops,
    fig8_llm_epb,
    fig9_llm_gops,
    fig10_gnn_epb,
    fig11_gnn_gops,
    DECODE_WORKLOADS,
    LLM_WORKLOADS,
    GNN_WORKLOADS,
    TEMPORAL_WORKLOADS,
)
from repro.analysis.claims import (
    ClaimCheck,
    check_headline_claims,
    check_streaming_claims,
)

__all__ = [
    "ComparisonTable",
    "speedup_over_best_baseline",
    "FigureData",
    "ext_decode_epb",
    "ext_decode_gops",
    "ext_temporal_epb",
    "ext_temporal_gops",
    "fig8_llm_epb",
    "fig9_llm_gops",
    "fig10_gnn_epb",
    "fig11_gnn_gops",
    "DECODE_WORKLOADS",
    "LLM_WORKLOADS",
    "GNN_WORKLOADS",
    "TEMPORAL_WORKLOADS",
    "ClaimCheck",
    "check_headline_claims",
    "check_streaming_claims",
    "MonteCarloResult",
    "RobustPoint",
    "monte_carlo_sweep",
    "run_monte_carlo",
    "yield_aware_pareto",
]
