"""Headline-claim evaluation.

The paper's abstract: "both hardware accelerators achieve at least 10.2x
throughput improvement and 3.8x better energy efficiency over multiple
state-of-the-art electronic hardware accelerators"; Section VI sharpens
the TRON numbers to "at least 14x better throughput and 8x better energy
efficiency" and GHOST's to "a minimum of 10.2x ... and 3.8x".

:func:`check_headline_claims` regenerates all four figures and evaluates
these minima, producing the record EXPERIMENTS.md tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.figures import (
    FigureData,
    ext_decode_epb,
    ext_decode_gops,
    ext_temporal_epb,
    ext_temporal_gops,
    fig8_llm_epb,
    fig9_llm_gops,
    fig10_gnn_epb,
    fig11_gnn_gops,
)

#: Paper-claimed minima per figure.
PAPER_CLAIMS = {
    "Fig. 8": 8.0,  # TRON energy efficiency
    "Fig. 9": 14.0,  # TRON throughput
    "Fig. 10": 3.8,  # GHOST energy efficiency
    "Fig. 11": 10.2,  # GHOST throughput
}

#: Streaming-extension floors.  Not paper claims — the paper's figures
#: cover batch inference only.  These gate the repo's own finding: the
#: headline wins *narrow* in the streaming regimes (low-intensity KV
#: decode steps, repeated sparse aggregation over snapshots) but never
#: invert, and the floors sit just under the measured minima so a cost-
#: model regression that erodes them further fails ``repro claims``.
STREAMING_CLAIMS = {
    "Ext. decode EPB": 3.8,  # measured >= 4.0x
    "Ext. decode GOPS": 1.5,  # measured >= 1.7x
    "Ext. temporal EPB": 1.5,  # measured >= 1.6x
    "Ext. temporal GOPS": 3.0,  # measured >= 3.4x
}


@dataclass(frozen=True)
class ClaimCheck:
    """Paper-claimed vs. measured minimum win ratio for one figure."""

    figure: str
    metric: str
    claimed_min_ratio: float
    measured_min_ratio: float

    @property
    def holds(self) -> bool:
        """Whether the measured minimum meets the paper's claim."""
        return self.measured_min_ratio >= self.claimed_min_ratio

    def format(self) -> str:
        status = "OK " if self.holds else "MISS"
        return (
            f"[{status}] {self.figure} ({self.metric}): paper >= "
            f"{self.claimed_min_ratio:.1f}x, measured >= "
            f"{self.measured_min_ratio:.1f}x"
        )


def check_headline_claims() -> List[ClaimCheck]:
    """Regenerate Figs. 8-11 and evaluate the paper's minima."""
    figures: Dict[str, FigureData] = {
        "Fig. 8": fig8_llm_epb(),
        "Fig. 9": fig9_llm_gops(),
        "Fig. 10": fig10_gnn_epb(),
        "Fig. 11": fig11_gnn_gops(),
    }
    checks = []
    for name, data in figures.items():
        checks.append(
            ClaimCheck(
                figure=name,
                metric=data.metric,
                claimed_min_ratio=PAPER_CLAIMS[name],
                measured_min_ratio=data.min_win_ratio(),
            )
        )
    return checks


def check_streaming_claims() -> List[ClaimCheck]:
    """Regenerate the streaming-extension figures and gate their floors."""
    figures: Dict[str, FigureData] = {
        "Ext. decode EPB": ext_decode_epb(),
        "Ext. decode GOPS": ext_decode_gops(),
        "Ext. temporal EPB": ext_temporal_epb(),
        "Ext. temporal GOPS": ext_temporal_gops(),
    }
    checks = []
    for name, data in figures.items():
        checks.append(
            ClaimCheck(
                figure=name,
                metric=data.metric,
                claimed_min_ratio=STREAMING_CLAIMS[name],
                measured_min_ratio=data.min_win_ratio(),
            )
        )
    return checks
