"""Model zoo: the transformer configurations evaluated in Figs. 8 and 9.

The TRON evaluation (paper Section VI, inherited from GLSVLSI'23) spans
encoder-only LLMs (BERT family), decoder-only LLMs (GPT family) and
vision transformers.  Shape parameters follow the original publications
(Devlin et al. 2018; Radford et al. 2019; Dosovitskiy et al. 2020).
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigurationError
from repro.nn.transformer import TransformerConfig, TransformerKind


def bert_base(seq_len: int = 512) -> TransformerConfig:
    """BERT-Base: 12 layers, 768 wide, 12 heads, 3072 FF."""
    return TransformerConfig(
        name="BERT-base",
        kind=TransformerKind.ENCODER_ONLY,
        num_layers=12,
        d_model=768,
        num_heads=12,
        d_ff=3072,
        seq_len=seq_len,
        vocab_size=30522,
    )


def bert_large(seq_len: int = 512) -> TransformerConfig:
    """BERT-Large: 24 layers, 1024 wide, 16 heads, 4096 FF."""
    return TransformerConfig(
        name="BERT-large",
        kind=TransformerKind.ENCODER_ONLY,
        num_layers=24,
        d_model=1024,
        num_heads=16,
        d_ff=4096,
        seq_len=seq_len,
        vocab_size=30522,
    )


def gpt2_small(seq_len: int = 1024) -> TransformerConfig:
    """GPT-2 (small): 12 decoder layers, 768 wide, 12 heads."""
    return TransformerConfig(
        name="GPT-2",
        kind=TransformerKind.DECODER_ONLY,
        num_layers=12,
        d_model=768,
        num_heads=12,
        d_ff=3072,
        seq_len=seq_len,
        vocab_size=50257,
    )


def vit_base(seq_len: int = 197) -> TransformerConfig:
    """ViT-Base/16: 12 encoder layers over 196 patches + CLS token."""
    return TransformerConfig(
        name="ViT-base",
        kind=TransformerKind.VISION,
        num_layers=12,
        d_model=768,
        num_heads=12,
        d_ff=3072,
        seq_len=seq_len,
        vocab_size=768,  # patch projection, not a token vocabulary
    )


def distilbert(seq_len: int = 512) -> TransformerConfig:
    """DistilBERT: the 6-layer distilled BERT variant."""
    return TransformerConfig(
        name="DistilBERT",
        kind=TransformerKind.ENCODER_ONLY,
        num_layers=6,
        d_model=768,
        num_heads=12,
        d_ff=3072,
        seq_len=seq_len,
        vocab_size=30522,
    )


def vit_large(seq_len: int = 197) -> TransformerConfig:
    """ViT-Large/16: 24 encoder layers, 1024 wide."""
    return TransformerConfig(
        name="ViT-large",
        kind=TransformerKind.VISION,
        num_layers=24,
        d_model=1024,
        num_heads=16,
        d_ff=4096,
        seq_len=seq_len,
        vocab_size=1024,
    )


#: The workload set used by the Fig. 8 / Fig. 9 benches.
MODEL_ZOO: Dict[str, TransformerConfig] = {
    config.name: config
    for config in (
        bert_base(),
        bert_large(),
        gpt2_small(),
        vit_base(),
        distilbert(),
        vit_large(),
    )
}


def get_model_config(name: str) -> TransformerConfig:
    """Look up a zoo model by name.

    Raises:
        ConfigurationError: for unknown names (message lists valid ones).
    """
    try:
        return MODEL_ZOO[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown model {name!r}; known models: {sorted(MODEL_ZOO)}"
        ) from None
