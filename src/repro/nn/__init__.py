"""Neural-network functional layer (pure numpy).

Provides the workloads both accelerators run: transformer encoder/decoder
models used by LLMs (BERT / GPT / ViT families, Section II) and the GNN
models GHOST targets (GCN, GraphSAGE, GIN, GAT — Section III), plus the
8-bit quantization the paper adopts (Section VI) and the op/byte counting
that drives every performance model in the library.

Weights are synthetic (seeded, realistically scaled): accelerator cost
depends on tensor *shapes*, not values — see DESIGN.md section 1.
"""

from repro.nn.ops import (
    gelu,
    layer_norm,
    linear,
    relu,
    scaled_dot_product_attention,
    softmax,
)
from repro.nn.quantization import (
    QuantizedTensor,
    dequantize,
    quantize_symmetric,
    quantization_error,
)
from repro.nn.attention import MultiHeadAttention
from repro.nn.transformer import (
    TransformerConfig,
    TransformerEncoderLayer,
    TransformerModel,
)
from repro.nn.models import (
    MODEL_ZOO,
    bert_base,
    bert_large,
    gpt2_small,
    vit_base,
    get_model_config,
)
from repro.nn.gnn import (
    GNNConfig,
    GCNLayer,
    GraphSAGELayer,
    GINLayer,
    GATLayer,
    GNNModel,
    make_gnn,
)
from repro.nn.counting import (
    OpCount,
    transformer_op_count,
    gnn_op_count,
)

__all__ = [
    "gelu",
    "layer_norm",
    "linear",
    "relu",
    "scaled_dot_product_attention",
    "softmax",
    "QuantizedTensor",
    "dequantize",
    "quantize_symmetric",
    "quantization_error",
    "MultiHeadAttention",
    "TransformerConfig",
    "TransformerEncoderLayer",
    "TransformerModel",
    "MODEL_ZOO",
    "bert_base",
    "bert_large",
    "gpt2_small",
    "vit_base",
    "get_model_config",
    "GNNConfig",
    "GCNLayer",
    "GraphSAGELayer",
    "GINLayer",
    "GATLayer",
    "GNNModel",
    "make_gnn",
    "OpCount",
    "transformer_op_count",
    "gnn_op_count",
]
