"""Transformer models: configs and functional forward passes (Section II).

Covers the three families the paper names: encoder-only (BERT),
decoder-only (GPT), and vision transformers (ViT: encoder stack + MLP
head).  A config carries the shape parameters every cost model needs; a
model instance additionally materializes seeded synthetic weights for
functional simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.attention import MultiHeadAttention
from repro.nn.ops import causal_mask, gelu, layer_norm, linear, relu


class TransformerKind(Enum):
    """Which architectural family a config belongs to."""

    ENCODER_ONLY = "encoder-only"  # BERT-like
    DECODER_ONLY = "decoder-only"  # GPT-like
    VISION = "vision"  # ViT-like


@dataclass(frozen=True)
class TransformerConfig:
    """Shape description of a transformer model.

    Attributes:
        name: human-readable model name.
        kind: architectural family.
        num_layers: stacked encoder or decoder layers N.
        d_model: embedding width.
        num_heads: attention heads H per layer.
        d_ff: feed-forward hidden width.
        seq_len: evaluation sequence length (tokens or patches).
        vocab_size: vocabulary (or patch-projection input) size; only used
            for parameter counting of the embedding, which stays in memory.
    """

    name: str
    kind: TransformerKind
    num_layers: int
    d_model: int
    num_heads: int
    d_ff: int
    seq_len: int
    vocab_size: int = 30522

    def __post_init__(self) -> None:
        for attr in ("num_layers", "d_model", "num_heads", "d_ff", "seq_len"):
            if getattr(self, attr) < 1:
                raise ConfigurationError(f"{attr} must be >= 1")
        if self.d_model % self.num_heads != 0:
            raise ConfigurationError(
                f"d_model {self.d_model} not divisible by num_heads "
                f"{self.num_heads}"
            )

    @property
    def d_k(self) -> int:
        """Per-head dimension."""
        return self.d_model // self.num_heads

    @property
    def parameter_count(self) -> int:
        """Trainable parameters in the layer stack (excl. embeddings)."""
        per_layer = 4 * self.d_model * self.d_model  # Q, K, V, O
        per_layer += 2 * self.d_model * self.d_ff  # FF up + down
        per_layer += 2 * 2 * self.d_model  # two LayerNorms (gamma, beta)
        per_layer += self.d_ff + self.d_model  # FF biases
        return self.num_layers * per_layer


@dataclass
class TransformerEncoderLayer:
    """One encoder layer: MHA + residual + LN, FF + residual + LN (Fig. 1)."""

    d_model: int
    num_heads: int
    d_ff: int
    activation: str = "gelu"
    rng_seed: int = 0
    mha: MultiHeadAttention = field(init=False, repr=False)
    w_ff1: np.ndarray = field(init=False, repr=False)
    b_ff1: np.ndarray = field(init=False, repr=False)
    w_ff2: np.ndarray = field(init=False, repr=False)
    b_ff2: np.ndarray = field(init=False, repr=False)
    ln1_gamma: np.ndarray = field(init=False, repr=False)
    ln1_beta: np.ndarray = field(init=False, repr=False)
    ln2_gamma: np.ndarray = field(init=False, repr=False)
    ln2_beta: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.activation not in ("gelu", "relu"):
            raise ConfigurationError(
                f"activation must be 'gelu' or 'relu', got {self.activation!r}"
            )
        rng = np.random.default_rng(self.rng_seed)
        self.mha = MultiHeadAttention(
            d_model=self.d_model, num_heads=self.num_heads, rng_seed=self.rng_seed
        )
        scale_in = 1.0 / np.sqrt(self.d_model)
        scale_hidden = 1.0 / np.sqrt(self.d_ff)
        self.w_ff1 = rng.normal(0.0, scale_in, (self.d_ff, self.d_model))
        self.b_ff1 = np.zeros(self.d_ff)
        self.w_ff2 = rng.normal(0.0, scale_hidden, (self.d_model, self.d_ff))
        self.b_ff2 = np.zeros(self.d_model)
        self.ln1_gamma = np.ones(self.d_model)
        self.ln1_beta = np.zeros(self.d_model)
        self.ln2_gamma = np.ones(self.d_model)
        self.ln2_beta = np.zeros(self.d_model)

    def feed_forward(self, x: np.ndarray) -> np.ndarray:
        """Two dense layers with the configured activation in between."""
        hidden = linear(x, self.w_ff1, self.b_ff1)
        hidden = gelu(hidden) if self.activation == "gelu" else relu(hidden)
        return linear(hidden, self.w_ff2, self.b_ff2)

    def forward(self, x: np.ndarray, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Post-norm layer: LN(x + MHA(x)), then LN(· + FF(·))."""
        attended = self.mha.forward(x, mask=mask)
        x = layer_norm(x + attended, self.ln1_gamma, self.ln1_beta)
        ff_out = self.feed_forward(x)
        return layer_norm(x + ff_out, self.ln2_gamma, self.ln2_beta)


@dataclass
class TransformerModel:
    """A stack of layers realizing a :class:`TransformerConfig`.

    Decoder-only configs get a causal mask automatically; vision configs
    append a two-layer MLP head, mirroring the paper's description of ViT
    ("N encoder layers followed by a multi-layer perceptron").
    """

    config: TransformerConfig
    rng_seed: int = 0
    layers: List[TransformerEncoderLayer] = field(init=False, repr=False)
    mlp_head_w1: Optional[np.ndarray] = field(init=False, repr=False, default=None)
    mlp_head_w2: Optional[np.ndarray] = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        activation = "gelu" if self.config.kind is not TransformerKind.VISION else "gelu"
        self.layers = [
            TransformerEncoderLayer(
                d_model=self.config.d_model,
                num_heads=self.config.num_heads,
                d_ff=self.config.d_ff,
                activation=activation,
                rng_seed=self.rng_seed + i,
            )
            for i in range(self.config.num_layers)
        ]
        if self.config.kind is TransformerKind.VISION:
            rng = np.random.default_rng(self.rng_seed + 1000)
            scale = 1.0 / np.sqrt(self.config.d_model)
            self.mlp_head_w1 = rng.normal(
                0.0, scale, (self.config.d_ff, self.config.d_model)
            )
            self.mlp_head_w2 = rng.normal(
                0.0, 1.0 / np.sqrt(self.config.d_ff), (1000, self.config.d_ff)
            )

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the layer stack (and ViT head when applicable).

        Args:
            x: (seq_len, d_model) embedded input.

        Returns:
            (seq_len, d_model) hidden states, or (1000,) class logits for
            vision configs (from the first token, as in ViT's CLS token).
        """
        x = np.asarray(x, dtype=float)
        if x.shape != (self.config.seq_len, self.config.d_model):
            raise ConfigurationError(
                f"expected input shape ({self.config.seq_len}, "
                f"{self.config.d_model}), got {x.shape}"
            )
        mask = None
        if self.config.kind is TransformerKind.DECODER_ONLY:
            mask = causal_mask(self.config.seq_len)
        for layer in self.layers:
            x = layer.forward(x, mask=mask)
        if self.config.kind is TransformerKind.VISION:
            cls = x[0]
            hidden = gelu(linear(cls, self.mlp_head_w1))
            return linear(hidden, self.mlp_head_w2)
        return x

    def sample_input(self, rng_seed: int = 42) -> np.ndarray:
        """A realistic (unit-variance) embedded input for this config."""
        rng = np.random.default_rng(rng_seed)
        return rng.normal(0.0, 1.0, (self.config.seq_len, self.config.d_model))
