"""Core numpy tensor operations used by the functional models.

These are the reference ("golden") implementations the photonic datapaths
are validated against: every optical unit in :mod:`repro.core` must
produce the same numbers as these functions up to the analog noise model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def linear(x: np.ndarray, weight: np.ndarray, bias=None) -> np.ndarray:
    """Affine layer: x @ weight.T + bias.

    Args:
        x: (..., in_features) input.
        weight: (out_features, in_features) weight matrix.
        bias: optional (out_features,) bias.
    """
    x = np.asarray(x, dtype=float)
    weight = np.asarray(weight, dtype=float)
    if weight.ndim != 2:
        raise ConfigurationError(f"weight must be 2-D, got shape {weight.shape}")
    if x.shape[-1] != weight.shape[1]:
        raise ConfigurationError(
            f"input features {x.shape[-1]} != weight in_features {weight.shape[1]}"
        )
    out = x @ weight.T
    if bias is not None:
        bias = np.asarray(bias, dtype=float)
        if bias.shape != (weight.shape[0],):
            raise ConfigurationError(
                f"bias shape {bias.shape} != ({weight.shape[0]},)"
            )
        out = out + bias
    return out


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(np.asarray(x, dtype=float), 0.0)


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation, as in BERT/GPT)."""
    x = np.asarray(x, dtype=float)
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along an axis."""
    x = np.asarray(x, dtype=float)
    shifted = x - x.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=axis, keepdims=True)


def layer_norm(
    x: np.ndarray, gamma=None, beta=None, eps: float = 1e-5
) -> np.ndarray:
    """Layer normalization over the last axis."""
    x = np.asarray(x, dtype=float)
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    normed = (x - mean) / np.sqrt(var + eps)
    if gamma is not None:
        normed = normed * np.asarray(gamma, dtype=float)
    if beta is not None:
        normed = normed + np.asarray(beta, dtype=float)
    return normed


def scaled_dot_product_attention(
    q: np.ndarray, k: np.ndarray, v: np.ndarray, mask=None
) -> np.ndarray:
    """The paper's equation (1): softmax(Q K^T / sqrt(d_k)) V.

    Args:
        q: (..., seq_q, d_k) queries.
        k: (..., seq_k, d_k) keys.
        v: (..., seq_k, d_v) values.
        mask: optional boolean array broadcastable to (..., seq_q, seq_k);
            True marks positions that may attend (False positions are
            masked to -inf before the softmax), as in causal GPT decoding.

    Returns:
        (..., seq_q, d_v) attention output.
    """
    q = np.asarray(q, dtype=float)
    k = np.asarray(k, dtype=float)
    v = np.asarray(v, dtype=float)
    if q.shape[-1] != k.shape[-1]:
        raise ConfigurationError(
            f"query dim {q.shape[-1]} != key dim {k.shape[-1]}"
        )
    if k.shape[-2] != v.shape[-2]:
        raise ConfigurationError(
            f"key length {k.shape[-2]} != value length {v.shape[-2]}"
        )
    d_k = q.shape[-1]
    scores = q @ np.swapaxes(k, -1, -2) / np.sqrt(d_k)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        scores = np.where(mask, scores, -1e30)
    weights = softmax(scores, axis=-1)
    return weights @ v


def causal_mask(seq_len: int) -> np.ndarray:
    """Lower-triangular attention mask for autoregressive decoding."""
    if seq_len < 1:
        raise ConfigurationError(f"sequence length must be >= 1, got {seq_len}")
    return np.tril(np.ones((seq_len, seq_len), dtype=bool))
