"""Operation and byte counting for transformers and GNNs.

Every performance number in the library — TRON's and GHOST's latency and
energy, the baselines' roofline estimates, the GOPS and EPB metrics of
Figs. 8-11 — is derived from the same op/byte counts, so the comparison
is apples-to-apples by construction.

Conventions: a MAC counts as 2 ops (multiply + add), other primitives
count as 1 op each; bytes assume the paper's 8-bit quantization unless a
different width is passed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.graphs.graph import CSRGraph
from repro.nn.gnn import GNNConfig, GNNKind
from repro.nn.transformer import TransformerConfig, TransformerKind


@dataclass(frozen=True)
class OpCount:
    """Operation and traffic totals for one inference.

    Attributes:
        macs: multiply-accumulate count.
        adds: standalone additions (residuals, aggregations).
        comparisons: max-reduction comparisons.
        activations: nonlinearity evaluations.
        softmax_elements: elements passed through softmax.
        norm_elements: elements passed through layer normalization.
        weight_bytes: parameter bytes that must be resident/streamed.
        activation_bytes: intermediate tensor bytes moved.
    """

    macs: int = 0
    adds: int = 0
    comparisons: int = 0
    activations: int = 0
    softmax_elements: int = 0
    norm_elements: int = 0
    weight_bytes: int = 0
    activation_bytes: int = 0

    @property
    def total_ops(self) -> int:
        """Total operations with a MAC counted as 2 ops."""
        return (
            2 * self.macs
            + self.adds
            + self.comparisons
            + self.activations
            + self.softmax_elements
            + self.norm_elements
        )

    @property
    def total_bytes(self) -> int:
        """Total bytes moved (weights + activations)."""
        return self.weight_bytes + self.activation_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """Ops per byte — the roofline x-coordinate."""
        if self.total_bytes == 0:
            return float("inf")
        return self.total_ops / self.total_bytes

    def __add__(self, other: "OpCount") -> "OpCount":
        return OpCount(
            macs=self.macs + other.macs,
            adds=self.adds + other.adds,
            comparisons=self.comparisons + other.comparisons,
            activations=self.activations + other.activations,
            softmax_elements=self.softmax_elements + other.softmax_elements,
            norm_elements=self.norm_elements + other.norm_elements,
            weight_bytes=self.weight_bytes + other.weight_bytes,
            activation_bytes=self.activation_bytes + other.activation_bytes,
        )

    def scaled(self, factor: int) -> "OpCount":
        """This count repeated ``factor`` times (e.g. per-layer -> model)."""
        if factor < 0:
            raise ConfigurationError(f"factor must be >= 0, got {factor}")
        return OpCount(
            macs=self.macs * factor,
            adds=self.adds * factor,
            comparisons=self.comparisons * factor,
            activations=self.activations * factor,
            softmax_elements=self.softmax_elements * factor,
            norm_elements=self.norm_elements * factor,
            weight_bytes=self.weight_bytes * factor,
            activation_bytes=self.activation_bytes * factor,
        )


def transformer_layer_op_count(
    config: TransformerConfig, bytes_per_value: int = 1
) -> OpCount:
    """Op/byte count of one encoder (or decoder) layer at the config's
    sequence length."""
    s = config.seq_len
    d = config.d_model
    d_ff = config.d_ff
    # Projections Q, K, V and the output linear: 4 of (s x d) @ (d x d).
    projection_macs = 4 * s * d * d
    # Attention scores QK^T and the AV product, summed over heads:
    # H * (s*s*d_k) each = s*s*d each.
    attention_macs = 2 * s * s * d
    ff_macs = 2 * s * d * d_ff
    softmax_elements = config.num_heads * s * s
    norm_elements = 2 * s * d
    residual_adds = 2 * s * d
    activations = s * d_ff
    weight_bytes = (4 * d * d + 2 * d * d_ff) * bytes_per_value
    activation_bytes = (
        # Layer input/output plus Q/K/V/score/context intermediates.
        (2 * s * d + 3 * s * d + 2 * config.num_heads * s * s // max(s, 1))
        * bytes_per_value
    )
    return OpCount(
        macs=projection_macs + attention_macs + ff_macs,
        adds=residual_adds,
        activations=activations,
        softmax_elements=softmax_elements,
        norm_elements=norm_elements,
        weight_bytes=weight_bytes,
        activation_bytes=activation_bytes,
    )


def transformer_op_count(
    config: TransformerConfig, bytes_per_value: int = 1
) -> OpCount:
    """Op/byte count of one full-model inference at ``config.seq_len``."""
    if bytes_per_value < 1:
        raise ConfigurationError(
            f"bytes per value must be >= 1, got {bytes_per_value}"
        )
    per_layer = transformer_layer_op_count(config, bytes_per_value)
    total = per_layer.scaled(config.num_layers)
    if config.kind is TransformerKind.VISION:
        # ViT MLP head: d -> d_ff -> 1000.
        head_macs = config.d_model * config.d_ff + config.d_ff * 1000
        head = OpCount(
            macs=head_macs,
            activations=config.d_ff,
            weight_bytes=head_macs * bytes_per_value,
            activation_bytes=(config.d_ff + 1000) * bytes_per_value,
        )
        total = total + head
    return total


def gnn_layer_op_count(
    kind: GNNKind,
    graph: CSRGraph,
    in_dim: int,
    out_dim: int,
    heads: int = 1,
    bytes_per_value: int = 1,
) -> OpCount:
    """Op/byte count of one GNN layer over a full graph.

    Aggregation touches every arc once (num_edges adds or comparisons of
    in_dim-wide vectors); combination is a per-node matrix-vector product.
    """
    n = graph.num_nodes
    e = graph.num_edges
    agg_adds = e * in_dim
    if kind is GNNKind.GCN:
        combine_macs = n * in_dim * out_dim
        extra_macs = 2 * n * in_dim  # degree normalization scaling
        activations = n * out_dim
        weight_values = in_dim * out_dim
    elif kind is GNNKind.SAGE:
        combine_macs = 2 * n * in_dim * out_dim  # self + neighbour paths
        extra_macs = n * in_dim  # mean division
        activations = n * out_dim
        weight_values = 2 * in_dim * out_dim
    elif kind is GNNKind.GIN:
        hidden = max(in_dim, out_dim)
        combine_macs = n * (in_dim * hidden + hidden * out_dim)
        extra_macs = n * in_dim  # (1 + eps) scaling
        activations = n * (hidden + out_dim)
        weight_values = in_dim * hidden + hidden * out_dim
    elif kind is GNNKind.GAT:
        combine_macs = n * in_dim * out_dim
        # Attention scores: two dot products per node per head plus one
        # scalar-vector MAC per edge for the weighted sum.
        head_dim = max(out_dim // heads, 1)
        extra_macs = 2 * n * heads * head_dim + e * out_dim
        activations = n * out_dim + e * heads  # LeakyReLU on edge scores
        weight_values = in_dim * out_dim + 2 * heads * head_dim
    else:  # pragma: no cover - enum is exhaustive
        raise ConfigurationError(f"unsupported GNN kind {kind}")
    softmax_elements = e * heads if kind is GNNKind.GAT else 0
    return OpCount(
        macs=combine_macs + extra_macs,
        adds=agg_adds,
        activations=activations,
        softmax_elements=softmax_elements,
        weight_bytes=weight_values * bytes_per_value,
        activation_bytes=(e * in_dim + n * (in_dim + out_dim)) * bytes_per_value,
    )


def gnn_op_count(
    config: GNNConfig, graph: CSRGraph, bytes_per_value: int = 1
) -> OpCount:
    """Op/byte count of one full GNN inference over ``graph``."""
    if bytes_per_value < 1:
        raise ConfigurationError(
            f"bytes per value must be >= 1, got {bytes_per_value}"
        )
    total = OpCount()
    for d_in, d_out in config.layer_dims():
        total = total + gnn_layer_op_count(
            config.kind,
            graph,
            d_in,
            d_out,
            heads=config.heads,
            bytes_per_value=bytes_per_value,
        )
    return total
