"""Multi-head attention with explicit, inspectable weights.

The functional reference for TRON's MHA unit (paper Fig. 5).  The weights
are plain numpy arrays so the accelerator model can reach in, quantize
them, and map them onto MR bank arrays; the forward pass is the golden
output the optical datapath is checked against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.ops import linear, scaled_dot_product_attention


@dataclass
class MultiHeadAttention:
    """Multi-head self/cross attention (paper eq. 1 and Fig. 5b).

    Attributes:
        d_model: model (embedding) width.
        num_heads: number of attention heads H.
        rng_seed: seed for the synthetic weight initialization.
    """

    d_model: int
    num_heads: int
    rng_seed: int = 0
    w_q: np.ndarray = field(init=False, repr=False)
    w_k: np.ndarray = field(init=False, repr=False)
    w_v: np.ndarray = field(init=False, repr=False)
    w_o: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.d_model < 1 or self.num_heads < 1:
            raise ConfigurationError(
                f"d_model and num_heads must be >= 1, got "
                f"{self.d_model}, {self.num_heads}"
            )
        if self.d_model % self.num_heads != 0:
            raise ConfigurationError(
                f"d_model {self.d_model} not divisible by num_heads "
                f"{self.num_heads}"
            )
        rng = np.random.default_rng(self.rng_seed)
        scale = 1.0 / np.sqrt(self.d_model)
        shape = (self.d_model, self.d_model)
        self.w_q = rng.normal(0.0, scale, shape)
        self.w_k = rng.normal(0.0, scale, shape)
        self.w_v = rng.normal(0.0, scale, shape)
        self.w_o = rng.normal(0.0, scale, shape)

    @property
    def d_k(self) -> int:
        """Per-head key/query dimension."""
        return self.d_model // self.num_heads

    def split_heads(self, x: np.ndarray) -> np.ndarray:
        """(seq, d_model) -> (heads, seq, d_k)."""
        seq_len = x.shape[0]
        return x.reshape(seq_len, self.num_heads, self.d_k).transpose(1, 0, 2)

    def merge_heads(self, x: np.ndarray) -> np.ndarray:
        """(heads, seq, d_k) -> (seq, d_model) — the concat of Fig. 5b."""
        heads, seq_len, d_k = x.shape
        return x.transpose(1, 0, 2).reshape(seq_len, heads * d_k)

    def forward(
        self,
        x: np.ndarray,
        mask: Optional[np.ndarray] = None,
        context: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Full MHA forward pass.

        Args:
            x: (seq, d_model) input sequence (queries).
            mask: optional (seq_q, seq_k) boolean attention mask.
            context: optional (seq_k, d_model) cross-attention source for
                keys/values; defaults to ``x`` (self-attention).

        Returns:
            (seq, d_model) output after the final linear layer.
        """
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.d_model:
            raise ConfigurationError(
                f"expected input of shape (seq, {self.d_model}), got {x.shape}"
            )
        source = x if context is None else np.asarray(context, dtype=float)
        q = self.split_heads(linear(x, self.w_q))
        k = self.split_heads(linear(source, self.w_k))
        v = self.split_heads(linear(source, self.w_v))
        attended = scaled_dot_product_attention(q, k, v, mask=mask)
        return linear(self.merge_heads(attended), self.w_o)

    def head_weights(self, head: int) -> tuple:
        """(W_Q, W_K, W_V) slices for one head — what an attention-head
        unit's MR bank arrays hold (Fig. 5a)."""
        if not 0 <= head < self.num_heads:
            raise ConfigurationError(
                f"head must be in [0, {self.num_heads}), got {head}"
            )
        lo = head * self.d_k
        hi = lo + self.d_k
        # linear() computes x @ W.T, so row slices select output features.
        return self.w_q[lo:hi, :], self.w_k[lo:hi, :], self.w_v[lo:hi, :]
