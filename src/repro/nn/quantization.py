"""Symmetric fixed-point quantization (the paper's 8-bit operating point).

Section VI: "employing 8-bit model quantization yields algorithmic
accuracy comparable to models utilizing full (32-bit) precision.
Consequently, we focused on the acceleration of Transformer and GNN
models with 8-bit precision."

The analog datapath consumes values normalized to [-1, 1]; symmetric
per-tensor quantization maps a float tensor to int codes plus one scale,
which is exactly what the DACs drive onto the MR tuners.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError


@dataclass(frozen=True)
class QuantizedTensor:
    """An integer-coded tensor with its dequantization scale.

    ``values ≈ codes * scale`` with codes in [-(2^(bits-1)-1), 2^(bits-1)-1].
    """

    codes: np.ndarray
    scale: float
    bits: int

    @property
    def shape(self):
        return self.codes.shape

    def dequantize(self) -> np.ndarray:
        """Recover the float approximation."""
        return self.codes.astype(float) * self.scale

    def normalized(self) -> np.ndarray:
        """Codes mapped to [-1, 1] — the analog drive levels."""
        qmax = 2 ** (self.bits - 1) - 1
        return self.codes.astype(float) / qmax


def quantize_symmetric(x: np.ndarray, bits: int = 8) -> QuantizedTensor:
    """Symmetric per-tensor quantization to ``bits`` bits.

    Args:
        x: float tensor.
        bits: total bit width (>= 2: one sign bit plus magnitude).

    Raises:
        QuantizationError: for bit widths < 2 or non-finite inputs.
    """
    if bits < 2:
        raise QuantizationError(f"need >= 2 bits for signed codes, got {bits}")
    x = np.asarray(x, dtype=float)
    if not np.all(np.isfinite(x)):
        raise QuantizationError("cannot quantize non-finite values")
    qmax = 2 ** (bits - 1) - 1
    max_abs = float(np.max(np.abs(x))) if x.size else 0.0
    scale = max_abs / qmax
    # Denormal inputs can underflow the scale to zero; treat them as a
    # zero tensor (their values are below any representable step anyway).
    if max_abs == 0.0 or scale == 0.0:
        codes = np.zeros_like(x, dtype=np.int32)
        return QuantizedTensor(codes=codes, scale=1.0 / qmax, bits=bits)
    codes = np.clip(np.round(x / scale), -qmax, qmax).astype(np.int32)
    return QuantizedTensor(codes=codes, scale=scale, bits=bits)


def dequantize(qt: QuantizedTensor) -> np.ndarray:
    """Free-function alias of :meth:`QuantizedTensor.dequantize`."""
    return qt.dequantize()


def quantization_error(x: np.ndarray, bits: int = 8) -> float:
    """RMS relative error introduced by quantizing ``x`` to ``bits`` bits.

    Used by the precision ablation (A4 in DESIGN.md) to show that 8-bit
    error is small while 4-bit error is not.
    """
    x = np.asarray(x, dtype=float)
    if x.size == 0:
        raise QuantizationError("cannot measure error of an empty tensor")
    qt = quantize_symmetric(x, bits=bits)
    err = qt.dequantize() - x
    rms_signal = float(np.sqrt(np.mean(x**2)))
    if rms_signal == 0.0:
        return 0.0
    return float(np.sqrt(np.mean(err**2))) / rms_signal


def fake_quantize(x: np.ndarray, bits: int = 8) -> np.ndarray:
    """Quantize-dequantize round trip (quantization-aware functional sim)."""
    return quantize_symmetric(x, bits=bits).dequantize()
