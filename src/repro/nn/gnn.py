"""GNN layers and models: GCN, GraphSAGE, GIN and GAT (Section III).

Each layer implements the aggregate → combine → update pipeline of the
paper's Fig. 2 over a CSR graph, in pure numpy.  These are the golden
references for GHOST's optical datapath and the workload definitions for
the Fig. 10 / Fig. 11 benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.graphs.graph import CSRGraph
from repro.nn.ops import relu, softmax


class GNNKind(Enum):
    """Supported GNN architectures."""

    GCN = "gcn"
    SAGE = "graphsage"
    GIN = "gin"
    GAT = "gat"


class Reduction(Enum):
    """Aggregation reductions GHOST's reduce units support (Fig. 7a)."""

    SUM = "sum"
    MEAN = "mean"
    MAX = "max"


@dataclass(frozen=True)
class GNNConfig:
    """Shape description of a GNN model.

    Attributes:
        name: human-readable name.
        kind: architecture family.
        num_layers: stacked GNN layers.
        hidden_dim: hidden feature width.
        in_dim: input feature width (from the dataset).
        out_dim: output width (classes).
        heads: attention heads (GAT only).
        reduction: aggregation reduce function.
    """

    name: str
    kind: GNNKind
    num_layers: int
    hidden_dim: int
    in_dim: int
    out_dim: int
    heads: int = 1
    reduction: Reduction = Reduction.SUM

    def __post_init__(self) -> None:
        for attr in ("num_layers", "hidden_dim", "in_dim", "out_dim", "heads"):
            if getattr(self, attr) < 1:
                raise ConfigurationError(f"{attr} must be >= 1")

    def layer_dims(self) -> List:
        """(in, out) dims per layer: in_dim → hidden… → out_dim."""
        dims = []
        for i in range(self.num_layers):
            d_in = self.in_dim if i == 0 else self.hidden_dim
            d_out = self.out_dim if i == self.num_layers - 1 else self.hidden_dim
            dims.append((d_in, d_out))
        return dims


def _aggregate(
    graph: CSRGraph,
    features: np.ndarray,
    reduction: Reduction,
    include_self: bool = False,
) -> np.ndarray:
    """Neighbour aggregation (Fig. 2 stage 2) for all vertices.

    Args:
        graph: CSR adjacency.
        features: (num_nodes, dim) input features.
        reduction: sum / mean / max.
        include_self: add the vertex's own feature to its neighbourhood
            (GIN-style self-inclusion).
    """
    num_nodes, dim = features.shape
    out = np.zeros((num_nodes, dim))
    for v in range(num_nodes):
        neighbours = graph.neighbors(v)
        if include_self:
            neighbours = np.concatenate([neighbours, [v]])
        if neighbours.size == 0:
            continue
        block = features[neighbours]
        if reduction is Reduction.SUM:
            out[v] = block.sum(axis=0)
        elif reduction is Reduction.MEAN:
            out[v] = block.mean(axis=0)
        else:
            out[v] = block.max(axis=0)
    return out


@dataclass
class GCNLayer:
    """Graph convolution layer (Kipf & Welling): H' = act(Â H W).

    Uses the symmetric-normalized adjacency with self-loops.
    """

    in_dim: int
    out_dim: int
    rng_seed: int = 0
    weight: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.rng_seed)
        self.weight = rng.normal(0.0, 1.0 / np.sqrt(self.in_dim), (self.in_dim, self.out_dim))

    def forward(self, graph: CSRGraph, features: np.ndarray, activate: bool = True) -> np.ndarray:
        """One GCN layer over the whole graph."""
        degrees = graph.degrees() + 1.0  # +1 for the self loop
        norm = 1.0 / np.sqrt(degrees)
        scaled = features * norm[:, None]
        aggregated = _aggregate(graph, scaled, Reduction.SUM, include_self=True)
        aggregated = aggregated * norm[:, None]
        out = aggregated @ self.weight
        return relu(out) if activate else out


@dataclass
class GraphSAGELayer:
    """GraphSAGE layer (mean aggregator): H' = act([H | mean(N(v))] W)."""

    in_dim: int
    out_dim: int
    rng_seed: int = 0
    weight_self: np.ndarray = field(init=False, repr=False)
    weight_neigh: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.rng_seed)
        scale = 1.0 / np.sqrt(self.in_dim)
        self.weight_self = rng.normal(0.0, scale, (self.in_dim, self.out_dim))
        self.weight_neigh = rng.normal(0.0, scale, (self.in_dim, self.out_dim))

    def forward(self, graph: CSRGraph, features: np.ndarray, activate: bool = True) -> np.ndarray:
        """One GraphSAGE layer over the whole graph."""
        aggregated = _aggregate(graph, features, Reduction.MEAN)
        out = features @ self.weight_self + aggregated @ self.weight_neigh
        return relu(out) if activate else out


@dataclass
class GINLayer:
    """Graph isomorphism network layer: H' = MLP((1+eps) h_v + sum(N(v)))."""

    in_dim: int
    out_dim: int
    eps: float = 0.0
    rng_seed: int = 0
    w1: np.ndarray = field(init=False, repr=False)
    w2: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.rng_seed)
        hidden = max(self.in_dim, self.out_dim)
        self.w1 = rng.normal(0.0, 1.0 / np.sqrt(self.in_dim), (self.in_dim, hidden))
        self.w2 = rng.normal(0.0, 1.0 / np.sqrt(hidden), (hidden, self.out_dim))

    def forward(self, graph: CSRGraph, features: np.ndarray, activate: bool = True) -> np.ndarray:
        """One GIN layer over the whole graph."""
        aggregated = _aggregate(graph, features, Reduction.SUM)
        combined = (1.0 + self.eps) * features + aggregated
        out = relu(combined @ self.w1) @ self.w2
        return relu(out) if activate else out


@dataclass
class GATLayer:
    """Graph attention layer (single or multi-head, concatenated).

    Attention coefficients use the original GAT formulation:
    e_uv = LeakyReLU(a^T [W h_u | W h_v]), normalized over N(v).
    """

    in_dim: int
    out_dim: int
    heads: int = 1
    rng_seed: int = 0
    weight: np.ndarray = field(init=False, repr=False)
    attn_src: np.ndarray = field(init=False, repr=False)
    attn_dst: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.out_dim % self.heads != 0:
            raise ConfigurationError(
                f"out_dim {self.out_dim} not divisible by heads {self.heads}"
            )
        rng = np.random.default_rng(self.rng_seed)
        self.head_dim = self.out_dim // self.heads
        self.weight = rng.normal(
            0.0, 1.0 / np.sqrt(self.in_dim), (self.heads, self.in_dim, self.head_dim)
        )
        self.attn_src = rng.normal(0.0, 1.0, (self.heads, self.head_dim))
        self.attn_dst = rng.normal(0.0, 1.0, (self.heads, self.head_dim))

    def forward(self, graph: CSRGraph, features: np.ndarray, activate: bool = True) -> np.ndarray:
        """One GAT layer over the whole graph (self-loops included)."""
        num_nodes = features.shape[0]
        # (heads, nodes, head_dim) projected features.
        projected = np.einsum("nd,hdo->hno", features, self.weight)
        src_scores = np.einsum("hno,ho->hn", projected, self.attn_src)
        dst_scores = np.einsum("hno,ho->hn", projected, self.attn_dst)
        out = np.zeros((self.heads, num_nodes, self.head_dim))
        for v in range(num_nodes):
            neighbours = np.concatenate([graph.neighbors(v), [v]])
            # e[h, u] for u in neighbours attending into v.
            raw = src_scores[:, neighbours] + dst_scores[:, v : v + 1]
            raw = np.where(raw > 0.0, raw, 0.2 * raw)  # LeakyReLU(0.2)
            alpha = softmax(raw, axis=-1)
            out[:, v, :] = np.einsum("hu,huo->ho", alpha, projected[:, neighbours, :])
        merged = out.transpose(1, 0, 2).reshape(num_nodes, self.out_dim)
        return relu(merged) if activate else merged


@dataclass
class GNNModel:
    """A stack of GNN layers realizing a :class:`GNNConfig`."""

    config: GNNConfig
    rng_seed: int = 0
    layers: List = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.layers = []
        for i, (d_in, d_out) in enumerate(self.config.layer_dims()):
            seed = self.rng_seed + i
            if self.config.kind is GNNKind.GCN:
                self.layers.append(GCNLayer(d_in, d_out, rng_seed=seed))
            elif self.config.kind is GNNKind.SAGE:
                self.layers.append(GraphSAGELayer(d_in, d_out, rng_seed=seed))
            elif self.config.kind is GNNKind.GIN:
                self.layers.append(GINLayer(d_in, d_out, rng_seed=seed))
            elif self.config.kind is GNNKind.GAT:
                heads = self.config.heads if d_out % self.config.heads == 0 else 1
                self.layers.append(GATLayer(d_in, d_out, heads=heads, rng_seed=seed))
            else:  # pragma: no cover - enum is exhaustive
                raise ConfigurationError(f"unsupported GNN kind {self.config.kind}")

    def forward(self, graph: CSRGraph, features: np.ndarray) -> np.ndarray:
        """Full-model inference; final layer has no activation (logits)."""
        features = np.asarray(features, dtype=float)
        if features.shape != (graph.num_nodes, self.config.in_dim):
            raise ConfigurationError(
                f"expected features of shape ({graph.num_nodes}, "
                f"{self.config.in_dim}), got {features.shape}"
            )
        x = features
        for i, layer in enumerate(self.layers):
            activate = i < len(self.layers) - 1
            x = layer.forward(graph, x, activate=activate)
        return x


def make_gnn(
    kind: GNNKind,
    in_dim: int,
    out_dim: int,
    hidden_dim: int = 64,
    num_layers: int = 2,
    heads: int = 1,
    name: Optional[str] = None,
    reduction: Reduction = Reduction.SUM,
) -> GNNModel:
    """Convenience constructor for a GNN model."""
    config = GNNConfig(
        name=name or kind.value,
        kind=kind,
        num_layers=num_layers,
        hidden_dim=hidden_dim,
        in_dim=in_dim,
        out_dim=out_dim,
        heads=heads,
        reduction=reduction,
    )
    return GNNModel(config=config)
