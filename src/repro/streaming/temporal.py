"""Temporal graph workloads: edge-delta streams over evolving snapshots.

Production graph serving re-runs inference as the graph evolves —
citation/social graphs *grow* (preferential attachment, R-MAT), while
community graphs *churn* (edges rewire within the block structure).
This module generates deterministic delta streams on top of
:mod:`repro.graphs.generators`, materializes the snapshot sequence, and
re-evaluates GHOST on every snapshot with stage-cost reuse measured and
surfaced (the accelerator's stage memo keeps aggregate/combine/update/
memory layer costs keyed on exactly what they depend on, so everything
a delta leaves untouched is reused bit-identically).

Example:
    >>> base, deltas = delta_stream(
    ...     DeltaKind.BA_GROWTH, seed=3, num_deltas=2,
    ...     num_nodes=48, attachment=2, nodes_per_delta=4)
    >>> [d.added_nodes for d in deltas]
    [4, 4]
    >>> snaps = snapshots_from(base, deltas)
    >>> [g.num_nodes for g in snaps]
    [48, 52, 56]
    >>> snapshots_from(base, deltas)[2].num_edges == snaps[2].num_edges
    True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.base import Workload, WorkloadKind
from repro.core.reports import RunReport
from repro.errors import ConfigurationError
from repro.graphs.generators import (
    barabasi_albert,
    rmat,
    stochastic_block_model,
)
from repro.graphs.graph import CSRGraph
from repro.nn.counting import OpCount, gnn_op_count
from repro.nn.gnn import GNNConfig

Edge = Tuple[int, int]


class DeltaKind(Enum):
    """The evolution regimes a delta stream can follow."""

    BA_GROWTH = "ba-growth"
    RMAT_GROWTH = "rmat-growth"
    SBM_CHURN = "sbm-churn"


@dataclass(frozen=True)
class GraphDelta:
    """One evolution step: nodes appended, edges added/removed.

    Edges are canonical undirected pairs ``(u, v)`` with ``u < v``.
    """

    added_nodes: int = 0
    added_edges: Tuple[Edge, ...] = ()
    removed_edges: Tuple[Edge, ...] = ()

    def describe(self) -> str:
        return (
            f"+{self.added_nodes}n +{len(self.added_edges)}e "
            f"-{len(self.removed_edges)}e"
        )


def _canonical(u: int, v: int) -> Edge:
    return (u, v) if u < v else (v, u)


def _edge_set(graph: CSRGraph) -> Set[Edge]:
    """The canonical undirected edge set of a CSR graph."""
    edges: Set[Edge] = set()
    for u in range(graph.num_nodes):
        start, end = graph.indptr[u], graph.indptr[u + 1]
        for v in graph.indices[start:end]:
            if u < v:
                edges.add((u, int(v)))
    return edges


def apply_delta(
    num_nodes: int, edges: Set[Edge], delta: GraphDelta
) -> Tuple[int, Set[Edge]]:
    """The (num_nodes, edge set) after one delta (inputs untouched)."""
    grown = num_nodes + delta.added_nodes
    updated = set(edges)
    updated.difference_update(delta.removed_edges)
    for u, v in delta.added_edges:
        if u == v or u >= grown or v >= grown:
            raise ConfigurationError(f"delta edge ({u}, {v}) is invalid")
        updated.add(_canonical(u, v))
    return grown, updated


def snapshots_from(
    base: CSRGraph, deltas: Sequence[GraphDelta]
) -> List[CSRGraph]:
    """The snapshot sequence: base, then after each delta in order.

    Snapshots rebuild incrementally from one evolving edge set — the
    base graph is synthesized once, never per snapshot.
    """
    snapshots = [base]
    num_nodes = base.num_nodes
    edges = _edge_set(base)
    for delta in deltas:
        num_nodes, edges = apply_delta(num_nodes, edges, delta)
        snapshots.append(
            CSRGraph.from_edges(
                num_nodes,
                sorted(edges),
                undirected=True,
                num_node_features=base.num_node_features,
            )
        )
    return snapshots


def _ba_growth(
    rng: np.random.Generator,
    base: CSRGraph,
    num_deltas: int,
    nodes_per_delta: int,
    attachment: int,
) -> List[GraphDelta]:
    """Preferential-attachment growth: new nodes wire to high-degree hubs."""
    if nodes_per_delta < 1:
        raise ConfigurationError("nodes_per_delta must be >= 1")
    # Degree-proportional sampling via the repeated-node list, seeded
    # from the base graph's arcs (each undirected edge contributes both
    # endpoints) — the same O(E) device barabasi_albert uses.
    repeated: List[int] = []
    for u, v in sorted(_edge_set(base)):
        repeated.extend([u, v])
    next_node = base.num_nodes
    deltas = []
    for _ in range(num_deltas):
        added: List[Edge] = []
        for _ in range(nodes_per_delta):
            chosen: Set[int] = set()
            while len(chosen) < min(attachment, next_node):
                chosen.add(repeated[rng.integers(0, len(repeated))])
            for target in chosen:
                added.append(_canonical(next_node, target))
                repeated.extend([next_node, target])
            next_node += 1
        deltas.append(
            GraphDelta(added_nodes=nodes_per_delta, added_edges=tuple(added))
        )
    return deltas


def _rmat_growth(
    rng: np.random.Generator,
    base: CSRGraph,
    num_deltas: int,
    edges_per_delta: int,
    scale: int,
    a: float,
    b: float,
    c: float,
) -> List[GraphDelta]:
    """R-MAT densification: new edges drawn by the recursive quadrants."""
    if edges_per_delta < 1:
        raise ConfigurationError("edges_per_delta must be >= 1")
    existing = _edge_set(base)
    deltas = []
    for _ in range(num_deltas):
        sources = np.zeros(edges_per_delta, dtype=np.int64)
        targets = np.zeros(edges_per_delta, dtype=np.int64)
        for level in range(scale):
            r = rng.random(edges_per_delta)
            right = (r >= a) & (r < a + b) | (r >= a + b + c)
            down = r >= a + b
            sources |= down.astype(np.int64) << level
            targets |= right.astype(np.int64) << level
        added = []
        for u, v in zip(sources.tolist(), targets.tolist()):
            edge = _canonical(u, v)
            if u != v and edge not in existing:
                existing.add(edge)
                added.append(edge)
        deltas.append(GraphDelta(added_edges=tuple(added)))
    return deltas


def _sbm_churn(
    rng: np.random.Generator,
    base: CSRGraph,
    num_deltas: int,
    rewire_fraction: float,
    block_sizes: Sequence[int],
    p_within: float,
    p_between: float,
) -> List[GraphDelta]:
    """Community churn: rewire a fraction of edges inside the block law."""
    if not 0.0 < rewire_fraction <= 1.0:
        raise ConfigurationError(
            f"rewire_fraction must be in (0, 1], got {rewire_fraction}"
        )
    labels = np.repeat(np.arange(len(block_sizes)), list(block_sizes))
    num_nodes = int(labels.size)
    p_max = max(p_within, p_between, 1e-12)
    edges = _edge_set(base)
    deltas = []
    for _ in range(num_deltas):
        pool = sorted(edges)
        k = max(1, int(round(rewire_fraction * len(pool))))
        removed_idx = rng.choice(len(pool), size=min(k, len(pool)), replace=False)
        removed = tuple(pool[i] for i in sorted(removed_idx.tolist()))
        edges.difference_update(removed)
        added: List[Edge] = []
        attempts = 0
        # Rejection-sample replacement edges from the SBM law so the
        # community structure is preserved while identities churn.
        while len(added) < len(removed) and attempts < 200 * len(removed):
            attempts += 1
            u = int(rng.integers(0, num_nodes))
            v = int(rng.integers(0, num_nodes))
            if u == v:
                continue
            edge = _canonical(u, v)
            if edge in edges:
                continue
            p = p_within if labels[u] == labels[v] else p_between
            if rng.random() < p / p_max:
                edges.add(edge)
                added.append(edge)
        deltas.append(
            GraphDelta(added_edges=tuple(added), removed_edges=removed)
        )
    return deltas


def delta_stream(
    kind: DeltaKind,
    seed: int = 7,
    num_deltas: int = 4,
    num_node_features: int = 0,
    **params,
) -> Tuple[CSRGraph, Tuple[GraphDelta, ...]]:
    """A deterministic (base graph, delta stream) pair.

    Same ``(kind, seed, params)`` — same base and the same deltas; the
    base generator and the stream draw from independently-derived rng
    streams so delta count never perturbs the base.

    Kind-specific ``params``:
        BA_GROWTH: ``num_nodes``, ``attachment``, ``nodes_per_delta``.
        RMAT_GROWTH: ``scale``, ``edge_factor``, ``edges_per_delta``.
        SBM_CHURN: ``block_sizes``, ``p_within``, ``p_between``,
            ``rewire_fraction``.
    """
    if num_deltas < 1:
        raise ConfigurationError(f"need >= 1 delta, got {num_deltas}")
    stream_rng = np.random.default_rng([seed, 1])
    if kind is DeltaKind.BA_GROWTH:
        num_nodes = int(params.pop("num_nodes", 64))
        attachment = int(params.pop("attachment", 2))
        nodes_per_delta = int(params.pop("nodes_per_delta", 8))
        _reject_params(kind, params)
        base = barabasi_albert(
            num_nodes, attachment, seed=seed,
            num_node_features=num_node_features,
        )
        deltas = _ba_growth(
            stream_rng, base, num_deltas, nodes_per_delta, attachment
        )
    elif kind is DeltaKind.RMAT_GROWTH:
        scale = int(params.pop("scale", 7))
        edge_factor = int(params.pop("edge_factor", 4))
        edges_per_delta = int(params.pop("edges_per_delta", 64))
        a = float(params.pop("a", 0.57))
        b = float(params.pop("b", 0.19))
        c = float(params.pop("c", 0.19))
        _reject_params(kind, params)
        base = rmat(
            scale, edge_factor, a=a, b=b, c=c, seed=seed,
            num_node_features=num_node_features,
        )
        deltas = _rmat_growth(
            stream_rng, base, num_deltas, edges_per_delta, scale, a, b, c
        )
    elif kind is DeltaKind.SBM_CHURN:
        block_sizes = tuple(params.pop("block_sizes", (32, 32, 32)))
        p_within = float(params.pop("p_within", 0.2))
        p_between = float(params.pop("p_between", 0.01))
        rewire_fraction = float(params.pop("rewire_fraction", 0.05))
        _reject_params(kind, params)
        base = stochastic_block_model(
            block_sizes, p_within, p_between, seed=seed,
            num_node_features=num_node_features,
        )
        deltas = _sbm_churn(
            stream_rng, base, num_deltas, rewire_fraction,
            block_sizes, p_within, p_between,
        )
    else:  # pragma: no cover - enum is exhaustive
        raise ConfigurationError(f"unknown delta kind {kind!r}")
    return base, tuple(deltas)


def _reject_params(kind: DeltaKind, leftover: Dict) -> None:
    if leftover:
        raise ConfigurationError(
            f"unknown {kind.value} stream parameter(s): {sorted(leftover)}"
        )


@dataclass(frozen=True)
class TemporalReport:
    """GHOST over a snapshot sequence, with reuse accounting.

    Attributes:
        snapshots: per-snapshot RunReports, in stream order.
        total: serial composition over the whole stream.
        reuse: stage-memo accounting for this stream (lookups/hits of
            the aggregate/combine/update/memory stage costs).
    """

    snapshots: Tuple[RunReport, ...]
    total: RunReport
    reuse: Dict[str, float]

    @property
    def stage_hit_rate(self) -> float:
        """Fraction of stage-cost lookups served from prior deltas."""
        lookups = self.reuse["hits"] + self.reuse["misses"]
        return self.reuse["hits"] / lookups if lookups else 0.0

    def summary(self) -> str:
        return (
            f"{len(self.snapshots)} snapshots: "
            f"{self.total.latency_ns / 1e6:.3f} ms total, "
            f"stage reuse {self.stage_hit_rate:.0%}"
        )


def run_temporal(
    ghost,
    model: GNNConfig,
    snapshots: Sequence[CSRGraph],
) -> TemporalReport:
    """Evaluate ``model`` on every snapshot, measuring stage reuse.

    The accelerator's stage memo carries costs across snapshots;
    the reported reuse counts only this stream's lookups.
    """
    if not snapshots:
        raise ConfigurationError("need at least one snapshot")
    before = ghost.stage_memo_stats()
    reports = tuple(ghost.run_gnn(model, graph) for graph in snapshots)
    after = ghost.stage_memo_stats()
    reuse = {
        "hits": after["hits"] - before["hits"],
        "misses": after["misses"] - before["misses"],
    }
    ops = reports[0].ops
    latency = reports[0].latency
    energy = reports[0].energy
    for report in reports[1:]:
        ops = ops + report.ops
        latency = latency + report.latency
        energy = energy + report.energy
    total = RunReport(
        platform=ghost.name,
        workload=f"{model.name}-temporal[{len(reports)} snapshots]",
        ops=ops,
        latency=latency,
        energy=energy,
        bits_per_value=reports[0].bits_per_value,
    )
    return TemporalReport(snapshots=reports, total=total, reuse=reuse)


@dataclass
class TemporalGraphWorkload(Workload):
    """An evolving-graph GNN workload: one model over a delta stream.

    Snapshots materialize lazily (delta-stream synthesis is the
    expensive part) and cache on the workload, mirroring
    :class:`repro.workloads.GNNWorkload`.

    Example:
        >>> from repro.core.base import get_workload
        >>> workload = get_workload("GCN-ba-temporal")
        >>> workload.kind.value
        'temporal_gnn'
    """

    model_config: GNNConfig
    delta_kind: DeltaKind
    label: str
    seed: int = 7
    num_deltas: int = 4
    params: Tuple[Tuple[str, object], ...] = ()
    _snapshots: Optional[Tuple[CSRGraph, ...]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def name(self) -> str:
        return self.label

    @property
    def kind(self) -> WorkloadKind:
        return WorkloadKind.TEMPORAL_GNN

    @property
    def snapshots(self) -> Tuple[CSRGraph, ...]:
        """The materialized snapshot sequence (built once, then shared)."""
        if self._snapshots is None:
            base, deltas = delta_stream(
                self.delta_kind,
                seed=self.seed,
                num_deltas=self.num_deltas,
                num_node_features=self.model_config.in_dim,
                **dict(self.params),
            )
            self._snapshots = tuple(snapshots_from(base, deltas))
        return self._snapshots

    def materialize(self) -> None:
        self.snapshots  # noqa: B018 - force the lazy synthesis

    def op_count(self, bytes_per_value: int = 1) -> OpCount:
        total = OpCount()
        for graph in self.snapshots:
            total = total + gnn_op_count(
                self.model_config, graph, bytes_per_value=bytes_per_value
            )
        return total

    def describe(self) -> str:
        return (
            f"{self.label}: {self.model_config.name} over "
            f"{self.num_deltas + 1} {self.delta_kind.value} snapshots "
            f"(seed {self.seed})"
        )
