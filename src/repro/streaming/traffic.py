"""Multi-tenant traffic model: per-tenant catalogs + shaped arrivals.

The stock :func:`repro.serving.trace.generate_trace` draws one global
Zipf catalog — fine for cache studies, but production serving load is
*multi-tenant*: each tenant has its own (skewed) request catalog and its
own share of the offered rate, and the aggregate rate follows diurnal
cycles with bursts riding on top.  This module composes all three:

- :class:`TenantProfile` / :class:`TrafficModel` — per-tenant Zipf
  catalogs of embedded run-kind ``repro.spec/1`` documents, emitted as
  ``repro.trace/1`` records that replay deterministically through
  :class:`~repro.serving.engine.ServingEngine` and
  :class:`~repro.serving.fleet.ServingFleet`;
- :class:`ShapedArrivalProcess` — a diurnal rate envelope composed with
  the existing open-loop kinds (uniform/poisson/bursty) by
  time-rescaling, so bursts ride on the daily cycle.

Example:
    >>> model = TrafficModel.uniform_tenants(3, seed=11)
    >>> records = model.generate(num_requests=8)
    >>> sorted(records[0]) == ['spec', 'tenant']
    True
    >>> records == model.generate(num_requests=8)   # deterministic
    True
    >>> parse_shaped_arrivals("diurnal:poisson:500").describe()
    'diurnal:poisson:500'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.serving.arrivals import ArrivalProcess, parse_arrivals
from repro.serving.trace import (
    BATCH_WEIGHTS,
    CORNER_WEIGHTS,
    GNN_WORKLOADS,
    LLM_WORKLOADS,
)

#: Arrival-shape envelopes ShapedArrivalProcess supports.
ARRIVAL_SHAPES = ("flat", "diurnal")


def diurnal_rate_curve(
    times_s: np.ndarray, period_s: float, amplitude: float
) -> np.ndarray:
    """Rate multiplier of the diurnal envelope at ``times_s``.

    A sinusoid around 1.0: troughs at ``1 - amplitude``, peaks at
    ``1 + amplitude`` — the long-run mean rate is preserved.

    Example:
        >>> curve = diurnal_rate_curve(np.array([0.0, 15.0]), 60.0, 0.8)
        >>> [round(float(m), 3) for m in curve]
        [1.0, 1.8]
    """
    if period_s <= 0.0:
        raise ConfigurationError(f"period must be > 0 s, got {period_s}")
    if not 0.0 < amplitude < 1.0:
        raise ConfigurationError(
            f"amplitude must be in (0, 1), got {amplitude}"
        )
    return 1.0 + amplitude * np.sin(2.0 * np.pi * np.asarray(times_s) / period_s)


@dataclass(frozen=True)
class ShapedArrivalProcess(ArrivalProcess):
    """An arrival process with a rate-envelope shape on top.

    ``flat`` is the base process unchanged; ``diurnal`` warps the base
    schedule by time-rescaling through the cumulative intensity of
    :func:`diurnal_rate_curve`, so arrivals bunch at the peak and
    stretch through the trough while the long-run mean rate (and the
    base process's burst structure) is preserved.

    Example:
        >>> shaped = ShapedArrivalProcess("poisson", 100.0, shape="diurnal")
        >>> flat = ArrivalProcess("poisson", 100.0)
        >>> times, base = shaped.times(64, seed=3), flat.times(64, seed=3)
        >>> len(times) == 64 and bool((np.diff(times) >= 0.0).all())
        True
        >>> bool((times != base).any())     # the warp moved arrivals
        True
    """

    shape: str = "diurnal"
    period_s: float = 60.0
    amplitude: float = 0.8

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.shape not in ARRIVAL_SHAPES:
            raise ConfigurationError(
                f"unknown arrival shape {self.shape!r}; "
                f"pick one of {ARRIVAL_SHAPES}"
            )
        if self.period_s <= 0.0:
            raise ConfigurationError(
                f"period must be > 0 s, got {self.period_s}"
            )
        if not 0.0 < self.amplitude < 1.0:
            raise ConfigurationError(
                f"amplitude must be in (0, 1), got {self.amplitude}"
            )

    def times(self, num_requests: int, seed: int = 0) -> np.ndarray:
        base = super().times(num_requests, seed=seed)
        if self.shape == "flat":
            return base
        # Time-rescaling: the base schedule realizes the cumulative
        # intensity targets rate * t; invert the diurnal cumulative
        # intensity at those targets on a fine monotone grid.
        targets = self.rate_rps * base
        horizon = (
            float(base[-1]) / (1.0 - self.amplitude) + self.period_s
        )
        grid = np.linspace(0.0, horizon, 8192)
        cumulative = self.rate_rps * (
            grid
            + (self.amplitude * self.period_s / (2.0 * np.pi))
            * (1.0 - np.cos(2.0 * np.pi * grid / self.period_s))
        )
        return np.interp(targets, cumulative, grid)

    def describe(self) -> str:
        base = super().describe()
        if self.shape == "flat":
            return base
        if (self.period_s, self.amplitude) != (60.0, 0.8):
            return (
                f"{self.shape}[{self.period_s:g}s,{self.amplitude:g}]:{base}"
            )
        return f"{self.shape}:{base}"


def parse_shaped_arrivals(text: str):
    """Parse an arrival spec, accepting an optional shape prefix.

    ``diurnal:KIND:RATE[:BURSTINESS]`` wraps the base spec in the
    default diurnal envelope; anything else parses as the plain
    open-loop spec (:func:`repro.serving.arrivals.parse_arrivals`).

    Example:
        >>> parse_shaped_arrivals("diurnal:bursty:2000:16").shape
        'diurnal'
        >>> parse_shaped_arrivals("poisson:500").describe()
        'poisson:500'
    """
    text = str(text)
    if text.startswith("diurnal:"):
        inner = parse_arrivals(text[len("diurnal:"):])
        return ShapedArrivalProcess(
            inner.kind, inner.rate_rps, inner.burstiness, shape="diurnal"
        )
    return parse_arrivals(text)


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's traffic character.

    Attributes:
        name: tenant identity (the admission-control key in the fleet).
        weight: share of the aggregate request stream.
        catalog_size: distinct request types in this tenant's catalog.
        skew: Zipf popularity exponent within the catalog.
        llm_fraction: probability a catalog entry is an LLM-side
            workload (GNN-side otherwise).
    """

    name: str
    weight: float = 1.0
    catalog_size: int = 12
    skew: float = 1.1
    llm_fraction: float = 0.7

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a tenant profile needs a name")
        if not self.weight > 0.0:
            raise ConfigurationError(
                f"tenant weight must be > 0, got {self.weight}"
            )
        if self.catalog_size < 1:
            raise ConfigurationError(
                f"need >= 1 catalog entry, got {self.catalog_size}"
            )
        if self.skew < 0.0:
            raise ConfigurationError(f"skew must be >= 0, got {self.skew}")
        if not 0.0 <= self.llm_fraction <= 1.0:
            raise ConfigurationError(
                f"llm fraction must be in [0, 1], got {self.llm_fraction}"
            )


@dataclass(frozen=True)
class TrafficModel:
    """A multi-tenant trace generator over embedded spec documents.

    Each tenant gets its own deterministic catalog of run-kind
    ``repro.spec/1`` documents (drawn from the stock workload mix), and
    the aggregate stream interleaves tenants by weight with per-tenant
    Zipf popularity.  Records carry the tenant identity next to the
    embedded spec, so fleet replay enforces per-tenant admission
    control and the round-trip stays fully declarative.
    """

    tenants: Tuple[TenantProfile, ...]
    seed: int = 0
    die_seeds: int = 4

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ConfigurationError("need >= 1 tenant profile")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"tenant names must be unique: {names}")
        if self.die_seeds < 1:
            raise ConfigurationError(
                f"need >= 1 die seed, got {self.die_seeds}"
            )

    @classmethod
    def uniform_tenants(
        cls,
        num_tenants: int,
        seed: int = 0,
        catalog_size: int = 12,
        skew: float = 1.1,
        llm_fraction: float = 0.7,
    ) -> "TrafficModel":
        """N tenants with Zipf-decaying traffic shares (tenant-0 hottest)."""
        if num_tenants < 1:
            raise ConfigurationError(
                f"need >= 1 tenant, got {num_tenants}"
            )
        profiles = tuple(
            TenantProfile(
                name=f"tenant-{i}",
                weight=1.0 / (i + 1),
                catalog_size=catalog_size,
                skew=skew,
                llm_fraction=llm_fraction,
            )
            for i in range(num_tenants)
        )
        return cls(tenants=profiles, seed=seed)

    def _catalog(self, index: int, profile: TenantProfile) -> List[Dict]:
        """One tenant's embedded-spec catalog (deterministic in
        ``(model seed, tenant index)``)."""
        from repro.api.spec import ContextSpec, ExperimentSpec, PlatformSpec

        rng = np.random.default_rng([self.seed, 1, index])
        corner_names = list(CORNER_WEIGHTS)
        corner_p = np.array([CORNER_WEIGHTS[c] for c in corner_names])
        corner_p = corner_p / corner_p.sum()
        batch_sizes = list(BATCH_WEIGHTS)
        batch_p = np.array([BATCH_WEIGHTS[b] for b in batch_sizes])
        batch_p = batch_p / batch_p.sum()

        catalog: List[Dict] = []
        seen = set()
        attempts = 0
        while len(catalog) < profile.catalog_size:
            attempts += 1
            if attempts > 100 * profile.catalog_size:
                raise ConfigurationError(
                    f"cannot draw {profile.catalog_size} distinct request "
                    f"types for {profile.name}; lower catalog_size"
                )
            if rng.random() < profile.llm_fraction:
                workload = str(rng.choice(LLM_WORKLOADS))
                batch = int(rng.choice(batch_sizes, p=batch_p))
            else:
                workload = str(rng.choice(GNN_WORKLOADS))
                batch = 1  # GHOST costs full-graph inferences
            corner = str(rng.choice(corner_names, p=corner_p))
            die = int(rng.integers(self.die_seeds)) if corner != "nominal" else 0
            spec = ExperimentSpec(
                platform=PlatformSpec(
                    name="auto",
                    overrides={"batch": batch} if batch != 1 else {},
                ),
                workload=workload,
                context=ContextSpec(corner=corner, seed=die),
            )
            doc = spec.to_dict()
            fingerprint = spec.fingerprint()
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            catalog.append(doc)
        return catalog

    def catalogs(self) -> Dict[str, List[Dict]]:
        """Every tenant's catalog of embedded ``repro.spec/1`` docs."""
        return {
            profile.name: self._catalog(index, profile)
            for index, profile in enumerate(self.tenants)
        }

    def weights(self) -> np.ndarray:
        """Normalized tenant traffic shares, in tenant order."""
        raw = np.array([t.weight for t in self.tenants], dtype=float)
        return raw / raw.sum()

    def generate(self, num_requests: int = 1000) -> List[Dict]:
        """``num_requests`` tenant-tagged trace records.

        Each record is ``{"tenant": name, "spec": <repro.spec/1 doc>}``
        — the extended ``repro.trace/1`` record form.  Deterministic in
        the model: same profiles + seed, byte-identical trace.
        """
        if num_requests < 1:
            raise ConfigurationError(
                f"need >= 1 request, got {num_requests}"
            )
        catalogs = self.catalogs()
        rng = np.random.default_rng([self.seed, 2])
        tenant_draw = rng.choice(
            len(self.tenants), size=num_requests, p=self.weights()
        )
        popularity = {}
        for profile in self.tenants:
            ranks = np.arange(1, profile.catalog_size + 1, dtype=float)
            p = ranks**-profile.skew
            popularity[profile.name] = p / p.sum()
        records: List[Dict] = []
        for tenant_index in tenant_draw.tolist():
            profile = self.tenants[tenant_index]
            rank = int(
                rng.choice(profile.catalog_size, p=popularity[profile.name])
            )
            doc = catalogs[profile.name][rank]
            records.append(
                {"tenant": profile.name, "spec": _copy_doc(doc)}
            )
        return records


def _copy_doc(doc):
    """Deep-copy a JSON-shaped document (records must not alias)."""
    if isinstance(doc, dict):
        return {key: _copy_doc(value) for key, value in doc.items()}
    if isinstance(doc, list):
        return [_copy_doc(item) for item in doc]
    return doc


def generate_tenant_trace(
    num_requests: int = 1000,
    num_tenants: int = 4,
    seed: int = 0,
    catalog_size: int = 12,
    llm_fraction: float = 0.7,
    skew: float = 1.1,
) -> List[Dict]:
    """Convenience entry the CLI's ``gen-trace --tenants`` uses.

    Example:
        >>> records = generate_tenant_trace(num_requests=6, num_tenants=2)
        >>> {r["tenant"] for r in records} <= {"tenant-0", "tenant-1"}
        True
    """
    model = TrafficModel.uniform_tenants(
        num_tenants,
        seed=seed,
        catalog_size=catalog_size,
        skew=skew,
        llm_fraction=llm_fraction,
    )
    return model.generate(num_requests=num_requests)
