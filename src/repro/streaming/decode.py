"""Autoregressive decode as a per-token *series*, with a stacked SoA path.

:func:`repro.core.tron.generation.run_generation` costs a decode episode
as totals; streaming serving needs the per-token shape — each generated
token attends over one more cached position, so latency, energy and the
op/byte mix drift token by token.  This module produces that series two
ways:

- the **scalar step loop** (``stacked=False``) folds
  :func:`repro.core.tron.generation.decode_step_reports` into columns —
  the reference semantics;
- the **stacked SoA pass** (``stacked=True``, the default) evaluates the
  whole episode — or a batch of episodes — as column-resident NumPy
  arrays in one pass, mirroring the scalar expression tree exactly
  (integer ceil-divisions as ``-(-a // b)``, float ceils as the same
  float64 operations), so the series is *bit-identical* to the loop.

Example:
    >>> from repro.core import TRON
    >>> from repro.nn.models import gpt2_small
    >>> series = decode_series(
    ...     TRON(), gpt2_small(), prompt_tokens=8, generated_tokens=4)
    >>> series.context.tolist()        # KV context per generated token
    [9, 10, 11, 12]
    >>> scalar = decode_series(
    ...     TRON(), gpt2_small(), prompt_tokens=8, generated_tokens=4,
    ...     stacked=False)
    >>> bool((series.per_token_ns == scalar.per_token_ns).all())
    True
    >>> series.to_generation_report().summary() == \
        scalar.to_generation_report().summary()
    True
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import Workload, WorkloadKind
from repro.core.reports import EnergyReport, LatencyReport, RunReport
from repro.core.tron.generation import (
    GenerationReport,
    _validate_episode,
    decode_step_reports,
    prefill_report,
    static_power_mw,
)
from repro.errors import ConfigurationError
from repro.nn.counting import OpCount, transformer_op_count
from repro.nn.transformer import TransformerConfig

#: Dynamic energy categories a decode step charges, in the order the
#: scalar loop builds its per-step :class:`EnergyReport`.
ENERGY_FIELDS = (
    "laser_pj",
    "tuning_pj",
    "dac_pj",
    "adc_pj",
    "digital_pj",
    "memory_pj",
)


def _ceil_div(a, b):
    """Exact integer ceil-division, elementwise on arrays."""
    return -(-a // b)


def _chain_sum(values: np.ndarray) -> float:
    """Left-to-right chained sum — the order ``total + step`` folding
    produces, which pairwise ``np.sum`` would not reproduce bitwise."""
    return float(np.add.accumulate(np.asarray(values, dtype=float))[-1])


@dataclass(frozen=True, eq=False)
class DecodeSeries:
    """Per-token decode columns for one prompt + generate episode.

    Attributes:
        model_name: decoder config name (e.g. ``'GPT-2'``).
        prompt_tokens / generated_tokens: episode shape.
        prefill: RunReport of the prompt pass.
        context: int64 column — KV context length per generated token.
        compute_ns / memory_ns: float64 latency columns per token.
        energy_pj: dynamic energy columns keyed by :data:`ENERGY_FIELDS`
            (static energy is charged on the episode total, as in
            :func:`repro.core.tron.generation.run_generation`).
        decode_ops: op/byte totals of the decode phase.
        static_mw: static power charged over the decode latency.
    """

    model_name: str
    prompt_tokens: int
    generated_tokens: int
    prefill: RunReport
    context: np.ndarray
    compute_ns: np.ndarray
    memory_ns: np.ndarray
    energy_pj: Dict[str, np.ndarray]
    decode_ops: OpCount
    static_mw: float

    @property
    def per_token_ns(self) -> np.ndarray:
        """Total latency per generated token (compute + memory stall)."""
        return self.compute_ns + self.memory_ns

    @property
    def per_token_pj(self) -> np.ndarray:
        """Dynamic energy per generated token (static excluded)."""
        total = np.zeros_like(self.compute_ns)
        for name in ENERGY_FIELDS:
            total = total + self.energy_pj[name]
        return total

    @property
    def tokens_per_second(self) -> np.ndarray:
        """Instantaneous decode rate at each token position."""
        return 1e9 / self.per_token_ns

    @property
    def cumulative_ns(self) -> np.ndarray:
        """Decode latency accumulated through each token."""
        return np.add.accumulate(self.per_token_ns)

    @property
    def decode_latency(self) -> LatencyReport:
        """Episode decode latency (chained-sum totals, loop-identical)."""
        return LatencyReport(
            compute_ns=_chain_sum(self.compute_ns),
            memory_ns=_chain_sum(self.memory_ns),
        )

    @property
    def decode_energy(self) -> EnergyReport:
        """Episode decode energy including the static charge."""
        totals = {name: _chain_sum(self.energy_pj[name]) for name in ENERGY_FIELDS}
        dynamic = EnergyReport(**totals)
        static_pj = self.static_mw * self.decode_latency.total_ns
        return dynamic + EnergyReport(static_pj=static_pj)

    def to_generation_report(self) -> GenerationReport:
        """Collapse the series to the episode-total report shape."""
        return GenerationReport(
            prefill=self.prefill,
            decode_latency=self.decode_latency,
            decode_energy=self.decode_energy,
            decode_ops=self.decode_ops,
            prompt_tokens=self.prompt_tokens,
            generated_tokens=self.generated_tokens,
        )

    def summary(self) -> str:
        """One line: episode shape, rate, and first->last token drift."""
        first = float(self.per_token_ns[0])
        last = float(self.per_token_ns[-1])
        report = self.to_generation_report()
        return (
            f"{self.model_name} decode {self.prompt_tokens}+"
            f"{self.generated_tokens}: {report.tokens_per_second:,.0f} tok/s, "
            f"token latency {first / 1e3:.2f} -> {last / 1e3:.2f} us"
        )


def episode_decode_ops(
    model: TransformerConfig, context_sum: int, num_steps: int
) -> OpCount:
    """Closed-form decode-phase op totals over an episode.

    Exact-integer equivalent of summing
    :func:`repro.core.tron.generation.decode_step_ops` per step, given
    the episode's total context-length mass ``context_sum``.
    """
    d = model.d_model
    d_ff = model.d_ff
    h = model.num_heads
    layers = model.num_layers
    per_step_const_macs = 4 * d * d + 2 * d * d_ff
    return OpCount(
        macs=layers * (per_step_const_macs * num_steps + 2 * d * context_sum),
        adds=layers * 2 * d * num_steps,
        activations=layers * d_ff * num_steps,
        softmax_elements=layers * h * context_sum,
        norm_elements=layers * 2 * d * num_steps,
        activation_bytes=layers * (d * context_sum + 4 * d * num_steps),
        weight_bytes=layers * (4 * d * d + 2 * d * d_ff) * num_steps,
    )


def _stacked_columns(
    tron, model: TransformerConfig, context: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, Dict[str, np.ndarray]]:
    """One column-resident pass over a context column.

    Mirrors the scalar step loop expression-for-expression: the integer
    tiling arithmetic is exact, and every float64 elementwise operation
    (including the ``math.ceil``-on-float-quotient buffer costing) is
    IEEE-identical to the scalar path, so the columns are bit-identical
    to :func:`repro.core.tron.generation.decode_step_reports`.
    """
    cfg = tron.config
    array = tron.mha_unit.head_unit.executor
    cycle_ns = cfg.cycle_ns
    d = model.d_model
    d_k = model.d_model // model.num_heads
    d_ff = model.d_ff
    layers = model.num_layers
    breakdown = array.energy_breakdown_pj(
        weight_refresh_cycles=cfg.weight_refresh_cycles
    )

    # Context-independent cycle terms, via the same executor calls the
    # scalar loop makes (same yield gating, same validation).
    head_waves = _ceil_div(model.num_heads, cfg.num_head_units)
    const_head_cycles = (
        array.cycles_for(d_k, d, 1)
        + array.cycles_for(d, d_k, 1)
        + array.cycles_for(d_k, d, 1)
    )
    linear_cycles = _ceil_div(array.cycles_for(d, d, 1), cfg.num_linear_arrays)
    ff_cycles = _ceil_div(
        array.cycles_for(d_ff, d, 1) + array.cycles_for(d, d_ff, 1),
        cfg.num_ff_arrays,
    )

    # Context-varying tiling: score row (context x d) and context
    # reduction (d_k x context) — the executor's usable geometry.
    rows = array.usable_rows
    cols = array.usable_cols
    score_cycles = _ceil_div(context, rows) * _ceil_div(d, cols)
    reduce_cycles = _ceil_div(d_k, rows) * _ceil_div(context, cols)
    per_head_cycles = const_head_cycles + score_cycles + reduce_cycles
    layer_cycles = head_waves * per_head_cycles + linear_cycles + ff_cycles

    softmax = cfg.softmax
    softmax_ns = (2 * np.ceil(context / softmax.lanes)) / softmax.clock_ghz
    layer_ns = layer_cycles * cycle_ns + softmax_ns
    compute_ns = layer_ns * layers

    # KV-cache reads through the global buffer: the scalar path does
    # math.ceil on a float quotient, so the column uses the same float64
    # divide-then-ceil (NOT integer ceil-division).
    buffer = cfg.memory.global_buffer
    act_bytes = (context * d + 4 * d) * layers
    accesses = np.ceil(act_bytes * 8 / buffer.word_bits)
    mem_pj = accesses * buffer.read_energy_pj
    serial = np.ceil(accesses / (buffer.banks * buffer.ports))
    mem_ns = serial * buffer.access_latency_ns

    # Weight streaming is context-independent: one scalar call.
    weight_bytes = (4 * d * d + 2 * d * d_ff) * layers
    weight_pj, weight_ns = cfg.memory.load_from_offchip(weight_bytes)
    weight_pj /= cfg.batch
    weight_ns /= cfg.batch
    stall_ns = np.maximum(weight_ns - compute_ns, 0.0) + mem_ns

    active_cycles = layer_cycles * layers
    per_element_pj = softmax.energy_pj(1)
    energy = {
        "laser_pj": active_cycles * breakdown["laser_pj"],
        "tuning_pj": active_cycles * breakdown["tuning_pj"],
        "dac_pj": active_cycles * breakdown["dac_pj"],
        "adc_pj": active_cycles * breakdown["adc_pj"],
        "digital_pj": ((model.num_heads * context) * per_element_pj) * layers,
        "memory_pj": mem_pj + weight_pj,
    }
    return compute_ns, stall_ns, energy


def _context_column(prompt_tokens: int, generated_tokens: int) -> np.ndarray:
    return np.arange(
        prompt_tokens + 1,
        prompt_tokens + generated_tokens + 1,
        dtype=np.int64,
    )


def _series_from_columns(
    tron,
    model: TransformerConfig,
    prompt_tokens: int,
    generated_tokens: int,
    prefill: RunReport,
    context: np.ndarray,
    compute_ns: np.ndarray,
    memory_ns: np.ndarray,
    energy: Dict[str, np.ndarray],
) -> DecodeSeries:
    return DecodeSeries(
        model_name=model.name,
        prompt_tokens=prompt_tokens,
        generated_tokens=generated_tokens,
        prefill=prefill,
        context=context,
        compute_ns=compute_ns,
        memory_ns=memory_ns,
        energy_pj=energy,
        decode_ops=episode_decode_ops(
            model, int(context.sum()), generated_tokens
        ),
        static_mw=static_power_mw(tron),
    )


def decode_series(
    tron,
    model: TransformerConfig,
    prompt_tokens: int = 128,
    generated_tokens: int = 128,
    stacked: bool = True,
) -> DecodeSeries:
    """Per-token decode series for one episode on a TRON instance.

    Args:
        tron: a (possibly context-bound) :class:`repro.core.TRON`.
        model: decoder-only transformer config.
        prompt_tokens / generated_tokens: episode shape.
        stacked: evaluate as one column-resident SoA pass (default) or
            through the scalar step loop; the two are bit-identical.
    """
    _validate_episode(model, prompt_tokens, generated_tokens)
    prefill = prefill_report(tron, model, prompt_tokens)
    if not stacked:
        steps = decode_step_reports(
            tron, model, prompt_tokens, generated_tokens
        )
        context = np.asarray([s.context for s in steps], dtype=np.int64)
        compute_ns = np.asarray(
            [s.latency.compute_ns for s in steps], dtype=float
        )
        memory_ns = np.asarray(
            [s.latency.memory_ns for s in steps], dtype=float
        )
        energy = {
            name: np.asarray(
                [getattr(s.energy, name) for s in steps], dtype=float
            )
            for name in ENERGY_FIELDS
        }
    else:
        context = _context_column(prompt_tokens, generated_tokens)
        compute_ns, memory_ns, energy = _stacked_columns(tron, model, context)
    return _series_from_columns(
        tron, model, prompt_tokens, generated_tokens, prefill,
        context, compute_ns, memory_ns, energy,
    )


def decode_series_batch(
    tron,
    model: TransformerConfig,
    episodes: Sequence[Tuple[int, int]],
) -> List[DecodeSeries]:
    """A sweep over episodes as ONE stacked column pass.

    All episodes' context columns are concatenated, evaluated in a
    single SoA pass, and split back — each returned series is
    bit-identical to its per-episode scalar loop.

    Example:
        >>> from repro.core import TRON
        >>> from repro.nn.models import gpt2_small
        >>> batch = decode_series_batch(
        ...     TRON(), gpt2_small(), [(8, 2), (16, 3)])
        >>> [s.generated_tokens for s in batch]
        [2, 3]
    """
    if not episodes:
        raise ConfigurationError("need at least one (prompt, generated) episode")
    for prompt, generated in episodes:
        _validate_episode(model, prompt, generated)
    columns = [_context_column(p, g) for p, g in episodes]
    stacked = np.concatenate(columns)
    compute_ns, memory_ns, energy = _stacked_columns(tron, model, stacked)
    offsets = np.cumsum([len(c) for c in columns])[:-1]
    compute_parts = np.split(compute_ns, offsets)
    memory_parts = np.split(memory_ns, offsets)
    energy_parts = {
        name: np.split(energy[name], offsets) for name in ENERGY_FIELDS
    }
    prefills: Dict[int, RunReport] = {}
    series = []
    for index, (prompt, generated) in enumerate(episodes):
        if prompt not in prefills:
            prefills[prompt] = prefill_report(tron, model, prompt)
        series.append(
            _series_from_columns(
                tron, model, prompt, generated, prefills[prompt],
                columns[index], compute_parts[index], memory_parts[index],
                {name: energy_parts[name][index] for name in ENERGY_FIELDS},
            )
        )
    return series


@dataclass(frozen=True)
class DecodeWorkload(Workload):
    """A prompt + generate episode as a registered workload.

    Runs through the uniform ``Accelerator.run`` entry point (TRON only
    — GHOST raises :class:`repro.errors.MappingError`), reporting the
    whole episode (prefill + decode); the per-token series is exposed
    via :meth:`repro.core.TRON.decode_series`.

    Example:
        >>> from repro.core.base import get_workload
        >>> workload = get_workload("decode-gpt2-small")
        >>> workload.kind.value, workload.prompt_tokens
        ('decode', 128)
    """

    model: TransformerConfig
    prompt_tokens: int = 128
    generated_tokens: int = 64
    label: Optional[str] = None

    def __post_init__(self) -> None:
        _validate_episode(self.model, self.prompt_tokens, self.generated_tokens)

    @property
    def name(self) -> str:
        return self.label or f"decode-{self.model.name}"

    @property
    def kind(self) -> WorkloadKind:
        return WorkloadKind.DECODE

    def op_count(self, bytes_per_value: int = 1) -> OpCount:
        prefill_ops = transformer_op_count(
            replace(self.model, seq_len=self.prompt_tokens),
            bytes_per_value=bytes_per_value,
        )
        context = _context_column(self.prompt_tokens, self.generated_tokens)
        decode = episode_decode_ops(
            self.model, int(context.sum()), self.generated_tokens
        )
        decode = replace(
            decode,
            weight_bytes=decode.weight_bytes * bytes_per_value,
            activation_bytes=decode.activation_bytes * bytes_per_value,
        )
        return prefill_ops + decode

    def describe(self) -> str:
        return (
            f"{self.name}: {self.model.name} prompt {self.prompt_tokens} + "
            f"{self.generated_tokens} generated tokens"
        )
