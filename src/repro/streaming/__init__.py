"""Streaming workloads: autoregressive decode, evolving graphs, traffic.

The paper's headline scenarios — LLM serving on TRON, GNN inference on
GHOST — are *streaming* in production: decode cost varies per token as
the KV cache grows, graph workloads re-run on evolving edge sets, and
the serving tier sees multi-tenant load with diurnal shape.  This
package models all three phased-workload axes:

- :mod:`repro.streaming.decode` — per-token decode series with a
  stacked SoA path bit-identical to the scalar step loop;
- :mod:`repro.streaming.temporal` — edge-delta streams and snapshot
  re-evaluation with partition/physics reuse accounting;
- :mod:`repro.streaming.traffic` — multi-tenant trace generation with
  diurnal/bursty rate shaping over the serving arrival processes.
"""

from repro.streaming.decode import (
    DecodeSeries,
    DecodeWorkload,
    decode_series,
    decode_series_batch,
    episode_decode_ops,
)
from repro.streaming.temporal import (
    DeltaKind,
    GraphDelta,
    TemporalGraphWorkload,
    TemporalReport,
    delta_stream,
    run_temporal,
    snapshots_from,
)
from repro.streaming.traffic import (
    ShapedArrivalProcess,
    TenantProfile,
    TrafficModel,
    diurnal_rate_curve,
    generate_tenant_trace,
    parse_shaped_arrivals,
)

__all__ = [
    "DecodeSeries",
    "DecodeWorkload",
    "decode_series",
    "decode_series_batch",
    "episode_decode_ops",
    "DeltaKind",
    "GraphDelta",
    "TemporalGraphWorkload",
    "TemporalReport",
    "delta_stream",
    "run_temporal",
    "snapshots_from",
    "TenantProfile",
    "TrafficModel",
    "ShapedArrivalProcess",
    "diurnal_rate_curve",
    "generate_tenant_trace",
    "parse_shaped_arrivals",
]
