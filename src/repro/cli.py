"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``describe`` — print both accelerators' configurations.
- ``claims`` — regenerate and check the paper's headline claims.
- ``figures`` — print the regenerated Figs. 8-11 tables.
- ``sweep tron|ghost|all`` — design-space sweep(s) with Pareto marking
  (``--corners`` adds the execution-corner axis).
- ``run <workload>`` — cost any registered workload on a platform,
  optionally at a named corner (``--corner slow-hot``).
- ``workloads`` — list the registered workload names.
- ``mc <workload>`` — Monte-Carlo variation analysis: yield and metric
  distributions over N sampled dies.
- ``corners`` — evaluate the standard corner grid on both accelerators.
- ``serve`` — replay a JSON request trace through the batching/caching
  serving engine (``--stats`` prints the fleet accounting).
- ``cache`` — inspect or clear the persistent physics cache
  (``repro cache --clear``; see docs/performance.md).
- ``gen-trace`` — synthesize a mixed LLM+GNN request trace.
- ``run-llm <model>`` — cost one transformer inference on TRON.
- ``run-gnn <kind> <dataset>`` — cost one GNN inference on GHOST.

``--seed`` selects the fabricated die / synthesized graph replica;
``--json`` switches ``run`` / ``sweep`` / ``mc`` / ``corners`` /
``serve`` output to machine-readable JSON.  Every JSON payload is a
schema-versioned envelope — ``{"schema": "repro.<command>/1",
"context": {...}, ...}`` — documented in ``docs/cli.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

#: Version suffix of every ``--json`` envelope this build emits.
JSON_SCHEMA_VERSION = 1


def json_envelope(command: str, context: Dict, payload: Dict) -> Dict:
    """The uniform machine-readable envelope of ``--json`` output.

    Every JSON-emitting command wraps its payload as
    ``{"schema": "repro.<command>/<version>", "context": {...}, ...}``
    so consumers can dispatch on the schema tag and always know which
    corner/seed (or trace) produced the numbers.  The schemas are
    documented in ``docs/cli.md``.
    """
    return {
        "schema": f"repro.{command}/{JSON_SCHEMA_VERSION}",
        "context": context,
        **payload,
    }


def _print_report(report) -> None:
    print(report.summary())
    print("energy breakdown (uJ):")
    for key, pj in report.energy.as_dict().items():
        if pj > 0.0:
            print(f"  {key:<14s} {pj / 1e6:10.2f}")


def _resolve_corner(name: str, seed: int):
    """The ExecutionContext a named corner + seed denotes (the shared
    rule lives in :func:`repro.core.context.resolve_corner`)."""
    from repro.core.context import resolve_corner

    return resolve_corner(name, seed)


def _context_from_args(args):
    """The ExecutionContext selected by --corner/--seed."""
    return _resolve_corner(
        getattr(args, "corner", "nominal"), getattr(args, "seed", 0)
    )


def _enable_disk_cache():
    """Attach the persistent physics cache for this CLI invocation.

    Repeated sweeps and serving cold-starts then skip device-physics
    recomputation across processes.  ``REPRO_DISK_CACHE=0`` opts out
    and ``REPRO_CACHE_DIR`` relocates the directory; see
    ``repro cache`` and docs/performance.md.
    """
    from repro.core.engine import configure_disk_cache

    return configure_disk_cache()


def _cmd_describe(_args) -> int:
    from repro.core.ghost import GHOST
    from repro.core.tron import TRON

    print(TRON().describe())
    print(GHOST().describe())
    return 0


def _cmd_claims(_args) -> int:
    from repro.analysis.claims import check_headline_claims

    checks = check_headline_claims()
    for check in checks:
        print(check.format())
    return 0 if all(check.holds for check in checks) else 1


def _cmd_figures(_args) -> int:
    from repro.analysis.figures import (
        fig8_llm_epb,
        fig9_llm_gops,
        fig10_gnn_epb,
        fig11_gnn_gops,
    )

    for fn in (fig8_llm_epb, fig9_llm_gops, fig10_gnn_epb, fig11_gnn_gops):
        print(fn().format())
        print()
    return 0


def _cmd_sweep(args) -> int:
    from repro.analysis.sweep import (
        format_sweep,
        ghost_sweep_space,
        pareto_frontier,
        run_sweep,
        tron_sweep_space,
        with_corners,
    )
    from repro.core.context import standard_corners
    from repro.core.engine import physics_cache_stats

    _enable_disk_cache()
    spaces = {
        "tron": (tron_sweep_space,),
        "ghost": (ghost_sweep_space,),
        "all": (tron_sweep_space, ghost_sweep_space),
    }[args.target]
    output = {}
    for make_space in spaces:
        space = make_space()
        if args.corners:
            corners = {
                name: _resolve_corner(name, args.seed)
                for name in standard_corners()
            }
            space = with_corners(space, corners)
        points = run_sweep(space)
        frontier = pareto_frontier(points)
        if args.json:
            on_frontier = {id(p) for p in frontier}
            output[space.name] = [
                dict(
                    label=p.label,
                    knobs={k: str(v) for k, v in p.knobs.items()},
                    latency_ns=p.latency_ns,
                    energy_pj=p.energy_pj,
                    gops=p.report.gops,
                    pareto=id(p) in on_frontier,
                )
                for p in points
            ]
            continue
        print(f"--- {space.name} ---")
        print(format_sweep(points, frontier))
        print(f"\n{len(frontier)} Pareto-optimal of {len(points)} configs\n")
    if args.json:
        envelope = json_envelope(
            "sweep",
            {"corners_axis": args.corners, "seed": args.seed},
            {"spaces": output, "physics_cache": physics_cache_stats()},
        )
        print(json.dumps(envelope, indent=2))
    return 0


def _cmd_workloads(_args) -> int:
    from repro.core.base import get_workload, list_workloads

    for name in list_workloads():
        workload = get_workload(name)
        print(f"{name:<20s} [{workload.kind.value:<11s}] {workload.describe()}")
    return 0


def _pick_platform(args, workload):
    from repro.core.base import WorkloadKind
    from repro.core.ghost import GHOST
    from repro.core.tron import TRON, TRONConfig

    platform = args.platform
    if platform == "auto":
        # GNN workloads map onto GHOST; everything else onto TRON (which
        # also covers suites that mix transformer and MLP members).
        platform = "ghost" if workload.kind is WorkloadKind.GNN else "tron"
    if platform == "ghost":
        if getattr(args, "batch", 1) != 1:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                "--batch only applies to TRON (GHOST costs full-graph "
                "inferences); rerun without it or with --platform tron"
            )
        return GHOST()
    return TRON(TRONConfig(batch=getattr(args, "batch", 1)))


def _cmd_cache(args) -> int:
    from repro.core.engine import configure_disk_cache

    cache = configure_disk_cache()
    if cache is None:
        print("persistent physics cache disabled (REPRO_DISK_CACHE=0)")
        return 0
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} entries from {cache.path}")
        return 0
    entries = len(cache)
    if args.json:
        envelope = json_envelope(
            "cache", {}, {"path": str(cache.path), "entries": entries}
        )
        print(json.dumps(envelope, indent=2))
    else:
        print(f"persistent physics cache: {cache.path} ({entries} entries)")
    return 0


def _cmd_run(args) -> int:
    from repro.core.base import get_workload

    _enable_disk_cache()
    workload = get_workload(args.workload)
    accelerator = _pick_platform(args, workload)
    ctx = _context_from_args(args)
    report = accelerator.run(workload, ctx=ctx)
    if args.json:
        envelope = json_envelope(
            "run",
            {"corner": args.corner, "seed": args.seed},
            report.to_dict(),
        )
        print(json.dumps(envelope, indent=2))
    else:
        _print_report(report)
    return 0


def _cmd_mc(args) -> int:
    from dataclasses import replace

    from repro.analysis.robustness import run_monte_carlo
    from repro.core.base import get_workload
    from repro.core.context import standard_corners
    from repro.photonics.variation import ProcessVariationModel

    _enable_disk_cache()
    workload = get_workload(args.workload)
    base = standard_corners()[args.corner]
    if base.variation is None:
        # Monte-Carlo over the nominal corner still needs a die
        # population to sample from.
        base = replace(base, variation=ProcessVariationModel())
    ctx = replace(base, seed=args.seed, tuner_range_nm=args.tuner_range)
    result = run_monte_carlo(
        make_accelerator=lambda: _pick_platform(args, workload),
        make_workload=lambda: workload,
        context=ctx,
        samples=args.samples,
        vectorized=not args.naive,
    )
    if args.json:
        envelope = json_envelope(
            "mc",
            {"corner": args.corner, "seed": args.seed},
            result.to_dict(),
        )
        print(json.dumps(envelope, indent=2))
    else:
        print(result.summary())
    return 0


def _cmd_corners(args) -> int:
    from repro.core.base import get_workload
    from repro.core.context import standard_corners
    from repro.core.engine import context_physics
    from repro.core.ghost import GHOST
    from repro.core.tron import TRON

    scenarios = (
        (TRON(), get_workload("BERT-base")),
        (GHOST(), get_workload("GCN-cora")),
    )
    rows = []
    for name in standard_corners():
        ctx = _resolve_corner(name, args.seed)
        for accelerator, workload in scenarios:
            report = accelerator.run(workload, ctx=ctx)
            physics = context_physics(accelerator.array_specs()[0], ctx)
            rows.append(
                dict(
                    corner=name,
                    platform=accelerator.name,
                    workload=workload.name,
                    latency_ns=report.latency_ns,
                    energy_pj=report.energy_pj,
                    epb_pj=report.epb_pj,
                    correction_power_mw=(
                        physics.correction_power_mw if physics else 0.0
                    ),
                    ring_yield=physics.ring_yield if physics else 1.0,
                )
            )
    if args.json:
        envelope = json_envelope(
            "corners", {"seed": args.seed}, {"rows": rows}
        )
        print(json.dumps(envelope, indent=2))
        return 0
    print(
        f"{'corner':>10s} {'platform':>8s} {'workload':<12s} "
        f"{'latency(us)':>12s} {'energy(uJ)':>11s} {'pJ/bit':>8s} "
        f"{'corr(mW)':>9s} {'yield':>6s}"
    )
    for row in rows:
        print(
            f"{row['corner']:>10s} {row['platform']:>8s} "
            f"{row['workload']:<12s} {row['latency_ns'] / 1e3:>12.2f} "
            f"{row['energy_pj'] / 1e6:>11.2f} {row['epb_pj']:>8.4f} "
            f"{row['correction_power_mw']:>9.1f} {row['ring_yield']:>6.3f}"
        )
    return 0


def _cmd_serve(args) -> int:
    from repro.core.engine import physics_cache_stats
    from repro.serving import ServingEngine, load_trace

    _enable_disk_cache()
    requests = load_trace(args.trace)
    engine = ServingEngine(
        cache_entries=args.cache_entries,
        max_pending=args.window,
        use_batched_physics=not args.no_batching,
    )
    with engine:
        for _ in range(args.repeat):
            for request in requests:
                engine.submit(request)
            engine.drain()

    served = engine.stats.requests
    stats = engine.stats.to_dict()
    cache = engine.cache.stats.to_dict()
    scheduler = engine.scheduler.stats.to_dict()
    physics = physics_cache_stats()
    if args.json:
        envelope = json_envelope(
            "serve",
            {
                "trace": args.trace,
                "repeat": args.repeat,
                "window": args.window,
            },
            {
                "stats": stats,
                "cache": cache,
                "scheduler": scheduler,
                "physics_cache": physics,
            },
        )
        print(json.dumps(envelope, indent=2))
        return 0 if stats["errors"] == 0 else 1
    print(
        f"served {served} requests in {stats['busy_s']:.2f} s "
        f"({stats['throughput_rps']:.0f} req/s)"
    )
    if args.stats:
        print(f"  cache hit rate   {100 * stats['hit_rate']:.1f}%")
        print(f"  deduplicated     {stats['deduped']}")
        print(f"  run-path evals   {scheduler['evaluated']}")
        print(f"  request groups   {scheduler['groups']}")
        print(f"  physics batches  {scheduler['physics_batches']}")
        print(f"  batched dies     {scheduler['batched_dies']}")
        print(f"  errors           {stats['errors']}")
        print(
            f"  latency mean/p95 {1e3 * stats['mean_latency_s']:.2f} / "
            f"{1e3 * stats['p95_latency_s']:.2f} ms"
        )
        print(
            f"  cache entries    {len(engine.cache)} "
            f"(bound {engine.cache.max_entries}, "
            f"{cache['evictions']} evicted)"
        )
        breakdown = physics["breakdown"]
        context = physics["context_physics"]
        disk = physics["disk"]
        print(
            f"  physics memo     {100 * breakdown['hit_rate']:.1f}% "
            f"breakdown hits, {100 * context['hit_rate']:.1f}% context "
            f"hits ({breakdown['evictions'] + context['evictions']} "
            "evicted)"
        )
        print(
            f"  physics disk     {disk['hits']} hits / "
            f"{disk['misses']} misses, {disk['writes']} writes"
        )
    return 0 if stats["errors"] == 0 else 1


def _cmd_gen_trace(args) -> int:
    from repro.serving import generate_trace, save_trace

    records = generate_trace(
        num_requests=args.requests,
        seed=args.seed,
        catalog_size=args.catalog,
        llm_fraction=args.llm_fraction,
        skew=args.skew,
    )
    save_trace(records, args.output)
    distinct = len({tuple(sorted(r.items())) for r in records})
    print(
        f"wrote {len(records)} requests ({distinct} distinct types) "
        f"to {args.output}"
    )
    return 0


def _cmd_run_llm(args) -> int:
    from repro.core.tron import TRON, TRONConfig
    from repro.nn.models import get_model_config

    model = get_model_config(args.model)
    report = TRON(TRONConfig(batch=args.batch)).run_transformer(model)
    _print_report(report)
    return 0


def _cmd_run_gnn(args) -> int:
    import numpy as np

    from repro.core.ghost import GHOST
    from repro.graphs.datasets import get_dataset_stats, synthesize_dataset
    from repro.nn.gnn import GNNKind, make_gnn

    stats = get_dataset_stats(args.dataset)
    graph, _ = synthesize_dataset(stats, rng=np.random.default_rng(args.seed))
    kind = GNNKind(args.kind)
    model = make_gnn(
        kind,
        in_dim=stats.feature_dim,
        out_dim=stats.num_classes,
        hidden_dim=args.hidden,
        heads=2 if kind is GNNKind.GAT else 1,
        name=f"{args.kind}-{args.dataset}",
    )
    report = GHOST().run_gnn(model.config, graph)
    _print_report(report)
    return 0


def _add_seed(parser) -> None:
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="die / replica selection seed (threads into the "
        "ExecutionContext)",
    )


CORNER_NAMES = ("nominal", "typical", "slow-hot", "fast-cold")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Silicon-photonic accelerator simulators (TRON & GHOST)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("describe", help="print accelerator configurations")
    sub.add_parser("claims", help="check the paper's headline claims")
    sub.add_parser("figures", help="regenerate Figs. 8-11")
    sub.add_parser("workloads", help="list registered workloads")

    sweep = sub.add_parser("sweep", help="design-space sweep with Pareto")
    sweep.add_argument("target", choices=("tron", "ghost", "all"))
    sweep.add_argument(
        "--corners",
        action="store_true",
        help="add the standard execution-corner axis to the sweep",
    )
    sweep.add_argument("--json", action="store_true")
    _add_seed(sweep)

    run = sub.add_parser("run", help="cost any registered workload")
    run.add_argument("workload", help="registered name, e.g. BERT-base, GCN-cora")
    run.add_argument(
        "--platform",
        choices=("auto", "tron", "ghost"),
        default="auto",
        help="target accelerator (auto picks by workload kind)",
    )
    run.add_argument("--batch", type=int, default=1)
    run.add_argument(
        "--corner",
        choices=CORNER_NAMES,
        default="nominal",
        help="evaluate at a standard execution corner",
    )
    run.add_argument("--json", action="store_true")
    _add_seed(run)

    mc = sub.add_parser(
        "mc", help="Monte-Carlo variation analysis of a workload"
    )
    mc.add_argument("workload", help="registered name, e.g. BERT-base")
    mc.add_argument(
        "--platform", choices=("auto", "tron", "ghost"), default="auto"
    )
    mc.add_argument("--samples", type=int, default=128)
    mc.add_argument(
        "--corner",
        choices=CORNER_NAMES,
        default="typical",
        help="die population to sample (nominal falls back to the "
        "typical variation statistics)",
    )
    mc.add_argument(
        "--tuner-range",
        type=float,
        default=None,
        help="TO tuner correction range in nm (dead rings beyond it); "
        "default 0.55 x FSR",
    )
    mc.add_argument(
        "--naive",
        action="store_true",
        help="run the N-scalar-runs baseline instead of the vectorized "
        "engine (same numbers, benchmarking aid)",
    )
    mc.add_argument("--json", action="store_true")
    _add_seed(mc)

    corners = sub.add_parser(
        "corners", help="evaluate the standard corner grid on TRON & GHOST"
    )
    corners.add_argument("--json", action="store_true")
    _add_seed(corners)

    cache = sub.add_parser(
        "cache",
        help="inspect or clear the persistent physics cache",
    )
    cache.add_argument(
        "--clear",
        action="store_true",
        help="delete every cached physics record",
    )
    cache.add_argument("--json", action="store_true")

    serve = sub.add_parser(
        "serve",
        help="replay a JSON request trace through the serving engine",
    )
    serve.add_argument(
        "--trace", required=True, help="trace file (see repro gen-trace)"
    )
    serve.add_argument(
        "--stats",
        action="store_true",
        help="print cache/dedup/latency accounting after the replay",
    )
    serve.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="replay the trace N times (the cache stays warm between "
        "replays)",
    )
    serve.add_argument(
        "--window",
        type=int,
        default=64,
        help="micro-batch window: requests coalesced per flush",
    )
    serve.add_argument(
        "--cache-entries",
        type=int,
        default=1024,
        help="report-cache bound (LRU eviction beyond it)",
    )
    serve.add_argument(
        "--no-batching",
        action="store_true",
        help="disable the batched corner-physics path (same numbers; "
        "benchmarking aid)",
    )
    serve.add_argument("--json", action="store_true")

    gen_trace = sub.add_parser(
        "gen-trace",
        help="synthesize a mixed LLM+GNN request trace with repeat skew",
    )
    gen_trace.add_argument("output", help="trace file to write")
    gen_trace.add_argument(
        "--requests", type=int, default=1000, help="trace length"
    )
    gen_trace.add_argument(
        "--catalog",
        type=int,
        default=48,
        help="distinct request types in the traffic mix",
    )
    gen_trace.add_argument(
        "--llm-fraction",
        type=float,
        default=0.7,
        help="fraction of LLM/MLP (vs. GNN) request types",
    )
    gen_trace.add_argument(
        "--skew",
        type=float,
        default=1.1,
        help="Zipf popularity exponent of the request types",
    )
    _add_seed(gen_trace)

    run_llm = sub.add_parser("run-llm", help="cost a transformer on TRON")
    run_llm.add_argument("model", help="model zoo name, e.g. BERT-base")
    run_llm.add_argument("--batch", type=int, default=1)

    from repro.nn.gnn import GNNKind

    run_gnn = sub.add_parser("run-gnn", help="cost a GNN on GHOST")
    run_gnn.add_argument("kind", choices=[k.value for k in GNNKind])
    run_gnn.add_argument("dataset", help="dataset name, e.g. cora")
    run_gnn.add_argument("--hidden", type=int, default=64)
    _add_seed(run_gnn)

    return parser


_HANDLERS = {
    "describe": _cmd_describe,
    "claims": _cmd_claims,
    "figures": _cmd_figures,
    "workloads": _cmd_workloads,
    "sweep": _cmd_sweep,
    "run": _cmd_run,
    "mc": _cmd_mc,
    "corners": _cmd_corners,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "gen-trace": _cmd_gen_trace,
    "run-llm": _cmd_run_llm,
    "run-gnn": _cmd_run_gnn,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
