"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``describe`` — print both accelerators' configurations.
- ``claims`` — regenerate and check the paper's headline claims.
- ``figures`` — print the regenerated Figs. 8-11 tables.
- ``sweep tron|ghost`` — run the design-space sweep with Pareto marking.
- ``run-llm <model>`` — cost one transformer inference on TRON.
- ``run-gnn <kind> <dataset>`` — cost one GNN inference on GHOST.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _cmd_describe(_args) -> int:
    from repro.core.ghost import GHOST
    from repro.core.tron import TRON

    print(TRON().describe())
    print(GHOST().describe())
    return 0


def _cmd_claims(_args) -> int:
    from repro.analysis.claims import check_headline_claims

    checks = check_headline_claims()
    for check in checks:
        print(check.format())
    return 0 if all(check.holds for check in checks) else 1


def _cmd_figures(_args) -> int:
    from repro.analysis.figures import (
        fig8_llm_epb,
        fig9_llm_gops,
        fig10_gnn_epb,
        fig11_gnn_gops,
    )

    for fn in (fig8_llm_epb, fig9_llm_gops, fig10_gnn_epb, fig11_gnn_gops):
        print(fn().format())
        print()
    return 0


def _cmd_sweep(args) -> int:
    from repro.analysis.sweep import (
        format_sweep,
        pareto_frontier,
        sweep_ghost,
        sweep_tron,
    )

    points = sweep_tron() if args.target == "tron" else sweep_ghost()
    frontier = pareto_frontier(points)
    print(format_sweep(points, frontier))
    print(f"\n{len(frontier)} Pareto-optimal of {len(points)} configs")
    return 0


def _cmd_run_llm(args) -> int:
    from repro.core.tron import TRON, TRONConfig
    from repro.nn.models import get_model_config

    model = get_model_config(args.model)
    report = TRON(TRONConfig(batch=args.batch)).run_transformer(model)
    print(report.summary())
    print("energy breakdown (uJ):")
    for key, pj in report.energy.as_dict().items():
        if pj > 0.0:
            print(f"  {key:<14s} {pj / 1e6:10.2f}")
    return 0


def _cmd_run_gnn(args) -> int:
    from repro.core.ghost import GHOST
    from repro.graphs.datasets import get_dataset_stats, synthesize_dataset
    from repro.nn.gnn import GNNKind, make_gnn

    stats = get_dataset_stats(args.dataset)
    graph, _ = synthesize_dataset(stats, rng=np.random.default_rng(0))
    kind = GNNKind(args.kind)
    model = make_gnn(
        kind,
        in_dim=stats.feature_dim,
        out_dim=stats.num_classes,
        hidden_dim=args.hidden,
        heads=2 if kind is GNNKind.GAT else 1,
        name=f"{args.kind}-{args.dataset}",
    )
    report = GHOST().run_gnn(model.config, graph)
    print(report.summary())
    print("energy breakdown (uJ):")
    for key, pj in report.energy.as_dict().items():
        if pj > 0.0:
            print(f"  {key:<14s} {pj / 1e6:10.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Silicon-photonic accelerator simulators (TRON & GHOST)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("describe", help="print accelerator configurations")
    sub.add_parser("claims", help="check the paper's headline claims")
    sub.add_parser("figures", help="regenerate Figs. 8-11")

    sweep = sub.add_parser("sweep", help="design-space sweep with Pareto")
    sweep.add_argument("target", choices=("tron", "ghost"))

    run_llm = sub.add_parser("run-llm", help="cost a transformer on TRON")
    run_llm.add_argument("model", help="model zoo name, e.g. BERT-base")
    run_llm.add_argument("--batch", type=int, default=1)

    from repro.nn.gnn import GNNKind

    run_gnn = sub.add_parser("run-gnn", help="cost a GNN on GHOST")
    run_gnn.add_argument("kind", choices=[k.value for k in GNNKind])
    run_gnn.add_argument("dataset", help="dataset name, e.g. cora")
    run_gnn.add_argument("--hidden", type=int, default=64)

    return parser


_HANDLERS = {
    "describe": _cmd_describe,
    "claims": _cmd_claims,
    "figures": _cmd_figures,
    "sweep": _cmd_sweep,
    "run-llm": _cmd_run_llm,
    "run-gnn": _cmd_run_gnn,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
