"""Command-line interface: ``python -m repro <command>``.

Every subcommand is a thin adapter over the programmatic API
(:class:`repro.api.Session`): the handlers below only parse arguments,
call the matching Session entry point, and print the returned result
object — all platform/analysis construction lives behind the facade.

Commands:

- ``describe`` — print both accelerators' configurations.
- ``claims`` — regenerate and check the paper's headline claims.
- ``figures`` — print the regenerated Figs. 8-11 tables.
- ``sweep tron|ghost|all`` — design-space sweep(s) with Pareto marking
  (``--corners`` adds the execution-corner axis).
- ``run <workload>`` — cost any registered workload on a platform,
  optionally at a named corner (``--corner slow-hot``).
- ``workloads`` — list the registered workload names.
- ``mc <workload>`` — Monte-Carlo variation analysis: yield and metric
  distributions over N sampled dies.
- ``corners`` — evaluate the standard corner grid on both accelerators.
- ``serve`` — replay a JSON request trace through the batching/caching
  serving engine (``--stats`` prints the fleet accounting);
  ``--workers N`` shards it over worker processes and ``--arrivals
  poisson:RATE`` drives open-loop offered load with admission control.
- ``cache`` — inspect or clear the persistent physics cache
  (``repro cache --clear``; see docs/performance.md).
- ``gen-trace`` — synthesize a mixed LLM+GNN request trace.
- ``run-llm <model>`` — deprecated alias of ``run --platform tron``.
- ``run-gnn <kind> <dataset>`` — deprecated; builds the GNN workload
  and routes through the same ``run`` path.

``run`` / ``sweep`` / ``mc`` / ``serve`` also accept a declarative
experiment spec (``--spec file.{json,toml}``, format ``repro.spec/1``;
see docs/api.md) instead of flags.  ``--seed`` selects the fabricated
die / synthesized graph replica; ``--json`` switches output to
machine-readable JSON.  Every JSON payload is a schema-versioned
envelope — ``{"schema": "repro.<command>/1", "repro_version": "...",
"context": {...}, ...}`` — documented in ``docs/cli.md`` and
machine-checkable via :mod:`repro.api.schemas`.  ``repro --version``
prints the library version embedded in those envelopes.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro._version import __version__

# Re-exported here for backwards compatibility: the envelope builder
# now lives with the typed result objects in repro.api.results.
from repro.api.results import JSON_SCHEMA_VERSION, json_envelope  # noqa: F401


def _session(disk_cache: bool = True):
    """The Session behind this invocation (CLI runs attach the
    persistent physics cache unless ``REPRO_DISK_CACHE=0``)."""
    from repro.api import Session

    return Session(disk_cache=disk_cache)


def _load_spec(args, expected_kind: str, **flag_defaults):
    """Load ``--spec`` input, checking it matches the subcommand and
    that no conflicting flags/positionals were passed alongside it —
    the spec is the whole experiment; silently ignoring an explicit
    flag would run a different experiment than the command line reads.

    ``flag_defaults`` maps each argparse attribute that the spec
    supersedes to its parser default.
    """
    from repro.api import load_spec
    from repro.errors import ConfigurationError

    conflicting = sorted(
        name.replace("_", "-")
        for name, default in flag_defaults.items()
        if getattr(args, name) != default
    )
    if conflicting:
        raise ConfigurationError(
            f"--spec replaces the experiment flags; drop {conflicting} "
            "or edit the spec file instead"
        )
    spec = load_spec(args.spec)
    if spec.analysis.kind != expected_kind:
        raise ConfigurationError(
            f"{args.spec}: spec declares analysis kind "
            f"{spec.analysis.kind!r}; run it with "
            f"'repro {spec.analysis.kind} --spec {args.spec}'"
        )
    return spec


def _emit(result, args) -> None:
    """Print a result object the way the flags ask for."""
    if getattr(args, "json", False):
        print(json.dumps(result.envelope(), indent=2))
    else:
        print(result.format())


def _deprecated(old: str, new: str) -> None:
    print(
        f"note: '{old}' is deprecated; use '{new}' instead",
        file=sys.stderr,
    )


def _cmd_describe(_args) -> int:
    print(_session(disk_cache=False).describe())
    return 0


def _cmd_claims(_args) -> int:
    checks = _session(disk_cache=False).claims()
    for check in checks:
        print(check.format())
    return 0 if all(check.holds for check in checks) else 1


def _cmd_figures(_args) -> int:
    for figure in _session(disk_cache=False).figures():
        print(figure.format())
        print()
    return 0


def _cmd_workloads(_args) -> int:
    session = _session(disk_cache=False)
    for name in session.workloads():
        print(f"{name:<20s} {session.describe_workload(name)}")
    return 0


def _cmd_sweep(args) -> int:
    session = _session()
    if args.spec:
        result = session.execute(
            _load_spec(
                args,
                "sweep",
                target=None,
                corners=False,
                seed=0,
                strategy=None,
            )
        )
    else:
        if args.target is None:
            raise _missing("sweep", "a target (tron|ghost|all)")
        result = session.sweep(
            target=args.target,
            corners=args.corners,
            seed=args.seed,
            strategy=args.strategy,
        )
    _emit(result, args)
    return 0


def _cmd_run(args) -> int:
    session = _session()
    if args.spec:
        result = session.execute(
            _load_spec(
                args,
                "run",
                workload=None,
                platform="auto",
                batch=1,
                corner="nominal",
                seed=0,
                memory_backend=None,
                trace_dump=None,
            )
        )
    else:
        if args.workload is None:
            raise _missing("run", "a workload name")
        result = session.run(
            args.workload,
            platform=args.platform,
            batch=args.batch,
            corner=args.corner,
            seed=args.seed,
            memory_backend=args.memory_backend,
            trace_dump=args.trace_dump,
        )
    _emit(result, args)
    return 0


def _cmd_mc(args) -> int:
    session = _session()
    if args.spec:
        result = session.execute(
            _load_spec(
                args,
                "mc",
                workload=None,
                platform="auto",
                samples=128,
                corner="typical",
                seed=0,
                tuner_range=None,
                naive=False,
                strategy=None,
            )
        )
    else:
        if args.workload is None:
            raise _missing("mc", "a workload name")
        result = session.monte_carlo(
            args.workload,
            platform=args.platform,
            samples=args.samples,
            corner=args.corner,
            seed=args.seed,
            tuner_range_nm=args.tuner_range,
            vectorized=not args.naive,
            strategy=args.strategy,
        )
    _emit(result, args)
    return 0


def _cmd_corners(args) -> int:
    result = _session(disk_cache=False).corners(seed=args.seed)
    _emit(result, args)
    return 0


def _cmd_cache(args) -> int:
    session = _session()
    result = session.clear_cache() if args.clear else session.cache_info()
    if args.json and result.enabled and not args.clear:
        print(json.dumps(result.envelope(), indent=2))
    else:
        print(result.format())
    return 0


def _cmd_serve(args) -> int:
    session = _session()
    if args.spec:
        result = session.execute(
            _load_spec(
                args,
                "serve",
                trace=None,
                repeat=1,
                window=64,
                cache_entries=1024,
                no_batching=False,
                workers=0,
                arrivals=None,
            )
        )
    else:
        if args.trace is None:
            raise _missing("serve", "a --trace file")
        result = session.serve(
            trace=args.trace,
            repeat=args.repeat,
            window=args.window,
            cache_entries=args.cache_entries,
            batched_physics=not args.no_batching,
            workers=args.workers,
            arrivals=args.arrivals,
            max_queue=args.max_queue,
            tenant_rate=args.tenant_rate,
        )
    if args.json:
        print(json.dumps(result.envelope(), indent=2))
    else:
        print(result.format(detailed=args.stats))
    return 0 if result.ok else 1


def _cmd_gen_trace(args) -> int:
    result = _session(disk_cache=False).generate_trace(
        output=args.output,
        requests=args.requests,
        seed=args.seed,
        catalog=args.catalog,
        llm_fraction=args.llm_fraction,
        skew=args.skew,
        tenants=args.tenants,
        shape=args.shape,
        rate=args.rate,
    )
    print(result.format())
    return 0


def _cmd_run_llm(args) -> int:
    _deprecated("run-llm", f"run {args.model} --platform tron")
    result = _session().run(args.model, platform="tron", batch=args.batch)
    print(result.format())
    return 0


def _cmd_run_gnn(args) -> int:
    _deprecated(
        "run-gnn", f"run {args.kind.upper()}-{args.dataset} --platform ghost"
    )
    session = _session()
    workload = session.gnn_workload(
        args.kind,
        args.dataset,
        hidden_dim=args.hidden,
        rng_seed=args.seed,
        name=f"{args.kind}-{args.dataset}",
    )
    print(session.run(workload, platform="ghost").format())
    return 0


def _missing(command: str, what: str):
    from repro.errors import ConfigurationError

    return ConfigurationError(f"'{command}' needs {what} or --spec FILE")


def _add_seed(parser) -> None:
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="die / replica selection seed (threads into the "
        "ExecutionContext)",
    )


def _add_spec(parser) -> None:
    parser.add_argument(
        "--spec",
        metavar="FILE",
        help="run a declarative experiment spec (repro.spec/1, "
        ".json or .toml) instead of flags; see docs/api.md",
    )


CORNER_NAMES = ("nominal", "typical", "slow-hot", "fast-cold")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Silicon-photonic accelerator simulators (TRON & GHOST)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {__version__}",
        help="print the library version and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("describe", help="print accelerator configurations")
    sub.add_parser("claims", help="check the paper's headline claims")
    sub.add_parser("figures", help="regenerate Figs. 8-11")
    sub.add_parser("workloads", help="list registered workloads")

    sweep = sub.add_parser("sweep", help="design-space sweep with Pareto")
    sweep.add_argument(
        "target", nargs="?", choices=("tron", "ghost", "all"), default=None
    )
    sweep.add_argument(
        "--corners",
        action="store_true",
        help="add the standard execution-corner axis to the sweep",
    )
    sweep.add_argument(
        "--strategy",
        choices=("soa", "batched", "serial", "threads"),
        default=None,
        help="sweep evaluation strategy (default: soa, the "
        "array-resident path; batched is the scalar oracle)",
    )
    sweep.add_argument("--json", action="store_true")
    _add_seed(sweep)
    _add_spec(sweep)

    run = sub.add_parser("run", help="cost any registered workload")
    run.add_argument(
        "workload",
        nargs="?",
        default=None,
        help="registered name, e.g. BERT-base, GCN-cora",
    )
    run.add_argument(
        "--platform",
        choices=("auto", "tron", "ghost"),
        default="auto",
        help="target accelerator (auto picks by workload kind)",
    )
    run.add_argument("--batch", type=int, default=1)
    run.add_argument(
        "--corner",
        choices=CORNER_NAMES,
        default="nominal",
        help="evaluate at a standard execution corner",
    )
    run.add_argument(
        "--memory-backend",
        default=None,
        help="memory backend override (analytic|hbm|hbm-pim); default "
        "keeps the platform's configured backend",
    )
    run.add_argument(
        "--trace-dump",
        default=None,
        metavar="PATH",
        help="write the DRAM command trace here (needs --memory-backend "
        "hbm or hbm-pim)",
    )
    run.add_argument("--json", action="store_true")
    _add_seed(run)
    _add_spec(run)

    mc = sub.add_parser(
        "mc", help="Monte-Carlo variation analysis of a workload"
    )
    mc.add_argument(
        "workload",
        nargs="?",
        default=None,
        help="registered name, e.g. BERT-base",
    )
    mc.add_argument(
        "--platform", choices=("auto", "tron", "ghost"), default="auto"
    )
    mc.add_argument("--samples", type=int, default=128)
    mc.add_argument(
        "--corner",
        choices=CORNER_NAMES,
        default="typical",
        help="die population to sample (nominal falls back to the "
        "typical variation statistics)",
    )
    mc.add_argument(
        "--tuner-range",
        type=float,
        default=None,
        help="TO tuner correction range in nm (dead rings beyond it); "
        "default 0.55 x FSR",
    )
    mc.add_argument(
        "--naive",
        action="store_true",
        help="run the N-scalar-runs baseline instead of the vectorized "
        "engine (same numbers, benchmarking aid)",
    )
    mc.add_argument(
        "--strategy",
        choices=("soa", "grouped", "naive"),
        default=None,
        help="Monte-Carlo evaluation strategy (default: soa, the "
        "array-resident path; overrides --naive when given)",
    )
    mc.add_argument("--json", action="store_true")
    _add_seed(mc)
    _add_spec(mc)

    corners = sub.add_parser(
        "corners", help="evaluate the standard corner grid on TRON & GHOST"
    )
    corners.add_argument("--json", action="store_true")
    _add_seed(corners)

    cache = sub.add_parser(
        "cache",
        help="inspect or clear the persistent physics cache",
    )
    cache.add_argument(
        "--clear",
        action="store_true",
        help="delete every cached physics record",
    )
    cache.add_argument("--json", action="store_true")

    serve = sub.add_parser(
        "serve",
        help="replay a JSON request trace through the serving engine",
    )
    serve.add_argument(
        "--trace", help="trace file (see repro gen-trace)"
    )
    serve.add_argument(
        "--stats",
        action="store_true",
        help="print cache/dedup/latency accounting after the replay",
    )
    serve.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="replay the trace N times (the cache stays warm between "
        "replays)",
    )
    serve.add_argument(
        "--window",
        type=int,
        default=64,
        help="micro-batch window: requests coalesced per flush",
    )
    serve.add_argument(
        "--cache-entries",
        type=int,
        default=1024,
        help="report-cache bound (LRU eviction beyond it)",
    )
    serve.add_argument(
        "--no-batching",
        action="store_true",
        help="disable the batched corner-physics path (same numbers; "
        "benchmarking aid)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard the trace over N worker processes (0 = in-process)",
    )
    serve.add_argument(
        "--arrivals",
        default=None,
        metavar="KIND:RATE[:BURST]",
        help="open-loop offered load, e.g. poisson:5000, "
        "bursty:2000:16, diurnal:poisson:500, or 'trace' to adopt the "
        "trace's recorded hint (needs --workers)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="fleet per-shard in-flight bound; admission control sheds "
        "beyond it",
    )
    serve.add_argument(
        "--tenant-rate",
        type=float,
        default=None,
        help="fleet per-tenant token-bucket quota (req/s)",
    )
    serve.add_argument("--json", action="store_true")
    _add_spec(serve)

    gen_trace = sub.add_parser(
        "gen-trace",
        help="synthesize a mixed LLM+GNN request trace with repeat skew",
    )
    gen_trace.add_argument("output", help="trace file to write")
    gen_trace.add_argument(
        "--requests", type=int, default=1000, help="trace length"
    )
    gen_trace.add_argument(
        "--catalog",
        type=int,
        default=48,
        help="distinct request types in the traffic mix",
    )
    gen_trace.add_argument(
        "--llm-fraction",
        type=float,
        default=0.7,
        help="fraction of LLM/MLP (vs. GNN) request types",
    )
    gen_trace.add_argument(
        "--skew",
        type=float,
        default=1.1,
        help="Zipf popularity exponent of the request types",
    )
    gen_trace.add_argument(
        "--tenants",
        type=int,
        default=0,
        help="multi-tenant traffic model: N tenants with per-tenant "
        "catalogs of embedded specs (0 = classic flat records)",
    )
    gen_trace.add_argument(
        "--shape",
        choices=("flat", "diurnal"),
        default="flat",
        help="arrival-shape hint stored in the trace for open-loop "
        "replay (serve --arrivals trace)",
    )
    gen_trace.add_argument(
        "--rate",
        type=float,
        default=500.0,
        help="mean offered rate (req/s) of the stored arrival hint",
    )
    _add_seed(gen_trace)

    run_llm = sub.add_parser(
        "run-llm",
        help="[deprecated] cost a transformer on TRON (use 'run')",
    )
    run_llm.add_argument("model", help="model zoo name, e.g. BERT-base")
    run_llm.add_argument("--batch", type=int, default=1)

    from repro.nn.gnn import GNNKind

    run_gnn = sub.add_parser(
        "run-gnn", help="[deprecated] cost a GNN on GHOST (use 'run')"
    )
    run_gnn.add_argument("kind", choices=[k.value for k in GNNKind])
    run_gnn.add_argument("dataset", help="dataset name, e.g. cora")
    run_gnn.add_argument("--hidden", type=int, default=64)
    _add_seed(run_gnn)

    return parser


_HANDLERS = {
    "describe": _cmd_describe,
    "claims": _cmd_claims,
    "figures": _cmd_figures,
    "workloads": _cmd_workloads,
    "sweep": _cmd_sweep,
    "run": _cmd_run,
    "mc": _cmd_mc,
    "corners": _cmd_corners,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "gen-trace": _cmd_gen_trace,
    "run-llm": _cmd_run_llm,
    "run-gnn": _cmd_run_gnn,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
