"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``describe`` — print both accelerators' configurations.
- ``claims`` — regenerate and check the paper's headline claims.
- ``figures`` — print the regenerated Figs. 8-11 tables.
- ``sweep tron|ghost|all`` — design-space sweep(s) with Pareto marking.
- ``run <workload>`` — cost any registered workload on a platform.
- ``workloads`` — list the registered workload names.
- ``run-llm <model>`` — cost one transformer inference on TRON.
- ``run-gnn <kind> <dataset>`` — cost one GNN inference on GHOST.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _print_report(report) -> None:
    print(report.summary())
    print("energy breakdown (uJ):")
    for key, pj in report.energy.as_dict().items():
        if pj > 0.0:
            print(f"  {key:<14s} {pj / 1e6:10.2f}")


def _cmd_describe(_args) -> int:
    from repro.core.ghost import GHOST
    from repro.core.tron import TRON

    print(TRON().describe())
    print(GHOST().describe())
    return 0


def _cmd_claims(_args) -> int:
    from repro.analysis.claims import check_headline_claims

    checks = check_headline_claims()
    for check in checks:
        print(check.format())
    return 0 if all(check.holds for check in checks) else 1


def _cmd_figures(_args) -> int:
    from repro.analysis.figures import (
        fig8_llm_epb,
        fig9_llm_gops,
        fig10_gnn_epb,
        fig11_gnn_gops,
    )

    for fn in (fig8_llm_epb, fig9_llm_gops, fig10_gnn_epb, fig11_gnn_gops):
        print(fn().format())
        print()
    return 0


def _cmd_sweep(args) -> int:
    from repro.analysis.sweep import (
        format_sweep,
        ghost_sweep_space,
        pareto_frontier,
        run_sweep,
        tron_sweep_space,
    )

    spaces = {
        "tron": (tron_sweep_space,),
        "ghost": (ghost_sweep_space,),
        "all": (tron_sweep_space, ghost_sweep_space),
    }[args.target]
    for make_space in spaces:
        space = make_space()
        points = run_sweep(space)
        frontier = pareto_frontier(points)
        print(f"--- {space.name} ---")
        print(format_sweep(points, frontier))
        print(f"\n{len(frontier)} Pareto-optimal of {len(points)} configs\n")
    return 0


def _cmd_workloads(_args) -> int:
    from repro.core.base import get_workload, list_workloads

    for name in list_workloads():
        workload = get_workload(name)
        print(f"{name:<20s} [{workload.kind.value:<11s}] {workload.describe()}")
    return 0


def _cmd_run(args) -> int:
    from repro.core.base import WorkloadKind, get_workload
    from repro.core.ghost import GHOST
    from repro.core.tron import TRON, TRONConfig

    workload = get_workload(args.workload)
    platform = args.platform
    if platform == "auto":
        # GNN workloads map onto GHOST; everything else onto TRON (which
        # also covers suites that mix transformer and MLP members).
        platform = "ghost" if workload.kind is WorkloadKind.GNN else "tron"
    if platform == "ghost":
        if args.batch != 1:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                "--batch only applies to TRON (GHOST costs full-graph "
                "inferences); rerun without it or with --platform tron"
            )
        accelerator = GHOST()
    else:
        accelerator = TRON(TRONConfig(batch=args.batch))
    _print_report(accelerator.run(workload))
    return 0


def _cmd_run_llm(args) -> int:
    from repro.core.tron import TRON, TRONConfig
    from repro.nn.models import get_model_config

    model = get_model_config(args.model)
    report = TRON(TRONConfig(batch=args.batch)).run_transformer(model)
    _print_report(report)
    return 0


def _cmd_run_gnn(args) -> int:
    from repro.core.ghost import GHOST
    from repro.graphs.datasets import get_dataset_stats, synthesize_dataset
    from repro.nn.gnn import GNNKind, make_gnn

    stats = get_dataset_stats(args.dataset)
    graph, _ = synthesize_dataset(stats, rng=np.random.default_rng(0))
    kind = GNNKind(args.kind)
    model = make_gnn(
        kind,
        in_dim=stats.feature_dim,
        out_dim=stats.num_classes,
        hidden_dim=args.hidden,
        heads=2 if kind is GNNKind.GAT else 1,
        name=f"{args.kind}-{args.dataset}",
    )
    report = GHOST().run_gnn(model.config, graph)
    _print_report(report)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Silicon-photonic accelerator simulators (TRON & GHOST)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("describe", help="print accelerator configurations")
    sub.add_parser("claims", help="check the paper's headline claims")
    sub.add_parser("figures", help="regenerate Figs. 8-11")
    sub.add_parser("workloads", help="list registered workloads")

    sweep = sub.add_parser("sweep", help="design-space sweep with Pareto")
    sweep.add_argument("target", choices=("tron", "ghost", "all"))

    run = sub.add_parser("run", help="cost any registered workload")
    run.add_argument("workload", help="registered name, e.g. BERT-base, GCN-cora")
    run.add_argument(
        "--platform",
        choices=("auto", "tron", "ghost"),
        default="auto",
        help="target accelerator (auto picks by workload kind)",
    )
    run.add_argument("--batch", type=int, default=1)

    run_llm = sub.add_parser("run-llm", help="cost a transformer on TRON")
    run_llm.add_argument("model", help="model zoo name, e.g. BERT-base")
    run_llm.add_argument("--batch", type=int, default=1)

    from repro.nn.gnn import GNNKind

    run_gnn = sub.add_parser("run-gnn", help="cost a GNN on GHOST")
    run_gnn.add_argument("kind", choices=[k.value for k in GNNKind])
    run_gnn.add_argument("dataset", help="dataset name, e.g. cora")
    run_gnn.add_argument("--hidden", type=int, default=64)

    return parser


_HANDLERS = {
    "describe": _cmd_describe,
    "claims": _cmd_claims,
    "figures": _cmd_figures,
    "workloads": _cmd_workloads,
    "sweep": _cmd_sweep,
    "run": _cmd_run,
    "run-llm": _cmd_run_llm,
    "run-gnn": _cmd_run_gnn,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
