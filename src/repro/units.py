"""Unit conversion helpers and physical constants.

Conventions used throughout the library (see DESIGN.md section 5):

- wavelength: nanometres (nm)
- optical / electrical power: milliwatts (mW), with dBm helpers
- loss and gain: decibels (dB)
- energy: picojoules (pJ)
- time: nanoseconds (ns)
- frequency: gigahertz (GHz)

Keeping one module of explicit, well-tested converters avoids the classic
1e-3/1e3 mistakes when mixing dBm link budgets with mW device models.
"""

from __future__ import annotations

import math

# Speed of light, expressed in the library's native units (nm per ns).
SPEED_OF_LIGHT_NM_PER_NS = 299_792_458.0  # c = 2.998e8 m/s = 2.998e17 nm/s

#: Speed of light in m/s for callers that need SI.
SPEED_OF_LIGHT_M_PER_S = 299_792_458.0

#: Boltzmann constant in J/K (used by thermal noise models).
BOLTZMANN_J_PER_K = 1.380_649e-23

#: Elementary charge in coulombs (used by shot-noise models).
ELEMENTARY_CHARGE_C = 1.602_176_634e-19


def dbm_to_mw(power_dbm: float) -> float:
    """Convert a power level in dBm to milliwatts."""
    return 10.0 ** (power_dbm / 10.0)


def mw_to_dbm(power_mw: float) -> float:
    """Convert a power level in milliwatts to dBm.

    Raises:
        ValueError: if ``power_mw`` is not strictly positive (0 mW is
            -infinity dBm, which is never a meaningful link-budget input).
    """
    if power_mw <= 0.0:
        raise ValueError(f"power must be > 0 mW to convert to dBm, got {power_mw}")
    return 10.0 * math.log10(power_mw)


def db_to_linear(value_db: float) -> float:
    """Convert a gain/loss in dB to a linear power ratio."""
    return 10.0 ** (value_db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB.

    Raises:
        ValueError: if ``ratio`` is not strictly positive.
    """
    if ratio <= 0.0:
        raise ValueError(f"ratio must be > 0 to convert to dB, got {ratio}")
    return 10.0 * math.log10(ratio)


def wavelength_nm_to_frequency_ghz(wavelength_nm: float) -> float:
    """Convert an optical wavelength in nm to frequency in GHz."""
    if wavelength_nm <= 0.0:
        raise ValueError(f"wavelength must be > 0 nm, got {wavelength_nm}")
    # c [m/s] / lambda [m] = f [Hz]; scale to GHz.
    return SPEED_OF_LIGHT_M_PER_S / (wavelength_nm * 1e-9) / 1e9


def frequency_ghz_to_wavelength_nm(frequency_ghz: float) -> float:
    """Convert an optical frequency in GHz to wavelength in nm."""
    if frequency_ghz <= 0.0:
        raise ValueError(f"frequency must be > 0 GHz, got {frequency_ghz}")
    return SPEED_OF_LIGHT_M_PER_S / (frequency_ghz * 1e9) * 1e9


def energy_pj(power_mw: float, time_ns: float) -> float:
    """Energy in pJ for a block drawing ``power_mw`` for ``time_ns``.

    1 mW * 1 ns = 1 pJ, so this is a straight product; the helper exists to
    make call sites self-documenting and unit-correct by construction.
    """
    return power_mw * time_ns


def joules_to_pj(energy_j: float) -> float:
    """Convert joules to picojoules."""
    return energy_j * 1e12


def pj_to_joules(energy_pj_value: float) -> float:
    """Convert picojoules to joules."""
    return energy_pj_value * 1e-12


def ghz_period_ns(frequency_ghz: float) -> float:
    """Clock period in ns for a clock frequency in GHz."""
    if frequency_ghz <= 0.0:
        raise ValueError(f"frequency must be > 0 GHz, got {frequency_ghz}")
    return 1.0 / frequency_ghz


def watts_to_mw(power_w: float) -> float:
    """Convert watts to milliwatts."""
    return power_w * 1e3


def mw_to_watts(power_mw: float) -> float:
    """Convert milliwatts to watts."""
    return power_mw * 1e-3
