"""The shared memory-traffic model (HBM streaming + global-buffer bounce).

Both accelerators hang off the same :class:`repro.electronics.memory`
hierarchy and route three kinds of traffic through it:

- **streamed weights** — sequential HBM bursts double-buffered against
  compute and amortized over a batch (TRON's weight path),
- **burst vs. random feature traffic** — sequential sweeps when blocking
  (buffer-and-partition) is on, penalized per-edge random accesses when
  it is off (GHOST's feature path),
- **buffer bounces** — intermediate tensors crossing the global buffer.

Factoring the arithmetic here keeps the energy ledgers of TRON, GHOST
and any future backend byte-for-byte comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Optional, Tuple

import numpy as np

from repro.core.context import ExecutionContext
from repro.core.reports import EnergyReport, LatencyReport
from repro.electronics.memory import MemorySystem
from repro.errors import ConfigurationError


class Traffic(NamedTuple):
    """Energy and latency of one traffic pattern."""

    energy_pj: float
    latency_ns: float


@dataclass(frozen=True)
class MemoryModel:
    """Traffic-pattern cost model over a :class:`MemorySystem`.

    The model is context-keyed: a non-nominal thermal corner derates the
    effective HBM bandwidth (hot DRAM spends more time refreshing), so
    every off-chip latency stretches by ``1 / hbm_derate``.  A ``None``
    context (or a nominal one) is bit-identical to the context-free
    model.
    """

    system: MemorySystem
    context: Optional[ExecutionContext] = None

    @property
    def _offchip_latency_scale(self) -> float:
        """Latency multiplier of off-chip transfers at this corner."""
        if self.context is None or not self.context.affects_memory:
            return 1.0
        return 1.0 / self.context.thermal.hbm_derate

    def _derated(self, energy_pj: float, latency_ns: float) -> Traffic:
        scale = self._offchip_latency_scale
        if scale == 1.0:
            return Traffic(energy_pj, latency_ns)
        return Traffic(energy_pj, latency_ns * scale)

    # ------------------------------------------------------------------
    # Primitive traffic patterns
    # ------------------------------------------------------------------

    def stream_offchip(self, num_bytes: int) -> Traffic:
        """HBM -> global buffer streaming (weights into residence)."""
        energy_pj, latency_ns = self.system.load_from_offchip(num_bytes)
        return self._derated(energy_pj, latency_ns)

    def burst_offchip(self, num_bytes: int) -> Traffic:
        """Sequential HBM burst at full aggregate bandwidth."""
        return self._derated(
            self.system.hbm.transfer_energy_pj(num_bytes),
            self.system.hbm.transfer_latency_ns(num_bytes),
        )

    def random_offchip(self, num_bytes: int, penalty: float) -> Traffic:
        """Irregular off-chip accesses, penalized relative to bursts."""
        if penalty < 1.0:
            raise ConfigurationError(
                f"random access penalty must be >= 1, got {penalty}"
            )
        burst = self.burst_offchip(num_bytes)
        return Traffic(burst.energy_pj * penalty, burst.latency_ns * penalty)

    def bounce_onchip(self, num_bytes: int) -> Traffic:
        """Intermediate tensors read through the global buffer."""
        energy_pj, latency_ns = self.system.read_onchip(num_bytes)
        return Traffic(energy_pj, latency_ns)

    @staticmethod
    def overlap_stall_ns(transfer_ns: float, compute_ns: float) -> float:
        """Stall left after overlapping a transfer with compute."""
        return max(transfer_ns - compute_ns, 0.0)

    # ------------------------------------------------------------------
    # Vectorized batch evaluators (whole columns of byte counts)
    # ------------------------------------------------------------------
    #
    # Each ``*_batch`` mirrors its scalar primitive's float expressions
    # elementwise (float division before ceil, derate applied only off
    # the nominal corner) so per-element results are bit-identical — the
    # SoA parity suite pins this.  The HBM backend overrides them with
    # geometry-derived forms.

    def _derated_batch(
        self, energy: np.ndarray, latency: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        scale = self._offchip_latency_scale
        if scale == 1.0:
            return energy, latency
        return energy, latency * scale

    def _buffer_batch(
        self, num_bytes: np.ndarray, write: bool
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(energy, latency) columns of global-buffer transfers."""
        buffer = self.system.global_buffer
        accesses = np.ceil(num_bytes * 8 / buffer.word_bits)
        per_access = buffer.write_energy_pj if write else buffer.read_energy_pj
        serial = np.ceil(accesses / (buffer.banks * buffer.ports))
        return accesses * per_access, serial * buffer.access_latency_ns

    def stream_offchip_batch(
        self, num_bytes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``stream_offchip`` over a whole column of byte counts."""
        nb = np.asarray(num_bytes, dtype=np.int64)
        hbm = self.system.hbm
        hbm_e = nb * 8 * hbm.energy_per_bit_pj
        hbm_l = nb * 8 / hbm.total_bandwidth_gbps
        buf_e, buf_l = self._buffer_batch(nb, write=True)
        return self._derated_batch(hbm_e + buf_e, np.maximum(hbm_l, buf_l))

    def burst_offchip_batch(
        self, num_bytes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``burst_offchip`` over a whole column of byte counts."""
        nb = np.asarray(num_bytes, dtype=np.int64)
        hbm = self.system.hbm
        return self._derated_batch(
            nb * 8 * hbm.energy_per_bit_pj,
            nb * 8 / hbm.total_bandwidth_gbps,
        )

    def random_offchip_batch(
        self, num_bytes: np.ndarray, penalty: object = 1.0
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``random_offchip`` over a whole column of byte counts.

        ``penalty`` may be a scalar or a column aligned with
        ``num_bytes``.
        """
        pen = np.asarray(penalty, dtype=float)
        if np.any(pen < 1.0):
            bad = float(np.min(pen))
            raise ConfigurationError(
                f"random access penalty must be >= 1, got {bad}"
            )
        energy, latency = self.burst_offchip_batch(num_bytes)
        return energy * pen, latency * pen

    def bounce_onchip_batch(
        self, num_bytes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``bounce_onchip`` over a whole column of byte counts."""
        nb = np.asarray(num_bytes, dtype=np.int64)
        return self._buffer_batch(nb, write=False)

    # ------------------------------------------------------------------
    # Composed patterns
    # ------------------------------------------------------------------

    def weight_stream_cost(
        self,
        weight_bytes: int,
        activation_bounce_bytes: int,
        compute_ns: float,
        batch: int = 1,
    ) -> "tuple[EnergyReport, LatencyReport]":
        """TRON-style memory cost: batched weight streaming + activation
        bounce.

        Model weights stream from HBM once per batch (double-buffered
        against compute, so only the excess stalls); activations bounce
        through the global buffer between blocks.
        """
        if batch < 1:
            raise ConfigurationError(f"batch must be >= 1, got {batch}")
        weights = self.stream_offchip(weight_bytes)
        acts = self.bounce_onchip(activation_bounce_bytes)
        energy = EnergyReport(
            memory_pj=weights.energy_pj / batch + acts.energy_pj
        )
        stall_ns = self.overlap_stall_ns(
            weights.latency_ns / batch, compute_ns
        )
        latency = LatencyReport(memory_ns=stall_ns + acts.latency_ns)
        return energy, latency

    def feature_sweep_cost(
        self,
        sweep_bytes: int,
        index_bytes: int,
        writeback_bytes: int,
        blocked: bool,
        random_access_penalty: float = 1.0,
    ) -> "tuple[EnergyReport, LatencyReport]":
        """GHOST-style memory cost: feature sweep + edge indices + writeback.

        Args:
            sweep_bytes: feature bytes crossing the HBM interface — one
                sequential sweep per panel when ``blocked``, per-edge
                fetches otherwise.
            index_bytes: edge-index bytes (sequential either way).
            writeback_bytes: results written through the global buffer.
            blocked: buffer-and-partition enabled (sequential bursts).
            random_access_penalty: multiplier applied when not blocked.
        """
        if blocked:
            features = self.burst_offchip(sweep_bytes)
        else:
            features = self.random_offchip(sweep_bytes, random_access_penalty)
        indices = self.burst_offchip(index_bytes)
        writeback = self.bounce_onchip(writeback_bytes)
        energy = EnergyReport(
            memory_pj=features.energy_pj + indices.energy_pj + writeback.energy_pj
        )
        latency = LatencyReport(
            memory_ns=features.latency_ns
            + indices.latency_ns
            + writeback.latency_ns
        )
        return energy, latency
