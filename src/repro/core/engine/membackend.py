"""The memory-backend registry: pluggable models behind one contract.

Every accelerator prices its off-chip traffic through the six-method
:class:`~repro.core.engine.memory.MemoryModel` contract.  This registry
maps a backend *name* — carried by accelerator configs and therefore by
``repro.spec/1`` fingerprints — to a builder producing a model honouring
that contract:

- ``analytic`` (default) — the scalar interface model, bit-identical to
  the pre-registry behaviour.
- ``hbm`` — the bank-conflict-aware, trace-capable device model of
  :mod:`repro.core.engine.hbm`.
- ``hbm-pim`` — the same device model with near-bank compute enabled
  (``pim_reduce_cost`` available, accelerators may offload reductions).

Example:
    >>> from repro.electronics.memory import MemorySystem
    >>> sorted(list_memory_backends())
    ['analytic', 'hbm', 'hbm-pim']
    >>> type(build_memory_backend("analytic", MemorySystem())).__name__
    'MemoryModel'
    >>> build_memory_backend("hbm-pim", MemorySystem()).pim_active
    True
    >>> build_memory_backend("sram", MemorySystem())
    Traceback (most recent call last):
        ...
    repro.errors.ConfigurationError: unknown memory backend 'sram'; registered backends: analytic, hbm, hbm-pim
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.core.context import ExecutionContext
from repro.core.engine.hbm.geometry import HBMGeometry
from repro.core.engine.hbm.model import HBMMemoryModel
from repro.core.engine.memory import MemoryModel
from repro.electronics.memory import MemorySystem
from repro.errors import ConfigurationError

#: A builder maps (system, context, geometry) to a contract-honouring model.
MemoryBackendBuilder = Callable[
    [MemorySystem, Optional[ExecutionContext], HBMGeometry], MemoryModel
]

_BACKENDS: Dict[str, MemoryBackendBuilder] = {}


def register_memory_backend(
    name: str, builder: MemoryBackendBuilder
) -> None:
    """Register ``builder`` under ``name`` (idempotent re-registration)."""
    if not name:
        raise ConfigurationError("memory backend name must be non-empty")
    _BACKENDS[name] = builder


def list_memory_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def build_memory_backend(
    name: str,
    system: MemorySystem,
    context: Optional[ExecutionContext] = None,
    geometry: Optional[HBMGeometry] = None,
) -> MemoryModel:
    """Build the named backend over ``system`` at ``context``.

    ``geometry`` defaults to :class:`HBMGeometry`'s defaults; the
    analytic backend ignores it entirely.
    """
    if name not in _BACKENDS:
        raise ConfigurationError(
            f"unknown memory backend {name!r}; registered backends: "
            + ", ".join(list_memory_backends())
        )
    return _BACKENDS[name](system, context, geometry or HBMGeometry())


def _build_analytic(
    system: MemorySystem,
    context: Optional[ExecutionContext],
    geometry: HBMGeometry,
) -> MemoryModel:
    return MemoryModel(system, context=context)


def _build_hbm(
    system: MemorySystem,
    context: Optional[ExecutionContext],
    geometry: HBMGeometry,
) -> MemoryModel:
    return HBMMemoryModel(system, context=context, geometry=geometry)


def _build_hbm_pim(
    system: MemorySystem,
    context: Optional[ExecutionContext],
    geometry: HBMGeometry,
) -> MemoryModel:
    return HBMMemoryModel(
        system, context=context, geometry=geometry, pim=True
    )


register_memory_backend("analytic", _build_analytic)
register_memory_backend("hbm", _build_hbm)
register_memory_backend("hbm-pim", _build_hbm_pim)
