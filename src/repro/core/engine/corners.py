"""Per-context array physics: variation sampling, TED power, yield gating.

Given an array geometry and an :class:`~repro.core.context.ExecutionContext`,
this module answers the three questions the cost model needs:

1. **How much standing tuning power does variation correction cost?**
   Each ring's sampled resonance error (plus the thermal corner's uniform
   drift) folds into ``[-FSR/2, FSR/2]`` and becomes a heater temperature
   target; the bank's heater powers come from the thermal-eigenmode
   solve ``P = K^-1 T`` over the :class:`ThermalGrid` coupling matrix
   (negative solutions clipped — a heater cannot cool), or from naive
   per-ring control when TED is disabled.
2. **Which rows/columns survive yield gating?**  A ring whose folded
   error exceeds the tuner range is dead; a weight row is usable only if
   all its rings are correctable, and the input bank's dead rings gate
   the usable columns.
3. **Is the die functional at all?**  Zero usable rows or columns means
   the sample cannot execute anything.

Everything is memoized per ``(geometry, context)`` so design-space
sweeps and Monte-Carlo samples that revisit a corner never recompute it,
and :func:`batch_context_physics` evaluates all the folding / masking /
TED math for N samples in one batched numpy pass (the per-sample draws
use each sample's own seeded generator so scalar and batched evaluation
see exactly the same dies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.context import ExecutionContext
from repro.core.engine.diskcache import active_disk_cache
from repro.core.engine.memo import LRUMemo
from repro.errors import ConfigurationError
from repro.photonics.microring import MicroringDesign, design_working_point
from repro.photonics.thermal import ThermalGrid

#: Default tuner range as a fraction of the FSR when the context does not
#: pin one — matches :func:`repro.photonics.variation.variation_impact`.
DEFAULT_TUNER_RANGE_FSR_FRACTION = 0.55

#: Self-heating coefficient of the naive (no-TED) per-ring controller —
#: the diagonal of the :class:`ThermalGrid` coupling matrix.
_NAIVE_KELVIN_PER_MW = ThermalGrid(num_heaters=1).kelvin_per_mw


@dataclass(frozen=True)
class ArrayContextPhysics:
    """Context-dependent physics of one MR bank array geometry.

    Attributes:
        usable_rows / usable_cols: yield-gated array dimensions.
        correction_power_mw: standing heater power correcting every
            correctable ring of the array (all banks).
        ring_yield: fraction of the array's rings that are correctable.
        mean_correction_nm: mean |folded error| over correctable rings.
    """

    usable_rows: int
    usable_cols: int
    correction_power_mw: float
    ring_yield: float = 1.0
    mean_correction_nm: float = 0.0

    @property
    def functional(self) -> bool:
        """Whether the sampled die can execute at all."""
        return self.usable_rows >= 1 and self.usable_cols >= 1


@dataclass(frozen=True)
class BatchContextPhysics:
    """Vectorized context physics of N variation samples (one geometry).

    All arrays have shape ``(samples,)``.
    """

    usable_rows: np.ndarray
    usable_cols: np.ndarray
    correction_power_mw: np.ndarray
    ring_yield: np.ndarray
    mean_correction_nm: np.ndarray

    @property
    def samples(self) -> int:
        return len(self.correction_power_mw)

    @property
    def functional(self) -> np.ndarray:
        """Boolean mask of samples with any usable hardware."""
        return (self.usable_rows >= 1) & (self.usable_cols >= 1)

    @property
    def fully_functional(self) -> np.ndarray:
        """Boolean mask of samples with no yield-gated rows or columns
        (the classic "all rings correctable" bank-yield criterion)."""
        return self.ring_yield >= 1.0

    def sample(self, index: int) -> ArrayContextPhysics:
        """The scalar physics record of one sample."""
        return ArrayContextPhysics(
            usable_rows=int(self.usable_rows[index]),
            usable_cols=int(self.usable_cols[index]),
            correction_power_mw=float(self.correction_power_mw[index]),
            ring_yield=float(self.ring_yield[index]),
            mean_correction_nm=float(self.mean_correction_nm[index]),
        )


#: (rows, cols, design, context) -> scalar physics record.  LRU-bounded
#: (with eviction counters) so per-die loops (a fresh context per seed)
#: churn through it instead of growing it.
_PHYSICS_CACHE: LRUMemo = LRUMemo(max_entries=256)
#: cols -> inverse thermal coupling matrix of a bank of heaters.
_COUPLING_INVERSE_CACHE: LRUMemo = LRUMemo(max_entries=64)
#: design -> FSR at 1550 nm.
_FSR_CACHE: LRUMemo = LRUMemo(max_entries=64)


def clear_context_physics_cache() -> None:
    """Drop all memoized per-context physics (benchmarks use this to
    time the unmemoized path, mirroring the engine's physics cache)."""
    _PHYSICS_CACHE.clear()
    _COUPLING_INVERSE_CACHE.clear()
    _FSR_CACHE.clear()


def context_physics_cache_stats() -> Dict[str, Dict[str, float]]:
    """Hit/miss/eviction counters of the per-context physics memos."""
    return {
        "context_physics": _PHYSICS_CACHE.stats.to_dict(),
        "coupling_inverse": _COUPLING_INVERSE_CACHE.stats.to_dict(),
        "design_fsr": _FSR_CACHE.stats.to_dict(),
    }


def _design_fsr_nm(design: MicroringDesign) -> float:
    """FSR at 1550 nm, via the shared photonics working-point kernel."""
    fsr = _FSR_CACHE.get(design)
    if fsr is None:
        fsr = float(design_working_point(design).fsr_nm)
        _FSR_CACHE.put(design, fsr)
    return fsr


def _coupling_inverse(cols: int) -> np.ndarray:
    """Inverse thermal coupling matrix of a bank of ``cols`` heaters
    (float32, matching the batched physics pipeline)."""
    inverse = _COUPLING_INVERSE_CACHE.get(cols)
    if inverse is None:
        grid = ThermalGrid(num_heaters=cols)
        inverse = np.linalg.inv(grid.coupling_matrix()).astype(np.float32)
        # The exponential distance decay leaves far-neighbour entries in
        # the float32 subnormal range; flush them to zero — physically
        # negligible, and subnormal operands stall the batched matmul.
        inverse[np.abs(inverse) < np.finfo(np.float32).tiny] = 0.0
        _COUPLING_INVERSE_CACHE.put(cols, inverse)
    return inverse


def _fold_errors_nm_inplace(
    errors_nm: np.ndarray, offset_nm: float, fsr_nm: float
) -> np.ndarray:
    """Shift errors by the thermal offset and fold into [-FSR/2, FSR/2]
    (a ring can lock to the adjacent resonance order instead of heating
    across a full FSR).  Mutates and returns ``errors_nm``.

    Folds via ``x - FSR * floor((x + FSR/2) / FSR)`` — an order of
    magnitude faster than ``np.mod`` on the batched arrays.
    """
    half = 0.5 * fsr_nm
    errors_nm += offset_nm
    orders = errors_nm + half
    orders *= 1.0 / fsr_nm
    np.floor(orders, out=orders)
    orders *= fsr_nm
    errors_nm -= orders
    return errors_nm


def _draw_die_errors_nm(
    contexts, rows: int, cols: int
) -> np.ndarray:
    """Sampled resonance errors (nm) of every ring, one die per context.

    Shape ``(len(contexts), rows + 1, cols)``: bank 0 is the input bank,
    banks 1..rows the weight banks.  Errors are correlated through one
    die-level component (thickness varies slowly across a wafer), as in
    :meth:`ProcessVariationModel.sample_resonance_errors`.  Each die
    draws from its own seeded generator; the correlation scaling is
    applied in one batched pass.
    """
    banks = rows + 1
    # float32 throughout: resonance errors are physical nanometre-scale
    # quantities modelled to a few per-mille at best, and single
    # precision halves the memory traffic of the batched passes.
    errors = np.empty((len(contexts), banks, cols), dtype=np.float32)
    variation = contexts[0].variation
    if variation is None:
        errors.fill(0.0)
        return errors
    sigma = variation.resonance_sigma_nm
    rho = variation.intra_die_correlation
    shared = np.empty(len(contexts), dtype=np.float32)
    for i, ctx in enumerate(contexts):
        rng = np.random.default_rng((ctx.seed, rows, cols))
        shared[i] = rng.standard_normal(dtype=np.float32)
        rng.standard_normal(out=errors[i], dtype=np.float32)
    errors *= np.float32(sigma * np.sqrt(1.0 - rho))
    errors += np.float32(sigma * np.sqrt(rho)) * shared[:, None, None]
    return errors


def _physics_from_folded(
    folded_nm: np.ndarray,
    ctx: ExecutionContext,
    range_nm: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Batched yield gating + heater solve over folded errors.

    Args:
        folded_nm: ``(samples, banks, cols)`` folded resonance errors.
        ctx: the evaluation context (TED flag, thermal drift).
        range_nm: tuner correction range.

    Returns:
        ``(usable_rows, usable_cols, correction_power_mw, ring_yield,
        mean_correction_nm)`` arrays of shape ``(samples,)``.
    """
    samples, banks, cols = folded_nm.shape
    # The folded errors are consumed here, so all passes run in place.
    magnitude = np.abs(folded_nm, out=folded_nm)
    correctable = magnitude <= range_nm
    usable_cols = correctable[:, 0, :].sum(axis=1)
    usable_rows = correctable[:, 1:, :].all(axis=2).sum(axis=1)
    correctable_counts = correctable.sum(axis=(1, 2))
    ring_yield = correctable_counts / (banks * cols)
    # Only correctable rings are tuned (a dead ring's target is
    # unreachable, so its heater stays off).
    magnitude *= correctable
    corrected_sum = magnitude.sum(axis=(1, 2), dtype=np.float64)
    mean_correction = np.divide(
        corrected_sum,
        correctable_counts,
        out=np.zeros(samples),
        where=correctable_counts > 0,
    )
    # Heater temperature targets of the correctable rings.
    targets_k = magnitude
    targets_k /= ctx.thermal.drift_nm_per_k
    if ctx.use_ted:
        # TED: P = K^-1 T per bank, batched over samples x banks; negative
        # solutions clip to zero (a heater cannot cool).  This one-shot
        # clipped projection is a deliberate approximation of the exact
        # nonnegative solve (ThermalGrid.ted_powers_mw re-solves on the
        # active set, which cannot batch across thousands of sample-bank
        # systems): it biases total power slightly high (~10% on typical
        # draws), i.e. the Monte-Carlo tuning-power numbers are
        # conservative relative to the canonical scalar TED model.
        powers = targets_k.reshape(-1, cols) @ _coupling_inverse(cols).T
        np.clip(powers, 0.0, None, out=powers)
        correction_power = powers.reshape(samples, -1).sum(
            axis=1, dtype=np.float64
        )
    else:
        # Naive per-ring control: P_i = T_i / K_ii.
        correction_power = (
            targets_k.sum(axis=(1, 2), dtype=np.float64) / _NAIVE_KELVIN_PER_MW
        )
    return usable_rows, usable_cols, correction_power, ring_yield, mean_correction


def _tuner_range_nm(ctx: ExecutionContext, fsr_nm: float) -> float:
    if ctx.tuner_range_nm is not None:
        return ctx.tuner_range_nm
    return DEFAULT_TUNER_RANGE_FSR_FRACTION * fsr_nm


def context_physics(
    spec, ctx: Optional[ExecutionContext]
) -> Optional[ArrayContextPhysics]:
    """The memoized context physics of one array spec.

    ``spec`` is any object exposing ``rows``, ``cols`` and ``design``
    (both :class:`~repro.core.engine.matmul.ArraySpec` and configs do).
    Returns ``None`` for the nominal corner, in which case every cost is
    bit-identical to the context-free path.
    """
    if ctx is None or not ctx.affects_arrays:
        return None
    pinned = ctx.pinned_for(spec.rows, spec.cols)
    if pinned is not None:
        return ArrayContextPhysics(
            usable_rows=min(pinned.usable_rows, spec.rows),
            usable_cols=min(pinned.usable_cols, spec.cols),
            correction_power_mw=pinned.correction_power_mw,
            ring_yield=1.0
            if (pinned.usable_rows, pinned.usable_cols)
            == (spec.rows, spec.cols)
            else 0.0,
        )
    key = (spec.rows, spec.cols, spec.design, ctx)
    cached = _PHYSICS_CACHE.get(key)
    if cached is not None:
        return cached
    disk = active_disk_cache()
    disk_key = (spec.rows, spec.cols, repr(spec.design), repr(ctx))
    if disk is not None:
        persisted = disk.get("context-physics", disk_key)
        if persisted is not None:
            physics = ArrayContextPhysics(
                usable_rows=int(persisted["usable_rows"]),
                usable_cols=int(persisted["usable_cols"]),
                correction_power_mw=persisted["correction_power_mw"],
                ring_yield=persisted["ring_yield"],
                mean_correction_nm=persisted["mean_correction_nm"],
            )
            _PHYSICS_CACHE.put(key, physics)
            return physics
    physics = batch_context_physics(spec, ctx, samples=None).sample(0)
    _PHYSICS_CACHE.put(key, physics)
    if disk is not None:
        disk.put(
            "context-physics",
            disk_key,
            {
                "usable_rows": physics.usable_rows,
                "usable_cols": physics.usable_cols,
                "correction_power_mw": physics.correction_power_mw,
                "ring_yield": physics.ring_yield,
                "mean_correction_nm": physics.mean_correction_nm,
            },
        )
    return physics


def _context_family(ctx: ExecutionContext) -> Tuple:
    """The fields a batch of contexts must share (everything but the
    seed): the same die population, thermal corner and tuner model."""
    return (ctx.variation, ctx.thermal, ctx.use_ted, ctx.tuner_range_nm)


def batch_context_physics(
    spec, ctx: ExecutionContext, samples: Optional[int]
) -> BatchContextPhysics:
    """Context physics of N Monte-Carlo samples in one batched pass.

    With ``samples=None`` the single die selected by ``ctx.seed`` itself
    is evaluated (batch of one); otherwise sample ``i`` is the die of
    ``ctx.for_sample(i)``, so a naive scalar loop over per-sample
    contexts and this batched pass see exactly the same draws.
    """
    if ctx is None or ctx.pinned:
        raise ConfigurationError(
            "batched context physics needs a sampling context "
            "(no pinned overrides)"
        )
    if samples is not None and samples < 1:
        raise ConfigurationError(f"need >= 1 sample, got {samples}")
    contexts = (
        [ctx]
        if samples is None
        else [ctx.for_sample(i) for i in range(samples)]
    )
    return batch_context_physics_for(spec, contexts)


def batch_context_physics_for(
    spec, contexts
) -> BatchContextPhysics:
    """Context physics of explicitly listed dies in one batched pass.

    Where :func:`batch_context_physics` derives its die population from
    one base context, this entry point takes the dies themselves — the
    serving scheduler uses it to evaluate every distinct die appearing in
    a request group at once instead of running N scalar physics solves.
    Entry ``i`` of the result is the physics of ``contexts[i]``,
    identical to what :func:`context_physics` computes for that context
    alone.

    Args:
        spec: the array geometry (``rows``, ``cols``, ``design``).
        contexts: the dies to evaluate; all must share the same
            variation model, thermal corner, TED flag and tuner range
            (i.e. differ only in seed), and carry no pinned overrides.

    Raises:
        ConfigurationError: on an empty batch, a pinned context, or
            contexts drawn from different die populations.
    """
    contexts = list(contexts)
    if not contexts:
        raise ConfigurationError("need >= 1 context to batch")
    base = contexts[0]
    if base is None:
        raise ConfigurationError("batched context physics needs a context")
    family = _context_family(base)
    for ctx in contexts:
        if ctx is None or ctx.pinned:
            raise ConfigurationError(
                "batched context physics needs sampling contexts "
                "(no pinned overrides)"
            )
        if _context_family(ctx) != family:
            raise ConfigurationError(
                "all contexts in one physics batch must share the same "
                "variation model, thermal corner, TED flag and tuner "
                "range (they may differ only in seed)"
            )
    ctx = base
    rows, cols = spec.rows, spec.cols
    fsr = _design_fsr_nm(spec.design)
    # The draws loop per die (each die has its own seeded generator, so
    # a scalar per-sample sweep sees the same dies); everything below is
    # one batched pass over all dies at once.
    errors = _draw_die_errors_nm(contexts, rows, cols)
    folded = _fold_errors_nm_inplace(
        errors, ctx.thermal.resonance_offset_nm, fsr
    )
    range_nm = _tuner_range_nm(ctx, fsr)
    usable_rows, usable_cols, power, ring_yield, mean_corr = (
        _physics_from_folded(folded, ctx, range_nm)
    )
    return BatchContextPhysics(
        usable_rows=usable_rows,
        usable_cols=usable_cols,
        correction_power_mw=power,
        ring_yield=ring_yield,
        mean_correction_nm=mean_corr,
    )
