"""The persistent on-disk physics cache.

Device-physics curves and per-``(geometry, context)`` variation physics
are pure functions of frozen dataclasses, so their values survive
process boundaries: a CLI sweep tonight and a serving cold-start
tomorrow recompute exactly what a previous process already solved.
This module persists those solves as tiny JSON records keyed by the
same fingerprint scheme as the serving layer's report cache
(:func:`fingerprint`, a short SHA-256 digest of the key's ``repr`` —
configuration dataclasses nest only dataclasses and scalars, so their
``repr`` is a complete deterministic serialization).

Design points:

- **Opt-in per process.**  The library default is *disabled* so unit
  tests and benchmarks stay hermetic; the CLI enables it for ``sweep``
  / ``serve`` / ``run`` / ``mc`` (``REPRO_DISK_CACHE=0`` opts out, and
  ``repro cache --clear`` empties it).
- **Exact round-trip.**  Payloads are flat ``{str: float}`` dicts and
  JSON serializes floats with ``repr`` semantics, so a cached physics
  value is bit-identical to the freshly computed one.
- **Versioned keys.**  :data:`PHYSICS_SCHEMA_VERSION` participates in
  every fingerprint; bumping it when kernel math changes orphans stale
  entries instead of serving wrong numbers.
- **Corruption-tolerant.**  An unreadable or mismatching entry counts
  as a miss (and an ``error``), never an exception on the hot path.

Example:
    >>> import tempfile
    >>> cache = PhysicsDiskCache(tempfile.mkdtemp())
    >>> cache.get("breakdown", ("spec", 0.5)) is None
    True
    >>> cache.put("breakdown", ("spec", 0.5), {"laser_pj": 1.25})
    >>> cache.get("breakdown", ("spec", 0.5))
    {'laser_pj': 1.25}
    >>> cache.clear()
    1
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError

#: Bump when kernel math changes: stale cache entries from an older
#: physics implementation must miss, not serve outdated numbers.
PHYSICS_SCHEMA_VERSION = 1

#: Environment variable naming the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable disabling persistence entirely (``0`` / ``off``).
CACHE_ENABLE_ENV = "REPRO_DISK_CACHE"


def fingerprint(key: object) -> str:
    """A short stable digest of any repr-deterministic key.

    The exact scheme of :func:`repro.serving.cache.config_fingerprint`
    (which delegates here): SHA-256 over ``repr`` and keep 16 hex
    chars.  Frozen dataclasses, tuples and scalars all qualify.

    Example:
        >>> fingerprint(("spec", 1)) == fingerprint(("spec", 1))
        True
        >>> fingerprint(("spec", 1)) == fingerprint(("spec", 2))
        False
    """
    digest = hashlib.sha256(repr(key).encode("utf-8"))
    return digest.hexdigest()[:16]


def default_cache_dir() -> pathlib.Path:
    """The cache directory (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``)."""
    root = os.environ.get(CACHE_DIR_ENV)
    if root:
        return pathlib.Path(root).expanduser()
    return pathlib.Path("~/.cache/repro/physics").expanduser()


@dataclass
class DiskCacheStats:
    """Lookup accounting of one :class:`PhysicsDiskCache`."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    errors: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, float]:
        """JSON-serializable form."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "errors": self.errors,
            "hit_rate": self.hit_rate,
        }


class PhysicsDiskCache:
    """One JSON file per cached physics record, under one directory.

    Entries are written atomically (temp file + rename) so concurrent
    sweep processes sharing a cache directory never observe torn
    records, and each record stores its full key ``repr`` so a
    fingerprint collision reads as a miss rather than wrong physics.
    """

    def __init__(self, path) -> None:
        self.path = pathlib.Path(path)
        self.stats = DiskCacheStats()
        self._lock = threading.Lock()
        self.path.mkdir(parents=True, exist_ok=True)

    def __len__(self) -> int:
        return sum(1 for _ in self.path.glob("*.json"))

    def _entry_path(self, kind: str, key: object) -> pathlib.Path:
        full_key = (PHYSICS_SCHEMA_VERSION, kind, key)
        return self.path / f"{kind}-{fingerprint(full_key)}.json"

    def get(self, kind: str, key: object) -> Optional[Dict[str, float]]:
        """The cached payload for ``(kind, key)``, or ``None``."""
        entry = self._entry_path(kind, key)
        with self._lock:
            try:
                record = json.loads(entry.read_text())
            except FileNotFoundError:
                self.stats.misses += 1
                return None
            except (OSError, ValueError):
                self.stats.misses += 1
                self.stats.errors += 1
                return None
            if (
                record.get("schema") != PHYSICS_SCHEMA_VERSION
                or record.get("key") != repr(key)
            ):
                self.stats.misses += 1
                self.stats.errors += 1
                return None
            self.stats.hits += 1
            return record["value"]

    def put(self, kind: str, key: object, value: Dict[str, float]) -> None:
        """Persist a payload atomically; I/O failures are non-fatal."""
        entry = self._entry_path(kind, key)
        record = {
            "schema": PHYSICS_SCHEMA_VERSION,
            "kind": kind,
            "key": repr(key),
            "value": value,
        }
        with self._lock:
            try:
                fd, tmp = tempfile.mkstemp(
                    dir=self.path, suffix=".tmp", prefix=entry.stem
                )
                with os.fdopen(fd, "w") as handle:
                    json.dump(record, handle)
                os.replace(tmp, entry)
                self.stats.writes += 1
            except OSError:
                self.stats.errors += 1

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        with self._lock:
            for entry in self.path.glob("*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    self.stats.errors += 1
        return removed


#: The process-wide cache handle; ``None`` = persistence disabled.
_DISK_CACHE: Optional[PhysicsDiskCache] = None


def configure_disk_cache(
    path=None, enabled: bool = True
) -> Optional[PhysicsDiskCache]:
    """Enable (or disable) cross-process physics persistence.

    Args:
        path: cache directory; defaults to :func:`default_cache_dir`.
        enabled: ``False`` detaches the cache (in-process memos keep
            working).  ``REPRO_DISK_CACHE=0`` in the environment forces
            disabled regardless.

    Returns:
        The active cache handle, or ``None`` when disabled.
    """
    global _DISK_CACHE
    if not enabled or os.environ.get(CACHE_ENABLE_ENV, "1").lower() in (
        "0",
        "off",
        "false",
    ):
        _DISK_CACHE = None
        return None
    _DISK_CACHE = PhysicsDiskCache(path if path is not None else default_cache_dir())
    return _DISK_CACHE


def active_disk_cache() -> Optional[PhysicsDiskCache]:
    """The configured cache handle (``None`` = persistence disabled)."""
    return _DISK_CACHE


def disk_cache_stats() -> Dict[str, float]:
    """Stats of the active cache (all-zero when disabled)."""
    if _DISK_CACHE is None:
        return DiskCacheStats().to_dict()
    return _DISK_CACHE.stats.to_dict()
