"""The movement-cost memo: LRU-cached off-chip traffic primitives.

Serving replays and Monte-Carlo signature groups price the *same*
transfers over and over — the same weight stream for every request of a
workload, the same feature sweep for every sample of a corner.  Each
HBM(-PIM) primitive is pure arithmetic over a frozen key, so the engine
memo layer caches the resulting :class:`~repro.core.engine.memory.Traffic`
keyed on ``(memory system, geometry fingerprint, derate, pattern,
bytes)`` with the same bounded-LRU discipline (and the same hit / miss /
eviction accounting) as the device-physics memos.

The memo is consulted only on the costing path: a tracing model bypasses
it entirely, because recording the DRAM command stream is a side effect
a cache hit would silently skip.

Stats surface under the ``movement`` key of
:func:`repro.core.engine.physics_cache_stats` — visible in
``repro sweep --json`` and ``repro serve --stats`` next to the
breakdown / context / disk cache counters.

Example:
    >>> from repro.core.engine.hbm.model import HBMMemoryModel
    >>> from repro.electronics.memory import MemorySystem
    >>> clear_movement_cache()
    >>> model = HBMMemoryModel(MemorySystem())
    >>> before = movement_cache_stats()["hits"]
    >>> model.burst_offchip(1 << 20) == model.burst_offchip(1 << 20)
    True
    >>> movement_cache_stats()["hits"] - before
    1
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.core.engine.memo import LRUMemo

#: Bound chosen like the breakdown memo's: a corner grid x a handful of
#: distinct transfer sizes is tiny; die sweeps churn instead of growing.
_MOVEMENT_MEMO = LRUMemo(max_entries=4096)


def cached_movement(key: Any, compute: Callable[[], Any]) -> Any:
    """The memoized traffic for ``key``, computing (and inserting) on miss."""
    value = _MOVEMENT_MEMO.get(key)
    if value is None:
        value = compute()
        _MOVEMENT_MEMO.put(key, value)
    return value


def movement_cache_stats() -> Dict[str, float]:
    """Hit/miss/eviction counters of the movement-cost memo."""
    return _MOVEMENT_MEMO.stats.to_dict()


def clear_movement_cache() -> None:
    """Drop every memoized traffic entry (accounting is kept)."""
    _MOVEMENT_MEMO.clear()
