"""Trace-driven HBM(-PIM) memory backend.

A geometry-derived alternative to the analytic
:class:`~repro.core.engine.memory.MemoryModel`, selected through the
memory-backend registry (:mod:`repro.core.engine.membackend`):

- :mod:`repro.core.engine.hbm.geometry` — bank/bankgroup/channel
  geometry, DRAM timing constants, PIM knobs (:class:`HBMGeometry`).
- :mod:`repro.core.engine.hbm.model` — the bank-conflict-aware
  :class:`HBMMemoryModel` (row-buffer hit/miss timing, tFAW-paced
  scattered access, refresh overhead, device-level thermal derate).
- :mod:`repro.core.engine.hbm.trace` — the optional ACT/RD/WR/PRE
  command log (:class:`CommandTrace`) with per-command energy.
- :mod:`repro.core.engine.hbm.pim` — near-bank offload scenarios
  (GHOST gather, TRON attention reduction) and crossover scans.
"""

from repro.core.engine.hbm.geometry import HBMGeometry
from repro.core.engine.hbm.model import HBMMemoryModel
from repro.core.engine.hbm.pim import (
    OffloadScenario,
    attention_offload,
    crossover_point,
    gather_offload,
)
from repro.core.engine.hbm.trace import CommandTrace, DRAMCommand

__all__ = [
    "CommandTrace",
    "DRAMCommand",
    "HBMGeometry",
    "HBMMemoryModel",
    "OffloadScenario",
    "attention_offload",
    "crossover_point",
    "gather_offload",
]
