"""PIM offload scenarios: near-bank reduction vs. the photonic path.

The two offload targets named by the roadmap are reductions whose
arithmetic intensity is too low to feed the photonic arrays profitably:

- **GHOST's gather phase** — per-edge feature accumulation.  The
  photonic path sweeps every feature across the HBM interface (once per
  panel when blocked, per edge otherwise); the PIM path sums features
  near the banks and ships only the ``nodes × d_out`` accumulators.
- **TRON's attention score reduction** — the ``S·V`` context matmul.
  On long sequences the score matrix spills off-chip; the photonic path
  pays a round trip (store + reload), the PIM path reduces in place and
  returns only the ``seq × d_model`` context.

Each scenario builder prices both sides with the *same*
:class:`~repro.core.engine.hbm.model.HBMMemoryModel` and returns an
:class:`OffloadScenario` whose ratios make the crossover visible;
:func:`crossover_point` scans a parameter axis for the first value where
the offload wins.

Example:
    >>> from repro.electronics.memory import MemorySystem
    >>> from repro.core.engine.hbm.geometry import HBMGeometry
    >>> from repro.core.engine.hbm.model import HBMMemoryModel
    >>> model = HBMMemoryModel(MemorySystem(), geometry=HBMGeometry(), pim=True)
    >>> big = gather_offload(model, num_nodes=10_000, num_edges=200_000,
    ...                      feature_dim=512, out_dim=512, bits=8, blocked=False)
    >>> big.offload_wins_energy and big.offload_wins_latency
    True
"""

from __future__ import annotations

from typing import Callable, Dict, NamedTuple, Optional, Sequence

from repro.core.engine.hbm.model import HBMMemoryModel
from repro.core.engine.memory import Traffic
from repro.errors import ConfigurationError


class OffloadScenario(NamedTuple):
    """One offload comparison: the photonic path vs. near-bank compute."""

    scenario: str
    photonic: Traffic
    pim: Traffic

    @property
    def energy_ratio(self) -> float:
        """photonic / pim energy (> 1 means the offload saves energy)."""
        return self.photonic.energy_pj / self.pim.energy_pj

    @property
    def latency_ratio(self) -> float:
        """photonic / pim latency (> 1 means the offload is faster)."""
        return self.photonic.latency_ns / self.pim.latency_ns

    @property
    def offload_wins_energy(self) -> bool:
        return self.pim.energy_pj < self.photonic.energy_pj

    @property
    def offload_wins_latency(self) -> bool:
        return self.pim.latency_ns < self.photonic.latency_ns

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (ships in memory blocks and doc tables)."""
        return {
            "scenario": self.scenario,
            "photonic": {
                "energy_pj": self.photonic.energy_pj,
                "latency_ns": self.photonic.latency_ns,
            },
            "pim": {
                "energy_pj": self.pim.energy_pj,
                "latency_ns": self.pim.latency_ns,
            },
            "energy_ratio": self.energy_ratio,
            "latency_ratio": self.latency_ratio,
        }


def _require_pim(model: HBMMemoryModel) -> None:
    if not model.pim_active:
        raise ConfigurationError(
            "offload scenarios require a PIM-enabled model "
            "(memory_backend='hbm-pim')"
        )


def gather_offload(
    model: HBMMemoryModel,
    *,
    num_nodes: int,
    num_edges: int,
    feature_dim: int,
    out_dim: int,
    bits: int,
    blocked: bool = True,
    random_access_penalty: float = 4.0,
    panels: int = 1,
) -> OffloadScenario:
    """GHOST gather: feature sweep + on-chip reduce vs. near-bank sum.

    Photonic side: the layer's feature traffic exactly as
    ``GHOST._memory_cost`` prices it (panel sweeps when blocked,
    penalized per-edge fetches otherwise).  PIM side: features and edge
    indices are read in-bank, one MAC per edge-feature element, and only
    the accumulators cross the interface.
    """
    _require_pim(model)
    bpv = bits // 8 or 1
    if blocked:
        sweep_bytes = panels * num_nodes * feature_dim * bpv
    else:
        sweep_bytes = num_edges * feature_dim * bpv
    index_bytes = 4 * num_edges
    out_bytes = num_nodes * out_dim * bpv
    energy, latency = model.feature_sweep_cost(
        sweep_bytes=sweep_bytes,
        index_bytes=index_bytes,
        writeback_bytes=out_bytes,
        blocked=blocked,
        random_access_penalty=random_access_penalty,
    )
    photonic = Traffic(energy.total_pj, latency.total_ns)
    pim = model.pim_reduce_cost(
        in_bank_bytes=sweep_bytes + index_bytes,
        out_bytes=out_bytes,
        macs=num_edges * feature_dim,
    )
    return OffloadScenario("ghost-gather", photonic, pim)


def attention_offload(
    model: HBMMemoryModel,
    *,
    seq_len: int,
    d_model: int,
    num_heads: int,
    bits: int,
) -> OffloadScenario:
    """TRON attention: spilled S·V round trip vs. in-place reduction.

    Photonic side: the score matrix (``seq² `` values across heads) and
    V spill to HBM and stream back for the context matmul.  PIM side:
    the same operands are reduced near the banks and only the context
    (``seq × d_model``) returns.
    """
    _require_pim(model)
    bpv = bits // 8 or 1
    score_bytes = num_heads * seq_len * seq_len * bpv
    v_bytes = seq_len * d_model * bpv
    out_bytes = seq_len * d_model * bpv
    spill = model.store_offchip(score_bytes + v_bytes)
    reload = model.stream_offchip(score_bytes + v_bytes)
    photonic = Traffic(
        spill.energy_pj + reload.energy_pj,
        spill.latency_ns + reload.latency_ns,
    )
    pim = model.pim_reduce_cost(
        in_bank_bytes=score_bytes + v_bytes,
        out_bytes=out_bytes,
        macs=seq_len * seq_len * d_model,
    )
    return OffloadScenario("tron-attention", photonic, pim)


def crossover_point(
    values: Sequence,
    build: Callable[[object], OffloadScenario],
    *,
    metric: str = "energy",
) -> Optional[object]:
    """First value along an axis where the PIM offload wins.

    Args:
        values: the parameter axis, scanned in order.
        build: maps one value to an :class:`OffloadScenario`.
        metric: ``"energy"`` or ``"latency"``.

    Returns:
        The first winning value, or ``None`` if the photonic path wins
        everywhere.
    """
    if metric not in ("energy", "latency"):
        raise ConfigurationError(
            f"metric must be 'energy' or 'latency', got {metric!r}"
        )
    for value in values:
        scenario = build(value)
        wins = (
            scenario.offload_wins_energy
            if metric == "energy"
            else scenario.offload_wins_latency
        )
        if wins:
            return value
    return None
