"""DRAM command traces: the op stream behind an HBM traffic estimate.

When tracing is enabled (``HBMGeometry.op_trace``), the HBM backend
records every DRAM command it charges for — ``ACT`` (row activate),
``RD``/``WR`` (data bursts), ``PRE`` (precharge) — with the channel →
bankgroup → bank → row coordinates it hit and the energy attributed to
it.  Two conservation laws tie the trace to the scalar estimate and are
pinned by the property suite:

- bytes summed over RD/WR commands == bytes requested, and
- energy summed over all commands == the ``Traffic.energy_pj`` returned.

Command synthesis is **lazy**: the backend registers each transfer as a
deferred segment (:meth:`CommandTrace.defer`) carrying only its exact
command count and a synthesizer; per-command addresses and energies
materialize the first time the commands are actually read (``format``,
``summary``, iteration, …), never on the costing path.  The trace limit
stays **eager** — the count is known in closed form at record time, so a
transfer that would overflow the limit raises immediately instead of
after a million-element walk.

The text format is line-oriented and bit-stable (fixed float precision,
no timestamps), so a golden trace diffs cleanly.

Example:
    >>> trace = CommandTrace(limit=10)
    >>> trace.append(DRAMCommand("ACT", 0, 1, 2, 17, 0, 3276.8))
    >>> trace.append(DRAMCommand("RD", 0, 1, 2, 17, 32, 921.6))
    >>> len(trace), trace.total_bytes
    (2, 32)
    >>> print(trace.format(), end="")
    # repro hbm trace v1 commands=2
    ACT ch=0 bg=1 bank=2 row=17 bytes=0 energy_pj=3276.800000
    RD ch=0 bg=1 bank=2 row=17 bytes=32 energy_pj=921.600000
    >>> trace.defer(1, lambda: [DRAMCommand("PRE", 0, 1, 2, 17, 0, 0.0)])
    >>> len(trace), trace.pending      # counted, not yet synthesized
    (3, 1)
    >>> trace.op_counts()["PRE"]       # reading materializes
    1
    >>> trace.pending
    0
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, NamedTuple, Optional, Union

from repro.errors import ConfigurationError

#: The DRAM command vocabulary (order fixed — used by summaries).
OPS = ("ACT", "RD", "WR", "PRE")


class DRAMCommand(NamedTuple):
    """One DRAM command with its address coordinates and energy."""

    op: str
    channel: int
    bankgroup: int
    bank: int
    row: int
    num_bytes: int
    energy_pj: float


#: A segment is either materialized commands or (count, synthesizer).
_Segment = Union[
    List[DRAMCommand], "tuple[int, Callable[[], List[DRAMCommand]]]"
]


@dataclass
class CommandTrace:
    """An append-only DRAM command log with a hard size limit.

    The limit exists because tracing is per-command: a BERT-scale weight
    stream is hundreds of thousands of bursts, and hitting the cap is a
    configuration error (pick a smaller workload or raise
    ``hbm.trace_limit``), not a silent truncation.  Deferred segments
    count against the limit at record time — an oversized transfer
    raises before any command is synthesized.
    """

    limit: int = 1_000_000
    _segments: List[_Segment] = field(
        default_factory=list, init=False, repr=False
    )
    _count: int = field(default=0, init=False, repr=False)
    _flat: Optional[List[DRAMCommand]] = field(
        default=None, init=False, repr=False
    )

    def _reserve(self, count: int) -> None:
        if self._count + count > self.limit:
            raise ConfigurationError(
                f"DRAM trace exceeded its limit of {self.limit} commands; "
                "trace a smaller workload or raise hbm.trace_limit"
            )
        self._count += count

    def append(self, command: DRAMCommand) -> None:
        """Record one materialized command (eager path)."""
        if command.op not in OPS:
            raise ConfigurationError(
                f"unknown DRAM op {command.op!r}; expected one of {OPS}"
            )
        self._reserve(1)
        if self._segments and isinstance(self._segments[-1], list):
            self._segments[-1].append(command)
        else:
            self._segments.append([command])
        self._flat = None

    def defer(
        self, count: int, synthesize: Callable[[], List[DRAMCommand]]
    ) -> None:
        """Record ``count`` commands lazily.

        ``synthesize`` must return exactly ``count`` commands when first
        read — the closed-form count *is* the contract the differential
        suite pins, so a mismatch is an internal error, not a tolerance.
        """
        if count < 0:
            raise ConfigurationError(
                f"deferred command count must be >= 0, got {count}"
            )
        if count == 0:
            return
        self._reserve(count)
        self._segments.append((count, synthesize))
        self._flat = None

    @property
    def pending(self) -> int:
        """Commands recorded but not yet synthesized."""
        return sum(
            seg[0] for seg in self._segments if isinstance(seg, tuple)
        )

    @property
    def commands(self) -> List[DRAMCommand]:
        """Every command, synthesizing deferred segments in order."""
        if self._flat is None:
            flat: List[DRAMCommand] = []
            for i, segment in enumerate(self._segments):
                if isinstance(segment, tuple):
                    count, synthesize = segment
                    segment = synthesize()
                    if len(segment) != count:
                        raise ConfigurationError(
                            "deferred trace segment synthesized "
                            f"{len(segment)} commands, expected {count}"
                        )
                    self._segments[i] = segment
                flat.extend(segment)
            self._flat = flat
        return self._flat

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[DRAMCommand]:
        return iter(self.commands)

    @property
    def total_bytes(self) -> int:
        """Data bytes moved by RD/WR commands (ACT/PRE move none)."""
        return sum(c.num_bytes for c in self.commands)

    @property
    def total_energy_pj(self) -> float:
        """Energy summed over every command."""
        return sum(c.energy_pj for c in self.commands)

    def op_counts(self) -> Dict[str, int]:
        """Command count per op, every op present.

        Example:
            >>> t = CommandTrace()
            >>> t.append(DRAMCommand("ACT", 0, 0, 0, 0, 0, 1.0))
            >>> t.op_counts()
            {'ACT': 1, 'RD': 0, 'WR': 0, 'PRE': 0}
        """
        counts = {op: 0 for op in OPS}
        for command in self.commands:
            counts[command.op] += 1
        return counts

    def summary(self) -> Dict[str, object]:
        """JSON-ready digest (ships in the run envelope's memory block)."""
        return {
            "commands": len(self),
            "ops": self.op_counts(),
            "data_bytes": self.total_bytes,
            "energy_pj": self.total_energy_pj,
        }

    def format(self) -> str:
        """Render the bit-stable text form (header + one line per command)."""
        lines = [f"# repro hbm trace v1 commands={len(self)}"]
        for c in self.commands:
            lines.append(
                f"{c.op} ch={c.channel} bg={c.bankgroup} bank={c.bank} "
                f"row={c.row} bytes={c.num_bytes} "
                f"energy_pj={c.energy_pj:.6f}"
            )
        return "".join(line + "\n" for line in lines)

    def save(self, path: str) -> None:
        """Write the text form to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.format())
