"""Bank-conflict-aware HBM(-PIM) memory model behind the MemoryModel contract.

:class:`HBMMemoryModel` keeps the analytic model's six-method interface
(`stream_offchip` / `burst_offchip` / `random_offchip` / `bounce_onchip`
/ `weight_stream_cost` / `feature_sweep_cost`) but derives off-chip cost
from device geometry instead of interface scalars:

- **Sequential traffic** interleaves bursts round-robin over channels;
  each channel opens a row (ACT, paying tRCD), streams
  ``bursts_per_row`` bursts, and — as long as a row's worth of bursts
  covers the row cycle — hides the next activate behind another bank.
  Refresh steals ``tRFC/tREFI`` of every transfer.
- **Scattered traffic** pays one ACT per burst; the four-activate
  window then paces issue at ``max(tBURST, tFAW/4, row-cycle/banks)``
  per access, and row energy is charged per burst instead of per row —
  the emergent form of the analytic ``random_access_penalty``.
- The **thermal derate** is applied at the device level: DRAM command
  timing stretches by ``1/hbm_derate``, and only then races the on-chip
  buffer (the analytic model derates the post-``max`` latency instead;
  the differential suite bounds the difference).

The costing path is **closed form**: per-channel burst counts, row-open
boundaries and refresh steal are segment arithmetic over the geometry,
never a per-burst walk.  A private per-burst reference oracle
(:meth:`_walk_sequential` / :meth:`_walk_scattered`) re-derives the same
costs by literally iterating the burst schedule; the differential and
property suites pin the closed form against it (energies to 1e-12 rel,
latencies bit-identical).  ``*_batch`` variants evaluate whole NumPy
columns of byte counts through the identical float expressions — the
SoA sweep path prices HBM traffic one vector call per model.

Repeated primitives (serving replays, Monte-Carlo signature groups) are
served from the engine's movement-cost memo
(:mod:`repro.core.engine.movement`), keyed on ``(system, geometry,
derate, pattern, bytes)``; tracing models bypass the memo, because a
recorded command stream is a side effect a cache hit would skip.

Composed costs (`weight_stream_cost`, `feature_sweep_cost`,
`overlap_stall_ns`, `bounce_onchip`) are inherited unchanged — they are
arithmetic over the primitives, which is exactly what makes the two
backends differentially comparable.

Example:
    >>> from repro.electronics.memory import MemorySystem
    >>> from repro.core.engine.hbm.geometry import HBMGeometry
    >>> model = HBMMemoryModel(MemorySystem(), geometry=HBMGeometry())
    >>> seq = model.burst_offchip(1 << 20)       # 1 MiB, sequential
    >>> rnd = model.random_offchip(1 << 20, 4.0)
    >>> rnd.energy_pj > seq.energy_pj            # scattered pays per-burst ACTs
    True
    >>> model.burst_offchip(0)
    Traffic(energy_pj=0.0, latency_ns=0.0)
    >>> model._walk_sequential(1 << 20).latency_ns == seq.latency_ns
    True
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.engine.hbm.geometry import HBMGeometry
from repro.core.engine.hbm.trace import CommandTrace, DRAMCommand
from repro.core.engine.memory import MemoryModel, Traffic
from repro.core.engine.movement import cached_movement
from repro.errors import ConfigurationError

#: Virtual rows per bank for scattered-address synthesis (2 GiB/channel
#: at the default geometry; only trace addresses depend on it).
ROWS_PER_BANK = 1 << 14

#: Multiplier/increment of the 64-bit LCG that scatters trace addresses.
_LCG_MULT = 2862933555777941757
_LCG_INC = 3037000493
_LCG_MASK = (1 << 64) - 1


@dataclass(frozen=True)
class HBMMemoryModel(MemoryModel):
    """Trace-capable, geometry-derived drop-in for the analytic model.

    Attributes:
        geometry: the device geometry/timing knobs.
        pim: enable near-bank compute (``pim_reduce_cost`` becomes
            available to the accelerators' offload paths).
        trace: command log, populated only when ``geometry.op_trace``.
    """

    geometry: HBMGeometry = field(default_factory=HBMGeometry)
    pim: bool = False
    trace: Optional[CommandTrace] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.geometry.op_trace and self.trace is None:
            object.__setattr__(
                self, "trace", CommandTrace(limit=self.geometry.trace_limit)
            )

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------

    @property
    def pim_active(self) -> bool:
        """True when near-bank compute offload is available."""
        return self.pim

    @property
    def _tracing(self) -> bool:
        return self.trace is not None and self.geometry.op_trace

    def _burst_split(self, num_bytes: int) -> Tuple[int, int, int]:
        """(total bursts, per-channel base, remainder) of a transfer."""
        total = math.ceil(num_bytes / self.geometry.burst_bytes)
        channels = self.system.hbm.channels
        return total, total // channels, total % channels

    def _sequential_acts(self, num_bytes: int) -> int:
        """ACT count of a sequential transfer (one per row per channel)."""
        total, _, _ = self._burst_split(num_bytes)
        return self.geometry.sequential_acts(
            total, self.system.hbm.channels
        )

    def _dram_energy_pj(self, num_bytes: int, acts: int) -> float:
        """I/O energy over the actual bytes + per-ACT row energy."""
        e_bit = self.system.hbm.energy_per_bit_pj
        io = num_bytes * 8 * self.geometry.io_energy_per_bit_pj(e_bit)
        return io + acts * self.geometry.activate_energy_pj(e_bit)

    def _finish_latency(self, device_ns: float) -> float:
        """Refresh overhead + device-level thermal derate."""
        return (
            device_ns
            * (1.0 + self.geometry.refresh_overhead)
            * self._offchip_latency_scale
        )

    def _burst_bytes_at(self, index: int, total: int, num_bytes: int) -> int:
        """Bytes carried by burst ``index`` (the last may be partial)."""
        if index < total - 1:
            return self.geometry.burst_bytes
        return num_bytes - (total - 1) * self.geometry.burst_bytes

    def _row_gap_ns(self, tburst: float) -> float:
        """Per-row-switch stall left after bank interleave hides ACTs."""
        geo = self.geometry
        return max(
            0.0, (geo.trcd_ns + geo.trp_ns) - geo.bursts_per_row * tburst
        )

    def _movement(
        self, pattern: str, num_bytes: int, compute: Callable[[], Traffic]
    ) -> Traffic:
        """``compute()`` through the movement memo (bypassed while
        tracing — a cache hit would skip the command-log side effect)."""
        if self._tracing:
            return compute()
        key = (
            self.system,
            self.geometry,
            self._offchip_latency_scale,
            pattern,
            num_bytes,
        )
        return cached_movement(key, compute)

    # ------------------------------------------------------------------
    # Lazy trace synthesis (closed-form counts now, commands on demand)
    # ------------------------------------------------------------------

    def _synthesize_sequential(
        self, num_bytes: int, total: int, op: str
    ) -> List[DRAMCommand]:
        """The per-burst command stream of a sequential transfer."""
        geo = self.geometry
        channels = self.system.hbm.channels
        e_bit = self.system.hbm.energy_per_bit_pj
        io_bit = geo.io_energy_per_bit_pj(e_bit)
        act_pj = geo.activate_energy_pj(e_bit)
        commands: List[DRAMCommand] = []
        open_rows = {}
        for i in range(total):
            ch = i % channels
            within = i // channels
            row_ordinal = within // geo.bursts_per_row
            bank = row_ordinal % geo.banks_per_channel
            group = bank // geo.banks_per_group
            bank_in_group = bank % geo.banks_per_group
            row = row_ordinal // geo.banks_per_channel
            if open_rows.get(ch) != row_ordinal:
                if ch in open_rows:
                    prev = open_rows[ch]
                    pbank = prev % geo.banks_per_channel
                    commands.append(DRAMCommand(
                        "PRE", ch, pbank // geo.banks_per_group,
                        pbank % geo.banks_per_group,
                        prev // geo.banks_per_channel, 0, 0.0,
                    ))
                open_rows[ch] = row_ordinal
                commands.append(DRAMCommand(
                    "ACT", ch, group, bank_in_group, row, 0, act_pj
                ))
            nbytes = self._burst_bytes_at(i, total, num_bytes)
            commands.append(DRAMCommand(
                op, ch, group, bank_in_group, row, nbytes,
                nbytes * 8 * io_bit,
            ))
        for ch, row_ordinal in sorted(open_rows.items()):
            bank = row_ordinal % geo.banks_per_channel
            commands.append(DRAMCommand(
                "PRE", ch, bank // geo.banks_per_group,
                bank % geo.banks_per_group,
                row_ordinal // geo.banks_per_channel, 0, 0.0,
            ))
        return commands

    def _synthesize_scattered(
        self, num_bytes: int, total: int
    ) -> List[DRAMCommand]:
        """The per-burst command stream of a scattered transfer.

        The LCG address scatter and ``ROWS_PER_BANK`` bookkeeping live
        only here — deferred synthesis means they never run on the
        costing path, even with tracing enabled, until the trace is
        actually read.
        """
        geo = self.geometry
        channels = self.system.hbm.channels
        e_bit = self.system.hbm.energy_per_bit_pj
        io_bit = geo.io_energy_per_bit_pj(e_bit)
        act_pj = geo.activate_energy_pj(e_bit)
        seed = 0 if self.context is None else self.context.seed
        state = (seed * _LCG_MULT + _LCG_INC) & _LCG_MASK
        commands: List[DRAMCommand] = []
        for i in range(total):
            state = (state * _LCG_MULT + _LCG_INC) & _LCG_MASK
            ch = i % channels
            bank = (state >> 33) % geo.banks_per_channel
            group = bank // geo.banks_per_group
            bank_in_group = bank % geo.banks_per_group
            row = (state >> 13) % ROWS_PER_BANK
            nbytes = self._burst_bytes_at(i, total, num_bytes)
            commands.append(DRAMCommand(
                "ACT", ch, group, bank_in_group, row, 0, act_pj
            ))
            commands.append(DRAMCommand(
                "RD", ch, group, bank_in_group, row, nbytes,
                nbytes * 8 * io_bit,
            ))
            commands.append(DRAMCommand(
                "PRE", ch, group, bank_in_group, row, 0, 0.0
            ))
        return commands

    def _record_sequential(
        self, num_bytes: int, total: int, op: str
    ) -> None:
        count = self.geometry.sequential_command_count(
            total, self.system.hbm.channels
        )
        self.trace.defer(
            count, lambda: self._synthesize_sequential(num_bytes, total, op)
        )

    def _record_scattered(self, num_bytes: int, total: int) -> None:
        count = self.geometry.scattered_command_count(total)
        self.trace.defer(
            count, lambda: self._synthesize_scattered(num_bytes, total)
        )

    # ------------------------------------------------------------------
    # Primitive traffic patterns (the overridden contract)
    # ------------------------------------------------------------------

    def _sequential_dram(self, num_bytes: int, op: str) -> Traffic:
        """DRAM-side cost of a sequential transfer (no on-chip buffer)."""
        if num_bytes < 0:
            raise ConfigurationError(
                f"byte count must be >= 0, got {num_bytes}"
            )
        if num_bytes == 0:
            return Traffic(0.0, 0.0)
        geo = self.geometry
        total, base, rem = self._burst_split(num_bytes)
        acts = self._sequential_acts(num_bytes)
        energy = self._dram_energy_pj(num_bytes, acts)
        tburst = geo.tburst_ns(self.system.hbm.bandwidth_gbps)
        bursts_max = base + (1 if rem else 0)
        rows_max = math.ceil(bursts_max / geo.bursts_per_row)
        # Row switches hide behind bank interleave unless a row streams
        # faster than its cycle time; any residue stalls the channel.
        row_gap = self._row_gap_ns(tburst)
        device_ns = (
            geo.trcd_ns
            + bursts_max * tburst
            + max(rows_max - 1, 0) * row_gap
        )
        if self._tracing:
            self._record_sequential(num_bytes, total, op)
        return Traffic(energy, self._finish_latency(device_ns))

    def _stream_compute(self, num_bytes: int) -> Traffic:
        dram = self._sequential_dram(num_bytes, "RD")
        if num_bytes == 0:
            return dram
        buffer = self.system.global_buffer
        energy = dram.energy_pj + buffer.transfer_energy_pj(
            num_bytes, write=True
        )
        latency = max(dram.latency_ns, buffer.transfer_latency_ns(num_bytes))
        return Traffic(energy, latency)

    def stream_offchip(self, num_bytes: int) -> Traffic:
        """HBM -> global buffer streaming (weights into residence)."""
        return self._movement(
            "stream", num_bytes, lambda: self._stream_compute(num_bytes)
        )

    def burst_offchip(self, num_bytes: int) -> Traffic:
        """Sequential HBM burst, bank-interleaved across channels."""
        return self._movement(
            "seq-rd", num_bytes,
            lambda: self._sequential_dram(num_bytes, "RD"),
        )

    def store_offchip(self, num_bytes: int) -> Traffic:
        """Sequential HBM writeback (WR bursts; same timing as reads)."""
        return self._movement(
            "seq-wr", num_bytes,
            lambda: self._sequential_dram(num_bytes, "WR"),
        )

    def _random_compute(self, num_bytes: int) -> Traffic:
        if num_bytes == 0:
            return Traffic(0.0, 0.0)
        geo = self.geometry
        total, base, rem = self._burst_split(num_bytes)
        energy = self._dram_energy_pj(num_bytes, total)
        slot = geo.random_slot_ns(self.system.hbm.bandwidth_gbps)
        bursts_max = base + (1 if rem else 0)
        device_ns = geo.trcd_ns + bursts_max * slot
        if self._tracing:
            self._record_scattered(num_bytes, total)
        return Traffic(energy, self._finish_latency(device_ns))

    def random_offchip(self, num_bytes: int, penalty: float) -> Traffic:
        """Scattered accesses: one ACT per burst, tFAW-paced issue.

        The ``penalty`` argument is validated for contract compatibility
        but the conflict cost is emergent from the geometry (per-burst
        row activation energy, four-activate-window issue pacing) — it
        therefore does not key the movement memo.
        """
        if penalty < 1.0:
            raise ConfigurationError(
                f"random access penalty must be >= 1, got {penalty}"
            )
        if num_bytes < 0:
            raise ConfigurationError(
                f"byte count must be >= 0, got {num_bytes}"
            )
        return self._movement(
            "random", num_bytes, lambda: self._random_compute(num_bytes)
        )

    # ------------------------------------------------------------------
    # Per-burst reference oracle (the retained loop walker)
    # ------------------------------------------------------------------

    def _walk_sequential(self, num_bytes: int, op: str = "RD") -> Traffic:
        """Walk a sequential transfer burst by burst (reference oracle).

        Re-derives the closed form the slow way: bursts issue
        round-robin over channels, each channel tracks its open row and
        pays an ACT on every switch, and energy accumulates per command.
        The per-channel burst / row maxima feed the *same* final timing
        expression, so latency is bit-identical; energy is a correctly
        rounded per-command sum (``math.fsum``), so it agrees with the
        closed form to well under 1e-12 relative.  Tests and benchmarks
        only — never on the costing path.
        """
        if num_bytes < 0:
            raise ConfigurationError(
                f"byte count must be >= 0, got {num_bytes}"
            )
        if num_bytes == 0:
            return Traffic(0.0, 0.0)
        geo = self.geometry
        channels = self.system.hbm.channels
        e_bit = self.system.hbm.energy_per_bit_pj
        io_bit = geo.io_energy_per_bit_pj(e_bit)
        act_pj = geo.activate_energy_pj(e_bit)
        total, _, _ = self._burst_split(num_bytes)
        terms: List[float] = []
        open_rows: dict = {}
        bursts_per_channel: dict = {}
        rows_per_channel: dict = {}
        for i in range(total):
            ch = i % channels
            within = i // channels
            row_ordinal = within // geo.bursts_per_row
            if open_rows.get(ch) != row_ordinal:
                open_rows[ch] = row_ordinal
                rows_per_channel[ch] = rows_per_channel.get(ch, 0) + 1
                terms.append(act_pj)
            bursts_per_channel[ch] = bursts_per_channel.get(ch, 0) + 1
            terms.append(
                self._burst_bytes_at(i, total, num_bytes) * 8 * io_bit
            )
        energy = math.fsum(terms)
        bursts_max = max(bursts_per_channel.values())
        rows_max = max(rows_per_channel.values())
        tburst = geo.tburst_ns(self.system.hbm.bandwidth_gbps)
        row_gap = self._row_gap_ns(tburst)
        device_ns = (
            geo.trcd_ns
            + bursts_max * tburst
            + max(rows_max - 1, 0) * row_gap
        )
        return Traffic(energy, self._finish_latency(device_ns))

    def _walk_stream(self, num_bytes: int) -> Traffic:
        """``stream_offchip`` over the sequential walker (oracle)."""
        dram = self._walk_sequential(num_bytes)
        if num_bytes == 0:
            return dram
        buffer = self.system.global_buffer
        energy = dram.energy_pj + buffer.transfer_energy_pj(
            num_bytes, write=True
        )
        latency = max(dram.latency_ns, buffer.transfer_latency_ns(num_bytes))
        return Traffic(energy, latency)

    def _walk_scattered(self, num_bytes: int) -> Traffic:
        """Walk a scattered transfer burst by burst (reference oracle).

        Every burst pays its own ACT and issues in a tFAW-paced slot on
        its round-robin channel; the busiest channel's slot count sets
        the device time through the same final expression as the closed
        form (latency bit-identical, energy correctly rounded via
        ``math.fsum``).
        """
        if num_bytes < 0:
            raise ConfigurationError(
                f"byte count must be >= 0, got {num_bytes}"
            )
        if num_bytes == 0:
            return Traffic(0.0, 0.0)
        geo = self.geometry
        channels = self.system.hbm.channels
        e_bit = self.system.hbm.energy_per_bit_pj
        io_bit = geo.io_energy_per_bit_pj(e_bit)
        act_pj = geo.activate_energy_pj(e_bit)
        total, _, _ = self._burst_split(num_bytes)
        terms: List[float] = []
        bursts_per_channel: dict = {}
        for i in range(total):
            ch = i % channels
            bursts_per_channel[ch] = bursts_per_channel.get(ch, 0) + 1
            terms.append(act_pj)
            terms.append(
                self._burst_bytes_at(i, total, num_bytes) * 8 * io_bit
            )
        energy = math.fsum(terms)
        bursts_max = max(bursts_per_channel.values())
        slot = geo.random_slot_ns(self.system.hbm.bandwidth_gbps)
        device_ns = geo.trcd_ns + bursts_max * slot
        return Traffic(energy, self._finish_latency(device_ns))

    # ------------------------------------------------------------------
    # Vectorized batch evaluators (whole columns of byte counts)
    # ------------------------------------------------------------------

    def _sequential_batch(
        self, num_bytes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(energy, latency) columns of sequential transfers.

        Elementwise the *same* float expressions as the scalar path —
        the parity suite pins bit-identity per element.
        """
        nb = np.asarray(num_bytes, dtype=np.int64)
        geo = self.geometry
        channels = self.system.hbm.channels
        total = np.ceil(nb / geo.burst_bytes).astype(np.int64)
        base = total // channels
        rem = total % channels
        bpr = geo.bursts_per_row
        acts = rem * np.ceil((base + 1) / bpr).astype(np.int64) + (
            channels - rem
        ) * np.ceil(base / bpr).astype(np.int64)
        e_bit = self.system.hbm.energy_per_bit_pj
        energy = nb * 8 * geo.io_energy_per_bit_pj(
            e_bit
        ) + acts * geo.activate_energy_pj(e_bit)
        tburst = geo.tburst_ns(self.system.hbm.bandwidth_gbps)
        bursts_max = base + (rem > 0)
        rows_max = np.ceil(bursts_max / bpr).astype(np.int64)
        row_gap = self._row_gap_ns(tburst)
        device_ns = (
            geo.trcd_ns
            + bursts_max * tburst
            + np.maximum(rows_max - 1, 0) * row_gap
        )
        latency = (
            device_ns
            * (1.0 + geo.refresh_overhead)
            * self._offchip_latency_scale
        )
        zero = nb == 0
        return np.where(zero, 0.0, energy), np.where(zero, 0.0, latency)

    def stream_offchip_batch(
        self, num_bytes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``stream_offchip`` over a whole column of byte counts."""
        nb = np.asarray(num_bytes, dtype=np.int64)
        dram_e, dram_l = self._sequential_batch(nb)
        buffer_e, buffer_l = self._buffer_batch(nb, write=True)
        zero = nb == 0
        energy = np.where(zero, 0.0, dram_e + buffer_e)
        latency = np.where(zero, 0.0, np.maximum(dram_l, buffer_l))
        return energy, latency

    def burst_offchip_batch(
        self, num_bytes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``burst_offchip`` over a whole column of byte counts."""
        return self._sequential_batch(num_bytes)

    def store_offchip_batch(
        self, num_bytes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``store_offchip`` over a whole column (same timing as reads)."""
        return self._sequential_batch(num_bytes)

    def random_offchip_batch(
        self, num_bytes: np.ndarray, penalty: object = 1.0
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``random_offchip`` over a whole column of byte counts."""
        pen = np.asarray(penalty, dtype=float)
        if np.any(pen < 1.0):
            bad = float(np.min(pen))
            raise ConfigurationError(
                f"random access penalty must be >= 1, got {bad}"
            )
        nb = np.asarray(num_bytes, dtype=np.int64)
        geo = self.geometry
        channels = self.system.hbm.channels
        total = np.ceil(nb / geo.burst_bytes).astype(np.int64)
        base = total // channels
        rem = total % channels
        e_bit = self.system.hbm.energy_per_bit_pj
        energy = nb * 8 * geo.io_energy_per_bit_pj(
            e_bit
        ) + total * geo.activate_energy_pj(e_bit)
        slot = geo.random_slot_ns(self.system.hbm.bandwidth_gbps)
        bursts_max = base + (rem > 0)
        device_ns = geo.trcd_ns + bursts_max * slot
        latency = (
            device_ns
            * (1.0 + geo.refresh_overhead)
            * self._offchip_latency_scale
        )
        zero = nb == 0
        return np.where(zero, 0.0, energy), np.where(zero, 0.0, latency)

    # ------------------------------------------------------------------
    # Near-bank compute (PIM mode)
    # ------------------------------------------------------------------

    def pim_reduce_cost(
        self, in_bank_bytes: int, out_bytes: int, macs: int
    ) -> Traffic:
        """Cost of reducing ``in_bank_bytes`` near the banks.

        Inputs are read inside the device (no interface crossing —
        cheaper per bit, and all banks stream concurrently so the
        aggregate in-bank bandwidth exceeds the interface by
        ``pim_bandwidth_scale``); ``macs`` multiply-accumulates run on
        the near-bank units; only ``out_bytes`` of results cross the
        interface into the global buffer.
        """
        if not self.pim:
            raise ConfigurationError(
                "pim_reduce_cost requires the hbm-pim backend"
            )
        if min(in_bank_bytes, out_bytes, macs) < 0:
            raise ConfigurationError(
                "pim_reduce_cost arguments must be >= 0, got "
                f"({in_bank_bytes}, {out_bytes}, {macs})"
            )
        geo = self.geometry
        hbm = self.system.hbm
        read_pj = (
            in_bank_bytes * 8 * hbm.energy_per_bit_pj
            * geo.pim_read_energy_fraction
        )
        mac_pj = macs * geo.pim_mac_energy_pj
        read_ns = self._finish_latency(
            in_bank_bytes * 8
            / (hbm.total_bandwidth_gbps * geo.pim_bandwidth_scale)
        )
        total_banks = geo.banks_per_channel * hbm.channels
        mac_ns = macs / (geo.pim_macs_per_bank_per_ns * total_banks)
        out = self.stream_offchip(out_bytes)
        return Traffic(
            read_pj + mac_pj + out.energy_pj,
            max(read_ns, mac_ns) + out.latency_ns,
        )
