"""HBM(-PIM) device geometry: the knobs behind the trace-driven backend.

The analytic :class:`~repro.electronics.memory.HBMChannel` describes the
interface (aggregate bandwidth, energy per bit).  :class:`HBMGeometry`
describes the device *behind* that interface — the channel → bankgroup →
bank hierarchy of an HBM stack (the HBM-PIMulator shape), row-buffer
organization, and the DRAM timing constants that make sequential bursts
cheap and scattered accesses expensive:

- ``trcd_ns`` / ``trp_ns`` — row activate and precharge delays; a
  row-buffer miss pays both before its first burst.
- ``tfaw_ns`` — the four-activate window: at most four ACT commands may
  issue per window per channel, which is what throttles row-miss-heavy
  (irregular) access streams long before the data bus saturates.
- ``refresh_cycle_ns`` / ``refresh_interval_ns`` — every tREFI the
  device is unavailable for tRFC; the ratio is charged as a latency
  overhead on every transfer.

Energy calibration is anchored to the interface figure: a full-row
sequential stream costs exactly ``energy_per_bit_pj`` per bit, split
``activate_energy_fraction`` into the ACT command and the rest into the
per-burst I/O — so scattered streams (one ACT per burst instead of one
per row) naturally pay the row-activation premium the analytic model
approximates with its scalar ``random_access_penalty``.

Example:
    >>> geo = HBMGeometry()
    >>> geo.banks_per_channel
    16
    >>> geo.bursts_per_row
    32
    >>> round(geo.tburst_ns(128.0), 3)   # 32 B over a 128 Gb/s channel
    2.0
    >>> round(geo.refresh_overhead, 3)
    0.09
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: The JEDEC four-activate window admits this many ACTs per channel.
ACTIVATES_PER_WINDOW = 4


@dataclass(frozen=True)
class HBMGeometry:
    """Bank/bankgroup geometry, DRAM timing, and PIM knobs of one stack.

    Attributes:
        bankgroups: bank groups per channel.
        banks_per_group: banks per bank group.
        row_bytes: row-buffer (page) size per bank.
        burst_bytes: bytes moved by one RD/WR burst.
        trcd_ns: ACT-to-column-command delay (row activate).
        trp_ns: precharge delay (closing a row).
        tfaw_ns: rolling four-activate window.
        refresh_interval_ns: tREFI — mean spacing of refresh commands.
        refresh_cycle_ns: tRFC — bank-unavailable time per refresh.
        activate_energy_fraction: share of the interface energy-per-bit
            budget attributed to row activation on a full-row stream
            (the rest is per-burst I/O + array column access).
        op_trace: record the DRAM command stream (ACT/RD/WR/PRE with
            per-command energy) while costing traffic.
        trace_limit: hard bound on recorded commands per model instance
            (tracing a BERT-scale weight stream is an error, not an
            out-of-memory surprise).
        pim_read_energy_fraction: energy of an in-bank (near-PIM) read
            relative to a full interface transfer of the same bits.
        pim_bandwidth_scale: aggregate in-bank read bandwidth of the
            near-bank compute units relative to the interface bandwidth
            (all banks stream their arrays concurrently).
        pim_mac_energy_pj: energy of one near-bank 8-bit MAC.
        pim_macs_per_bank_per_ns: near-bank compute throughput.

    Example:
        >>> HBMGeometry(row_bytes=100)
        Traceback (most recent call last):
            ...
        repro.errors.ConfigurationError: hbm.row_bytes (100) must be a multiple of hbm.burst_bytes (32)
    """

    bankgroups: int = 4
    banks_per_group: int = 4
    row_bytes: int = 1024
    burst_bytes: int = 32
    trcd_ns: float = 14.0
    trp_ns: float = 14.0
    tfaw_ns: float = 30.0
    refresh_interval_ns: float = 3900.0
    refresh_cycle_ns: float = 351.0
    activate_energy_fraction: float = 0.1
    op_trace: bool = False
    trace_limit: int = 1_000_000
    pim_read_energy_fraction: float = 0.3
    pim_bandwidth_scale: float = 4.0
    pim_mac_energy_pj: float = 0.25
    pim_macs_per_bank_per_ns: float = 16.0

    def __post_init__(self) -> None:
        for name in ("bankgroups", "banks_per_group", "row_bytes",
                     "burst_bytes", "trace_limit"):
            if getattr(self, name) < 1:
                raise ConfigurationError(
                    f"hbm.{name} must be >= 1, got {getattr(self, name)}"
                )
        if self.row_bytes % self.burst_bytes != 0:
            raise ConfigurationError(
                f"hbm.row_bytes ({self.row_bytes}) must be a multiple of "
                f"hbm.burst_bytes ({self.burst_bytes})"
            )
        for name in ("trcd_ns", "trp_ns", "tfaw_ns", "refresh_interval_ns",
                     "refresh_cycle_ns", "pim_bandwidth_scale",
                     "pim_macs_per_bank_per_ns"):
            if getattr(self, name) <= 0.0:
                raise ConfigurationError(
                    f"hbm.{name} must be > 0, got {getattr(self, name)}"
                )
        for name in ("activate_energy_fraction", "pim_read_energy_fraction"):
            if not 0.0 < getattr(self, name) < 1.0:
                raise ConfigurationError(
                    f"hbm.{name} must be in (0, 1), "
                    f"got {getattr(self, name)}"
                )
        if self.pim_mac_energy_pj < 0.0:
            raise ConfigurationError(
                f"hbm.pim_mac_energy_pj must be >= 0, "
                f"got {self.pim_mac_energy_pj}"
            )
        if self.refresh_cycle_ns >= self.refresh_interval_ns:
            raise ConfigurationError(
                "hbm.refresh_cycle_ns must be < hbm.refresh_interval_ns "
                f"(got {self.refresh_cycle_ns} >= {self.refresh_interval_ns})"
            )

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------

    @property
    def banks_per_channel(self) -> int:
        """Independent banks one channel can keep in flight."""
        return self.bankgroups * self.banks_per_group

    @property
    def bursts_per_row(self) -> int:
        """RD/WR bursts one open row serves before the next ACT."""
        return self.row_bytes // self.burst_bytes

    @property
    def refresh_overhead(self) -> float:
        """Fraction of device time lost to refresh (tRFC / tREFI)."""
        return self.refresh_cycle_ns / self.refresh_interval_ns

    # ------------------------------------------------------------------
    # Closed-form segment arithmetic (shared by the costing path, the
    # eager trace-limit check, and the vectorized batch evaluators)
    # ------------------------------------------------------------------

    def sequential_acts(self, total_bursts: int, channels: int) -> int:
        """ACT count of a round-robin sequential transfer.

        ``rem`` channels carry ``base + 1`` bursts, the rest ``base``;
        each channel opens one row per started ``bursts_per_row`` run.

        Example:
            >>> HBMGeometry().sequential_acts(total_bursts=33, channels=8)
            8
        """
        base, rem = divmod(total_bursts, channels)
        bpr = self.bursts_per_row
        return rem * math.ceil((base + 1) / bpr) + (channels - rem) * (
            math.ceil(base / bpr)
        )

    def sequential_command_count(
        self, total_bursts: int, channels: int
    ) -> int:
        """Commands a traced sequential transfer synthesizes.

        One RD/WR per burst plus an ACT *and* a PRE per opened row
        (every activate is eventually precharged) — known in closed form
        before any command exists, which is what keeps the trace limit
        eager under lazy synthesis.

        Example:
            >>> HBMGeometry().sequential_command_count(33, channels=8)
            49
        """
        return total_bursts + 2 * self.sequential_acts(
            total_bursts, channels
        )

    def scattered_command_count(self, total_bursts: int) -> int:
        """Commands a traced scattered transfer synthesizes (ACT + RD +
        PRE per burst)."""
        return 3 * total_bursts

    # ------------------------------------------------------------------
    # Derived timing/energy (anchored to the interface model)
    # ------------------------------------------------------------------

    def tburst_ns(self, channel_bandwidth_gbps: float) -> float:
        """Data-bus occupancy of one burst on one channel."""
        return self.burst_bytes * 8.0 / channel_bandwidth_gbps

    def random_slot_ns(self, channel_bandwidth_gbps: float) -> float:
        """Issue slot of one row-miss access on one channel.

        Scattered accesses need one ACT each, so the four-activate
        window (not the data bus) usually sets the pace; with enough
        banks the row cycle itself pipelines away.

        Example:
            >>> HBMGeometry().random_slot_ns(128.0)   # tFAW/4 = 7.5 ns
            7.5
        """
        bank_cycle = self.trcd_ns + self.trp_ns + self.tburst_ns(
            channel_bandwidth_gbps
        )
        return max(
            self.tburst_ns(channel_bandwidth_gbps),
            self.tfaw_ns / ACTIVATES_PER_WINDOW,
            bank_cycle / self.banks_per_channel,
        )

    def io_energy_per_bit_pj(self, energy_per_bit_pj: float) -> float:
        """Per-bit I/O + column-access energy of a RD/WR burst."""
        return (1.0 - self.activate_energy_fraction) * energy_per_bit_pj

    def activate_energy_pj(self, energy_per_bit_pj: float) -> float:
        """Energy of one ACT command (whole-row wordline + sense).

        Calibrated so a full-row sequential stream lands exactly on the
        interface figure: ``row_bits * energy_per_bit``.
        """
        return (
            self.activate_energy_fraction
            * energy_per_bit_pj
            * self.row_bytes
            * 8.0
        )
