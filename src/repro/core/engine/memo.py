"""Bounded, stats-instrumented in-process memos for the physics caches.

The engine memoizes two families of expensive pure functions: per-spec
device-physics energy curves (:mod:`repro.core.engine.matmul`) and
per-``(geometry, context)`` variation physics
(:mod:`repro.core.engine.corners`).  Long serving runs and die sweeps
churn through thousands of distinct keys, so every memo is bounded with
the same LRU discipline as the serving layer's
:class:`~repro.serving.cache.ReportCache`: lookups refresh recency,
inserts evict the least-recently-used entry past the bound, and every
hit / miss / eviction is counted so cache behaviour is a first-class
observable (``repro sweep --json``, ``repro serve --stats``).

Example:
    >>> memo = LRUMemo(max_entries=2)
    >>> memo.get("a") is None
    True
    >>> memo.put("a", 1); memo.put("b", 2); memo.put("c", 3)
    >>> memo.get("a") is None   # evicted as LRU
    True
    >>> memo.stats.evictions
    1
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError


@dataclass
class MemoStats:
    """Lookup accounting of one :class:`LRUMemo`.

    Attributes:
        hits / misses: lookup outcomes since construction or ``reset``.
        insertions: successful ``put`` calls.
        evictions: entries dropped to enforce the bound.
    """

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the memo (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, float]:
        """JSON-serializable form."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class LRUMemo:
    """A bounded LRU mapping with hit/miss/eviction accounting.

    Thread-safe: sweep thread pools and the serving flush worker share
    the engine's module-level memos.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"memo needs >= 1 entry, got {max_entries}"
            )
        self.max_entries = max_entries
        self.stats = MemoStats()
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        """Membership probe; does not count as a lookup or touch LRU."""
        return key in self._entries

    def get(self, key: Any, default: Optional[Any] = None) -> Optional[Any]:
        """The memoized value for ``key`` (counted, recency-refreshing)."""
        with self._lock:
            if key not in self._entries:
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return self._entries[key]

    def put(self, key: Any, value: Any) -> None:
        """Insert (or refresh) an entry, evicting LRU past the bound."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            self.stats.insertions += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (lookup accounting is kept)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the lookup accounting."""
        with self._lock:
            self.stats = MemoStats()
