"""The shared photonic execution engine.

TRON and GHOST run on the same photonic substrate — MR-bank matmul
arrays, HBM streaming, linear streaming pipelines — and this package is
that substrate's single implementation:

- :mod:`repro.core.engine.matmul` — the :func:`photonic_matmul`
  primitive and the tiled :class:`ArrayExecutor` (functional + cost
  paths, memoized device-physics curves).
- :mod:`repro.core.engine.memory` — the :class:`MemoryModel` costing
  streamed weights, burst/random feature traffic and buffer bounces
  (thermal corners derate the HBM interface).
- :mod:`repro.core.engine.corners` — per-context array physics:
  variation sampling, TED correction power, ring-yield gating (scalar
  and batched Monte-Carlo forms, memoized per corner).
- :mod:`repro.core.engine.pipeline` — streaming-pipeline composition
  built on :mod:`repro.core.scheduling`.

Accelerators compose these into workload-specific datapaths; the
analysis layer (figures, claims, sweeps) only ever sees the uniform
``Accelerator.run(workload)`` entry point of :mod:`repro.core.base`.
"""

from repro.core.engine.corners import (
    ArrayContextPhysics,
    BatchContextPhysics,
    batch_context_physics,
    batch_context_physics_for,
    context_physics,
)
from repro.core.engine.matmul import (
    ArrayExecutor,
    ArraySpec,
    clear_physics_cache,
    photonic_matmul,
)
from repro.core.engine.memory import MemoryModel, Traffic
from repro.core.engine.pipeline import (
    PipelineStage,
    overlapped_stage_latency_ns,
    pipeline_latency_ns,
    serial_waves,
)

__all__ = [
    "ArrayContextPhysics",
    "ArrayExecutor",
    "ArraySpec",
    "BatchContextPhysics",
    "MemoryModel",
    "PipelineStage",
    "Traffic",
    "batch_context_physics",
    "batch_context_physics_for",
    "clear_physics_cache",
    "context_physics",
    "overlapped_stage_latency_ns",
    "photonic_matmul",
    "pipeline_latency_ns",
    "serial_waves",
]
