"""The shared photonic execution engine.

TRON and GHOST run on the same photonic substrate — MR-bank matmul
arrays, HBM streaming, linear streaming pipelines — and this package is
that substrate's single implementation:

- :mod:`repro.core.engine.matmul` — the :func:`photonic_matmul`
  primitive and the tiled :class:`ArrayExecutor` (functional + cost
  paths, memoized device-physics curves).
- :mod:`repro.core.engine.memory` — the :class:`MemoryModel` costing
  streamed weights, burst/random feature traffic and buffer bounces
  (thermal corners derate the HBM interface).
- :mod:`repro.core.engine.corners` — per-context array physics:
  variation sampling, TED correction power, ring-yield gating (scalar
  and batched Monte-Carlo forms, memoized per corner).
- :mod:`repro.core.engine.pipeline` — streaming-pipeline composition
  built on :mod:`repro.core.scheduling`.

Accelerators compose these into workload-specific datapaths; the
analysis layer (figures, claims, sweeps) only ever sees the uniform
``Accelerator.run(workload)`` entry point of :mod:`repro.core.base`.
"""

from repro.core.engine.corners import (
    ArrayContextPhysics,
    BatchContextPhysics,
    batch_context_physics,
    batch_context_physics_for,
    context_physics,
    context_physics_cache_stats,
)
from repro.core.engine.diskcache import (
    PhysicsDiskCache,
    active_disk_cache,
    configure_disk_cache,
    default_cache_dir,
    disk_cache_stats,
    fingerprint,
)
from repro.core.engine.matmul import (
    ArrayExecutor,
    ArraySpec,
    breakdown_cache_stats,
    clear_physics_cache,
    nominal_breakdown_pj,
    photonic_matmul,
    prime_breakdown_cache,
)
from repro.core.engine.soa import (
    ColumnEnergy,
    ColumnLatency,
    SoAStats,
    pareto_mask,
    register_soa_evaluator,
    soa_config_supported,
    soa_evaluator,
)
from repro.core.engine.hbm import CommandTrace, HBMGeometry, HBMMemoryModel
from repro.core.engine.membackend import (
    build_memory_backend,
    list_memory_backends,
    register_memory_backend,
)
from repro.core.engine.memo import LRUMemo, MemoStats
from repro.core.engine.memory import MemoryModel, Traffic
from repro.core.engine.movement import (
    clear_movement_cache,
    movement_cache_stats,
)
from repro.core.engine.pipeline import (
    PipelineStage,
    overlapped_stage_latency_ns,
    pipeline_latency_ns,
    serial_waves,
)


def physics_cache_stats() -> dict:
    """One dict aggregating every physics-cache observable.

    The in-process memos (device-physics curves, per-context physics)
    plus the persistent disk cache — what ``repro sweep --json`` and
    ``repro serve --stats`` surface.
    """
    stats = {"breakdown": breakdown_cache_stats()}
    stats.update(context_physics_cache_stats())
    stats["movement"] = movement_cache_stats()
    stats["disk"] = disk_cache_stats()
    return stats

__all__ = [
    "ArrayContextPhysics",
    "ArrayExecutor",
    "ArraySpec",
    "BatchContextPhysics",
    "ColumnEnergy",
    "ColumnLatency",
    "CommandTrace",
    "HBMGeometry",
    "HBMMemoryModel",
    "LRUMemo",
    "MemoStats",
    "MemoryModel",
    "PhysicsDiskCache",
    "PipelineStage",
    "SoAStats",
    "Traffic",
    "active_disk_cache",
    "batch_context_physics",
    "batch_context_physics_for",
    "breakdown_cache_stats",
    "build_memory_backend",
    "clear_movement_cache",
    "clear_physics_cache",
    "configure_disk_cache",
    "context_physics",
    "context_physics_cache_stats",
    "default_cache_dir",
    "disk_cache_stats",
    "fingerprint",
    "list_memory_backends",
    "movement_cache_stats",
    "nominal_breakdown_pj",
    "overlapped_stage_latency_ns",
    "pareto_mask",
    "photonic_matmul",
    "physics_cache_stats",
    "pipeline_latency_ns",
    "prime_breakdown_cache",
    "register_memory_backend",
    "register_soa_evaluator",
    "serial_waves",
    "soa_config_supported",
    "soa_evaluator",
]
