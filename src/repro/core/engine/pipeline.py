"""Pipeline composition helpers built on :mod:`repro.core.scheduling`.

The engine composes streaming datapaths two ways:

- **linear pipelines** (TRON's five-stage attention datapath): items
  stream through every stage; fill once, then the bottleneck sets the
  steady-state rate — :func:`pipeline_latency_ns`.
- **overlapped stage groups** (GHOST's aggregate/combine/update blocks):
  stages overlap across items, so the group runs at the slowest stage
  plus a fill fraction of the others — :func:`overlapped_stage_latency_ns`.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.scheduling import (  # noqa: F401  (re-exported)
    PipelineStage,
    balanced_assignment,
    lane_imbalance_factor,
    pipeline_latency_ns,
)
from repro.errors import ConfigurationError


def overlapped_stage_latency_ns(
    stage_latencies_ns: Sequence[float], fill_fraction: float = 0.1
) -> float:
    """Latency of stages that overlap across a stream of items.

    The group runs at the slowest stage; the remaining stages only
    contribute their fill time, approximated as ``fill_fraction`` of
    their summed latencies (Section V.D "execution pipelining and
    scheduling").
    """
    latencies = list(stage_latencies_ns)
    if not latencies:
        raise ConfigurationError("need at least one stage")
    if any(latency < 0.0 for latency in latencies):
        raise ConfigurationError("stage latencies must be >= 0")
    if not 0.0 <= fill_fraction <= 1.0:
        raise ConfigurationError(
            f"fill fraction must be in [0, 1], got {fill_fraction}"
        )
    bottleneck = max(latencies)
    return bottleneck + fill_fraction * (sum(latencies) - bottleneck)


def serial_waves(items: int, parallel_units: int) -> int:
    """Waves needed to push ``items`` through ``parallel_units`` units."""
    if items < 0:
        raise ConfigurationError(f"item count must be >= 0, got {items}")
    if parallel_units < 1:
        raise ConfigurationError(
            f"need >= 1 parallel unit, got {parallel_units}"
        )
    return -(-items // parallel_units)
