"""The shared photonic matmul primitive and tiled array executor.

Both accelerators compute dense products the same way: a K x N MR bank
array multiplies a weight tile against streamed input columns, partial
tile products accumulate electronically, and every cycle burns the same
laser / tuning / DAC / ADC energy.  This module is the canonical home of
that machinery (it was born in ``core/tron/attention_head.py``; GHOST's
transform units use it identically).

Device-physics curves — the per-cycle energy breakdown of an array — are
memoized per :class:`ArraySpec`, so design-space sweeps that revisit an
array geometry (or instantiate many units of the same geometry) never
recompute the microring tuning / laser working point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.core.context import ExecutionContext
from repro.core.engine.corners import (
    ArrayContextPhysics,
    clear_context_physics_cache,
    context_physics,
)
from repro.core.engine.diskcache import active_disk_cache
from repro.core.engine.memo import LRUMemo
from repro.core.engine.movement import clear_movement_cache
from repro.core.reports import EnergyReport
from repro.errors import ConfigurationError, YieldError
from repro.photonics.converters import ADC, DAC
from repro.photonics.devices import VCSEL
from repro.photonics.microring import MicroringDesign
from repro.photonics.mrbank import (
    MRBankArray,
    cycle_energy_breakdown_kernel,
    tile_cycles,
)
from repro.photonics.noise import AnalogNoiseModel
from repro.photonics.pcm import PCMCell
from repro.photonics.tuning import HybridTuner


def photonic_matmul(
    array: MRBankArray, weights: np.ndarray, inputs: np.ndarray
) -> np.ndarray:
    """W @ X computed by tiling onto a K x N MR bank array.

    Splits ``weights`` into (array.rows x array.cols) tiles; partial tile
    products accumulate electronically (the BPD output of each tile is one
    partial sum).  Analog noise, if the array has a noise model, applies
    per tile — matching how errors accumulate in hardware.

    Args:
        array: the MR bank array (its dims set the tile size).
        weights: (M, K) matrix held by the MR banks.
        inputs: (K,) vector or (K, B) matrix arriving on the waveguides.

    Returns:
        (M,) or (M, B) product.
    """
    weights = np.asarray(weights, dtype=float)
    inputs = np.asarray(inputs, dtype=float)
    if weights.ndim != 2:
        raise ConfigurationError(f"weights must be 2-D, got shape {weights.shape}")
    squeeze = inputs.ndim == 1
    if squeeze:
        inputs = inputs[:, None]
    if inputs.shape[0] != weights.shape[1]:
        raise ConfigurationError(
            f"inner dims mismatch: weights {weights.shape}, inputs {inputs.shape}"
        )
    m, k = weights.shape
    batch = inputs.shape[1]
    out = np.zeros((m, batch))
    for row_start in range(0, m, array.rows):
        row_end = min(row_start + array.rows, m)
        for col_start in range(0, k, array.cols):
            col_end = min(col_start + array.cols, k)
            tile = np.zeros((array.rows, array.cols))
            tile[: row_end - row_start, : col_end - col_start] = weights[
                row_start:row_end, col_start:col_end
            ]
            block = np.zeros((array.cols, batch))
            block[: col_end - col_start, :] = inputs[col_start:col_end, :]
            partial = array.matmul(tile, block)
            out[row_start:row_end, :] += partial[: row_end - row_start, :]
    return out[:, 0] if squeeze else out


@dataclass(frozen=True)
class ArraySpec:
    """The physical signature of an MR bank array.

    Two arrays with equal specs share identical device physics, so this
    is the memoization key for energy curves.  All component models are
    frozen dataclasses, which makes the spec hashable.
    """

    rows: int
    cols: int
    clock_ghz: float = 5.0
    design: MicroringDesign = field(default_factory=MicroringDesign)
    dac: DAC = field(default_factory=DAC)
    adc: ADC = field(default_factory=ADC)
    weight_dacs_shared: int = 1
    pcm: Optional[PCMCell] = None

    @classmethod
    def from_config(cls, config, weight_dacs_shared: int = 1) -> "ArraySpec":
        """Spec from any config exposing the common array attributes
        (``array_rows``, ``array_cols``, ``clock_ghz``, ``design``,
        ``dac``, ``adc``, ``pcm``) — both TRONConfig and GHOSTConfig do."""
        return cls(
            rows=config.array_rows,
            cols=config.array_cols,
            clock_ghz=config.clock_ghz,
            design=config.design,
            dac=config.dac,
            adc=config.adc,
            weight_dacs_shared=weight_dacs_shared,
            pcm=config.pcm,
        )


#: (spec, weight magnitude, refresh window, context) -> per-cycle energy
#: breakdown.  The context component keeps corners apart: a variation
#: sample's correction tuning power never pollutes the nominal curve.
#: LRU-bounded (with eviction counters) so per-die loops — a fresh
#: context per seed — churn through it instead of growing it.
_BREAKDOWN_CACHE: LRUMemo = LRUMemo(max_entries=256)


def clear_physics_cache() -> None:
    """Drop memoized device-physics curves (benchmarks use this to time
    the unmemoized path).  The persistent disk cache, when enabled, is
    deliberately untouched — ``repro cache --clear`` owns that."""
    _BREAKDOWN_CACHE.clear()
    clear_context_physics_cache()
    clear_movement_cache()


def breakdown_cache_stats() -> Dict[str, float]:
    """Hit/miss/eviction counters of the in-process breakdown memo."""
    return _BREAKDOWN_CACHE.stats.to_dict()


def _nominal_breakdown(
    spec: ArraySpec,
    array: MRBankArray,
    average_weight_magnitude: float,
    weight_refresh_cycles: int,
) -> Dict[str, float]:
    """The context-free per-cycle breakdown of one spec (memo + disk)."""
    key = (spec, average_weight_magnitude, weight_refresh_cycles, None)
    cached = _BREAKDOWN_CACHE.get(key)
    if cached is not None:
        return cached
    disk = active_disk_cache()
    disk_key = (repr(spec), average_weight_magnitude, weight_refresh_cycles)
    if disk is not None:
        persisted = disk.get("breakdown", disk_key)
        if persisted is not None:
            _BREAKDOWN_CACHE.put(key, persisted)
            return persisted
    breakdown = array.cycle_energy_breakdown_pj(
        average_weight_magnitude=average_weight_magnitude,
        weight_refresh_cycles=weight_refresh_cycles,
    )
    _BREAKDOWN_CACHE.put(key, breakdown)
    if disk is not None:
        disk.put("breakdown", disk_key, breakdown)
    return breakdown


def prime_breakdown_cache(
    requests: Iterable[Tuple[ArraySpec, float, int]]
) -> int:
    """Batch-compute nominal energy breakdowns for many specs at once.

    The sweep engine's physics pass: ``requests`` is an iterable of
    ``(spec, average_weight_magnitude, weight_refresh_cycles)``
    triples; specs sharing device models (ring design, converters — the
    transcendental-heavy inputs) are grouped and costed in **one**
    vectorized :func:`~repro.photonics.mrbank.cycle_energy_breakdown_kernel`
    call per group, then inserted into the in-process memo (and the
    disk cache, when enabled).  The kernel replicates the scalar
    operation order, so a primed entry is bit-identical to what
    :meth:`ArrayExecutor.energy_breakdown_pj` would have computed
    lazily.

    Specs with PCM weight cells cost through the scalar path (their
    program energy is a per-cell model call, not worth batching).

    Returns:
        The number of newly primed entries.
    """
    requests = list(requests)
    # A production grid can name more distinct geometries than the
    # serving-sized default bound; grow the memo to fit (capped) so the
    # priming loop cannot evict its own freshly primed entries before
    # the points run.
    distinct = len({(spec, mag, refresh) for spec, mag, refresh in requests})
    _BREAKDOWN_CACHE.max_entries = min(
        max(_BREAKDOWN_CACHE.max_entries, distinct + 64), 16384
    )
    groups: Dict[Tuple, list] = {}
    seen = set()
    primed = 0
    disk = active_disk_cache()
    for spec, magnitude, refresh in requests:
        key = (spec, magnitude, refresh, None)
        if key in seen or key in _BREAKDOWN_CACHE:
            continue
        seen.add(key)
        if disk is not None:
            persisted = disk.get("breakdown", (repr(spec), magnitude, refresh))
            if persisted is not None:
                _BREAKDOWN_CACHE.put(key, persisted)
                primed += 1
                continue
        if spec.pcm is not None:
            group_key = ("pcm", spec, magnitude, refresh)
        else:
            group_key = (spec.design, spec.dac, spec.adc, magnitude)
        groups.setdefault(group_key, []).append((spec, magnitude, refresh))
    for group_key, members in groups.items():
        if group_key[0] == "pcm":
            spec, magnitude, refresh = members[0]
            array = MRBankArray(
                rows=spec.rows,
                cols=spec.cols,
                design=spec.design,
                clock_ghz=spec.clock_ghz,
                dac=spec.dac,
                adc=spec.adc,
                weight_dacs_shared=spec.weight_dacs_shared,
                pcm=spec.pcm,
            )
            _nominal_breakdown(spec, array, magnitude, refresh)
            primed += 1
            continue
        design, dac, adc, magnitude = group_key
        rows = np.array([spec.rows for spec, _, _ in members])
        cols = np.array([spec.cols for spec, _, _ in members])
        clocks = np.array([spec.clock_ghz for spec, _, _ in members])
        shared = np.array([spec.weight_dacs_shared for spec, _, _ in members])
        refreshes = np.array([refresh for _, _, refresh in members])
        batched = cycle_energy_breakdown_kernel(
            rows,
            cols,
            clocks,
            design=design,
            dac=dac,
            adc=adc,
            vcsel=VCSEL(),
            tuner=HybridTuner(),
            weight_dacs_shared=shared,
            average_weight_magnitude=magnitude,
            weight_refresh_cycles=refreshes,
        )
        for i, (spec, _, refresh) in enumerate(members):
            breakdown = {
                name: float(values[i]) for name, values in batched.items()
            }
            _BREAKDOWN_CACHE.put((spec, magnitude, refresh, None), breakdown)
            if disk is not None:
                disk.put(
                    "breakdown",
                    (repr(spec), magnitude, refresh),
                    breakdown,
                )
            primed += 1
    return primed


def nominal_breakdown_pj(
    spec: ArraySpec,
    average_weight_magnitude: float = 0.5,
    weight_refresh_cycles: int = 1,
) -> Dict[str, float]:
    """The context-free per-cycle breakdown of ``spec``, without
    constructing an executor.

    This is the array-resident (SoA) evaluators' entry point: they read
    one breakdown per distinct spec and broadcast it across a column of
    points, so the per-point ~100 us :class:`ArrayExecutor` construction
    never happens.  Backed by the same memo / disk cache as the executor
    path, and primed through :func:`prime_breakdown_cache` so the values
    are bit-identical to the scalar path's.
    """
    key = (spec, average_weight_magnitude, weight_refresh_cycles, None)
    cached = _BREAKDOWN_CACHE.get(key)
    if cached is not None:
        return cached
    prime_breakdown_cache(
        [(spec, average_weight_magnitude, weight_refresh_cycles)]
    )
    cached = _BREAKDOWN_CACHE.get(key)
    if cached is not None:
        return cached
    # Unreachable in practice (priming always fills the memo), kept as a
    # safety net for cache-eviction races.
    array = MRBankArray(
        rows=spec.rows,
        cols=spec.cols,
        design=spec.design,
        clock_ghz=spec.clock_ghz,
        dac=spec.dac,
        adc=spec.adc,
        weight_dacs_shared=spec.weight_dacs_shared,
        pcm=spec.pcm,
    )
    return _nominal_breakdown(
        spec, array, average_weight_magnitude, weight_refresh_cycles
    )


@dataclass
class ArrayExecutor:
    """A tiled matmul executor over one MR bank array geometry.

    The executor owns the functional path (:meth:`matmul`) and the cost
    path (:meth:`cycles_for` / :meth:`energy_for_cycles`) every photonic
    unit in TRON and GHOST shares.

    Attributes:
        spec: the array's physical signature.
        noise: analog noise model for the functional path (None = ideal).
        ctx: execution context; a non-nominal context adds variation-
            correction tuning power to every cycle and yield-gates the
            usable array dimensions (``None`` = nominal corner).
    """

    spec: ArraySpec
    noise: Optional[AnalogNoiseModel] = None
    ctx: Optional[ExecutionContext] = None
    array: MRBankArray = field(init=False, repr=False)
    _physics: Optional[ArrayContextPhysics] = field(
        init=False, repr=False, default=None
    )

    def __post_init__(self) -> None:
        if self.ctx is not None and self.ctx.noise is not None:
            self.noise = self.ctx.noise
        self._physics = context_physics(self.spec, self.ctx)
        self.array = MRBankArray(
            rows=self.spec.rows,
            cols=self.spec.cols,
            design=self.spec.design,
            clock_ghz=self.spec.clock_ghz,
            dac=self.spec.dac,
            adc=self.spec.adc,
            noise=self.noise,
            weight_dacs_shared=self.spec.weight_dacs_shared,
            pcm=self.spec.pcm,
        )

    @classmethod
    def from_config(
        cls,
        config,
        weight_dacs_shared: int = 1,
        ctx: Optional[ExecutionContext] = None,
    ) -> "ArrayExecutor":
        """Executor for a TRON- or GHOST-style config (shared attributes)."""
        return cls(
            spec=ArraySpec.from_config(
                config, weight_dacs_shared=weight_dacs_shared
            ),
            noise=config.noise,
            ctx=ctx,
        )

    # ------------------------------------------------------------------
    # Functional model
    # ------------------------------------------------------------------

    def matmul(self, weights: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """W @ X tiled over this array (see :func:`photonic_matmul`)."""
        return photonic_matmul(self.array, weights, inputs)

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------

    @property
    def cycle_ns(self) -> float:
        """Photonic cycle time."""
        return 1.0 / self.spec.clock_ghz

    @property
    def usable_rows(self) -> int:
        """Array rows surviving the context's yield gating."""
        return self._physics.usable_rows if self._physics else self.spec.rows

    @property
    def usable_cols(self) -> int:
        """Array columns surviving the context's yield gating."""
        return self._physics.usable_cols if self._physics else self.spec.cols

    @property
    def macs_per_cycle(self) -> int:
        """Multiply-accumulates completed each photonic cycle (on the
        yield-gated portion of the array)."""
        return self.usable_rows * self.usable_cols

    def cycles_for(self, out_rows: int, inner: int, batch: int = 1) -> int:
        """Photonic cycles to tile a (out_rows x inner) @ (inner x batch)
        matmul over this array (its yield-gated dimensions, if a context
        gated any rows or columns).

        Raises:
            YieldError: if the context's die has no usable hardware.
        """
        if self._physics is None:
            return self.array.cycles_for(out_rows, inner, batch=batch)
        if not self._physics.functional:
            raise YieldError(
                f"sampled die has no usable {self.spec.rows}x"
                f"{self.spec.cols} array hardware "
                f"({self._physics.usable_rows}x{self._physics.usable_cols}"
                " usable)"
            )
        return tile_cycles(
            out_rows, inner, batch, self.usable_rows, self.usable_cols
        )

    def energy_breakdown_pj(
        self,
        average_weight_magnitude: float = 0.5,
        weight_refresh_cycles: int = 1,
    ) -> Dict[str, float]:
        """Memoized per-cycle laser / tuning / dac / adc energy split.

        The breakdown depends on the spec and the execution context (not
        on the noise model), so all executors with equal specs at the
        same corner share one cached curve; a non-nominal context adds
        its standing variation-correction power to the tuning term.

        The context-free base curve is memoized (and persisted to the
        disk cache when enabled); corner curves derive from it by
        adding the corner's correction power, so a die sweep never
        recomputes the transcendental-heavy device physics per die.
        """
        if self._physics is None:
            return _nominal_breakdown(
                self.spec,
                self.array,
                average_weight_magnitude,
                weight_refresh_cycles,
            )
        key = (
            self.spec,
            average_weight_magnitude,
            weight_refresh_cycles,
            self.ctx,
        )
        cached = _BREAKDOWN_CACHE.get(key)
        if cached is not None:
            return cached
        breakdown = dict(
            _nominal_breakdown(
                self.spec,
                self.array,
                average_weight_magnitude,
                weight_refresh_cycles,
            )
        )
        breakdown["tuning_pj"] += (
            self._physics.correction_power_mw * self.cycle_ns
        )
        _BREAKDOWN_CACHE.put(key, breakdown)
        return breakdown

    def energy_for_cycles(
        self,
        cycles: int,
        weight_refresh_cycles: int = 1,
        average_weight_magnitude: float = 0.5,
    ) -> EnergyReport:
        """Photonic energy of ``cycles`` array cycles as an EnergyReport."""
        if cycles < 0:
            raise ConfigurationError(f"cycle count must be >= 0, got {cycles}")
        breakdown = self.energy_breakdown_pj(
            average_weight_magnitude=average_weight_magnitude,
            weight_refresh_cycles=weight_refresh_cycles,
        )
        return EnergyReport(
            laser_pj=cycles * breakdown["laser_pj"],
            tuning_pj=cycles * breakdown["tuning_pj"],
            dac_pj=cycles * breakdown["dac_pj"],
            adc_pj=cycles * breakdown["adc_pj"],
        )
