"""Structure-of-arrays evaluation machinery shared by the platform
evaluators.

The array-resident path evaluates a whole sweep x corner x sample batch
of configurations as NumPy columns: each knob is a column, each energy /
latency breakdown field is a column, and reductions (Pareto fronts,
yield masks) are boolean masks over those columns.  Scalar
:class:`~repro.core.reports.RunReport` objects only materialize for the
points a caller actually looks at.

Bit-exactness contract: every helper here replicates the scalar cost
path's accumulation order exactly — chained left-associative adds
starting from the same identity, the same int-vs-float ceiling
divisions, the same memoized physics values — so a materialized point is
indistinguishable from one produced by the scalar oracle.  The property
suite (``tests/unit/test_soa_parity.py``) enforces this.

Platform evaluators register themselves per ``(platform, workload
kind)``; :func:`soa_evaluator` is how the sweep and Monte-Carlo engines
look them up (returning ``None`` triggers the scalar fallback).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from dataclasses import replace as dataclass_replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import WorkloadKind
from repro.core.context import ExecutionContext
from repro.core.engine.corners import context_physics
from repro.core.engine.hbm.geometry import HBMGeometry
from repro.core.engine.matmul import (
    ArraySpec,
    nominal_breakdown_pj,
    prime_breakdown_cache,
)
from repro.core.reports import (
    ENERGY_FIELDS,
    LATENCY_FIELDS,
    StackedRunReports,
)
from repro.errors import ConfigurationError, YieldError


@dataclass
class SoAStats:
    """Bookkeeping of one array-resident evaluation.

    Surfaced in the ``--json`` envelopes so users can see how much work
    the SoA path collapsed (and whether it fell back to scalar).

    Attributes:
        strategy: the evaluation strategy that actually ran.
        points: evaluation points covered.
        groups: distinct evaluation groups the points collapsed into
            (shared physics / memory / device computations).
        materialized_reports: scalar reports constructed from the stack.
        fallback_points: points evaluated through the scalar path
            because no SoA evaluator covered them.
    """

    strategy: str
    points: int = 0
    groups: int = 0
    materialized_reports: int = 0
    fallback_points: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy,
            "points": self.points,
            "groups": self.groups,
            "materialized_reports": self.materialized_reports,
            "fallback_points": self.fallback_points,
        }


class _Columns:
    """Per-field breakdown columns with the scalar report algebra.

    Mirrors ``EnergyReport`` / ``LatencyReport``: per-field ``+`` and
    ``scaled``, and a ``total`` that chains fields in declaration order
    from integer zero — exactly the scalar ``sum(...)`` order, so the
    float results match bit for bit.  Fields an evaluator never touches
    stay the scalar ``0.0`` (adding or scaling it is exact).
    """

    FIELDS: Tuple[str, ...] = ()

    def __init__(self, **values: object) -> None:
        for name in self.FIELDS:
            setattr(self, name, values.get(name, 0.0))

    def __add__(self, other: "_Columns") -> "_Columns":
        return type(self)(
            **{
                name: getattr(self, name) + getattr(other, name)
                for name in self.FIELDS
            }
        )

    def scaled(self, factor: object) -> "_Columns":
        return type(self)(
            **{name: getattr(self, name) * factor for name in self.FIELDS}
        )

    @property
    def total(self) -> object:
        out: object = 0
        for name in self.FIELDS:
            out = out + getattr(self, name)
        return out

    def as_arrays(self, num_points: int) -> Dict[str, np.ndarray]:
        """Columns as owned float64 arrays of length ``num_points``
        (scalar fields broadcast)."""
        out = {}
        for name in self.FIELDS:
            value = getattr(self, name)
            if np.ndim(value) == 0:
                out[name] = np.full(num_points, float(value))
            else:
                out[name] = np.asarray(value, dtype=float)
        return out


class ColumnEnergy(_Columns):
    """Stacked :class:`~repro.core.reports.EnergyReport` columns."""

    FIELDS = ENERGY_FIELDS


class ColumnLatency(_Columns):
    """Stacked :class:`~repro.core.reports.LatencyReport` columns."""

    FIELDS = LATENCY_FIELDS


def ceil_div(numerator: object, denominator: object) -> object:
    """Exact integer ceiling division, elementwise on int columns."""
    return -(-numerator // denominator)


def group_indices(keys: Sequence[object]) -> Dict[object, List[int]]:
    """Point indices grouped by a hashable per-point key, in first-seen
    order (frozen config sub-objects hash fast — never use repr)."""
    groups: Dict[object, List[int]] = {}
    for index, key in enumerate(keys):
        groups.setdefault(key, []).append(index)
    return groups


def resolve_array_physics(
    specs: Sequence[ArraySpec],
    contexts: Sequence[Optional[ExecutionContext]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Yield-gated array dimensions and correction power, per point.

    Returns ``(usable_rows, usable_cols, correction_power_mw)`` columns.
    Nominal points keep the spec dimensions and zero correction power.

    Raises:
        YieldError: with the scalar path's exact message, if any point's
            die has no usable hardware (matching ``ArrayExecutor.cycles_for``).
    """
    n = len(specs)
    usable_rows = np.empty(n, dtype=np.int64)
    usable_cols = np.empty(n, dtype=np.int64)
    correction = np.empty(n, dtype=float)
    cache: Dict[object, Tuple[int, int, float]] = {}
    for i, (spec, ctx) in enumerate(zip(specs, contexts)):
        key = (spec, ctx)
        resolved = cache.get(key)
        if resolved is None:
            physics = context_physics(spec, ctx)
            if physics is None:
                resolved = (spec.rows, spec.cols, 0.0)
            else:
                if not physics.functional:
                    raise YieldError(
                        f"sampled die has no usable {spec.rows}x"
                        f"{spec.cols} array hardware "
                        f"({physics.usable_rows}x{physics.usable_cols}"
                        " usable)"
                    )
                resolved = (
                    physics.usable_rows,
                    physics.usable_cols,
                    physics.correction_power_mw,
                )
            cache[key] = resolved
        usable_rows[i] = resolved[0]
        usable_cols[i] = resolved[1]
        correction[i] = resolved[2]
    return usable_rows, usable_cols, correction


def breakdown_columns(
    specs: Sequence[ArraySpec],
    refresh: Sequence[int],
    correction_power_mw: np.ndarray,
    cycle_ns: np.ndarray,
    average_weight_magnitude: float = 0.5,
) -> Dict[str, np.ndarray]:
    """Per-cycle energy breakdown columns for a batch of points.

    One memoized :func:`nominal_breakdown_pj` read per distinct
    ``(spec, refresh)`` pair, broadcast across its points; the context's
    correction tuning power is added per point exactly as the scalar
    executor does (``tuning += correction_power_mw * cycle_ns``, which
    is an exact no-op for nominal points where the correction is zero).
    """
    n = len(specs)
    columns = {
        name: np.empty(n)
        for name in ("laser_pj", "tuning_pj", "dac_pj", "adc_pj")
    }
    groups = group_indices(
        [(spec, int(r)) for spec, r in zip(specs, refresh)]
    )
    prime_breakdown_cache(
        [
            (spec, average_weight_magnitude, window)
            for spec, window in groups
        ]
    )
    for (spec, window), indices in groups.items():
        breakdown = nominal_breakdown_pj(
            spec,
            average_weight_magnitude=average_weight_magnitude,
            weight_refresh_cycles=window,
        )
        for name in columns:
            columns[name][indices] = breakdown[name]
    columns["tuning_pj"] = (
        columns["tuning_pj"] + correction_power_mw * cycle_ns
    )
    return columns


def energy_for_cycles_columns(
    cycles: object, breakdown: Dict[str, np.ndarray]
) -> ColumnEnergy:
    """Column counterpart of ``ArrayExecutor.energy_for_cycles``."""
    return ColumnEnergy(
        laser_pj=cycles * breakdown["laser_pj"],
        tuning_pj=cycles * breakdown["tuning_pj"],
        dac_pj=cycles * breakdown["dac_pj"],
        adc_pj=cycles * breakdown["adc_pj"],
    )


def memory_context_key(
    ctx: Optional[ExecutionContext],
) -> Optional[ExecutionContext]:
    """The part of a context the memory model reads (None if inert)."""
    if ctx is not None and ctx.affects_memory:
        return ctx
    return None


def soa_config_supported(config: object) -> bool:
    """Whether the array-resident evaluators cover this config.

    All three memory backends are covered.  ``analytic`` and plain
    ``hbm`` only change the memory primitives, which the columns price
    through the real registry-built models; ``hbm-pim`` additionally
    reshapes the run path (stages move off the photonic pipeline onto
    near-bank compute), which the platform evaluators express as column
    ops — ``np.where`` selection between the offloaded and full stage
    pipelines plus per-group PIM spill/reduce traffic.
    """
    return True


def build_soa_memory_model(
    backend: str,
    system: object,
    mem_ctx: Optional[ExecutionContext],
    geometry: Optional[HBMGeometry],
):
    """The memory model one SoA group prices its traffic through.

    Tracing is forced off: a sweep group's model is transient, so a
    recorded command log would be both unobservable and a trace-limit
    hazard on large workloads.
    """
    from repro.core.engine.membackend import build_memory_backend

    if geometry is not None and geometry.op_trace:
        geometry = dataclass_replace(geometry, op_trace=False)
    return build_memory_backend(
        backend, system, context=mem_ctx, geometry=geometry
    )


def unique_traffic_columns(
    fn: Callable[[np.ndarray], Tuple[np.ndarray, np.ndarray]],
    counts: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """A batch traffic primitive over the *distinct* byte counts only.

    Sweeps repeat a handful of transfer sizes across thousands of
    points, so the primitive prices each size once and the results
    scatter back through the inverse index (selection of identical
    floats — exact).
    """
    unique, inverse = np.unique(
        np.asarray(counts, dtype=np.int64), return_inverse=True
    )
    energy, latency = fn(unique)
    return energy[inverse], latency[inverse]


def weight_stream_columns(
    memory_systems: Sequence[object],
    contexts: Sequence[Optional[ExecutionContext]],
    ops_list: Sequence[object],
    bits: Sequence[int],
    compute_ns: np.ndarray,
    batch: np.ndarray,
    backends: Optional[Sequence[str]] = None,
    geometries: Optional[Sequence[Optional[HBMGeometry]]] = None,
) -> Tuple[ColumnEnergy, ColumnLatency]:
    """Column counterpart of ``MemoryModel.weight_stream_cost``.

    Points group by the model key — (memory system, memory-relevant
    context, backend, geometry) — and each group prices its whole
    column of weight/bounce byte counts through one vectorized
    primitive call (the ``*_batch`` methods are elementwise
    bit-identical to their scalar forms); batch amortization and
    compute overlap are per-point column arithmetic in the scalar
    path's exact order.  ``bits`` rides along for signature stability
    only — operand precision is already folded into the per-point byte
    counts.  ``backends``/``geometries`` default to the pre-registry
    analytic model for every point.
    """
    n = len(ops_list)
    if backends is None:
        backends = ["analytic"] * n
    if geometries is None:
        geometries = [None] * n
    weight_bytes = np.fromiter(
        (ops.weight_bytes for ops in ops_list), dtype=np.int64, count=n
    )
    bounce_bytes = np.fromiter(
        (2 * ops.activation_bytes for ops in ops_list),
        dtype=np.int64,
        count=n,
    )
    weight_e = np.empty(n)
    weight_l = np.empty(n)
    bounce_e = np.empty(n)
    bounce_l = np.empty(n)
    keys = [
        (system, memory_context_key(ctx), backend, geometry)
        for system, ctx, backend, geometry in zip(
            memory_systems, contexts, backends, geometries
        )
    ]
    for (system, mem_ctx, backend, geometry), indices in group_indices(
        keys
    ).items():
        model = build_soa_memory_model(backend, system, mem_ctx, geometry)
        idx = np.asarray(indices)
        we, wl = unique_traffic_columns(
            model.stream_offchip_batch, weight_bytes[idx]
        )
        be, bl = unique_traffic_columns(
            model.bounce_onchip_batch, bounce_bytes[idx]
        )
        weight_e[idx] = we
        weight_l[idx] = wl
        bounce_e[idx] = be
        bounce_l[idx] = bl
    energy = ColumnEnergy(memory_pj=weight_e / batch + bounce_e)
    stall_ns = np.maximum(weight_l / batch - compute_ns, 0.0)
    latency = ColumnLatency(memory_ns=stall_ns + bounce_l)
    return energy, latency


def pareto_mask(latency_ns: np.ndarray, energy_pj: np.ndarray) -> np.ndarray:
    """Boolean mask of the Pareto-optimal (non-dominated) points.

    Vectorized counterpart of ``analysis.sweep.pareto_frontier``'s
    dominance test: point ``j`` dominates ``i`` when it is <= on both
    axes and strictly better on at least one.
    """
    latency_ns = np.asarray(latency_ns, dtype=float)
    energy_pj = np.asarray(energy_pj, dtype=float)
    if latency_ns.size == 0:
        raise ConfigurationError("cannot take the frontier of no points")
    leq = (latency_ns[None, :] <= latency_ns[:, None]) & (
        energy_pj[None, :] <= energy_pj[:, None]
    )
    strict = (latency_ns[None, :] < latency_ns[:, None]) | (
        energy_pj[None, :] < energy_pj[:, None]
    )
    dominated = (leq & strict).any(axis=1)
    return ~dominated


# ----------------------------------------------------------------------
# Evaluator registry
# ----------------------------------------------------------------------

#: fn(configs, contexts, workload) -> StackedRunReports
SoAEvaluator = Callable[
    [Sequence[object], Sequence[Optional[ExecutionContext]], object],
    StackedRunReports,
]

_EVALUATORS: Dict[Tuple[str, WorkloadKind], SoAEvaluator] = {}
_DEFAULTS_LOADED = False


def register_soa_evaluator(
    platform: str, kind: WorkloadKind, evaluator: SoAEvaluator
) -> None:
    """Register the array-resident evaluator for one platform/workload
    combination (platform modules call this at import time)."""
    _EVALUATORS[(platform, kind)] = evaluator


def soa_evaluator(
    platform: str, kind: WorkloadKind
) -> Optional[SoAEvaluator]:
    """The registered evaluator, or ``None`` (callers then fall back to
    the scalar path)."""
    global _DEFAULTS_LOADED
    if not _DEFAULTS_LOADED:
        # Deferred so repro.core.engine does not import the platform
        # packages (which import it back) at module load.
        import repro.core.ghost.soa  # noqa: F401
        import repro.core.tron.soa  # noqa: F401

        _DEFAULTS_LOADED = True
    return _EVALUATORS.get((platform, kind))
