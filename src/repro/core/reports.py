"""Structured cost reports and the EPB / GOPS metric definitions.

Every platform model in the library — TRON, GHOST, and all baselines —
produces a :class:`RunReport`, so Figs. 8-11 compare identical metric
definitions across platforms:

- **GOPS**: total operations (MAC = 2 ops) divided by inference latency.
- **EPB** (energy per bit): total inference energy divided by the number
  of data bits processed (total ops x operand bit width), the
  energy-efficiency metric of Figs. 8 and 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.counting import OpCount


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one inference, in pJ.

    The categories follow the accelerators' physical structure so the
    benches can attribute wins: photonic compute (laser + tuning), domain
    conversion (DAC/ADC), memory traffic, and digital blocks.

    Example:
        >>> e = EnergyReport(laser_pj=1.0, dac_pj=2.0)
        >>> e.total_pj
        3.0
        >>> (e + e).scaled(0.5).total_pj
        3.0
    """

    laser_pj: float = 0.0
    tuning_pj: float = 0.0
    dac_pj: float = 0.0
    adc_pj: float = 0.0
    memory_pj: float = 0.0
    digital_pj: float = 0.0
    activation_pj: float = 0.0
    static_pj: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            if getattr(self, f.name) < 0.0:
                raise ConfigurationError(f"{f.name} must be >= 0")

    @property
    def total_pj(self) -> float:
        """Total energy across all categories."""
        return sum(getattr(self, f.name) for f in fields(self))

    def __add__(self, other: "EnergyReport") -> "EnergyReport":
        return EnergyReport(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def scaled(self, factor: float) -> "EnergyReport":
        """This breakdown scaled by a repetition factor."""
        if factor < 0.0:
            raise ConfigurationError(f"factor must be >= 0, got {factor}")
        return EnergyReport(
            **{f.name: getattr(self, f.name) * factor for f in fields(self)}
        )

    def as_dict(self) -> Dict[str, float]:
        """Breakdown as a plain dict (for tabular bench output)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class LatencyReport:
    """Latency breakdown of one inference, in ns.

    ``compute_ns`` covers the photonic (or arithmetic) pipeline,
    ``memory_ns`` the non-overlapped memory stalls, ``conversion_ns`` the
    non-pipelined DAC/ADC serialization, ``digital_ns`` softmax and other
    digital post-processing.

    Example:
        >>> lat = LatencyReport(compute_ns=10.0, memory_ns=5.0)
        >>> lat.total_ns
        15.0
        >>> lat.scaled(2).as_dict()["compute_ns"]
        20.0
    """

    compute_ns: float = 0.0
    memory_ns: float = 0.0
    conversion_ns: float = 0.0
    digital_ns: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            if getattr(self, f.name) < 0.0:
                raise ConfigurationError(f"{f.name} must be >= 0")

    @property
    def total_ns(self) -> float:
        """Total latency (categories are non-overlapped by construction)."""
        return sum(getattr(self, f.name) for f in fields(self))

    def __add__(self, other: "LatencyReport") -> "LatencyReport":
        return LatencyReport(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def scaled(self, factor: float) -> "LatencyReport":
        """This breakdown scaled by a repetition factor."""
        if factor < 0.0:
            raise ConfigurationError(f"factor must be >= 0, got {factor}")
        return LatencyReport(
            **{f.name: getattr(self, f.name) * factor for f in fields(self)}
        )

    def as_dict(self) -> Dict[str, float]:
        """Breakdown as a plain dict (for tabular bench output)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class RunReport:
    """Complete result of running one workload on one platform.

    Attributes:
        platform: platform/accelerator name.
        workload: workload (model + dataset) name.
        ops: op/byte totals of the workload.
        latency: latency breakdown.
        energy: energy breakdown.
        bits_per_value: operand precision (8 for the paper's operating
            point); sets the EPB denominator.

    Example:
        >>> from repro.nn.counting import OpCount
        >>> report = RunReport(
        ...     platform="demo", workload="w",
        ...     ops=OpCount(macs=50),                  # 100 ops total
        ...     latency=LatencyReport(compute_ns=10.0),
        ...     energy=EnergyReport(laser_pj=800.0))
        >>> report.gops                                # 100 ops / 10 ns
        10.0
        >>> report.epb_pj                              # 800 pJ / 800 bits
        1.0
    """

    platform: str
    workload: str
    ops: OpCount
    latency: LatencyReport
    energy: EnergyReport
    bits_per_value: int = 8

    def __post_init__(self) -> None:
        if self.bits_per_value < 1:
            raise ConfigurationError(
                f"bits per value must be >= 1, got {self.bits_per_value}"
            )
        if self.latency.total_ns <= 0.0:
            raise ConfigurationError("latency must be > 0")

    @property
    def latency_ns(self) -> float:
        """Total inference latency."""
        return self.latency.total_ns

    @property
    def energy_pj(self) -> float:
        """Total inference energy."""
        return self.energy.total_pj

    @property
    def gops(self) -> float:
        """Throughput in giga-operations per second (Figs. 9 and 11)."""
        return self.ops.total_ops / self.latency_ns

    @property
    def epb_pj(self) -> float:
        """Energy per bit in pJ (Figs. 8 and 10)."""
        bits = self.ops.total_ops * self.bits_per_value
        if bits == 0:
            raise ConfigurationError("cannot compute EPB of a zero-op workload")
        return self.energy_pj / bits

    @property
    def average_power_mw(self) -> float:
        """Mean power over the inference."""
        return self.energy_pj / self.latency_ns

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.platform:>12s} | {self.workload:<24s} | "
            f"{self.latency_ns / 1e6:9.3f} ms | {self.energy_pj / 1e6:10.2f} uJ | "
            f"{self.gops:10.1f} GOPS | {self.epb_pj:8.4f} pJ/bit"
        )

    def to_dict(self) -> Dict:
        """JSON-serializable form (the CLI's ``--json`` output)."""
        return {
            "platform": self.platform,
            "workload": self.workload,
            "bits_per_value": self.bits_per_value,
            "latency_ns": self.latency_ns,
            "energy_pj": self.energy_pj,
            "gops": self.gops,
            "epb_pj": self.epb_pj,
            "total_ops": self.ops.total_ops,
            "latency_breakdown_ns": self.latency.as_dict(),
            "energy_breakdown_pj": self.energy.as_dict(),
        }


#: Breakdown field names in declaration order.  The stacked containers
#: below chain their total reductions in exactly this order so the float
#: results match the scalar ``total_pj`` / ``total_ns`` sums bit for bit.
ENERGY_FIELDS: Tuple[str, ...] = tuple(f.name for f in fields(EnergyReport))
LATENCY_FIELDS: Tuple[str, ...] = tuple(f.name for f in fields(LatencyReport))


@dataclass
class StackedRunReports:
    """Column-stacked run reports for a whole batch of evaluation points.

    This is the array-resident counterpart of a ``List[RunReport]``: each
    breakdown field is one float64 column of length ``n`` instead of an
    attribute on ``n`` frozen report objects.  The sweep and Monte-Carlo
    engines reduce these columns directly (Pareto masks, yield statistics)
    and only :meth:`materialize` scalar :class:`RunReport` objects for the
    few points that survive the reduction (e.g. the frontier).

    Invariant: ``stack.materialize(i)`` is bit-identical to the
    :class:`RunReport` the scalar path produces for point ``i`` — the
    evaluators that build these columns replicate the scalar accumulation
    order exactly, and the total reductions below chain fields in
    declaration order just like ``EnergyReport.total_pj``.

    Attributes:
        platform: platform name, shared by every point.
        workload: workload name, shared by every point.
        ops: per-point op counts (usually a few shared objects).
        latency: per-field latency columns, keyed by ``LATENCY_FIELDS``.
        energy: per-field energy columns, keyed by ``ENERGY_FIELDS``.
        bits_per_value: per-point operand precision.
        groups: number of distinct evaluation groups the producing
            evaluator collapsed the batch into (an efficiency stat).
    """

    platform: str
    workload: str
    ops: Sequence[OpCount]
    latency: Dict[str, np.ndarray]
    energy: Dict[str, np.ndarray]
    bits_per_value: Sequence[int]
    groups: int = 0
    _latency_total: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )
    _energy_total: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        n = len(self.ops)
        if len(self.bits_per_value) != n:
            raise ConfigurationError(
                f"bits_per_value has {len(self.bits_per_value)} entries "
                f"for {n} points"
            )
        for name in LATENCY_FIELDS:
            if len(self.latency[name]) != n:
                raise ConfigurationError(
                    f"latency column {name} has {len(self.latency[name])} "
                    f"entries for {n} points"
                )
        for name in ENERGY_FIELDS:
            if len(self.energy[name]) != n:
                raise ConfigurationError(
                    f"energy column {name} has {len(self.energy[name])} "
                    f"entries for {n} points"
                )

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def latency_ns(self) -> np.ndarray:
        """Per-point total latency (same chained sum as ``total_ns``)."""
        if self._latency_total is None:
            total: object = 0
            for name in LATENCY_FIELDS:
                total = total + self.latency[name]
            self._latency_total = np.asarray(total, dtype=float)
        return self._latency_total

    @property
    def energy_pj(self) -> np.ndarray:
        """Per-point total energy (same chained sum as ``total_pj``)."""
        if self._energy_total is None:
            total: object = 0
            for name in ENERGY_FIELDS:
                total = total + self.energy[name]
            self._energy_total = np.asarray(total, dtype=float)
        return self._energy_total

    def materialize(self, index: int) -> RunReport:
        """The scalar :class:`RunReport` for one point of the stack."""
        latency = LatencyReport(
            **{name: float(self.latency[name][index]) for name in LATENCY_FIELDS}
        )
        energy = EnergyReport(
            **{name: float(self.energy[name][index]) for name in ENERGY_FIELDS}
        )
        return RunReport(
            platform=self.platform,
            workload=self.workload,
            ops=self.ops[index],
            latency=latency,
            energy=energy,
            bits_per_value=int(self.bits_per_value[index]),
        )

    def materialize_all(self) -> List[RunReport]:
        """Scalar reports for every point (the compatibility boundary)."""
        return [self.materialize(i) for i in range(len(self))]
