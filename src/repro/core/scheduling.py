"""Pipeline latency composition.

Both accelerators stream many items (sequence tokens, graph vertices)
through multi-stage datapaths.  With perfect pipelining the steady-state
rate is set by the slowest stage and the remaining stages only contribute
fill/drain time; this module provides that composition plus a utilization
metric used by the workload-balancing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PipelineStage:
    """One stage of a streaming pipeline.

    Attributes:
        name: stage label (for reports).
        latency_per_item_ns: time one item occupies this stage.

    Example:
        >>> PipelineStage("dac", 0.2).latency_per_item_ns
        0.2
    """

    name: str
    latency_per_item_ns: float

    def __post_init__(self) -> None:
        if self.latency_per_item_ns < 0.0:
            raise ConfigurationError(
                f"stage latency must be >= 0 ns, got {self.latency_per_item_ns}"
            )


def pipeline_latency_ns(stages: Sequence[PipelineStage], num_items: int) -> float:
    """Total latency of streaming ``num_items`` through a linear pipeline.

    latency = sum(stage latencies)            # fill the pipe once
            + (num_items - 1) * max(stage)    # steady state at bottleneck

    Example:
        >>> stages = [PipelineStage("a", 1.0), PipelineStage("b", 3.0)]
        >>> pipeline_latency_ns(stages, num_items=5)   # 4 + 4 * 3
        16.0
    """
    if num_items < 1:
        raise ConfigurationError(f"need >= 1 item, got {num_items}")
    if not stages:
        raise ConfigurationError("need at least one pipeline stage")
    fill = sum(stage.latency_per_item_ns for stage in stages)
    bottleneck = max(stage.latency_per_item_ns for stage in stages)
    return fill + (num_items - 1) * bottleneck


def lane_imbalance_factor(work_per_lane: Sequence[float]) -> float:
    """max/mean work ratio across parallel lanes (1.0 = perfectly balanced).

    A step of V parallel lanes finishes when the most-loaded lane does, so
    latency inflates by this factor relative to the balanced ideal.

    Example:
        >>> lane_imbalance_factor([2.0, 2.0, 2.0])
        1.0
        >>> lane_imbalance_factor([4.0, 2.0])   # 4 / 3
        1.3333333333333333
    """
    work = np.asarray(list(work_per_lane), dtype=float)
    if work.size == 0:
        raise ConfigurationError("need at least one lane")
    if np.any(work < 0.0):
        raise ConfigurationError("lane work must be >= 0")
    mean = work.mean()
    if mean == 0.0:
        return 1.0
    return float(work.max() / mean)


def balanced_assignment(work_items: Sequence[float], lanes: int) -> float:
    """Imbalance factor after greedy longest-first assignment to lanes.

    This is GHOST's workload-balancing optimization (Section V.D): sort
    vertices by degree and deal them to the least-loaded lane.  Returns
    the resulting max/mean factor (>= 1.0).

    Example:
        >>> balanced_assignment([3.0, 3.0, 2.0, 2.0, 1.0, 1.0], lanes=2)
        1.0
    """
    if lanes < 1:
        raise ConfigurationError(f"need >= 1 lane, got {lanes}")
    items = sorted((float(w) for w in work_items), reverse=True)
    if not items:
        return 1.0
    loads = np.zeros(lanes)
    for item in items:
        loads[np.argmin(loads)] += item
    mean = loads.mean()
    if mean == 0.0:
        return 1.0
    return float(loads.max() / mean)
