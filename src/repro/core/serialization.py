"""Typed dataclass ⇄ dict serialization with validating reconstruction.

Every configuration object in the library — ``TRONConfig``,
``GHOSTConfig``, ``ExecutionContext`` and everything they nest (device
models, memory systems, variation statistics) — is a dataclass whose
fields are scalars, enums, optionals, tuples, or further dataclasses.
That regularity makes one generic serializer sufficient for the whole
configuration tree:

- :func:`config_to_dict` walks a dataclass into plain JSON/TOML-ready
  dicts (enums become their values, tuples become lists).
- :func:`config_from_dict` reconstructs an instance from such a dict,
  **validating as it goes**: unknown keys raise
  :class:`~repro.errors.ConfigurationError` naming the offending path
  and the valid fields, type mismatches name the expected type, and
  every dataclass ``__post_init__`` range check still fires — so an
  out-of-range field fails with the same helpful message whether it
  came from Python code or a spec file.
- :func:`merge_overrides` deep-merges a sparse override mapping into a
  full config dict, which is how declarative specs express "the default
  platform, but with these knobs changed".

Round-trips are exact: values pass through as Python objects (no string
formatting), so ``from_dict(to_dict(cfg)) == cfg`` for every config.

Example:
    >>> from repro.core.tron import TRONConfig
    >>> cfg = TRONConfig(batch=8)
    >>> TRONConfig.from_dict(cfg.to_dict()) == cfg
    True
    >>> TRONConfig.from_dict({"batch": 8}).batch
    8
    >>> TRONConfig.from_dict({"batsh": 8})
    Traceback (most recent call last):
        ...
    repro.errors.ConfigurationError: TRONConfig: unknown field(s) ['batsh']; valid fields: ['activation', 'adc', 'array_cols', 'array_rows', 'batch', 'bits', 'clock_ghz', 'control', 'dac', 'design', 'hbm', 'memory', 'memory_backend', 'noise', 'num_ff_arrays', 'num_head_units', 'num_linear_arrays', 'pcm', 'softmax', 'weight_refresh_cycles']
"""

from __future__ import annotations

import typing
from dataclasses import fields, is_dataclass
from enum import Enum
from typing import Any, Dict, Mapping, Union

from repro.errors import ConfigurationError


def config_to_dict(obj: Any) -> Any:
    """A dataclass tree as plain dicts/lists/scalars (JSON/TOML-ready).

    Example:
        >>> from repro.core.context import ThermalCorner
        >>> config_to_dict(ThermalCorner(name="hot", ambient_delta_k=30.0))
        {'name': 'hot', 'ambient_delta_k': 30.0, 'drift_nm_per_k': 0.08, 'hbm_derate': 1.0}
    """
    if is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: config_to_dict(getattr(obj, f.name))
            for f in fields(obj)
            if f.init
        }
    if isinstance(obj, Enum):
        return obj.value
    if isinstance(obj, (list, tuple)):
        return [config_to_dict(value) for value in obj]
    if isinstance(obj, Mapping):
        return {key: config_to_dict(value) for key, value in obj.items()}
    return obj


def config_from_dict(cls: type, data: Mapping, path: str = "") -> Any:
    """Reconstruct dataclass ``cls`` from :func:`config_to_dict` output.

    Args:
        cls: the target dataclass type.
        data: a mapping of (a subset of) its init fields; nested
            dataclasses may be given as nested mappings or as already
            constructed instances.
        path: error-message prefix naming where in a larger document
            this object sits (defaults to the class name).

    Raises:
        ConfigurationError: on unknown keys, type mismatches, or any
            range check the dataclass itself enforces.
    """
    path = path or cls.__name__
    if is_dataclass(data) and isinstance(data, cls):
        return data
    if not isinstance(data, Mapping):
        raise ConfigurationError(
            f"{path}: expected a mapping for {cls.__name__}, "
            f"got {type(data).__name__} ({data!r})"
        )
    valid = {f.name: f for f in fields(cls) if f.init}
    unknown = sorted(set(data) - set(valid))
    if unknown:
        raise ConfigurationError(
            f"{path}: unknown field(s) {unknown}; "
            f"valid fields: {sorted(valid)}"
        )
    hints = typing.get_type_hints(cls)
    kwargs = {
        name: _coerce(hints[name], data[name], f"{path}.{name}")
        for name in valid
        if name in data
    }
    try:
        return cls(**kwargs)
    except ConfigurationError as exc:
        # Re-raise range checks fired by __post_init__ with the document
        # path, so spec-file errors name where the bad value sits.
        raise ConfigurationError(f"{path}: {exc}") from None


def merge_overrides(
    base: Mapping[str, Any], overrides: Mapping[str, Any]
) -> Dict[str, Any]:
    """``base`` (a full config dict) with ``overrides`` deep-merged in.

    Mappings merge recursively; every other value replaces wholesale.
    Unknown override keys are *not* checked here — they surface with a
    precise path when the merged dict goes through
    :func:`config_from_dict`.

    Example:
        >>> merge_overrides({"a": 1, "b": {"c": 2, "d": 3}}, {"b": {"d": 9}})
        {'a': 1, 'b': {'c': 2, 'd': 9}}
    """
    merged = dict(base)
    for key, value in overrides.items():
        if isinstance(value, Mapping) and isinstance(merged.get(key), Mapping):
            merged[key] = merge_overrides(merged[key], value)
        else:
            merged[key] = value
    return merged


def _coerce(annotation: Any, value: Any, path: str) -> Any:
    """``value`` as the type ``annotation`` names, or a helpful error."""
    if annotation is Any:
        return value
    origin = typing.get_origin(annotation)
    args = typing.get_args(annotation)
    if origin is Union:
        if value is None:
            if type(None) in args:
                return None
            raise ConfigurationError(f"{path}: may not be null")
        last_error = None
        for candidate in (a for a in args if a is not type(None)):
            try:
                return _coerce(candidate, value, path)
            except ConfigurationError as exc:
                last_error = exc
        raise last_error  # the single-candidate Optional[X] common case
    if origin is tuple:
        if not isinstance(value, (list, tuple)):
            raise ConfigurationError(
                f"{path}: expected a list, got {value!r}"
            )
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(
                _coerce(args[0], item, f"{path}[{i}]")
                for i, item in enumerate(value)
            )
        if args:
            if len(value) != len(args):
                raise ConfigurationError(
                    f"{path}: expected {len(args)} elements, "
                    f"got {len(value)}"
                )
            return tuple(
                _coerce(a, item, f"{path}[{i}]")
                for i, (a, item) in enumerate(zip(args, value))
            )
        return tuple(value)
    if isinstance(annotation, type):
        if is_dataclass(annotation):
            if isinstance(value, annotation):
                return value
            return config_from_dict(annotation, value, path)
        if issubclass(annotation, Enum):
            if isinstance(value, annotation):
                return value
            try:
                return annotation(value)
            except ValueError:
                raise ConfigurationError(
                    f"{path}: {value!r} is not one of "
                    f"{[member.value for member in annotation]}"
                ) from None
        if annotation is float:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ConfigurationError(
                    f"{path}: expected a number, got {value!r}"
                )
            return float(value)
        if annotation is int:
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigurationError(
                    f"{path}: expected an integer, got {value!r}"
                )
            return value
        if annotation is bool:
            if not isinstance(value, bool):
                raise ConfigurationError(
                    f"{path}: expected true/false, got {value!r}"
                )
            return value
        if annotation is str:
            if not isinstance(value, str):
                raise ConfigurationError(
                    f"{path}: expected a string, got {value!r}"
                )
            return value
    return value
