"""Accelerator interface shared by TRON, GHOST and the baseline models."""

from __future__ import annotations

import abc

from repro.core.reports import RunReport


class Accelerator(abc.ABC):
    """A platform that can estimate the cost of running a workload.

    Concrete accelerators expose domain-specific entry points
    (``run_transformer``, ``run_gnn``); this base class fixes the common
    identity/reporting contract so the analysis layer can treat every
    platform uniformly.
    """

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Platform name as it appears in the figures."""

    def describe(self) -> str:
        """Human-readable one-line description (defaults to the name)."""
        return self.name

    @staticmethod
    def _check_report(report: RunReport) -> RunReport:
        """Hook for subclasses to validate reports before returning them."""
        return report
