"""Accelerator and workload interfaces shared across the library.

Two contracts live here:

- :class:`Workload` — a named, countable unit of work (a transformer
  inference, a full-graph GNN pass, an MLP batch, or a suite of those).
  Workloads are registered by name so the CLI, the sweep engine and the
  figure generators can all resolve ``"BERT-base"`` or ``"GCN-cora"`` to
  the same object.
- :class:`Accelerator` — a platform that can estimate the cost of running
  a workload through the uniform ``run(workload, ctx=...) -> RunReport``
  entry point (``ctx`` selects the evaluation corner; ``None`` is the
  nominal corner).  Platforms declare what they can execute by overriding
  ``_run_workload``; unsupported kinds raise :class:`MappingError`.
"""

from __future__ import annotations

import abc
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.context import ExecutionContext
from repro.core.reports import RunReport
from repro.errors import ConfigurationError, MappingError


class WorkloadKind(Enum):
    """Coarse workload families an accelerator can declare support for.

    Example:
        >>> WorkloadKind("gnn").name
        'GNN'
        >>> [k.value for k in WorkloadKind]
        ['transformer', 'gnn', 'mlp', 'suite', 'decode', 'temporal_gnn']
    """

    TRANSFORMER = "transformer"
    GNN = "gnn"
    MLP = "mlp"
    SUITE = "suite"
    DECODE = "decode"
    TEMPORAL_GNN = "temporal_gnn"


class Workload(abc.ABC):
    """A named unit of work every platform costs with the same op counts.

    Concrete workloads (``repro.workloads``) wrap a model configuration
    plus whatever input description the cost models need (sequence
    length, a synthesized graph, a batch of samples).

    Example:
        >>> workload = get_workload("MLP-mnist")
        >>> workload.kind.value
        'mlp'
        >>> workload.parts() == (workload,)   # leaf: its own only part
        True
    """

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Workload name as it appears in figures and the registry."""

    @property
    @abc.abstractmethod
    def kind(self) -> WorkloadKind:
        """Which family this workload belongs to (dispatch key)."""

    @abc.abstractmethod
    def op_count(self, bytes_per_value: int = 1):
        """The :class:`repro.nn.counting.OpCount` of one inference."""

    def parts(self) -> Sequence["Workload"]:
        """Sub-workloads of a suite; leaf workloads return themselves."""
        return (self,)

    def materialize(self) -> None:
        """Force any expensive lazy state (graph synthesis, trace loading)
        into existence now.  No-op by default; the sweep engine calls this
        once before fanning points out to workers."""

    def describe(self) -> str:
        """Human-readable one-line description (defaults to the name)."""
        return self.name


#: Name -> factory registry.  Factories are called lazily (workload
#: materialization can be expensive — e.g. graph synthesis) and the
#: resulting instance is cached so repeated lookups share it.
_WORKLOAD_FACTORIES: Dict[str, Callable[[], Workload]] = {}
_WORKLOAD_INSTANCES: Dict[str, Workload] = {}


def register_workload(name: str, factory: Callable[[], Workload]) -> None:
    """Register a workload factory under a unique name.

    Example:
        >>> import repro.workloads  # default registrations
        >>> register_workload("MLP-mnist", lambda: None)
        Traceback (most recent call last):
            ...
        repro.errors.ConfigurationError: workload 'MLP-mnist' is already registered
    """
    if name in _WORKLOAD_FACTORIES:
        raise ConfigurationError(f"workload {name!r} is already registered")
    _WORKLOAD_FACTORIES[name] = factory


def get_workload(name: str) -> Workload:
    """Resolve a registered workload by name (materializing it once).

    Example:
        >>> get_workload("MLP-mnist").describe()
        'MLP-mnist: MLP 784-512-256-10, batch 64'
        >>> get_workload("MLP-mnist") is get_workload("MLP-mnist")
        True

    Raises:
        ConfigurationError: for unknown names (message lists valid ones).
    """
    # The default registrations live in repro.workloads; importing it here
    # keeps `get_workload("BERT-base")` working without a prior import.
    import repro.workloads  # noqa: F401  (registers on import)

    if name not in _WORKLOAD_FACTORIES:
        raise ConfigurationError(
            f"unknown workload {name!r}; known workloads: {list_workloads()}"
        )
    if name not in _WORKLOAD_INSTANCES:
        _WORKLOAD_INSTANCES[name] = _WORKLOAD_FACTORIES[name]()
    return _WORKLOAD_INSTANCES[name]


def list_workloads() -> List[str]:
    """Sorted names of all registered workloads.

    Example:
        >>> "BERT-base" in list_workloads()
        True
    """
    import repro.workloads  # noqa: F401  (registers on import)

    return sorted(_WORKLOAD_FACTORIES)


#: The attributes a workload must expose for each kind — the dispatch
#: contract the accelerators' ``_run_workload`` implementations rely on.
WORKLOAD_KIND_CONTRACTS: Dict[WorkloadKind, Sequence[str]] = {
    WorkloadKind.TRANSFORMER: ("model",),
    WorkloadKind.GNN: ("model_config", "graph"),
    WorkloadKind.MLP: ("layer_dims", "samples"),
    WorkloadKind.SUITE: ("parts",),
    WorkloadKind.DECODE: ("model", "prompt_tokens", "generated_tokens"),
    WorkloadKind.TEMPORAL_GNN: ("model_config", "snapshots"),
}


def check_kind_contract(workload: Workload) -> None:
    """Raise :class:`MappingError` if ``workload`` declares a kind whose
    required attributes it does not provide.

    Example:
        >>> check_kind_contract(get_workload("MLP-mnist")) is None
        True
    """
    missing = [
        attr
        for attr in WORKLOAD_KIND_CONTRACTS.get(workload.kind, ())
        if not hasattr(workload, attr)
    ]
    if missing:
        raise MappingError(
            f"workload {workload.name!r} declares kind "
            f"{workload.kind.value!r} but lacks the required "
            f"attribute(s) {missing}"
        )


class Accelerator(abc.ABC):
    """A platform that can estimate the cost of running a workload.

    Every platform — TRON, GHOST, roofline and reported baselines —
    executes through the uniform entry point ``run(workload)``.  Suites
    fan out to their parts and merge; leaf workloads dispatch to the
    platform's ``_run_workload`` implementation.

    Example:
        >>> from repro.core import TRON
        >>> report = TRON().run(get_workload("MLP-mnist"))
        >>> report.platform, report.workload
        ('TRON', 'MLP-mnist')
        >>> report.latency_ns > 0 and report.energy_pj > 0
        True
    """

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Platform name as it appears in the figures."""

    def describe(self) -> str:
        """Human-readable one-line description (defaults to the name)."""
        return self.name

    def run(
        self,
        workload: Workload,
        ctx: Optional[ExecutionContext] = None,
    ) -> RunReport:
        """Cost one inference of ``workload`` on this platform.

        Args:
            workload: a :class:`Workload` instance (resolve names via
                :func:`get_workload`).
            ctx: the evaluation corner (process-variation sample, thermal
                corner, analog noise, seed).  ``None`` — and any nominal
                context — costs the nominal corner, bit-identical to the
                context-free path.

        Returns:
            The platform's :class:`RunReport` for the workload.

        Raises:
            MappingError: if this platform cannot execute the workload.
            YieldError: if the context's sampled die has no usable
                hardware left after yield gating.
        """
        check_kind_contract(workload)
        if workload.kind is WorkloadKind.SUITE:
            reports = [self.run(part, ctx=ctx) for part in workload.parts()]
            return self._check_report(self._merge_reports(workload, reports))
        return self._check_report(self._run_workload(workload, ctx))

    def _run_workload(
        self,
        workload: Workload,
        ctx: Optional[ExecutionContext] = None,
    ) -> RunReport:
        """Platform-specific execution; subclasses override."""
        raise MappingError(
            f"{self.name} cannot execute {workload.kind.value!r} workload "
            f"{workload.name!r}"
        )

    def _merge_reports(
        self, suite: Workload, reports: Sequence[RunReport]
    ) -> RunReport:
        """Serial composition of a suite: latencies and energies add."""
        if not reports:
            raise MappingError(f"suite {suite.name!r} has no parts")
        ops = reports[0].ops
        latency = reports[0].latency
        energy = reports[0].energy
        for report in reports[1:]:
            ops = ops + report.ops
            latency = latency + report.latency
            energy = energy + report.energy
        return RunReport(
            platform=self.name,
            workload=suite.name,
            ops=ops,
            latency=latency,
            energy=energy,
            bits_per_value=reports[0].bits_per_value,
        )

    @staticmethod
    def _check_report(report: RunReport) -> RunReport:
        """Hook for subclasses to validate reports before returning them."""
        return report
