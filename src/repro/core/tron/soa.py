"""Array-resident (structure-of-arrays) TRON cost evaluators.

These evaluate a whole batch of TRON configurations x execution contexts
against one workload as NumPy columns, transcribing the scalar cost path
(:mod:`repro.core.tron.accelerator`, :mod:`~repro.core.tron.mha`,
:mod:`~repro.core.tron.attention_head`, :mod:`~repro.core.tron.feedforward`)
operation for operation: the same integer ceiling divisions, the same
left-associative float accumulation order, the same memoized physics
values.  A materialized point is therefore bit-identical to
``TRON(config).run(workload, ctx=ctx)`` — the parity suite enforces it.

Per-point work is limited to cheap integer tiling columns; everything
transcendental or object-shaped (device physics breakdowns, memory
traffic, softmax LUT curves, the residual adder) is computed once per
distinct group and broadcast.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.base import WorkloadKind
from repro.core.context import ExecutionContext
from repro.core.engine.matmul import ArraySpec
from repro.core.engine.soa import (
    ColumnEnergy,
    ColumnLatency,
    breakdown_columns,
    build_soa_memory_model,
    ceil_div,
    energy_for_cycles_columns,
    group_indices,
    memory_context_key,
    register_soa_evaluator,
    resolve_array_physics,
    weight_stream_columns,
)
from repro.core.reports import StackedRunReports
from repro.core.tron.config import TRONConfig
from repro.errors import ConfigurationError
from repro.nn.counting import OpCount, transformer_op_count
from repro.nn.transformer import TransformerKind
from repro.photonics.summation import CoherentSummationUnit


class _TronColumns:
    """Per-point knob columns plus grouped physics for a TRON batch."""

    def __init__(
        self,
        configs: Sequence[TRONConfig],
        contexts: Sequence[Optional[ExecutionContext]],
    ) -> None:
        self.configs = configs
        self.n = len(configs)
        self.specs = [ArraySpec.from_config(cfg) for cfg in configs]
        self.usable_rows, self.usable_cols, correction = resolve_array_physics(
            self.specs, contexts
        )
        self.cycle_ns = np.array([cfg.cycle_ns for cfg in configs])
        self.head_units = np.array(
            [cfg.num_head_units for cfg in configs], dtype=np.int64
        )
        self.linear_arrays = np.array(
            [cfg.num_linear_arrays for cfg in configs], dtype=np.int64
        )
        self.ff_arrays = np.array(
            [cfg.num_ff_arrays for cfg in configs], dtype=np.int64
        )
        self.batch = np.array([cfg.batch for cfg in configs], dtype=np.int64)
        self.activation_power = np.array(
            [cfg.activation.power_mw for cfg in configs]
        )
        self.bits = [cfg.bits for cfg in configs]
        self.static_mw = np.array(
            [
                cfg.control.power_mw + cfg.memory.global_buffer.leakage_mw
                for cfg in configs
            ]
        )
        self.breakdown = breakdown_columns(
            self.specs,
            [cfg.weight_refresh_cycles for cfg in configs],
            correction,
            self.cycle_ns,
        )
        self.groups = len(set(zip(self.specs, contexts)))

    def tile_cycles(self, out_rows: int, inner: int) -> np.ndarray:
        """Per-point cycles for one (out_rows x inner) output column
        (``ArrayExecutor.cycles_for`` with batch=1)."""
        if out_rows < 1 or inner < 1:
            raise ConfigurationError(
                f"matmul dims must be >= 1, got {out_rows}x{inner}"
            )
        return ceil_div(out_rows, self.usable_rows) * ceil_div(
            inner, self.usable_cols
        )

    def ops_per_point(self, count) -> Tuple[list, int]:
        """Per-point op counts (one shared object per distinct precision)."""
        ops_list: list = [None] * self.n
        groups = group_indices(self.bits)
        for bits, indices in groups.items():
            ops = count(bits)
            for i in indices:
                ops_list[i] = ops
        return ops_list, len(groups)


def _softmax_columns(
    cols: _TronColumns, latency_items: int, energy_elements: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Softmax LUT latency / energy, once per distinct LUT config."""
    latency = np.empty(cols.n)
    energy = np.empty(cols.n)
    for lut, indices in group_indices(
        [cfg.softmax for cfg in cols.configs]
    ).items():
        latency[indices] = lut.latency_ns(latency_items)
        energy[indices] = lut.energy_pj(energy_elements)
    return latency, energy


def _head_cost_columns(
    cols: _TronColumns,
    seq_len: int,
    d_model: int,
    d_k: int,
    offload: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, ColumnEnergy]:
    """``AttentionHeadUnit.head_cost`` as columns.

    ``offload`` marks the points whose S·V context reduction leaves the
    photonic pipeline (PIM-capable memory backend): both the offloaded
    and the full stage pipeline are evaluated as whole columns and the
    per-point variant selected with ``np.where`` — selection of
    identical floats, so each point stays bit-identical to its scalar
    ``head_cost(..., offload_context=...)``.
    """
    stage_dims = [
        (d_k, d_model),       # q_proj
        (d_model, d_k),       # k_mix
        (seq_len, d_model),   # scores
        (d_k, d_model),       # v_proj
        (d_k, seq_len),       # context
    ]
    stage_latencies = []
    stage_cycles = []
    for out_rows, inner in stage_dims:
        cycles = cols.tile_cycles(out_rows, inner)
        stage_cycles.append(cycles)
        stage_latencies.append(cycles * cols.cycle_ns)
    softmax_latency, softmax_pj = _softmax_columns(
        cols, seq_len, seq_len * seq_len
    )
    stage_latencies.insert(3, softmax_latency)
    # The offloaded pipeline is the full one minus its last stage, so
    # the full fill/bottleneck/cycle columns chain off the offloaded
    # ones in the scalar path's exact left-associative order.
    context_latency = stage_latencies[-1]
    fill_off: object = 0
    for latency in stage_latencies[:-1]:
        fill_off = fill_off + latency
    fill_full = fill_off + context_latency
    bottleneck_off = stage_latencies[0]
    for latency in stage_latencies[1:-1]:
        bottleneck_off = np.maximum(bottleneck_off, latency)
    bottleneck_full = np.maximum(bottleneck_off, context_latency)
    cycles_off = np.zeros(cols.n, dtype=np.int64)
    for cycles in stage_cycles[:-1]:
        cycles_off = cycles_off + cycles * seq_len
    cycles_full = cycles_off + stage_cycles[-1] * seq_len
    if offload is None:
        total_cycles = cycles_full
        compute_ns = fill_full + (seq_len - 1) * bottleneck_full
    else:
        total_cycles = np.where(offload, cycles_off, cycles_full)
        compute_ns = np.where(
            offload,
            fill_off + (seq_len - 1) * bottleneck_off,
            fill_full + (seq_len - 1) * bottleneck_full,
        )
    energy = energy_for_cycles_columns(
        total_cycles, cols.breakdown
    ) + ColumnEnergy(digital_pj=softmax_pj)
    return compute_ns, energy


def _residual_adder_columns(cols: _TronColumns) -> np.ndarray:
    """Per-operation coherent-adder energy, once per distinct clock."""
    adder_pj = np.empty(cols.n)
    for clock_ghz, indices in group_indices(
        [cfg.clock_ghz for cfg in cols.configs]
    ).items():
        adder = CoherentSummationUnit(fan_in=2, clock_ghz=clock_ghz)
        adder_pj[indices] = adder.operation_energy_pj(active_arms=2)
    return adder_pj


def _mha_block_columns(
    cols: _TronColumns,
    seq_len: int,
    d_model: int,
    num_heads: int,
    offload: Optional[np.ndarray] = None,
) -> Tuple[ColumnLatency, ColumnEnergy]:
    """``MHAUnit.block_cost`` as columns."""
    if num_heads < 1:
        raise ConfigurationError(f"need >= 1 head, got {num_heads}")
    d_k = d_model // num_heads
    head_compute, head_energy = _head_cost_columns(
        cols, seq_len, d_model, d_k, offload=offload
    )
    waves = ceil_div(num_heads, cols.head_units)
    heads_latency = ColumnLatency(compute_ns=head_compute).scaled(waves)
    heads_energy = head_energy.scaled(num_heads)

    linear_cycles = cols.tile_cycles(d_model, d_model) * seq_len
    linear_cycles = ceil_div(linear_cycles, cols.linear_arrays)
    linear_total_cycles = linear_cycles * cols.linear_arrays
    linear_latency = ColumnLatency(compute_ns=linear_cycles * cols.cycle_ns)
    linear_energy = energy_for_cycles_columns(
        linear_total_cycles, cols.breakdown
    )

    residual_latency = ColumnLatency(
        compute_ns=2 * seq_len * cols.cycle_ns
    )
    add_pj = seq_len * _residual_adder_columns(cols)
    ln_pj = seq_len * d_model * 0.05
    residual_energy = ColumnEnergy(laser_pj=add_pj, tuning_pj=ln_pj)

    latency = heads_latency + linear_latency + residual_latency
    energy = heads_energy + linear_energy + residual_energy
    return latency, energy


def _ff_block_columns(
    cols: _TronColumns, seq_len: int, d_model: int, d_ff: int
) -> Tuple[ColumnLatency, ColumnEnergy]:
    """``FeedForwardUnit.block_cost`` as columns."""
    up_cycles = cols.tile_cycles(d_ff, d_model) * seq_len
    down_cycles = cols.tile_cycles(d_model, d_ff) * seq_len
    total_cycles = up_cycles + down_cycles
    serial_cycles = ceil_div(total_cycles, cols.ff_arrays)
    soa_pj = seq_len * d_ff * cols.activation_power * cols.cycle_ns
    residual_ns = 2 * seq_len * cols.cycle_ns
    ln_pj = seq_len * d_model * 0.05
    latency = ColumnLatency(
        compute_ns=serial_cycles * cols.cycle_ns + residual_ns
    )
    energy = energy_for_cycles_columns(
        total_cycles, cols.breakdown
    ) + ColumnEnergy(tuning_pj=ln_pj, activation_pj=soa_pj)
    return latency, energy


def _pim_extra_columns(
    cols: _TronColumns,
    contexts: Sequence[Optional[ExecutionContext]],
    model,
    offload: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-point PIM spill + near-bank reduce extras (zero elsewhere).

    Transcribes the scalar ``run_transformer`` offload branch: scores
    and V spill to the device (``store_offchip``), are reduced in place
    (``pim_reduce_cost``), and the extras are charged once per layer —
    one scalar traffic evaluation per distinct (memory system,
    precision, memory-relevant context, geometry) group.
    """
    extra_e = np.zeros(cols.n)
    extra_l = np.zeros(cols.n)
    keys = [
        (
            cols.configs[i].memory,
            cols.configs[i].bits,
            memory_context_key(contexts[i]),
            cols.configs[i].hbm,
        )
        if offload[i]
        else None
        for i in range(cols.n)
    ]
    for key, indices in group_indices(keys).items():
        if key is None:
            continue
        system, bits, mem_ctx, geometry = key
        mem_model = build_soa_memory_model(
            "hbm-pim", system, mem_ctx, geometry
        )
        bpv = max(bits // 8, 1)
        score_bytes = model.num_heads * model.seq_len * model.seq_len * bpv
        v_bytes = model.seq_len * model.d_model * bpv
        spill = mem_model.store_offchip(score_bytes + v_bytes)
        reduce = mem_model.pim_reduce_cost(
            in_bank_bytes=score_bytes + v_bytes,
            out_bytes=model.seq_len * model.d_model * bpv,
            macs=model.seq_len * model.seq_len * model.d_model,
        )
        extra_e[indices] = (
            spill.energy_pj + reduce.energy_pj
        ) * model.num_layers
        extra_l[indices] = (
            spill.latency_ns + reduce.latency_ns
        ) * model.num_layers
    return extra_e, extra_l


def _finish(
    cols: _TronColumns,
    contexts: Sequence[Optional[ExecutionContext]],
    ops_list: Sequence[OpCount],
    compute_latency: ColumnLatency,
    compute_energy: ColumnEnergy,
    extra_memory: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> Tuple[ColumnLatency, ColumnEnergy]:
    """The shared memory + static tail of both TRON run paths.

    ``extra_memory`` carries per-point (energy, latency) additions to
    the memory side — the PIM offload spill/reduce — applied before the
    static tail exactly as the scalar path does.
    """
    memory_energy, memory_latency = weight_stream_columns(
        [cfg.memory for cfg in cols.configs],
        contexts,
        ops_list,
        cols.bits,
        compute_latency.total,
        cols.batch,
        backends=[cfg.memory_backend for cfg in cols.configs],
        geometries=[cfg.hbm for cfg in cols.configs],
    )
    if extra_memory is not None:
        extra_e, extra_l = extra_memory
        memory_energy = memory_energy + ColumnEnergy(memory_pj=extra_e)
        memory_latency = memory_latency + ColumnLatency(memory_ns=extra_l)
    latency = compute_latency + memory_latency
    static_pj = cols.static_mw * latency.total
    energy = compute_energy + memory_energy + ColumnEnergy(static_pj=static_pj)
    return latency, energy


def evaluate_transformer(
    configs: Sequence[TRONConfig],
    contexts: Sequence[Optional[ExecutionContext]],
    workload,
) -> StackedRunReports:
    """``TRON.run_transformer`` over a whole configuration batch."""
    model = workload.model
    if model.seq_len < 1:
        raise ConfigurationError("model sequence length must be >= 1")
    cols = _TronColumns(configs, contexts)
    offload = np.fromiter(
        (cfg.memory_backend == "hbm-pim" for cfg in configs),
        dtype=bool,
        count=cols.n,
    )

    mha_latency, mha_energy = _mha_block_columns(
        cols, model.seq_len, model.d_model, model.num_heads, offload=offload
    )
    ff_latency, ff_energy = _ff_block_columns(
        cols, model.seq_len, model.d_model, model.d_ff
    )
    layer_latency = mha_latency + ff_latency
    layer_energy = mha_energy + ff_energy
    compute_latency = layer_latency.scaled(model.num_layers)
    compute_energy = layer_energy.scaled(model.num_layers)

    ops_list, _ = cols.ops_per_point(
        lambda bits: transformer_op_count(
            model, bytes_per_value=max(bits // 8, 1)
        )
    )
    extra_memory = (
        _pim_extra_columns(cols, contexts, model, offload)
        if offload.any()
        else None
    )
    latency, energy = _finish(
        cols,
        contexts,
        ops_list,
        compute_latency,
        compute_energy,
        extra_memory=extra_memory,
    )

    if model.kind is TransformerKind.VISION:
        head_latency, head_energy = _ff_block_columns(
            cols, 1, model.d_model, model.d_ff
        )
        latency = latency + head_latency
        energy = energy + head_energy

    return StackedRunReports(
        platform="TRON",
        workload=model.name,
        ops=ops_list,
        latency=latency.as_arrays(cols.n),
        energy=energy.as_arrays(cols.n),
        bits_per_value=cols.bits,
        groups=cols.groups,
    )


def evaluate_mlp(
    configs: Sequence[TRONConfig],
    contexts: Sequence[Optional[ExecutionContext]],
    workload,
) -> StackedRunReports:
    """``TRON.run_mlp`` over a whole configuration batch."""
    cols = _TronColumns(configs, contexts)
    samples = workload.samples
    dims = list(workload.layer_dims)
    total_cycles = np.zeros(cols.n, dtype=np.int64)
    soa_pj: object = 0.0
    for i, (d_in, d_out) in enumerate(dims):
        total_cycles = total_cycles + cols.tile_cycles(d_out, d_in) * samples
        if i < len(dims) - 1:  # hidden activations only
            soa_pj = soa_pj + (
                samples * d_out * cols.activation_power * cols.cycle_ns
            )
    serial_cycles = ceil_div(total_cycles, cols.ff_arrays)
    compute_latency = ColumnLatency(compute_ns=serial_cycles * cols.cycle_ns)
    compute_energy = energy_for_cycles_columns(
        total_cycles, cols.breakdown
    ) + ColumnEnergy(activation_pj=soa_pj)

    ops_list, _ = cols.ops_per_point(
        lambda bits: workload.op_count(bytes_per_value=max(bits // 8, 1))
    )
    latency, energy = _finish(
        cols, contexts, ops_list, compute_latency, compute_energy
    )
    return StackedRunReports(
        platform="TRON",
        workload=workload.name,
        ops=ops_list,
        latency=latency.as_arrays(cols.n),
        energy=energy.as_arrays(cols.n),
        bits_per_value=cols.bits,
        groups=cols.groups,
    )


register_soa_evaluator("TRON", WorkloadKind.TRANSFORMER, evaluate_transformer)
register_soa_evaluator("TRON", WorkloadKind.MLP, evaluate_mlp)
