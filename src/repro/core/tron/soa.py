"""Array-resident (structure-of-arrays) TRON cost evaluators.

These evaluate a whole batch of TRON configurations x execution contexts
against one workload as NumPy columns, transcribing the scalar cost path
(:mod:`repro.core.tron.accelerator`, :mod:`~repro.core.tron.mha`,
:mod:`~repro.core.tron.attention_head`, :mod:`~repro.core.tron.feedforward`)
operation for operation: the same integer ceiling divisions, the same
left-associative float accumulation order, the same memoized physics
values.  A materialized point is therefore bit-identical to
``TRON(config).run(workload, ctx=ctx)`` — the parity suite enforces it.

Per-point work is limited to cheap integer tiling columns; everything
transcendental or object-shaped (device physics breakdowns, memory
traffic, softmax LUT curves, the residual adder) is computed once per
distinct group and broadcast.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.base import WorkloadKind
from repro.core.context import ExecutionContext
from repro.core.engine.matmul import ArraySpec
from repro.core.engine.soa import (
    ColumnEnergy,
    ColumnLatency,
    breakdown_columns,
    ceil_div,
    energy_for_cycles_columns,
    group_indices,
    register_soa_evaluator,
    resolve_array_physics,
    weight_stream_columns,
)
from repro.core.reports import StackedRunReports
from repro.core.tron.config import TRONConfig
from repro.errors import ConfigurationError
from repro.nn.counting import OpCount, transformer_op_count
from repro.nn.transformer import TransformerKind
from repro.photonics.summation import CoherentSummationUnit


class _TronColumns:
    """Per-point knob columns plus grouped physics for a TRON batch."""

    def __init__(
        self,
        configs: Sequence[TRONConfig],
        contexts: Sequence[Optional[ExecutionContext]],
    ) -> None:
        self.configs = configs
        self.n = len(configs)
        self.specs = [ArraySpec.from_config(cfg) for cfg in configs]
        self.usable_rows, self.usable_cols, correction = resolve_array_physics(
            self.specs, contexts
        )
        self.cycle_ns = np.array([cfg.cycle_ns for cfg in configs])
        self.head_units = np.array(
            [cfg.num_head_units for cfg in configs], dtype=np.int64
        )
        self.linear_arrays = np.array(
            [cfg.num_linear_arrays for cfg in configs], dtype=np.int64
        )
        self.ff_arrays = np.array(
            [cfg.num_ff_arrays for cfg in configs], dtype=np.int64
        )
        self.batch = np.array([cfg.batch for cfg in configs], dtype=np.int64)
        self.activation_power = np.array(
            [cfg.activation.power_mw for cfg in configs]
        )
        self.bits = [cfg.bits for cfg in configs]
        self.static_mw = np.array(
            [
                cfg.control.power_mw + cfg.memory.global_buffer.leakage_mw
                for cfg in configs
            ]
        )
        self.breakdown = breakdown_columns(
            self.specs,
            [cfg.weight_refresh_cycles for cfg in configs],
            correction,
            self.cycle_ns,
        )
        self.groups = len(set(zip(self.specs, contexts)))

    def tile_cycles(self, out_rows: int, inner: int) -> np.ndarray:
        """Per-point cycles for one (out_rows x inner) output column
        (``ArrayExecutor.cycles_for`` with batch=1)."""
        if out_rows < 1 or inner < 1:
            raise ConfigurationError(
                f"matmul dims must be >= 1, got {out_rows}x{inner}"
            )
        return ceil_div(out_rows, self.usable_rows) * ceil_div(
            inner, self.usable_cols
        )

    def ops_per_point(self, count) -> Tuple[list, int]:
        """Per-point op counts (one shared object per distinct precision)."""
        ops_list: list = [None] * self.n
        groups = group_indices(self.bits)
        for bits, indices in groups.items():
            ops = count(bits)
            for i in indices:
                ops_list[i] = ops
        return ops_list, len(groups)


def _softmax_columns(
    cols: _TronColumns, latency_items: int, energy_elements: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Softmax LUT latency / energy, once per distinct LUT config."""
    latency = np.empty(cols.n)
    energy = np.empty(cols.n)
    for lut, indices in group_indices(
        [cfg.softmax for cfg in cols.configs]
    ).items():
        latency[indices] = lut.latency_ns(latency_items)
        energy[indices] = lut.energy_pj(energy_elements)
    return latency, energy


def _head_cost_columns(
    cols: _TronColumns, seq_len: int, d_model: int, d_k: int
) -> Tuple[np.ndarray, ColumnEnergy]:
    """``AttentionHeadUnit.head_cost`` as columns."""
    stage_dims = [
        (d_k, d_model),       # q_proj
        (d_model, d_k),       # k_mix
        (seq_len, d_model),   # scores
        (d_k, d_model),       # v_proj
        (d_k, seq_len),       # context
    ]
    stage_latencies = []
    total_cycles = np.zeros(cols.n, dtype=np.int64)
    for out_rows, inner in stage_dims:
        cycles = cols.tile_cycles(out_rows, inner)
        total_cycles = total_cycles + cycles * seq_len
        stage_latencies.append(cycles * cols.cycle_ns)
    softmax_latency, softmax_pj = _softmax_columns(
        cols, seq_len, seq_len * seq_len
    )
    stage_latencies.insert(3, softmax_latency)
    fill: object = 0
    for latency in stage_latencies:
        fill = fill + latency
    bottleneck = stage_latencies[0]
    for latency in stage_latencies[1:]:
        bottleneck = np.maximum(bottleneck, latency)
    compute_ns = fill + (seq_len - 1) * bottleneck
    energy = energy_for_cycles_columns(
        total_cycles, cols.breakdown
    ) + ColumnEnergy(digital_pj=softmax_pj)
    return compute_ns, energy


def _residual_adder_columns(cols: _TronColumns) -> np.ndarray:
    """Per-operation coherent-adder energy, once per distinct clock."""
    adder_pj = np.empty(cols.n)
    for clock_ghz, indices in group_indices(
        [cfg.clock_ghz for cfg in cols.configs]
    ).items():
        adder = CoherentSummationUnit(fan_in=2, clock_ghz=clock_ghz)
        adder_pj[indices] = adder.operation_energy_pj(active_arms=2)
    return adder_pj


def _mha_block_columns(
    cols: _TronColumns, seq_len: int, d_model: int, num_heads: int
) -> Tuple[ColumnLatency, ColumnEnergy]:
    """``MHAUnit.block_cost`` as columns."""
    if num_heads < 1:
        raise ConfigurationError(f"need >= 1 head, got {num_heads}")
    d_k = d_model // num_heads
    head_compute, head_energy = _head_cost_columns(cols, seq_len, d_model, d_k)
    waves = ceil_div(num_heads, cols.head_units)
    heads_latency = ColumnLatency(compute_ns=head_compute).scaled(waves)
    heads_energy = head_energy.scaled(num_heads)

    linear_cycles = cols.tile_cycles(d_model, d_model) * seq_len
    linear_cycles = ceil_div(linear_cycles, cols.linear_arrays)
    linear_total_cycles = linear_cycles * cols.linear_arrays
    linear_latency = ColumnLatency(compute_ns=linear_cycles * cols.cycle_ns)
    linear_energy = energy_for_cycles_columns(
        linear_total_cycles, cols.breakdown
    )

    residual_latency = ColumnLatency(
        compute_ns=2 * seq_len * cols.cycle_ns
    )
    add_pj = seq_len * _residual_adder_columns(cols)
    ln_pj = seq_len * d_model * 0.05
    residual_energy = ColumnEnergy(laser_pj=add_pj, tuning_pj=ln_pj)

    latency = heads_latency + linear_latency + residual_latency
    energy = heads_energy + linear_energy + residual_energy
    return latency, energy


def _ff_block_columns(
    cols: _TronColumns, seq_len: int, d_model: int, d_ff: int
) -> Tuple[ColumnLatency, ColumnEnergy]:
    """``FeedForwardUnit.block_cost`` as columns."""
    up_cycles = cols.tile_cycles(d_ff, d_model) * seq_len
    down_cycles = cols.tile_cycles(d_model, d_ff) * seq_len
    total_cycles = up_cycles + down_cycles
    serial_cycles = ceil_div(total_cycles, cols.ff_arrays)
    soa_pj = seq_len * d_ff * cols.activation_power * cols.cycle_ns
    residual_ns = 2 * seq_len * cols.cycle_ns
    ln_pj = seq_len * d_model * 0.05
    latency = ColumnLatency(
        compute_ns=serial_cycles * cols.cycle_ns + residual_ns
    )
    energy = energy_for_cycles_columns(
        total_cycles, cols.breakdown
    ) + ColumnEnergy(tuning_pj=ln_pj, activation_pj=soa_pj)
    return latency, energy


def _finish(
    cols: _TronColumns,
    contexts: Sequence[Optional[ExecutionContext]],
    ops_list: Sequence[OpCount],
    compute_latency: ColumnLatency,
    compute_energy: ColumnEnergy,
) -> Tuple[ColumnLatency, ColumnEnergy]:
    """The shared memory + static tail of both TRON run paths."""
    memory_energy, memory_latency = weight_stream_columns(
        [cfg.memory for cfg in cols.configs],
        contexts,
        ops_list,
        cols.bits,
        compute_latency.total,
        cols.batch,
        backends=[cfg.memory_backend for cfg in cols.configs],
        geometries=[cfg.hbm for cfg in cols.configs],
    )
    latency = compute_latency + memory_latency
    static_pj = cols.static_mw * latency.total
    energy = compute_energy + memory_energy + ColumnEnergy(static_pj=static_pj)
    return latency, energy


def evaluate_transformer(
    configs: Sequence[TRONConfig],
    contexts: Sequence[Optional[ExecutionContext]],
    workload,
) -> StackedRunReports:
    """``TRON.run_transformer`` over a whole configuration batch."""
    model = workload.model
    if model.seq_len < 1:
        raise ConfigurationError("model sequence length must be >= 1")
    cols = _TronColumns(configs, contexts)

    mha_latency, mha_energy = _mha_block_columns(
        cols, model.seq_len, model.d_model, model.num_heads
    )
    ff_latency, ff_energy = _ff_block_columns(
        cols, model.seq_len, model.d_model, model.d_ff
    )
    layer_latency = mha_latency + ff_latency
    layer_energy = mha_energy + ff_energy
    compute_latency = layer_latency.scaled(model.num_layers)
    compute_energy = layer_energy.scaled(model.num_layers)

    ops_list, _ = cols.ops_per_point(
        lambda bits: transformer_op_count(
            model, bytes_per_value=max(bits // 8, 1)
        )
    )
    latency, energy = _finish(
        cols, contexts, ops_list, compute_latency, compute_energy
    )

    if model.kind is TransformerKind.VISION:
        head_latency, head_energy = _ff_block_columns(
            cols, 1, model.d_model, model.d_ff
        )
        latency = latency + head_latency
        energy = energy + head_energy

    return StackedRunReports(
        platform="TRON",
        workload=model.name,
        ops=ops_list,
        latency=latency.as_arrays(cols.n),
        energy=energy.as_arrays(cols.n),
        bits_per_value=cols.bits,
        groups=cols.groups,
    )


def evaluate_mlp(
    configs: Sequence[TRONConfig],
    contexts: Sequence[Optional[ExecutionContext]],
    workload,
) -> StackedRunReports:
    """``TRON.run_mlp`` over a whole configuration batch."""
    cols = _TronColumns(configs, contexts)
    samples = workload.samples
    dims = list(workload.layer_dims)
    total_cycles = np.zeros(cols.n, dtype=np.int64)
    soa_pj: object = 0.0
    for i, (d_in, d_out) in enumerate(dims):
        total_cycles = total_cycles + cols.tile_cycles(d_out, d_in) * samples
        if i < len(dims) - 1:  # hidden activations only
            soa_pj = soa_pj + (
                samples * d_out * cols.activation_power * cols.cycle_ns
            )
    serial_cycles = ceil_div(total_cycles, cols.ff_arrays)
    compute_latency = ColumnLatency(compute_ns=serial_cycles * cols.cycle_ns)
    compute_energy = energy_for_cycles_columns(
        total_cycles, cols.breakdown
    ) + ColumnEnergy(activation_pj=soa_pj)

    ops_list, _ = cols.ops_per_point(
        lambda bits: workload.op_count(bytes_per_value=max(bits // 8, 1))
    )
    latency, energy = _finish(
        cols, contexts, ops_list, compute_latency, compute_energy
    )
    return StackedRunReports(
        platform="TRON",
        workload=workload.name,
        ops=ops_list,
        latency=latency.as_arrays(cols.n),
        energy=energy.as_arrays(cols.n),
        bits_per_value=cols.bits,
        groups=cols.groups,
    )


register_soa_evaluator("TRON", WorkloadKind.TRANSFORMER, evaluate_transformer)
register_soa_evaluator("TRON", WorkloadKind.MLP, evaluate_mlp)
