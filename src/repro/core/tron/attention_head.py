"""The attention-head unit: seven MR bank arrays implementing eq. (3).

The paper's key dataflow trick (Section V.C) is the decomposition

    Q . K^T = Q . (X . W_K)^T = (Q . W_K^T) . X^T          (eq. 3)

which keeps the whole score computation in the optical domain: instead of
digitizing K = X.W_K to transpose it electronically, the unit multiplies
Q by the *offline-stored* W_K^T and then by the offline-stored X^T.

The unit's five matmul stages (Fig. 5a; two of the seven arrays
double-buffer the X^T operand):

    stage 1:  Q^T = W_Q @ X^T                 (d_k x S)
    stage 2:  T^T = (W_K^T/sqrt(d_k)) @ Q^T   (d   x S)
    stage 3:  scores = X @ T^T                (S   x S)   [= Q K^T / sqrt(d_k)]
    digital:  P = softmax(scores)             (BPD -> ADC -> LUT)
    stage 4:  V^T = W_V @ X^T                 (d_k x S)
    stage 5:  C^T = V^T @ P^T                 (d_k x S)   [context head(X)]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.reports import EnergyReport, LatencyReport
from repro.core.scheduling import PipelineStage, pipeline_latency_ns
from repro.core.tron.config import TRONConfig
from repro.errors import ConfigurationError
from repro.nn.ops import softmax as softmax_ref
from repro.photonics.mrbank import MRBankArray


def photonic_matmul(array: MRBankArray, weights: np.ndarray, inputs: np.ndarray) -> np.ndarray:
    """W @ X computed by tiling onto a K x N MR bank array.

    Splits ``weights`` into (array.rows x array.cols) tiles; partial tile
    products accumulate electronically (the BPD output of each tile is one
    partial sum).  Analog noise, if the array has a noise model, applies
    per tile — matching how errors accumulate in hardware.

    Args:
        array: the MR bank array (its dims set the tile size).
        weights: (M, K) matrix held by the MR banks.
        inputs: (K,) vector or (K, B) matrix arriving on the waveguides.

    Returns:
        (M,) or (M, B) product.
    """
    weights = np.asarray(weights, dtype=float)
    inputs = np.asarray(inputs, dtype=float)
    if weights.ndim != 2:
        raise ConfigurationError(f"weights must be 2-D, got shape {weights.shape}")
    squeeze = inputs.ndim == 1
    if squeeze:
        inputs = inputs[:, None]
    if inputs.shape[0] != weights.shape[1]:
        raise ConfigurationError(
            f"inner dims mismatch: weights {weights.shape}, inputs {inputs.shape}"
        )
    m, k = weights.shape
    batch = inputs.shape[1]
    out = np.zeros((m, batch))
    for row_start in range(0, m, array.rows):
        row_end = min(row_start + array.rows, m)
        for col_start in range(0, k, array.cols):
            col_end = min(col_start + array.cols, k)
            tile = np.zeros((array.rows, array.cols))
            tile[: row_end - row_start, : col_end - col_start] = weights[
                row_start:row_end, col_start:col_end
            ]
            block = np.zeros((array.cols, batch))
            block[: col_end - col_start, :] = inputs[col_start:col_end, :]
            partial = array.matmul(tile, block)
            out[row_start:row_end, :] += partial[: row_end - row_start, :]
    return out[:, 0] if squeeze else out


@dataclass(frozen=True)
class HeadCost:
    """Cost of one attention head's pass through the unit.

    Attributes:
        latency: pipelined latency of the five optical stages + softmax.
        energy: energy of all array cycles, conversions and softmax.
        array_cycles: total photonic cycles consumed (for utilization).
    """

    latency: LatencyReport
    energy: EnergyReport
    array_cycles: int


@dataclass
class AttentionHeadUnit:
    """One attention-head unit (Fig. 5a): functional + cost model.

    Attributes:
        config: the owning TRON configuration.
    """

    config: TRONConfig
    _array: MRBankArray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._array = MRBankArray(
            rows=self.config.array_rows,
            cols=self.config.array_cols,
            design=self.config.design,
            clock_ghz=self.config.clock_ghz,
            dac=self.config.dac,
            adc=self.config.adc,
            noise=self.config.noise,
            pcm=self.config.pcm,
        )

    # ------------------------------------------------------------------
    # Functional model
    # ------------------------------------------------------------------

    def forward(
        self,
        x: np.ndarray,
        w_q: np.ndarray,
        w_k: np.ndarray,
        w_v: np.ndarray,
    ) -> np.ndarray:
        """Compute head(X) = softmax(Q K^T / sqrt(d_k)) V optically.

        Args:
            x: (S, d_model) input sequence.
            w_q / w_k / w_v: (d_k, d_model) per-head projection weights in
                the (out, in) convention of :func:`repro.nn.ops.linear`.

        Returns:
            (S, d_k) head output, numerically equal to the reference
            attention up to the configured analog noise.
        """
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ConfigurationError(f"input must be 2-D, got shape {x.shape}")
        d_k = w_q.shape[0]
        if w_k.shape != w_q.shape or w_v.shape != w_q.shape:
            raise ConfigurationError("W_Q, W_K, W_V must share one shape")
        x_t = x.T  # stored offline, per eq. (3)
        # Stage 1: Q^T = W_Q @ X^T.
        q_t = photonic_matmul(self._array, w_q, x_t)
        # Stage 2: T^T = (W_K^T / sqrt(d_k)) @ Q^T.
        t_t = photonic_matmul(self._array, w_k.T / np.sqrt(d_k), q_t)
        # Stage 3: the arrays hold the offline-stored X operand and stream
        # the columns of T^T, producing X @ T^T = (T @ X^T)^T = scores^T.
        scores = photonic_matmul(self._array, x, t_t).T
        # Digital softmax row-wise over keys.
        probs = softmax_ref(scores, axis=-1)
        # Stage 4: V^T = W_V @ X^T.
        v_t = photonic_matmul(self._array, w_v, x_t)
        # Stage 5: C^T = V^T @ P^T.
        context_t = photonic_matmul(self._array, v_t, probs.T)
        return context_t.T

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------

    def _stage_cycles_per_item(self, out_rows: int, inner: int) -> int:
        """Cycles to produce one output column of a stage."""
        return self._array.cycles_for(out_rows, inner, batch=1)

    def head_cost(self, seq_len: int, d_model: int, d_k: int) -> HeadCost:
        """Cost of one head over a (seq_len, d_model) input.

        The five matmul stages each own dedicated arrays (seven arrays
        per unit), so columns stream through them as a pipeline; softmax
        sits between stages 3 and 5 as a digital pipeline stage.
        """
        if seq_len < 1 or d_model < 1 or d_k < 1:
            raise ConfigurationError("seq_len, d_model and d_k must be >= 1")
        cycle_ns = self.config.cycle_ns
        stage_dims = [
            ("q_proj", d_k, d_model),
            ("k_mix", d_model, d_k),
            ("scores", seq_len, d_model),
            ("v_proj", d_k, d_model),
            ("context", d_k, seq_len),
        ]
        stages: List[PipelineStage] = []
        total_cycles = 0
        for name, out_rows, inner in stage_dims:
            cycles = self._stage_cycles_per_item(out_rows, inner)
            total_cycles += cycles * seq_len
            stages.append(PipelineStage(name, cycles * cycle_ns))
        softmax_latency = self.config.softmax.latency_ns(seq_len)  # one row
        stages.insert(3, PipelineStage("softmax", softmax_latency))
        compute_ns = pipeline_latency_ns(stages, seq_len)
        breakdown = self._array.cycle_energy_breakdown_pj(
            weight_refresh_cycles=self.config.weight_refresh_cycles
        )
        softmax_pj = self.config.softmax.energy_pj(seq_len * seq_len)
        latency = LatencyReport(compute_ns=compute_ns)
        energy = EnergyReport(
            laser_pj=total_cycles * breakdown["laser_pj"],
            tuning_pj=total_cycles * breakdown["tuning_pj"],
            dac_pj=total_cycles * breakdown["dac_pj"],
            adc_pj=total_cycles * breakdown["adc_pj"],
            digital_pj=softmax_pj,
        )
        return HeadCost(latency=latency, energy=energy, array_cycles=total_cycles)

    def reference_forward(
        self, x: np.ndarray, w_q: np.ndarray, w_k: np.ndarray, w_v: np.ndarray
    ) -> np.ndarray:
        """Golden (non-photonic) head output for validation."""
        q = x @ w_q.T
        k = x @ w_k.T
        v = x @ w_v.T
        scores = q @ k.T / np.sqrt(w_q.shape[0])
        return softmax_ref(scores, axis=-1) @ v
