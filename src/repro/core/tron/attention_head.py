"""The attention-head unit: seven MR bank arrays implementing eq. (3).

The paper's key dataflow trick (Section V.C) is the decomposition

    Q . K^T = Q . (X . W_K)^T = (Q . W_K^T) . X^T          (eq. 3)

which keeps the whole score computation in the optical domain: instead of
digitizing K = X.W_K to transpose it electronically, the unit multiplies
Q by the *offline-stored* W_K^T and then by the offline-stored X^T.

The unit's five matmul stages (Fig. 5a; two of the seven arrays
double-buffer the X^T operand):

    stage 1:  Q^T = W_Q @ X^T                 (d_k x S)
    stage 2:  T^T = (W_K^T/sqrt(d_k)) @ Q^T   (d   x S)
    stage 3:  scores = X @ T^T                (S   x S)   [= Q K^T / sqrt(d_k)]
    digital:  P = softmax(scores)             (BPD -> ADC -> LUT)
    stage 4:  V^T = W_V @ X^T                 (d_k x S)
    stage 5:  C^T = V^T @ P^T                 (d_k x S)   [context head(X)]

The matmul machinery itself lives in :mod:`repro.core.engine`; this
module composes it into the attention datapath.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.context import ExecutionContext
from repro.core.engine import ArrayExecutor, PipelineStage, pipeline_latency_ns

# Deprecated alias: ``photonic_matmul`` moved to ``repro.core.engine``
# (its canonical home since the engine extraction); import it from there.
from repro.core.engine import photonic_matmul  # noqa: F401
from repro.core.reports import EnergyReport, LatencyReport
from repro.core.tron.config import TRONConfig
from repro.errors import ConfigurationError
from repro.nn.ops import softmax as softmax_ref


@dataclass(frozen=True)
class HeadCost:
    """Cost of one attention head's pass through the unit.

    Attributes:
        latency: pipelined latency of the five optical stages + softmax.
        energy: energy of all array cycles, conversions and softmax.
        array_cycles: total photonic cycles consumed (for utilization).
    """

    latency: LatencyReport
    energy: EnergyReport
    array_cycles: int


@dataclass
class AttentionHeadUnit:
    """One attention-head unit (Fig. 5a): functional + cost model.

    Attributes:
        config: the owning TRON configuration.
        ctx: execution context bound to the unit's arrays (None = nominal).
    """

    config: TRONConfig
    ctx: Optional[ExecutionContext] = None
    _executor: ArrayExecutor = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._executor = ArrayExecutor.from_config(self.config, ctx=self.ctx)

    @property
    def executor(self) -> ArrayExecutor:
        """The unit's array executor (shared with the decode cost model)."""
        return self._executor

    # ------------------------------------------------------------------
    # Functional model
    # ------------------------------------------------------------------

    def forward(
        self,
        x: np.ndarray,
        w_q: np.ndarray,
        w_k: np.ndarray,
        w_v: np.ndarray,
    ) -> np.ndarray:
        """Compute head(X) = softmax(Q K^T / sqrt(d_k)) V optically.

        Args:
            x: (S, d_model) input sequence.
            w_q / w_k / w_v: (d_k, d_model) per-head projection weights in
                the (out, in) convention of :func:`repro.nn.ops.linear`.

        Returns:
            (S, d_k) head output, numerically equal to the reference
            attention up to the configured analog noise.
        """
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ConfigurationError(f"input must be 2-D, got shape {x.shape}")
        d_k = w_q.shape[0]
        if w_k.shape != w_q.shape or w_v.shape != w_q.shape:
            raise ConfigurationError("W_Q, W_K, W_V must share one shape")
        x_t = x.T  # stored offline, per eq. (3)
        # Stage 1: Q^T = W_Q @ X^T.
        q_t = self._executor.matmul(w_q, x_t)
        # Stage 2: T^T = (W_K^T / sqrt(d_k)) @ Q^T.
        t_t = self._executor.matmul(w_k.T / np.sqrt(d_k), q_t)
        # Stage 3: the arrays hold the offline-stored X operand and stream
        # the columns of T^T, producing X @ T^T = (T @ X^T)^T = scores^T.
        scores = self._executor.matmul(x, t_t).T
        # Digital softmax row-wise over keys.
        probs = softmax_ref(scores, axis=-1)
        # Stage 4: V^T = W_V @ X^T.
        v_t = self._executor.matmul(w_v, x_t)
        # Stage 5: C^T = V^T @ P^T.
        context_t = self._executor.matmul(v_t, probs.T)
        return context_t.T

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------

    def _stage_cycles_per_item(self, out_rows: int, inner: int) -> int:
        """Cycles to produce one output column of a stage."""
        return self._executor.cycles_for(out_rows, inner, batch=1)

    def head_cost(
        self,
        seq_len: int,
        d_model: int,
        d_k: int,
        offload_context: bool = False,
    ) -> HeadCost:
        """Cost of one head over a (seq_len, d_model) input.

        The five matmul stages each own dedicated arrays (seven arrays
        per unit), so columns stream through them as a pipeline; softmax
        sits between stages 3 and 5 as a digital pipeline stage.  With
        ``offload_context`` the final S·V reduction leaves the photonic
        pipeline (a PIM-capable memory backend reduces it near the
        banks; the accelerator charges that cost on the memory side).
        """
        if seq_len < 1 or d_model < 1 or d_k < 1:
            raise ConfigurationError("seq_len, d_model and d_k must be >= 1")
        cycle_ns = self.config.cycle_ns
        stage_dims = [
            ("q_proj", d_k, d_model),
            ("k_mix", d_model, d_k),
            ("scores", seq_len, d_model),
            ("v_proj", d_k, d_model),
            ("context", d_k, seq_len),
        ]
        if offload_context:
            stage_dims = stage_dims[:-1]
        stages: List[PipelineStage] = []
        total_cycles = 0
        for name, out_rows, inner in stage_dims:
            cycles = self._stage_cycles_per_item(out_rows, inner)
            total_cycles += cycles * seq_len
            stages.append(PipelineStage(name, cycles * cycle_ns))
        softmax_latency = self.config.softmax.latency_ns(seq_len)  # one row
        stages.insert(3, PipelineStage("softmax", softmax_latency))
        compute_ns = pipeline_latency_ns(stages, seq_len)
        softmax_pj = self.config.softmax.energy_pj(seq_len * seq_len)
        latency = LatencyReport(compute_ns=compute_ns)
        energy = self._executor.energy_for_cycles(
            total_cycles, weight_refresh_cycles=self.config.weight_refresh_cycles
        ) + EnergyReport(digital_pj=softmax_pj)
        return HeadCost(latency=latency, energy=energy, array_cycles=total_cycles)

    def reference_forward(
        self, x: np.ndarray, w_q: np.ndarray, w_k: np.ndarray, w_v: np.ndarray
    ) -> np.ndarray:
        """Golden (non-photonic) head output for validation."""
        q = x @ w_q.T
        k = x @ w_k.T
        v = x @ w_v.T
        scores = q @ k.T / np.sqrt(w_q.shape[0])
        return softmax_ref(scores, axis=-1) @ v
