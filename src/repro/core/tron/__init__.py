"""TRON: the silicon-photonic transformer accelerator (paper Section V.C).

Structure mirrors the paper's Figs. 4 and 5:

- :mod:`repro.core.tron.config` — architectural parameters.
- :mod:`repro.core.tron.attention_head` — the attention-head unit built
  from seven MR bank arrays, implementing the Q·K^T = (Q·W_K^T)·X^T
  decomposition of eq. (3) on the shared :mod:`repro.core.engine`
  matmul executor (``photonic_matmul`` now lives in the engine; the
  import from ``attention_head`` remains as a deprecation alias).
- :mod:`repro.core.tron.mha` — the MHA unit (H head units, concat +
  linear layer, coherent residual add, optical LayerNorm).
- :mod:`repro.core.tron.feedforward` — the FF unit (two dense layers with
  SOA activation).
- :mod:`repro.core.tron.accelerator` — whole-model mapping and cost
  estimation producing :class:`repro.core.reports.RunReport`.
"""

from repro.core.tron.config import TRONConfig
from repro.core.tron.attention_head import AttentionHeadUnit
from repro.core.tron.mha import MHAUnit
from repro.core.tron.feedforward import FeedForwardUnit
from repro.core.tron.accelerator import TRON
from repro.core.tron.generation import (
    GenerationReport,
    decode_step_ops,
    run_generation,
)

__all__ = [
    "TRONConfig",
    "AttentionHeadUnit",
    "MHAUnit",
    "FeedForwardUnit",
    "TRON",
    "GenerationReport",
    "decode_step_ops",
    "run_generation",
]
