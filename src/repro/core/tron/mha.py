"""The MHA unit: H attention-head units + concat + linear + add & norm.

Mirrors the paper's Fig. 5(b): head outputs are buffered and
concatenated, passed through an optically-implemented linear layer (two
MR bank arrays), the residual connection is added by coherent photonic
summation, and layer normalization is applied optically by a single MR
tuned with the LN parameter (Section V.C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.context import ExecutionContext
from repro.core.engine import ArrayExecutor, serial_waves
from repro.core.reports import EnergyReport, LatencyReport
from repro.core.tron.attention_head import AttentionHeadUnit
from repro.core.tron.config import TRONConfig
from repro.errors import ConfigurationError
from repro.nn.attention import MultiHeadAttention
from repro.nn.ops import layer_norm
from repro.photonics.summation import CoherentSummationUnit


@dataclass(frozen=True)
class BlockCost:
    """Latency + energy of one architectural block invocation."""

    latency: LatencyReport
    energy: EnergyReport


@dataclass
class MHAUnit:
    """The full multi-head-attention unit of Fig. 5(b).

    Attributes:
        config: the owning TRON configuration.
        ctx: execution context bound to the unit's arrays (None = nominal).
    """

    config: TRONConfig
    ctx: Optional[ExecutionContext] = None
    head_unit: AttentionHeadUnit = field(init=False, repr=False)
    _linear_executor: ArrayExecutor = field(init=False, repr=False)
    _residual_adder: CoherentSummationUnit = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.head_unit = AttentionHeadUnit(config=self.config, ctx=self.ctx)
        self._linear_executor = ArrayExecutor.from_config(
            self.config, ctx=self.ctx
        )
        self._residual_adder = CoherentSummationUnit(
            fan_in=2, clock_ghz=self.config.clock_ghz
        )

    # ------------------------------------------------------------------
    # Functional model
    # ------------------------------------------------------------------

    def forward(self, mha: MultiHeadAttention, x: np.ndarray) -> np.ndarray:
        """Optical MHA block: heads -> concat -> linear -> +residual -> LN.

        Args:
            mha: the reference attention module whose weights this unit
                holds (quantization of those weights is the caller's
                concern; values are used as-is).
            x: (S, d_model) input.

        Returns:
            (S, d_model) block output (matches the electronic reference up
            to analog noise).
        """
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != mha.d_model:
            raise ConfigurationError(
                f"expected input (S, {mha.d_model}), got {x.shape}"
            )
        head_outputs = []
        for head in range(mha.num_heads):
            w_q, w_k, w_v = mha.head_weights(head)
            head_outputs.append(self.head_unit.forward(x, w_q, w_k, w_v))
        concat = np.concatenate(head_outputs, axis=1)  # buffer & concatenate
        # Output linear layer, optical: (S, d) = (d x d W_O) @ concat^T.
        projected = self._linear_executor.matmul(mha.w_o, concat.T).T
        # Residual add via coherent summation, then optical LayerNorm.
        summed = x + projected
        return layer_norm(summed)

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------

    def block_cost(
        self,
        seq_len: int,
        d_model: int,
        num_heads: int,
        offload_context: bool = False,
    ) -> BlockCost:
        """Cost of one MHA block invocation over a (S, d_model) input.

        Heads run ``num_head_units`` at a time; additional waves serialize.
        The linear layer is spread over ``num_linear_arrays`` arrays; the
        residual add and LN are charged at one column per photonic cycle.
        ``offload_context`` drops the S·V stage from every head (near-bank
        offload; see :meth:`AttentionHeadUnit.head_cost`).
        """
        if num_heads < 1:
            raise ConfigurationError(f"need >= 1 head, got {num_heads}")
        d_k = d_model // num_heads
        head_cost = self.head_unit.head_cost(
            seq_len, d_model, d_k, offload_context=offload_context
        )
        waves = serial_waves(num_heads, self.config.num_head_units)
        heads_latency = head_cost.latency.scaled(waves)
        heads_energy = head_cost.energy.scaled(num_heads)

        cycle_ns = self.config.cycle_ns
        # Linear layer: (d_model x d_model) @ (d_model x S) over the
        # available linear arrays (column-parallel split).
        linear_cycles = self._linear_executor.cycles_for(d_model, d_model, seq_len)
        linear_cycles = serial_waves(linear_cycles, self.config.num_linear_arrays)
        linear_total_cycles = linear_cycles * self.config.num_linear_arrays
        linear_latency = LatencyReport(compute_ns=linear_cycles * cycle_ns)
        linear_energy = self._linear_executor.energy_for_cycles(
            linear_total_cycles,
            weight_refresh_cycles=self.config.weight_refresh_cycles,
        )

        # Residual add: S columns through the coherent adder (d_model-wide
        # arm pairs, one column per cycle); LN: optical single-MR scaling
        # per element, pipelined behind the adder -> one extra pass.
        residual_latency = LatencyReport(compute_ns=2 * seq_len * cycle_ns)
        add_pj = seq_len * self._residual_adder.operation_energy_pj(active_arms=2)
        ln_pj = seq_len * d_model * 0.05  # single-MR EO retune per element
        residual_energy = EnergyReport(laser_pj=add_pj, tuning_pj=ln_pj)

        latency = heads_latency + linear_latency + residual_latency
        energy = heads_energy + linear_energy + residual_energy
        return BlockCost(latency=latency, energy=energy)
