"""TRON top level: maps workloads onto the engine and produces RunReports.

Latency composes per-layer MHA and FF block costs serially across the
``num_layers`` stack (conservative: no cross-layer pipelining), with
weight streaming from HBM overlapped against compute and amortized over
the configured batch.  Energy sums block energies, memory traffic,
control and leakage.

Workload dispatch: transformers run through the MHA + FF units; MLP
workloads run their dense chain on the FF arrays (the FF unit *is* a
two-layer MLP engine, so the general case just tiles more layers).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from repro.core.base import Accelerator, Workload, WorkloadKind
from repro.core.context import ExecutionContext
from repro.core.engine import (
    ArraySpec,
    MemoryModel,
    build_memory_backend,
    serial_waves,
)
from repro.core.reports import EnergyReport, LatencyReport, RunReport
from repro.core.tron.config import TRONConfig
from repro.core.tron.feedforward import FeedForwardUnit
from repro.core.tron.mha import MHAUnit
from repro.errors import ConfigurationError, MappingError
from repro.nn.counting import transformer_op_count
from repro.nn.transformer import TransformerConfig, TransformerKind, TransformerModel

#: Context-bound clones retained per accelerator instance (a corner grid
#: is small; die sweeps churn through the cache instead of growing it).
_MAX_CONTEXT_CLONES = 8


@dataclass
class TRON(Accelerator):
    """The silicon-photonic transformer accelerator (Sections V.C, VI).

    Example::

        tron = TRON()
        report = tron.run_transformer(bert_base())
        print(report.summary())

    A TRON instance is bound to one execution context (``ctx``, default
    nominal); ``run(workload, ctx=...)`` transparently dispatches through
    a context-bound clone, memoized per corner.
    """

    config: TRONConfig = field(default_factory=TRONConfig)
    ctx: Optional[ExecutionContext] = None
    mha_unit: MHAUnit = field(init=False, repr=False)
    ff_unit: FeedForwardUnit = field(init=False, repr=False)
    memory_model: MemoryModel = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.mha_unit = MHAUnit(config=self.config, ctx=self.ctx)
        self.ff_unit = FeedForwardUnit(config=self.config, ctx=self.ctx)
        self.memory_model = build_memory_backend(
            self.config.memory_backend,
            self.config.memory,
            context=self.ctx,
            geometry=self.config.hbm,
        )
        self._context_clones: Dict[ExecutionContext, "TRON"] = {}

    @property
    def name(self) -> str:
        return "TRON"

    def array_specs(self) -> List[ArraySpec]:
        """The distinct MR bank array geometries this instance deploys
        (all TRON units share one array spec)."""
        return [ArraySpec.from_config(self.config)]

    def _bound(self, ctx: Optional[ExecutionContext]) -> "TRON":
        """This accelerator, bound to ``ctx`` (memoized per corner).

        The clone cache is bounded: looping one instance over many dies
        (distinct seeds) must not retain a unit stack per die.
        """
        if ctx is None or ctx == self.ctx:
            return self
        if ctx not in self._context_clones:
            while len(self._context_clones) >= _MAX_CONTEXT_CLONES:
                self._context_clones.pop(next(iter(self._context_clones)))
            self._context_clones[ctx] = replace(self, ctx=ctx)
        return self._context_clones[ctx]

    def bind(self, ctx: Optional[ExecutionContext] = None) -> "TRON":
        """The context-bound clone ``run(workload, ctx=...)`` dispatches
        to — public so callers can reach its memory model (e.g. a
        recorded DRAM command trace) after a run."""
        return self._bound(ctx)

    def describe(self) -> str:
        cfg = self.config
        return (
            f"TRON: {cfg.num_head_units} head units x 7 arrays "
            f"({cfg.array_rows}x{cfg.array_cols}), {cfg.num_ff_arrays} FF "
            f"arrays, {cfg.clock_ghz:.0f} GHz photonic clock, "
            f"{cfg.peak_gops / 1e3:.0f} TOPS peak"
        )

    # ------------------------------------------------------------------
    # Workload dispatch
    # ------------------------------------------------------------------

    def _run_workload(
        self,
        workload: Workload,
        ctx: Optional[ExecutionContext] = None,
    ) -> RunReport:
        engine = self._bound(ctx)
        if workload.kind is WorkloadKind.TRANSFORMER:
            return engine.run_transformer(workload.model)
        if workload.kind is WorkloadKind.MLP:
            return engine.run_mlp(workload)
        if workload.kind is WorkloadKind.DECODE:
            return engine.run_decode(workload)
        raise MappingError(
            f"TRON cannot execute {workload.kind.value!r} workload "
            f"{workload.name!r}"
        )

    def decode_series(
        self,
        workload: Workload,
        ctx: Optional[ExecutionContext] = None,
    ):
        """Per-token decode series of a DECODE workload (stacked path).

        Returns a :class:`repro.streaming.decode.DecodeSeries`; the
        streaming CLI/session layers read token-level columns from it.
        """
        # Local import: the streaming package layers on top of the core.
        from repro.streaming.decode import decode_series

        engine = self._bound(ctx)
        return decode_series(
            engine,
            workload.model,
            prompt_tokens=workload.prompt_tokens,
            generated_tokens=workload.generated_tokens,
        )

    def run_decode(self, workload: Workload) -> RunReport:
        """Whole prompt + generate episode as one RunReport.

        Latency/energy/ops are the prefill pass plus the decode totals
        of the stacked per-token series (bit-identical to the scalar
        :func:`repro.core.tron.generation.run_generation` loop).
        """
        series = self.decode_series(workload)
        report = series.to_generation_report()
        return RunReport(
            platform=self.name,
            workload=workload.name,
            ops=report.prefill.ops + report.decode_ops,
            latency=report.prefill.latency + report.decode_latency,
            energy=report.prefill.energy + report.decode_energy,
            bits_per_value=report.prefill.bits_per_value,
        )

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------

    def run_transformer(self, model: TransformerConfig) -> RunReport:
        """Estimate one full inference of ``model`` (Figs. 8 and 9 path)."""
        if model.seq_len < 1:
            raise ConfigurationError("model sequence length must be >= 1")
        cfg = self.config
        pim_offload = getattr(self.memory_model, "pim_active", False)
        mha_cost = self.mha_unit.block_cost(
            model.seq_len,
            model.d_model,
            model.num_heads,
            offload_context=pim_offload,
        )
        ff_cost = self.ff_unit.block_cost(model.seq_len, model.d_model, model.d_ff)
        layer_latency = mha_cost.latency + ff_cost.latency
        layer_energy = mha_cost.energy + ff_cost.energy
        compute_latency = layer_latency.scaled(model.num_layers)
        compute_energy = layer_energy.scaled(model.num_layers)

        # Memory: model weights stream from HBM once per batch (double-
        # buffered against compute); activations bounce through the global
        # buffer between blocks.
        ops = transformer_op_count(model, bytes_per_value=max(cfg.bits // 8, 1))
        memory_energy, memory_latency = self.memory_model.weight_stream_cost(
            weight_bytes=ops.weight_bytes,
            activation_bounce_bytes=2 * ops.activation_bytes,
            compute_ns=compute_latency.total_ns,
            batch=cfg.batch,
        )

        if pim_offload:
            # The S.V context reduction runs near the banks: scores and
            # V spill to the device, are reduced in place, and only the
            # (seq x d_model) context returns — charged per layer.
            bpv = max(cfg.bits // 8, 1)
            score_bytes = (
                model.num_heads * model.seq_len * model.seq_len * bpv
            )
            v_bytes = model.seq_len * model.d_model * bpv
            spill = self.memory_model.store_offchip(score_bytes + v_bytes)
            reduce = self.memory_model.pim_reduce_cost(
                in_bank_bytes=score_bytes + v_bytes,
                out_bytes=model.seq_len * model.d_model * bpv,
                macs=model.seq_len * model.seq_len * model.d_model,
            )
            memory_energy = memory_energy + EnergyReport(
                memory_pj=(spill.energy_pj + reduce.energy_pj)
                * model.num_layers
            )
            memory_latency = memory_latency + LatencyReport(
                memory_ns=(spill.latency_ns + reduce.latency_ns)
                * model.num_layers
            )

        latency = compute_latency + memory_latency
        static_pj = (
            cfg.control.power_mw + cfg.memory.global_buffer.leakage_mw
        ) * latency.total_ns
        energy = compute_energy + memory_energy + EnergyReport(static_pj=static_pj)

        if model.kind is TransformerKind.VISION:
            head_cost = self.ff_unit.block_cost(1, model.d_model, model.d_ff)
            latency = latency + head_cost.latency
            energy = energy + head_cost.energy

        return RunReport(
            platform=self.name,
            workload=model.name,
            ops=ops,
            latency=latency,
            energy=energy,
            bits_per_value=cfg.bits,
        )

    def run_mlp(self, workload: Workload) -> RunReport:
        """Estimate one batched MLP inference on the FF arrays.

        Each dense layer tiles over ``num_ff_arrays`` arrays exactly like
        the transformer FF block; the SOA stage activates every hidden
        element; weights stream from HBM once per batch.
        """
        cfg = self.config
        executor = self.ff_unit.executor
        cycle_ns = cfg.cycle_ns
        samples = workload.samples
        total_cycles = 0
        soa_pj = 0.0
        dims = list(workload.layer_dims)
        for i, (d_in, d_out) in enumerate(dims):
            total_cycles += executor.cycles_for(d_out, d_in, batch=samples)
            if i < len(dims) - 1:  # hidden activations only
                soa_pj += samples * d_out * cfg.activation.power_mw * cycle_ns
        serial_cycles = serial_waves(total_cycles, cfg.num_ff_arrays)
        compute_latency = LatencyReport(compute_ns=serial_cycles * cycle_ns)
        compute_energy = executor.energy_for_cycles(
            total_cycles, weight_refresh_cycles=cfg.weight_refresh_cycles
        ) + EnergyReport(activation_pj=soa_pj)

        ops = workload.op_count(bytes_per_value=max(cfg.bits // 8, 1))
        memory_energy, memory_latency = self.memory_model.weight_stream_cost(
            weight_bytes=ops.weight_bytes,
            activation_bounce_bytes=2 * ops.activation_bytes,
            compute_ns=compute_latency.total_ns,
            batch=cfg.batch,
        )
        latency = compute_latency + memory_latency
        static_pj = (
            cfg.control.power_mw + cfg.memory.global_buffer.leakage_mw
        ) * latency.total_ns
        energy = compute_energy + memory_energy + EnergyReport(static_pj=static_pj)
        return RunReport(
            platform=self.name,
            workload=workload.name,
            ops=ops,
            latency=latency,
            energy=energy,
            bits_per_value=cfg.bits,
        )

    # ------------------------------------------------------------------
    # Functional model
    # ------------------------------------------------------------------

    def forward(self, model: TransformerModel, x: np.ndarray) -> np.ndarray:
        """Functional optical inference of a whole transformer stack.

        Runs every layer's MHA and FF block through the photonic units
        (with the config's noise model, if any).  Masked decoder attention
        falls back to the reference path for the mask application — the
        optical datapath computes the same matmuls either way.

        Intended for small validation models; the pure-python tiling is
        too slow for BERT-scale shapes.
        """
        x = np.asarray(x, dtype=float)
        for layer in model.layers:
            attended = self.mha_unit.forward(layer.mha, x)
            ff_out = self.ff_unit.forward(layer, attended)
            x = ff_out
        return x
