"""Autoregressive generation (decode-phase) cost model for TRON.

Encoder workloads (BERT/ViT) process a whole sequence per pass, but
decoder-only LLMs (GPT — Section II: "the decoder processes this
representation incrementally, generating a singular output while
incorporating prior outputs") spend most of their time in *decode*: one
token per step, attending over a growing KV context.

Per generated token, each layer performs matrix-VECTOR work (batch 1), so
the MR bank arrays are far less utilized than in prefill — exactly the
regime where TRON's conversion-free optical path and the fast photonic
clock matter most.  The model accounts:

- prefill: one full forward pass over the prompt (the standard
  ``run_transformer`` path at ``seq_len = prompt``);
- decode: per token, per layer — QKV projections for one token, a
  1 x L score row against the cached context (via the eq. 3 dataflow with
  the cached X^T held by the arrays), softmax over L, the context
  reduction, output linear, and the FF block for one token;
- KV-cache traffic: the cached context streams through the arrays'
  weight banks, so every decode step re-imprints L context columns —
  charged as memory reads plus weight-DAC conversions at the array's
  refresh granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.reports import EnergyReport, LatencyReport, RunReport
from repro.errors import ConfigurationError
from repro.nn.counting import OpCount
from repro.nn.transformer import TransformerConfig, TransformerKind


@dataclass(frozen=True)
class GenerationReport:
    """Cost of one prompt-then-generate episode.

    Attributes:
        prefill: RunReport of the prompt pass.
        decode_latency / decode_energy: totals over all generated tokens.
        prompt_tokens / generated_tokens: episode shape.
        decode_ops: op totals of the decode phase.
    """

    prefill: RunReport
    decode_latency: LatencyReport
    decode_energy: EnergyReport
    decode_ops: OpCount
    prompt_tokens: int
    generated_tokens: int

    @property
    def total_latency_ns(self) -> float:
        return self.prefill.latency_ns + self.decode_latency.total_ns

    @property
    def total_energy_pj(self) -> float:
        return self.prefill.energy_pj + self.decode_energy.total_pj

    @property
    def tokens_per_second(self) -> float:
        """Steady-state decode rate (excludes prefill)."""
        if self.generated_tokens == 0:
            raise ConfigurationError("no generated tokens")
        per_token_ns = self.decode_latency.total_ns / self.generated_tokens
        return 1e9 / per_token_ns

    @property
    def energy_per_token_uj(self) -> float:
        """Mean decode energy per generated token."""
        if self.generated_tokens == 0:
            raise ConfigurationError("no generated tokens")
        return self.decode_energy.total_pj / self.generated_tokens / 1e6

    def summary(self) -> str:
        return (
            f"prefill {self.prompt_tokens} tok: "
            f"{self.prefill.latency_ns / 1e6:.3f} ms | decode "
            f"{self.generated_tokens} tok: "
            f"{self.decode_latency.total_ns / 1e6:.3f} ms "
            f"({self.tokens_per_second:,.0f} tok/s, "
            f"{self.energy_per_token_uj:.2f} uJ/tok)"
        )


def decode_step_ops(config: TransformerConfig, context_len: int) -> OpCount:
    """Op/byte count of generating ONE token at a given context length."""
    if context_len < 1:
        raise ConfigurationError(f"context length must be >= 1, got {context_len}")
    d = config.d_model
    d_ff = config.d_ff
    h = config.num_heads
    # Per layer: QKV + output projections for one token, attention row
    # against L cached positions, FF for one token.
    projection_macs = 4 * d * d
    attention_macs = 2 * context_len * d
    ff_macs = 2 * d * d_ff
    per_layer = OpCount(
        macs=projection_macs + attention_macs + ff_macs,
        adds=2 * d,
        activations=d_ff,
        softmax_elements=h * context_len,
        norm_elements=2 * d,
        # KV cache read: L cached context columns (eq. 3 keeps X^T, which
        # is d wide) plus the token's own activations.
        activation_bytes=context_len * d + 4 * d,
        weight_bytes=4 * d * d + 2 * d * d_ff,
    )
    return per_layer.scaled(config.num_layers)


@dataclass(frozen=True)
class DecodeStepCost:
    """Cost of generating ONE token at a given KV-cache context length.

    The scalar unit of the decode-phase model: :func:`run_generation`
    folds a list of these into episode totals, and the streaming
    subsystem (:mod:`repro.streaming.decode`) exposes the same list as
    per-token series columns.
    """

    context: int
    latency: LatencyReport
    energy: EnergyReport
    ops: OpCount


def _validate_episode(
    model: TransformerConfig, prompt_tokens: int, generated_tokens: int
) -> None:
    if model.kind is not TransformerKind.DECODER_ONLY:
        raise ConfigurationError(
            f"generation requires a decoder-only model, got {model.kind}"
        )
    if prompt_tokens < 1 or generated_tokens < 1:
        raise ConfigurationError("prompt and generation lengths must be >= 1")


def decode_step_reports(
    tron,
    model: TransformerConfig,
    prompt_tokens: int,
    generated_tokens: int,
) -> List[DecodeStepCost]:
    """Per-token decode costs for one episode — the scalar step loop.

    One :class:`DecodeStepCost` per generated token, in generation
    order; the KV context grows by one each step, shifting the op/byte
    mix from weight-dominated toward KV-cache-dominated.  The stacked
    SoA evaluator (:func:`repro.streaming.decode.decode_series`) is
    validated bit-identical against this loop.
    """
    _validate_episode(model, prompt_tokens, generated_tokens)
    cfg = tron.config
    head_unit = tron.mha_unit.head_unit
    array = head_unit.executor
    cycle_ns = cfg.cycle_ns
    d = model.d_model
    d_k = model.d_model // model.num_heads
    d_ff = model.d_ff
    breakdown = array.energy_breakdown_pj(
        weight_refresh_cycles=cfg.weight_refresh_cycles
    )

    steps: List[DecodeStepCost] = []
    for step in range(generated_tokens):
        context = prompt_tokens + step + 1
        # Optical cycles per layer for one token (batch = 1 everywhere):
        head_waves = -(-model.num_heads // cfg.num_head_units)
        per_head_cycles = (
            array.cycles_for(d_k, d, 1)  # q projection
            + array.cycles_for(d, d_k, 1)  # W_K^T mix
            + array.cycles_for(context, d, 1)  # score row vs cached X^T
            + array.cycles_for(d_k, d, 1)  # v projection
            + array.cycles_for(d_k, context, 1)  # context reduction
        )
        linear_cycles = -(
            -array.cycles_for(d, d, 1) // cfg.num_linear_arrays
        )
        ff_cycles = -(
            -(array.cycles_for(d_ff, d, 1) + array.cycles_for(d, d_ff, 1))
            // cfg.num_ff_arrays
        )
        layer_cycles = head_waves * per_head_cycles + linear_cycles + ff_cycles
        softmax_ns = cfg.softmax.latency_ns(context)
        layer_ns = layer_cycles * cycle_ns + softmax_ns
        compute_ns = layer_ns * model.num_layers

        ops = decode_step_ops(model, context)
        # KV-cache + weight streaming for this token.
        mem_pj, mem_ns = cfg.memory.read_onchip(ops.activation_bytes)
        weight_pj, weight_ns = cfg.memory.load_from_offchip(ops.weight_bytes)
        weight_pj /= cfg.batch
        weight_ns /= cfg.batch
        stall_ns = max(weight_ns - compute_ns, 0.0) + mem_ns

        active_cycles = layer_cycles * model.num_layers
        latency = LatencyReport(compute_ns=compute_ns, memory_ns=stall_ns)
        energy = EnergyReport(
            laser_pj=active_cycles * breakdown["laser_pj"],
            tuning_pj=active_cycles * breakdown["tuning_pj"],
            dac_pj=active_cycles * breakdown["dac_pj"],
            adc_pj=active_cycles * breakdown["adc_pj"],
            digital_pj=cfg.softmax.energy_pj(model.num_heads * context)
            * model.num_layers,
            memory_pj=mem_pj + weight_pj,
        )
        steps.append(
            DecodeStepCost(
                context=context, latency=latency, energy=energy, ops=ops
            )
        )
    return steps


def static_power_mw(tron) -> float:
    """Static power charged over the whole decode phase (control +
    buffer leakage), in mW — multiplied by total ns it yields pJ."""
    cfg = tron.config
    return cfg.control.power_mw + cfg.memory.global_buffer.leakage_mw


def prefill_report(
    tron, model: TransformerConfig, prompt_tokens: int
) -> RunReport:
    """The prompt pass: one full forward at ``seq_len = prompt_tokens``."""
    prefill_config = TransformerConfig(
        name=model.name,
        kind=model.kind,
        num_layers=model.num_layers,
        d_model=model.d_model,
        num_heads=model.num_heads,
        d_ff=model.d_ff,
        seq_len=prompt_tokens,
        vocab_size=model.vocab_size,
    )
    return tron.run_transformer(prefill_config)


def run_generation(
    tron,
    model: TransformerConfig,
    prompt_tokens: int = 128,
    generated_tokens: int = 128,
) -> GenerationReport:
    """Cost a prompt + generate episode on a TRON instance.

    Args:
        tron: a :class:`repro.core.tron.TRON` accelerator.
        model: a decoder-style transformer config (its ``seq_len`` is
            overridden by the episode shape).
        prompt_tokens: prompt length for the prefill pass.
        generated_tokens: tokens generated autoregressively.
    """
    _validate_episode(model, prompt_tokens, generated_tokens)
    prefill = prefill_report(tron, model, prompt_tokens)

    total_latency = LatencyReport()
    total_energy = EnergyReport()
    total_ops = OpCount()
    for step in decode_step_reports(
        tron, model, prompt_tokens, generated_tokens
    ):
        total_latency = total_latency + step.latency
        total_energy = total_energy + step.energy
        total_ops = total_ops + step.ops

    static_pj = static_power_mw(tron) * total_latency.total_ns
    total_energy = total_energy + EnergyReport(static_pj=static_pj)
    return GenerationReport(
        prefill=prefill,
        decode_latency=total_latency,
        decode_energy=total_energy,
        decode_ops=total_ops,
        prompt_tokens=prompt_tokens,
        generated_tokens=generated_tokens,
    )
