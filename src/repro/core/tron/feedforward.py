"""The FF unit: two optical dense layers with an SOA activation between.

Paper Section II: "The FF network is composed of two dense layers with a
RELU activation in between"; Section V.C implements the dense layers on
MR bank arrays and Section V.D's SOA technique provides the optical
nonlinearity.  A residual add and optical LayerNorm follow, as in the
encoder-layer structure of Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.context import ExecutionContext
from repro.core.engine import ArrayExecutor, serial_waves
from repro.core.reports import EnergyReport, LatencyReport
from repro.core.tron.config import TRONConfig
from repro.core.tron.mha import BlockCost
from repro.errors import ConfigurationError
from repro.nn.ops import layer_norm
from repro.nn.transformer import TransformerEncoderLayer


@dataclass
class FeedForwardUnit:
    """TRON's feed-forward unit: functional + cost model.

    Attributes:
        config: the owning TRON configuration.
        ctx: execution context bound to the unit's arrays (None = nominal).
    """

    config: TRONConfig
    ctx: Optional[ExecutionContext] = None
    _executor: ArrayExecutor = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._executor = ArrayExecutor.from_config(self.config, ctx=self.ctx)

    @property
    def executor(self) -> ArrayExecutor:
        """The unit's array executor (shared with the MLP path)."""
        return self._executor

    # ------------------------------------------------------------------
    # Functional model
    # ------------------------------------------------------------------

    def forward(self, layer: TransformerEncoderLayer, x: np.ndarray) -> np.ndarray:
        """Optical FF block: dense -> SOA activation -> dense -> +res -> LN.

        Uses the layer's weights; biases are added electronically at the
        ADC output (free in the analog cost model, exact functionally).
        """
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != layer.d_model:
            raise ConfigurationError(
                f"expected input (S, {layer.d_model}), got {x.shape}"
            )
        hidden = self._executor.matmul(layer.w_ff1, x.T).T + layer.b_ff1
        # The SOA realizes ReLU-family nonlinearities optically; GELU-
        # configured layers fall back to the digital LUT path, which is
        # functionally this same exact computation.
        if layer.activation == "relu":
            activated = self.config.activation.apply(hidden)
        else:
            from repro.nn.ops import gelu

            activated = gelu(hidden)
        out = self._executor.matmul(layer.w_ff2, activated.T).T + layer.b_ff2
        return layer_norm(x + out)

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------

    def block_cost(self, seq_len: int, d_model: int, d_ff: int) -> BlockCost:
        """Cost of one FF block invocation.

        Both dense layers tile over ``num_ff_arrays`` arrays; the SOA
        stage adds its bias energy per activated element and pipelines
        behind the first dense layer.
        """
        if seq_len < 1 or d_model < 1 or d_ff < 1:
            raise ConfigurationError("seq_len, d_model, d_ff must be >= 1")
        cycle_ns = self.config.cycle_ns
        arrays = self.config.num_ff_arrays
        up_cycles = self._executor.cycles_for(d_ff, d_model, seq_len)
        down_cycles = self._executor.cycles_for(d_model, d_ff, seq_len)
        total_cycles = up_cycles + down_cycles
        serial_cycles = serial_waves(total_cycles, arrays)
        # SOA activation: one device per array row, charged per element.
        soa_pj = (
            seq_len * d_ff * self.config.activation.power_mw * cycle_ns
        )
        # Residual + LN pass, as in the MHA unit.
        residual_ns = 2 * seq_len * cycle_ns
        ln_pj = seq_len * d_model * 0.05
        latency = LatencyReport(
            compute_ns=serial_cycles * cycle_ns + residual_ns
        )
        energy = self._executor.energy_for_cycles(
            total_cycles, weight_refresh_cycles=self.config.weight_refresh_cycles
        ) + EnergyReport(tuning_pj=ln_pj, activation_pj=soa_pj)
        return BlockCost(latency=latency, energy=energy)
