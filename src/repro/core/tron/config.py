"""TRON architectural configuration.

Defaults follow the flavour of design-space analysis the paper cites
(Section VI: "the specific architectural details ... were determined
through detailed design-space analysis"): 64x64 MR bank arrays (bounded
by the usable WDM channel count and the link budget), 16 attention-head
units so a BERT-large layer's 16 heads run in one wave, 8 arrays serving
the FF unit, and a 5 GHz photonic clock matched to the converter rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.core.engine.hbm.geometry import HBMGeometry
from repro.core.engine.membackend import list_memory_backends
from repro.core.serialization import config_from_dict, config_to_dict
from repro.electronics.digital import ControlUnit, SoftmaxLUT
from repro.electronics.memory import MemorySystem
from repro.errors import ConfigurationError
from repro.photonics.converters import ADC, DAC
from repro.photonics.devices import ActivationKind, SOAActivation
from repro.photonics.microring import MicroringDesign
from repro.photonics.noise import AnalogNoiseModel
from repro.photonics.pcm import PCMCell

#: Fixed by the paper's Fig. 5(a): seven MR bank arrays per attention head.
ARRAYS_PER_HEAD = 7


@dataclass
class TRONConfig:
    """Architectural parameters of a TRON instance.

    Attributes:
        num_head_units: parallel attention-head units (heads beyond this
            count are processed in extra waves).
        array_rows: K of each K x N MR bank array.
        array_cols: N of each array (wavelengths per waveguide).
        num_linear_arrays: arrays implementing the MHA output linear layer.
        num_ff_arrays: arrays shared by the FF unit's two dense layers.
        clock_ghz: photonic cycle rate.
        weight_refresh_cycles: cycles a weight tile stays resident before
            the DACs re-imprint it (weight-stationary window).
        bits: operand precision (the paper's 8-bit operating point).
        dac / adc: converter models (resolution is forced to ``bits``).
        design: MR design used by all arrays.
        softmax: digital softmax unit model.
        memory: HBM + global-buffer hierarchy.
        control: per-accelerator control/sequencing block.
        noise: analog noise model for functional simulation (None = ideal).
        pcm: optional non-volatile PCM weight cells for all arrays
            (paper conclusion's future-work direction); None = volatile
            DAC+tuning weight path.
        batch: inferences sharing one weight-streaming pass; throughput
            benches use > 1 to model steady-state serving.
        memory_backend: memory-model registry name (``"analytic"``,
            ``"hbm"``, ``"hbm-pim"``); the default is bit-identical to
            the pre-registry behaviour.
        hbm: device geometry of the trace-driven backends (ignored by
            ``"analytic"``).
    """

    num_head_units: int = 16
    array_rows: int = 64
    array_cols: int = 64
    num_linear_arrays: int = 2
    num_ff_arrays: int = 8
    clock_ghz: float = 5.0
    weight_refresh_cycles: int = 256
    bits: int = 8
    dac: DAC = field(default_factory=lambda: DAC(energy_per_conversion_pj=1.8))
    adc: ADC = field(default_factory=lambda: ADC(energy_per_conversion_pj=2.6))
    design: MicroringDesign = field(default_factory=MicroringDesign)
    softmax: SoftmaxLUT = field(default_factory=lambda: SoftmaxLUT(lanes=64))
    memory: MemorySystem = field(default_factory=MemorySystem)
    control: ControlUnit = field(default_factory=ControlUnit)
    activation: SOAActivation = field(
        default_factory=lambda: SOAActivation(kind=ActivationKind.RELU)
    )
    noise: Optional[AnalogNoiseModel] = None
    pcm: Optional[PCMCell] = None
    batch: int = 1
    memory_backend: str = "analytic"
    hbm: HBMGeometry = field(default_factory=HBMGeometry)

    def __post_init__(self) -> None:
        if self.num_head_units < 1:
            raise ConfigurationError(
                f"need >= 1 head unit, got {self.num_head_units}"
            )
        if self.array_rows < 1 or self.array_cols < 1:
            raise ConfigurationError(
                f"array dims must be >= 1, got "
                f"{self.array_rows}x{self.array_cols}"
            )
        if self.num_linear_arrays < 1 or self.num_ff_arrays < 1:
            raise ConfigurationError("linear/FF array counts must be >= 1")
        if self.clock_ghz <= 0.0:
            raise ConfigurationError(f"clock must be > 0 GHz, got {self.clock_ghz}")
        if self.weight_refresh_cycles < 1:
            raise ConfigurationError(
                "weight refresh window must be >= 1 cycle, got "
                f"{self.weight_refresh_cycles}"
            )
        if self.bits < 2:
            raise ConfigurationError(f"need >= 2 bits, got {self.bits}")
        if self.batch < 1:
            raise ConfigurationError(f"batch must be >= 1, got {self.batch}")
        if self.memory_backend not in list_memory_backends():
            raise ConfigurationError(
                f"unknown memory backend {self.memory_backend!r}; "
                "registered backends: "
                + ", ".join(list_memory_backends())
            )

    def to_dict(self) -> Dict[str, Any]:
        """Every knob (nested device models included) as plain dicts.

        Example:
            >>> TRONConfig(batch=8).to_dict()["batch"]
            8
        """
        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TRONConfig":
        """Reconstruct a configuration from :meth:`to_dict` output.

        Missing fields keep their defaults; unknown fields and
        out-of-range values raise
        :class:`~repro.errors.ConfigurationError` with the offending
        path.

        Example:
            >>> TRONConfig.from_dict({"clock_ghz": 2.5}).clock_ghz
            2.5
            >>> cfg = TRONConfig(num_head_units=8)
            >>> TRONConfig.from_dict(cfg.to_dict()) == cfg
            True
        """
        return config_from_dict(cls, data)

    @property
    def cycle_ns(self) -> float:
        """Photonic cycle time."""
        return 1.0 / self.clock_ghz

    @property
    def total_arrays(self) -> int:
        """All MR bank arrays in the accelerator."""
        return (
            self.num_head_units * ARRAYS_PER_HEAD
            + self.num_linear_arrays
            + self.num_ff_arrays
        )

    @property
    def macs_per_cycle_peak(self) -> int:
        """Peak MAC rate if every array fires every cycle."""
        return self.total_arrays * self.array_rows * self.array_cols

    @property
    def peak_gops(self) -> float:
        """Peak throughput (2 ops per MAC) in GOPS."""
        return 2.0 * self.macs_per_cycle_peak * self.clock_ghz
