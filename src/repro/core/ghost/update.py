"""GHOST's update block: V SOA activation units (+ LUT softmax).

Section V.D: "the update block comprises V update units, each tasked with
applying a non-linear activation function ... RELU, sigmoid, and tanh are
implemented optically using semiconductor-optical-amplifiers (SOAs) ...
softmax [is] implemented using LUTs and simple digital circuits."
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.ghost.config import GHOSTConfig
from repro.core.reports import EnergyReport, LatencyReport
from repro.errors import ConfigurationError
from repro.nn.ops import softmax as softmax_ref


@dataclass(frozen=True)
class UpdateCost:
    """Cost of one layer's update stage over a whole graph."""

    latency: LatencyReport
    energy: EnergyReport


@dataclass
class UpdateBlock:
    """Functional + cost model of the update (activation) stage."""

    config: GHOSTConfig

    # ------------------------------------------------------------------
    # Functional model
    # ------------------------------------------------------------------

    def forward(self, features: np.ndarray, final_softmax: bool = False) -> np.ndarray:
        """Apply the nonlinearity to every vertex's feature vector."""
        features = np.asarray(features, dtype=float)
        if final_softmax:
            return softmax_ref(features, axis=-1)
        return self.config.activation.apply(features)

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------

    def layer_cost(
        self, num_nodes: int, out_dim: int, final_softmax: bool = False
    ) -> UpdateCost:
        """Cost of activating ``num_nodes`` vectors of width ``out_dim``.

        SOA activations process ``feature_lanes`` elements per lane per
        cycle; the optional output softmax is digital (LUT).
        """
        if num_nodes < 0 or out_dim < 1:
            raise ConfigurationError("invalid update dimensions")
        elements = num_nodes * out_dim
        per_wave_elements = self.config.lanes * self.config.feature_lanes
        waves = math.ceil(elements / per_wave_elements) if elements else 0
        soa_latency_ns = waves * self.config.cycle_ns
        soa_energy_pj = (
            elements * self.config.activation.power_mw * self.config.cycle_ns
        )
        digital_ns = 0.0
        digital_pj = 0.0
        if final_softmax:
            digital_ns = self.config.softmax.latency_ns(elements)
            digital_pj = self.config.softmax.energy_pj(elements)
        return UpdateCost(
            latency=LatencyReport(
                compute_ns=soa_latency_ns, digital_ns=digital_ns
            ),
            energy=EnergyReport(
                activation_pj=soa_energy_pj, digital_pj=digital_pj
            ),
        )
