"""GHOST architectural configuration.

The paper partitions the accelerator into V execution lanes, each owning
a gather unit, a reduce unit, a transform unit and an update unit, with N
edge-control units staging input vertices (Section V.D, "buffer and
partition").  Defaults reflect the same kind of design-space analysis as
TRON's: 16 lanes, 64-vertex input blocks, 64x64 transform arrays, and
weight DACs shared across all lanes (every lane applies the *same*
layer weights, so one DAC bank can drive all transform arrays).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.core.engine.hbm.geometry import HBMGeometry
from repro.core.engine.membackend import list_memory_backends
from repro.core.serialization import config_from_dict, config_to_dict
from repro.electronics.digital import ControlUnit, SoftmaxLUT
from repro.electronics.memory import HBMChannel, MemorySystem, SRAMBuffer
from repro.errors import ConfigurationError
from repro.photonics.converters import ADC, DAC
from repro.photonics.devices import ActivationKind, SOAActivation
from repro.photonics.microring import MicroringDesign
from repro.photonics.noise import AnalogNoiseModel
from repro.photonics.pcm import PCMCell


@dataclass
class GHOSTConfig:
    """Architectural parameters of a GHOST instance.

    Attributes:
        lanes: V — execution lanes (output vertices processed in parallel).
        edge_units: N — edge-control units / staged input vertices; also
            the reduce units' neighbour fan-in per pass.
        feature_lanes: feature rows a reduce unit sums per pass (Fig. 7a:
            one row per feature).
        array_rows / array_cols: transform-unit MR bank array geometry.
        clock_ghz: photonic cycle rate.
        weight_refresh_cycles: weight-stationary window of the transform
            arrays (a layer's weights persist across all vertices).
        weight_dac_sharing: transform arrays sharing one weight DAC bank
            (Section V.D "weight DAC sharing"; all lanes hold identical
            weights, so this defaults to V).
        use_partitioning: enable buffer-and-partition blocking.
        use_balancing: enable degree-sorted workload balancing.
        random_access_penalty: energy/latency multiplier for irregular
            (unblocked) off-chip accesses relative to sequential bursts.
        bits: operand precision.
        dac / adc / design / softmax / memory / control / activation /
        noise: shared device models, as in :class:`TRONConfig`.
        memory_backend: memory-model registry name (``"analytic"``,
            ``"hbm"``, ``"hbm-pim"``); the default is bit-identical to
            the pre-registry behaviour.
        hbm: device geometry of the trace-driven backends (ignored by
            ``"analytic"``).
    """

    lanes: int = 16
    edge_units: int = 32
    feature_lanes: int = 64
    array_rows: int = 64
    array_cols: int = 64
    clock_ghz: float = 5.0
    weight_refresh_cycles: int = 1024
    weight_dac_sharing: Optional[int] = None
    use_partitioning: bool = True
    use_balancing: bool = True
    random_access_penalty: float = 4.0
    bits: int = 8
    dac: DAC = field(default_factory=lambda: DAC(energy_per_conversion_pj=1.8))
    adc: ADC = field(default_factory=lambda: ADC(energy_per_conversion_pj=2.6))
    design: MicroringDesign = field(default_factory=MicroringDesign)
    softmax: SoftmaxLUT = field(default_factory=lambda: SoftmaxLUT(lanes=64))
    # GHOST's streaming aggregation lives or dies on memory bandwidth, so
    # the design pairs the chip with an HBM2e interface (16 channels of
    # 256 Gb/s = 512 GB/s) and a 4 MiB banked global buffer.
    memory: MemorySystem = field(
        default_factory=lambda: MemorySystem(
            hbm=HBMChannel(
                bandwidth_gbps=256.0, channels=16, energy_per_bit_pj=3.5
            ),
            global_buffer=SRAMBuffer(capacity_bytes=4 * 1024 * 1024, banks=32),
        )
    )
    control: ControlUnit = field(default_factory=ControlUnit)
    activation: SOAActivation = field(
        default_factory=lambda: SOAActivation(kind=ActivationKind.RELU)
    )
    noise: Optional[AnalogNoiseModel] = None
    pcm: Optional[PCMCell] = None
    memory_backend: str = "analytic"
    hbm: HBMGeometry = field(default_factory=HBMGeometry)

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise ConfigurationError(f"need >= 1 lane, got {self.lanes}")
        if self.edge_units < 1:
            raise ConfigurationError(
                f"need >= 1 edge unit, got {self.edge_units}"
            )
        if self.feature_lanes < 1:
            raise ConfigurationError(
                f"need >= 1 feature lane, got {self.feature_lanes}"
            )
        if self.array_rows < 1 or self.array_cols < 1:
            raise ConfigurationError(
                f"array dims must be >= 1, got "
                f"{self.array_rows}x{self.array_cols}"
            )
        if self.clock_ghz <= 0.0:
            raise ConfigurationError(f"clock must be > 0 GHz, got {self.clock_ghz}")
        if self.weight_refresh_cycles < 1:
            raise ConfigurationError("weight refresh window must be >= 1")
        if self.random_access_penalty < 1.0:
            raise ConfigurationError(
                "random access penalty must be >= 1, got "
                f"{self.random_access_penalty}"
            )
        if self.bits < 2:
            raise ConfigurationError(f"need >= 2 bits, got {self.bits}")
        if self.weight_dac_sharing is None:
            self.weight_dac_sharing = self.lanes
        if self.weight_dac_sharing < 1:
            raise ConfigurationError(
                f"weight DAC sharing must be >= 1, got {self.weight_dac_sharing}"
            )
        if self.memory_backend not in list_memory_backends():
            raise ConfigurationError(
                f"unknown memory backend {self.memory_backend!r}; "
                "registered backends: "
                + ", ".join(list_memory_backends())
            )

    def to_dict(self) -> Dict[str, Any]:
        """Every knob (nested device models included) as plain dicts.

        Example:
            >>> GHOSTConfig(lanes=8).to_dict()["lanes"]
            8
        """
        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GHOSTConfig":
        """Reconstruct a configuration from :meth:`to_dict` output.

        Missing fields keep their defaults; unknown fields and
        out-of-range values raise
        :class:`~repro.errors.ConfigurationError` with the offending
        path.

        Example:
            >>> GHOSTConfig.from_dict({"edge_units": 64}).edge_units
            64
            >>> cfg = GHOSTConfig(lanes=32)
            >>> GHOSTConfig.from_dict(cfg.to_dict()) == cfg
            True
        """
        return config_from_dict(cls, data)

    @property
    def cycle_ns(self) -> float:
        """Photonic cycle time."""
        return 1.0 / self.clock_ghz

    @property
    def peak_gops(self) -> float:
        """Peak throughput: V transform arrays plus V reduce units."""
        transform = self.lanes * self.array_rows * self.array_cols * 2
        reduce_ops = self.lanes * self.feature_lanes * self.edge_units
        return (transform + reduce_ops) * self.clock_ghz
