"""GHOST's aggregate block: edge-control, gather and reduce units.

Fig. 6/7(a): N edge-control units stage input vertices, V gather units
convert the staged features to analog tuning signals, and V reduce units
— optical coherent-summation blocks — reduce each output vertex's
neighbourhood to one feature vector.  A reduce unit sums up to
``edge_units`` neighbours across ``feature_lanes`` features per photonic
pass; max-aggregation swaps the interference stage for the optical
comparator (Fig. 7a).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.ghost.config import GHOSTConfig
from repro.core.reports import EnergyReport, LatencyReport
from repro.errors import ConfigurationError
from repro.graphs.graph import CSRGraph
from repro.nn.gnn import Reduction
from repro.photonics.summation import CoherentSummationUnit, OpticalComparator


@dataclass(frozen=True)
class AggregateCost:
    """Cost of aggregating one layer's features over a whole graph."""

    latency: LatencyReport
    energy: EnergyReport
    reduce_passes: int


@dataclass
class AggregateBlock:
    """Functional + cost model of the aggregate stage.

    Attributes:
        config: the owning GHOST configuration.
    """

    config: GHOSTConfig
    _summer: CoherentSummationUnit = field(init=False, repr=False)
    _comparator: OpticalComparator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._summer = CoherentSummationUnit(
            fan_in=self.config.edge_units,
            clock_ghz=self.config.clock_ghz,
            dac=self.config.dac,
            adc=self.config.adc,
            noise=self.config.noise,
        )
        self._comparator = OpticalComparator(
            fan_in=self.config.edge_units, clock_ghz=self.config.clock_ghz
        )

    # ------------------------------------------------------------------
    # Functional model
    # ------------------------------------------------------------------

    def forward(
        self,
        graph: CSRGraph,
        features: np.ndarray,
        reduction: Reduction = Reduction.SUM,
        include_self: bool = False,
    ) -> np.ndarray:
        """Optically aggregate every vertex's neighbourhood.

        Neighbour blocks of up to ``edge_units`` vertices pass through the
        reduce unit per photonic cycle; partial sums of successive blocks
        accumulate coherently (mean divides at the end in the gather
        units' scaling).
        """
        features = np.asarray(features, dtype=float)
        if features.shape[0] != graph.num_nodes:
            raise ConfigurationError(
                f"features rows {features.shape[0]} != graph nodes "
                f"{graph.num_nodes}"
            )
        fan_in = self.config.edge_units
        out = np.zeros_like(features)
        for v in range(graph.num_nodes):
            neighbours = graph.neighbors(v)
            if include_self:
                neighbours = np.concatenate([neighbours, [v]])
            if neighbours.size == 0:
                continue
            if reduction is Reduction.MAX:
                partial = np.full(features.shape[1], -np.inf)
                for start in range(0, neighbours.size, fan_in):
                    block = features[neighbours[start : start + fan_in]]
                    partial = np.maximum(
                        partial, self._comparator.max_rows(block.T)
                    )
                out[v] = partial
            else:
                partial = np.zeros(features.shape[1])
                for start in range(0, neighbours.size, fan_in):
                    block = features[neighbours[start : start + fan_in]]
                    partial = partial + self._summer.sum_rows(block.T)
                if reduction is Reduction.MEAN:
                    partial = partial / neighbours.size
                out[v] = partial
        return out

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------

    def node_cycles(self, degree: int, feature_dim: int) -> int:
        """Photonic cycles to aggregate one vertex.

        Thin scalar wrapper over :meth:`node_cycles_kernel` (the
        whole-graph batched form the cost path uses).
        """
        return int(
            self.node_cycles_kernel(np.asarray([degree]), feature_dim)[0]
        )

    def node_cycles_kernel(
        self, degrees: np.ndarray, feature_dim: int
    ) -> np.ndarray:
        """Photonic cycles per vertex for a whole degree array at once.

        The configuration-batched kernel behind the aggregate cost
        model: ceil-division is done in exact integer arithmetic
        (``-(-a // b)``), so the vectorized pass is bit-identical to a
        per-vertex scalar loop at any graph size.
        """
        degrees = np.asarray(degrees)
        neighbour_passes = -(-degrees // self.config.edge_units)
        feature_passes = -(-feature_dim // self.config.feature_lanes)
        return np.where(degrees > 0, neighbour_passes * feature_passes, 0)

    def layer_cost(
        self,
        graph: CSRGraph,
        feature_dim: int,
        reduction: Reduction = Reduction.SUM,
    ) -> AggregateCost:
        """Cost of one layer's aggregation over the whole graph.

        Latency: output vertices are dealt to the V lanes in waves; each
        wave finishes with its slowest vertex.  Workload balancing
        (Section V.D) sorts vertices by degree first, so each wave holds
        similar-degree vertices and the max-over-lane penalty collapses.

        The whole computation is one vectorized pass over the degree
        array (per-vertex cycles, wave maxima, reduce-pass counts) —
        this is the sweep engine's inner loop, and the historical
        per-vertex Python loop dominated every GHOST design point.
        """
        if feature_dim < 1:
            raise ConfigurationError(
                f"feature dim must be >= 1, got {feature_dim}"
            )
        degrees = graph.degrees().astype(int)
        cycles = self.node_cycles_kernel(degrees, feature_dim).astype(float)
        if self.config.use_balancing:
            order = np.argsort(cycles)[::-1]
            cycles_ordered = cycles[order]
        else:
            cycles_ordered = cycles
        lanes = self.config.lanes
        num_waves = -(-len(cycles_ordered) // lanes)
        # Pad the tail wave with zero-cycle vertices (cycles are >= 0,
        # so padding never changes a wave's maximum) and reduce each
        # wave in one reshape-max instead of a per-wave Python loop.
        padded = np.zeros(num_waves * lanes)
        padded[: len(cycles_ordered)] = cycles_ordered
        wave_max = padded.reshape(num_waves, lanes).max(axis=1)
        latency_cycles = float(wave_max.sum())
        latency = LatencyReport(
            compute_ns=latency_cycles * self.config.cycle_ns
        )

        # Energy: every neighbour contributes one arm of a coherent pass
        # per feature chunk; gather-unit DACs convert each staged feature.
        feature_passes = math.ceil(feature_dim / self.config.feature_lanes)
        total_arm_ops = int(degrees.sum()) * feature_passes
        per_arm_pj = self._summer.operation_energy_pj(active_arms=1)
        if reduction is Reduction.MAX:
            reduce_pj = total_arm_ops * (
                per_arm_pj + self._comparator.operation_energy_pj()
                / max(self.config.edge_units, 1)
            )
        else:
            reduce_pj = total_arm_ops * per_arm_pj
        # One DAC conversion per staged feature element (gather units
        # drive the reduce VCSELs with every neighbour's feature values).
        gather_dac_pj = (
            float(degrees.sum())
            * feature_dim
            * self.config.dac.energy_per_conversion_pj
        )
        energy = EnergyReport(laser_pj=reduce_pj, dac_pj=gather_dac_pj)
        positive = degrees > 0
        reduce_passes = int(
            int((-(-degrees[positive] // self.config.edge_units)).sum())
            * feature_passes
        )
        return AggregateCost(
            latency=latency, energy=energy, reduce_passes=reduce_passes
        )
