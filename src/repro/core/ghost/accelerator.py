"""GHOST top level: maps a GNN + graph and produces a RunReport.

Per layer, the three blocks (aggregate → combine → update) execute as a
vertex-streaming pipeline: while lane v transforms vertex i, its reduce
unit already aggregates vertex i+V (Section V.D "execution pipelining and
scheduling").  Memory traffic routes through the buffer-and-partition
schedule: blocked fetches are sequential HBM bursts; disabling
partitioning reverts to per-edge random accesses with the configured
penalty.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from repro.core.base import Accelerator, Workload, WorkloadKind
from repro.core.context import ExecutionContext
from repro.core.engine import (
    ArraySpec,
    MemoryModel,
    build_memory_backend,
    overlapped_stage_latency_ns,
    serial_waves,
)
from repro.core.engine.memo import LRUMemo
from repro.core.ghost.aggregate import AggregateBlock
from repro.core.ghost.combine import CombineBlock
from repro.core.ghost.config import GHOSTConfig
from repro.core.ghost.update import UpdateBlock
from repro.core.reports import EnergyReport, LatencyReport, RunReport
from repro.errors import ConfigurationError, MappingError
from repro.graphs.graph import CSRGraph
from repro.graphs.partition import GraphPartitioner
from repro.nn.counting import gnn_layer_op_count, gnn_op_count
from repro.nn.gnn import (
    GATLayer,
    GCNLayer,
    GINLayer,
    GNNConfig,
    GNNKind,
    GNNModel,
    GraphSAGELayer,
    Reduction,
)
from repro.nn.ops import relu

#: Context-bound clones retained per accelerator instance (a corner grid
#: is small; die sweeps churn through the cache instead of growing it).
_MAX_CONTEXT_CLONES = 8


@dataclass
class GHOST(Accelerator):
    """The silicon-photonic GNN accelerator (Sections V.D, VI).

    Example::

        ghost = GHOST()
        graph, _ = synthesize_dataset(get_dataset_stats("cora"))
        report = ghost.run_gnn(model_config, graph)
    """

    config: GHOSTConfig = field(default_factory=GHOSTConfig)
    ctx: Optional[ExecutionContext] = None
    aggregate: AggregateBlock = field(init=False, repr=False)
    combine: CombineBlock = field(init=False, repr=False)
    update: UpdateBlock = field(init=False, repr=False)
    memory_model: MemoryModel = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.aggregate = AggregateBlock(config=self.config)
        self.combine = CombineBlock(config=self.config, ctx=self.ctx)
        self.update = UpdateBlock(config=self.config)
        self.memory_model = build_memory_backend(
            self.config.memory_backend,
            self.config.memory,
            context=self.ctx,
            geometry=self.config.hbm,
        )
        self._context_clones: Dict[ExecutionContext, "GHOST"] = {}
        # Stage-cost memo: aggregate/combine/update/memory layer costs
        # keyed on exactly the inputs they depend on, so re-running on
        # evolving graph snapshots (temporal streams) reuses every stage
        # the delta left untouched — bit-identically, since the cached
        # value IS the value the stage would recompute.
        self._stage_memo = LRUMemo(max_entries=512)

    @property
    def name(self) -> str:
        return "GHOST"

    def array_specs(self) -> List[ArraySpec]:
        """The distinct MR bank array geometries this instance deploys
        (the transform units are GHOST's only MR bank arrays)."""
        return [
            ArraySpec.from_config(
                self.config, weight_dacs_shared=self.config.weight_dac_sharing
            )
        ]

    def _bound(self, ctx: Optional[ExecutionContext]) -> "GHOST":
        """This accelerator, bound to ``ctx`` (memoized per corner).

        The clone cache is bounded: looping one instance over many dies
        (distinct seeds) must not retain a block stack per die.
        """
        if ctx is None or ctx == self.ctx:
            return self
        if ctx not in self._context_clones:
            while len(self._context_clones) >= _MAX_CONTEXT_CLONES:
                self._context_clones.pop(next(iter(self._context_clones)))
            self._context_clones[ctx] = replace(self, ctx=ctx)
        return self._context_clones[ctx]

    def bind(self, ctx: Optional[ExecutionContext] = None) -> "GHOST":
        """The context-bound clone ``run(workload, ctx=...)`` dispatches
        to — public so callers can reach its memory model (e.g. a
        recorded DRAM command trace) after a run."""
        return self._bound(ctx)

    def describe(self) -> str:
        cfg = self.config
        return (
            f"GHOST: {cfg.lanes} lanes, {cfg.edge_units} edge units, "
            f"{cfg.array_rows}x{cfg.array_cols} transform arrays, "
            f"{cfg.clock_ghz:.0f} GHz, {cfg.peak_gops / 1e3:.1f} TOPS peak"
        )

    # ------------------------------------------------------------------
    # Workload dispatch
    # ------------------------------------------------------------------

    def _run_workload(
        self,
        workload: Workload,
        ctx: Optional[ExecutionContext] = None,
    ) -> RunReport:
        engine = self._bound(ctx)
        if workload.kind is WorkloadKind.GNN:
            report = engine.run_gnn(workload.model_config, workload.graph)
            # Figure tables key rows on the registry name, not the
            # graph-annotated label run_gnn produces for ad-hoc calls.
            return replace(report, workload=workload.name)
        if workload.kind is WorkloadKind.TEMPORAL_GNN:
            # Local import: the streaming package layers on top of the
            # core accelerators.
            from repro.streaming.temporal import run_temporal

            temporal = run_temporal(
                engine, workload.model_config, workload.snapshots
            )
            return replace(temporal.total, workload=workload.name)
        if workload.kind is WorkloadKind.MLP:
            return engine.run_mlp(workload)
        raise MappingError(
            f"GHOST cannot execute {workload.kind.value!r} workload "
            f"{workload.name!r}"
        )

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------

    def _memory_cost(
        self, graph: CSRGraph, feature_dim: int, out_dim: int
    ) -> tuple:
        """(EnergyReport, LatencyReport) for one layer's feature traffic.

        With buffer-and-partition (Section V.D) the layer sweeps input
        blocks sequentially while per-vertex accumulators stay on chip, so
        each vertex's features cross the HBM interface **once per sweep**
        as a sequential burst.  If the accumulators outgrow the global
        buffer, the output set splits into panels and the input sweep
        repeats per panel.  Without partitioning every edge is an
        irregular fetch, costed with the random-access penalty.
        """
        cfg = self.config
        bytes_per_value = cfg.bits // 8 or 1
        if cfg.use_partitioning:
            # Accumulators hold one out_dim-wide vector per vertex.
            accumulator_bytes = graph.num_nodes * out_dim * bytes_per_value
            panels = max(
                1,
                -(-accumulator_bytes // cfg.memory.global_buffer.capacity_bytes),
            )
            sweep_bytes = (
                panels * graph.num_nodes * feature_dim * bytes_per_value
            )
        else:
            sweep_bytes = graph.num_edges * feature_dim * bytes_per_value
        return self.memory_model.feature_sweep_cost(
            sweep_bytes=sweep_bytes,
            # Edge indices: 4 bytes per arc, sequential either way.
            index_bytes=4 * graph.num_edges,
            # Results written back through the global buffer.
            writeback_bytes=graph.num_nodes * out_dim * bytes_per_value,
            blocked=cfg.use_partitioning,
            random_access_penalty=cfg.random_access_penalty,
        )

    def _pim_memory_cost(
        self, graph: CSRGraph, feature_dim: int, out_dim: int
    ) -> tuple:
        """(EnergyReport, LatencyReport) when the gather runs near-bank.

        Features and edge indices never cross the HBM interface: the PIM
        units sum neighbour features in place (one MAC per edge-feature
        element) and only the per-vertex aggregates (``nodes x d_in``)
        stream on chip.  The layer's final results still bounce through
        the global buffer as in the photonic path.
        """
        cfg = self.config
        bytes_per_value = cfg.bits // 8 or 1
        feature_bytes = graph.num_nodes * feature_dim * bytes_per_value
        index_bytes = 4 * graph.num_edges
        reduce = self.memory_model.pim_reduce_cost(
            in_bank_bytes=feature_bytes + index_bytes,
            out_bytes=feature_bytes,
            macs=graph.num_edges * feature_dim,
        )
        writeback = self.memory_model.bounce_onchip(
            graph.num_nodes * out_dim * bytes_per_value
        )
        energy = EnergyReport(
            memory_pj=reduce.energy_pj + writeback.energy_pj
        )
        latency = LatencyReport(
            memory_ns=reduce.latency_ns + writeback.latency_ns
        )
        return energy, latency

    def _memoized(self, key: tuple, compute):
        """Stage-cost lookup: cached value or ``compute()``, recorded."""
        sentinel = object()
        value = self._stage_memo.get(key, sentinel)
        if value is sentinel:
            value = compute()
            self._stage_memo.put(key, value)
        return value

    def stage_memo_stats(self) -> Dict[str, float]:
        """Hit/miss accounting of the stage-cost memo (JSON-friendly).

        Temporal streams read this to surface how much of each
        snapshot's evaluation was reused from the previous deltas."""
        return self._stage_memo.stats.to_dict()

    def reset_stage_memo(self) -> None:
        """Drop cached stage costs and zero the accounting (cold start)."""
        self._stage_memo.clear()
        self._stage_memo.reset_stats()

    @staticmethod
    def _degree_digest(graph: CSRGraph) -> bytes:
        """Digest of the degree array — everything the aggregate stage's
        cost depends on besides the block configuration."""
        return hashlib.blake2b(
            np.ascontiguousarray(graph.degrees()).tobytes(), digest_size=16
        ).digest()

    def run_gnn(self, model: GNNConfig, graph: CSRGraph) -> RunReport:
        """Estimate one full-graph inference (Figs. 10 and 11 path)."""
        if graph.num_nodes < 1:
            raise ConfigurationError("graph must have at least one node")
        cfg = self.config
        pim_offload = getattr(self.memory_model, "pim_active", False)
        degree_digest = self._degree_digest(graph)
        total_latency = LatencyReport()
        total_energy = EnergyReport()
        for layer_idx, (d_in, d_out) in enumerate(model.layer_dims()):
            ops = gnn_layer_op_count(
                model.kind, graph, d_in, d_out, heads=model.heads
            )
            # Extra MAC work beyond the base (n x d_in x d_out) transform
            # is routed through the transform arrays (see CombineBlock).
            base_macs = graph.num_nodes * d_in * d_out
            extra_macs = max(ops.macs - base_macs, 0)
            comb = self._memoized(
                ("combine", graph.num_nodes, d_in, d_out, extra_macs),
                lambda: self.combine.layer_cost(
                    graph.num_nodes, d_in, d_out, extra_macs=extra_macs
                ),
            )
            final_softmax = layer_idx == model.num_layers - 1
            upd = self._memoized(
                ("update", graph.num_nodes, d_out, final_softmax),
                lambda: self.update.layer_cost(
                    graph.num_nodes, d_out, final_softmax=final_softmax
                ),
            )
            if pim_offload:
                # Gather runs near the banks: no aggregate stage on the
                # photonic side, features never cross the interface.
                agg_energy = EnergyReport()
                stage_latencies = [
                    comb.latency.total_ns,
                    upd.latency.total_ns,
                ]
                mem_energy, mem_latency = self._memoized(
                    (
                        "pim-memory",
                        graph.num_nodes,
                        graph.num_edges,
                        d_in,
                        d_out,
                    ),
                    lambda: self._pim_memory_cost(graph, d_in, d_out),
                )
            else:
                agg = self._memoized(
                    ("aggregate", degree_digest, d_in, model.reduction),
                    lambda: self.aggregate.layer_cost(
                        graph, d_in, model.reduction
                    ),
                )
                agg_energy = agg.energy
                stage_latencies = [
                    agg.latency.total_ns,
                    comb.latency.total_ns,
                    upd.latency.total_ns,
                ]
                mem_energy, mem_latency = self._memoized(
                    ("memory", graph.num_nodes, graph.num_edges, d_in, d_out),
                    lambda: self._memory_cost(graph, d_in, d_out),
                )
            # Pipelining: aggregate / combine / update overlap across
            # vertices, so the layer runs at the slowest stage plus the
            # others' fill time (approximated by the max + 10% fill).
            pipelined_ns = overlapped_stage_latency_ns(stage_latencies)
            # Memory streaming overlaps compute; only the excess stalls.
            stall_ns = self.memory_model.overlap_stall_ns(
                mem_latency.total_ns, pipelined_ns
            )
            total_latency = total_latency + LatencyReport(
                compute_ns=pipelined_ns,
                memory_ns=stall_ns,
                digital_ns=upd.latency.digital_ns,
            )
            total_energy = (
                total_energy
                + agg_energy
                + comb.energy
                + upd.energy
                + mem_energy
            )
        static_pj = (
            cfg.control.power_mw + cfg.memory.global_buffer.leakage_mw
        ) * total_latency.total_ns
        total_energy = total_energy + EnergyReport(static_pj=static_pj)
        ops = gnn_op_count(model, graph, bytes_per_value=cfg.bits // 8 or 1)
        workload = f"{model.name}/{graph.num_nodes}n-{graph.num_edges}e"
        return RunReport(
            platform=self.name,
            workload=workload,
            ops=ops,
            latency=total_latency,
            energy=total_energy,
            bits_per_value=cfg.bits,
        )

    def run_mlp(self, workload: Workload) -> RunReport:
        """Estimate one batched MLP inference on the transform arrays.

        Each sample routes through the lanes like a vertex with no
        neighbours: the combine block applies every dense layer and the
        update block's SOAs activate the hidden outputs.  Weights stream
        from HBM once; activations bounce through the global buffer.
        """
        cfg = self.config
        executor = self.combine.executor
        cycle_ns = cfg.cycle_ns
        samples = workload.samples
        dims = list(workload.layer_dims)
        total_cycles = 0
        latency_cycles = 0
        soa_pj = 0.0
        for i, (d_in, d_out) in enumerate(dims):
            per_sample = executor.cycles_for(d_out, d_in, batch=1)
            latency_cycles += serial_waves(samples, cfg.lanes) * per_sample
            total_cycles += samples * per_sample
            if i < len(dims) - 1:  # hidden activations only
                soa_pj += samples * d_out * cfg.activation.power_mw * cycle_ns
        compute_latency = LatencyReport(compute_ns=latency_cycles * cycle_ns)
        compute_energy = executor.energy_for_cycles(
            total_cycles, weight_refresh_cycles=cfg.weight_refresh_cycles
        ) + EnergyReport(activation_pj=soa_pj)

        bytes_per_value = cfg.bits // 8 or 1
        ops = workload.op_count(bytes_per_value=bytes_per_value)
        memory_energy, memory_latency = self.memory_model.weight_stream_cost(
            weight_bytes=ops.weight_bytes,
            activation_bounce_bytes=2 * ops.activation_bytes,
            compute_ns=compute_latency.total_ns,
        )

        latency = compute_latency + memory_latency
        static_pj = (
            cfg.control.power_mw + cfg.memory.global_buffer.leakage_mw
        ) * latency.total_ns
        energy = compute_energy + memory_energy + EnergyReport(static_pj=static_pj)
        return RunReport(
            platform=self.name,
            workload=workload.name,
            ops=ops,
            latency=latency,
            energy=energy,
            bits_per_value=cfg.bits,
        )

    # ------------------------------------------------------------------
    # Functional model
    # ------------------------------------------------------------------

    def forward(
        self, model: GNNModel, graph: CSRGraph, features: np.ndarray
    ) -> np.ndarray:
        """Functional optical inference of a whole GNN.

        GCN / GraphSAGE / GIN layers run fully through the optical blocks
        (aggregate -> transform -> SOA).  GAT layers run their projection
        through the transform arrays and the attention softmax digitally,
        using the reference attention math for coefficient routing.
        """
        x = np.asarray(features, dtype=float)
        last = len(model.layers) - 1
        for i, layer in enumerate(model.layers):
            activate = i < last
            if isinstance(layer, GCNLayer):
                degrees = graph.degrees() + 1.0
                norm = 1.0 / np.sqrt(degrees)
                scaled = x * norm[:, None]
                agg = self.aggregate.forward(
                    graph, scaled, Reduction.SUM, include_self=True
                )
                agg = agg * norm[:, None]
                x = self.combine.forward(layer.weight, agg)
            elif isinstance(layer, GraphSAGELayer):
                agg = self.aggregate.forward(graph, x, Reduction.MEAN)
                x = self.combine.forward(
                    layer.weight_self, x
                ) + self.combine.forward(layer.weight_neigh, agg)
            elif isinstance(layer, GINLayer):
                agg = self.aggregate.forward(graph, x, Reduction.SUM)
                combined = (1.0 + layer.eps) * x + agg
                hidden = relu(self.combine.forward(layer.w1, combined))
                x = self.combine.forward(layer.w2, hidden)
            elif isinstance(layer, GATLayer):
                # Projection optical, attention routing digital/reference.
                x = layer.forward(graph, x, activate=False)
            else:  # pragma: no cover - model zoo is closed
                raise ConfigurationError(
                    f"unsupported layer type {type(layer).__name__}"
                )
            if activate:
                x = self.update.forward(x)
        return x
