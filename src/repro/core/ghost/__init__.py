"""GHOST: the silicon-photonic GNN accelerator (paper Section V.D).

Structure mirrors the paper's Figs. 6 and 7:

- :mod:`repro.core.ghost.config` — architectural parameters (V execution
  lanes, N edge-control units, transform-array geometry).
- :mod:`repro.core.ghost.aggregate` — the aggregate block: edge-control,
  gather, and coherent-summation reduce units with sum/mean/max support.
- :mod:`repro.core.ghost.combine` — the combine block's transform units
  (MR bank arrays applying the learned linear transformation).
- :mod:`repro.core.ghost.update` — the update block's SOA activation
  units and LUT softmax.
- :mod:`repro.core.ghost.accelerator` — whole-model mapping with
  buffer-and-partition, workload balancing and weight-DAC sharing.
"""

from repro.core.ghost.config import GHOSTConfig
from repro.core.ghost.aggregate import AggregateBlock
from repro.core.ghost.combine import CombineBlock
from repro.core.ghost.update import UpdateBlock
from repro.core.ghost.accelerator import GHOST

__all__ = [
    "GHOSTConfig",
    "AggregateBlock",
    "CombineBlock",
    "UpdateBlock",
    "GHOST",
]
