"""Array-resident (structure-of-arrays) GHOST cost evaluators.

Transcribes the scalar GNN cost path
(:mod:`repro.core.ghost.accelerator`, :mod:`~repro.core.ghost.aggregate`,
:mod:`~repro.core.ghost.combine`, :mod:`~repro.core.ghost.update`) into
per-point NumPy columns, operation for operation, so a materialized
point is bit-identical to ``GHOST(config).run(workload, ctx=ctx)``.

The expensive per-point structures of the scalar path collapse into
grouped scalar computations:

- degree-dependent aggregation latency reduces, for the default
  balanced schedule, to one precomputed head-sum per (edge units,
  lanes) pair — sorted-descending wave maxima are the wave heads, so
  the whole wave reduction is a strided sum over the sorted neighbour
  passes, scaled by the layer's feature-pass count;
- coherent-summer / comparator energies, memory traffic and softmax
  LUT curves run once per distinct device group and broadcast;
- only the integer tiling arithmetic (exact ceiling divisions) and the
  float accumulation chain run per point.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import WorkloadKind
from repro.core.context import ExecutionContext
from repro.core.engine.matmul import ArraySpec
from repro.core.engine.soa import (
    ColumnEnergy,
    ColumnLatency,
    breakdown_columns,
    build_soa_memory_model,
    ceil_div,
    energy_for_cycles_columns,
    group_indices,
    memory_context_key,
    register_soa_evaluator,
    resolve_array_physics,
    weight_stream_columns,
)
from repro.core.ghost.config import GHOSTConfig
from repro.core.reports import StackedRunReports
from repro.errors import ConfigurationError
from repro.nn.counting import gnn_layer_op_count, gnn_op_count
from repro.nn.gnn import Reduction
from repro.photonics.summation import CoherentSummationUnit, OpticalComparator


class _GhostColumns:
    """Per-point knob columns plus grouped physics for a GHOST batch."""

    def __init__(
        self,
        configs: Sequence[GHOSTConfig],
        contexts: Sequence[Optional[ExecutionContext]],
    ) -> None:
        self.configs = configs
        self.contexts = contexts
        self.n = len(configs)
        self.specs = [
            ArraySpec.from_config(
                cfg, weight_dacs_shared=cfg.weight_dac_sharing
            )
            for cfg in configs
        ]
        self.usable_rows, self.usable_cols, correction = resolve_array_physics(
            self.specs, contexts
        )
        self.cycle_ns = np.array([cfg.cycle_ns for cfg in configs])
        self.lanes = np.array([cfg.lanes for cfg in configs], dtype=np.int64)
        self.activation_power = np.array(
            [cfg.activation.power_mw for cfg in configs]
        )
        self.bits = [cfg.bits for cfg in configs]
        self.static_mw = np.array(
            [
                cfg.control.power_mw + cfg.memory.global_buffer.leakage_mw
                for cfg in configs
            ]
        )
        self.breakdown = breakdown_columns(
            self.specs,
            [cfg.weight_refresh_cycles for cfg in configs],
            correction,
            self.cycle_ns,
        )
        self.groups = len(set(zip(self.specs, contexts)))

    def tile_cycles(self, out_rows: int, inner: int) -> np.ndarray:
        """Per-point cycles for one vertex/sample transform
        (``ArrayExecutor.cycles_for`` with batch=1)."""
        if out_rows < 1 or inner < 1:
            raise ConfigurationError(
                f"matmul dims must be >= 1, got {out_rows}x{inner}"
            )
        return ceil_div(out_rows, self.usable_rows) * ceil_div(
            inner, self.usable_cols
        )

    def ops_per_point(self, count) -> list:
        ops_list: list = [None] * self.n
        for bits, indices in group_indices(self.bits).items():
            ops = count(bits)
            for i in indices:
                ops_list[i] = ops
        return ops_list


class _AggregateColumns:
    """Grouped aggregate-block state over one graph.

    Degree arithmetic is shared across layers: neighbour-pass counts per
    distinct edge-unit width, their descending sort, and per (edge
    units, lanes) the sum of wave-head passes — the exact value of the
    scalar path's wave-max reduction for the balanced schedule, since a
    descending wave's maximum is its first element and all quantities
    are exact small integers.
    """

    def __init__(self, cols: _GhostColumns, degrees: np.ndarray) -> None:
        self.cols = cols
        self.degrees = degrees
        self.degree_sum = int(degrees.sum())
        self.num_nodes = len(degrees)
        self._neighbour_passes: Dict[int, np.ndarray] = {}
        self._sorted_passes: Dict[int, np.ndarray] = {}
        self._head_sums: Dict[Tuple[int, int], int] = {}
        self.latency_keys = [
            (
                cfg.edge_units,
                cfg.feature_lanes,
                cfg.lanes,
                cfg.use_balancing,
            )
            for cfg in cols.configs
        ]
        self.energy_keys = [
            (
                cfg.edge_units,
                cfg.feature_lanes,
                cfg.clock_ghz,
                cfg.dac,
                cfg.adc,
            )
            for cfg in cols.configs
        ]

    def neighbour_passes(self, edge_units: int) -> np.ndarray:
        passes = self._neighbour_passes.get(edge_units)
        if passes is None:
            passes = -(-self.degrees // edge_units)
            self._neighbour_passes[edge_units] = passes
        return passes

    def head_sum(self, edge_units: int, lanes: int) -> int:
        """Sum over waves of the largest neighbour-pass count per wave,
        for the descending (balanced) schedule."""
        key = (edge_units, lanes)
        total = self._head_sums.get(key)
        if total is None:
            sorted_passes = self._sorted_passes.get(edge_units)
            if sorted_passes is None:
                sorted_passes = np.sort(self.neighbour_passes(edge_units))[
                    ::-1
                ]
                self._sorted_passes[edge_units] = sorted_passes
            total = int(sorted_passes[::lanes].sum())
            self._head_sums[key] = total
        return total

    def latency_cycles(self, feature_dim: int) -> np.ndarray:
        """``AggregateBlock.layer_cost`` latency cycles, per point."""
        out = np.empty(self.cols.n)
        for (
            (edge_units, feature_lanes, lanes, balanced),
            indices,
        ) in group_indices(self.latency_keys).items():
            feature_passes = -(-feature_dim // feature_lanes)
            if balanced:
                cycles = float(
                    self.head_sum(edge_units, lanes) * feature_passes
                )
            else:
                per_node = np.where(
                    self.degrees > 0,
                    self.neighbour_passes(edge_units) * feature_passes,
                    0,
                ).astype(float)
                num_waves = -(-len(per_node) // lanes)
                padded = np.zeros(num_waves * lanes)
                padded[: len(per_node)] = per_node
                cycles = float(
                    padded.reshape(num_waves, lanes).max(axis=1).sum()
                )
            out[indices] = cycles
        return out

    def energy_columns(
        self, feature_dim: int, reduction: Reduction
    ) -> ColumnEnergy:
        """``AggregateBlock.layer_cost`` energy, per point."""
        laser = np.empty(self.cols.n)
        gather = np.empty(self.cols.n)
        for (
            (edge_units, feature_lanes, clock_ghz, dac, adc),
            indices,
        ) in group_indices(self.energy_keys).items():
            feature_passes = math.ceil(feature_dim / feature_lanes)
            total_arm_ops = self.degree_sum * feature_passes
            summer = CoherentSummationUnit(
                fan_in=edge_units, clock_ghz=clock_ghz, dac=dac, adc=adc
            )
            per_arm_pj = summer.operation_energy_pj(active_arms=1)
            if reduction is Reduction.MAX:
                comparator = OpticalComparator(
                    fan_in=edge_units, clock_ghz=clock_ghz
                )
                reduce_pj = total_arm_ops * (
                    per_arm_pj + comparator.operation_energy_pj()
                    / max(edge_units, 1)
                )
            else:
                reduce_pj = total_arm_ops * per_arm_pj
            laser[indices] = reduce_pj
            gather[indices] = (
                float(self.degree_sum)
                * feature_dim
                * dac.energy_per_conversion_pj
            )
        return ColumnEnergy(laser_pj=laser, dac_pj=gather)


def _softmax_columns(
    cols: _GhostColumns, elements: int
) -> Tuple[np.ndarray, np.ndarray]:
    latency = np.empty(cols.n)
    energy = np.empty(cols.n)
    for lut, indices in group_indices(
        [cfg.softmax for cfg in cols.configs]
    ).items():
        latency[indices] = lut.latency_ns(elements)
        energy[indices] = lut.energy_pj(elements)
    return latency, energy


def _memory_cost_columns(
    cols: _GhostColumns, graph, feature_dim: int, out_dim: int
) -> Tuple[ColumnEnergy, ColumnLatency]:
    """``GHOST._memory_cost`` / ``GHOST._pim_memory_cost`` per point
    (traffic once per distinct memory group).

    PIM-backed groups transcribe the scalar ``_pim_memory_cost``:
    features and edge indices are reduced near the banks and only the
    layer's results bounce through the global buffer.
    """
    memory_pj = np.empty(cols.n)
    memory_ns = np.empty(cols.n)
    keys = [
        (
            cfg.memory,
            cfg.bits,
            cfg.use_partitioning,
            cfg.random_access_penalty,
            memory_context_key(ctx),
            cfg.memory_backend,
            cfg.hbm,
        )
        for cfg, ctx in zip(cols.configs, cols.contexts)
    ]
    for (
        (memory, bits, partitioned, penalty, mem_ctx, backend, geometry),
        indices,
    ) in group_indices(keys).items():
        bytes_per_value = bits // 8 or 1
        model = build_soa_memory_model(backend, memory, mem_ctx, geometry)
        if getattr(model, "pim_active", False):
            feature_bytes = graph.num_nodes * feature_dim * bytes_per_value
            reduce = model.pim_reduce_cost(
                in_bank_bytes=feature_bytes + 4 * graph.num_edges,
                out_bytes=feature_bytes,
                macs=graph.num_edges * feature_dim,
            )
            writeback = model.bounce_onchip(
                graph.num_nodes * out_dim * bytes_per_value
            )
            memory_pj[indices] = reduce.energy_pj + writeback.energy_pj
            memory_ns[indices] = reduce.latency_ns + writeback.latency_ns
            continue
        if partitioned:
            accumulator_bytes = graph.num_nodes * out_dim * bytes_per_value
            panels = max(
                1,
                -(-accumulator_bytes // memory.global_buffer.capacity_bytes),
            )
            sweep_bytes = (
                panels * graph.num_nodes * feature_dim * bytes_per_value
            )
        else:
            sweep_bytes = graph.num_edges * feature_dim * bytes_per_value
        energy, latency = model.feature_sweep_cost(
            sweep_bytes=sweep_bytes,
            index_bytes=4 * graph.num_edges,
            writeback_bytes=graph.num_nodes * out_dim * bytes_per_value,
            blocked=partitioned,
            random_access_penalty=penalty,
        )
        memory_pj[indices] = energy.memory_pj
        memory_ns[indices] = latency.memory_ns
    return (
        ColumnEnergy(memory_pj=memory_pj),
        ColumnLatency(memory_ns=memory_ns),
    )


def evaluate_gnn(
    configs: Sequence[GHOSTConfig],
    contexts: Sequence[Optional[ExecutionContext]],
    workload,
) -> StackedRunReports:
    """``GHOST.run_gnn`` over a whole configuration batch."""
    model = workload.model_config
    graph = workload.graph
    if graph.num_nodes < 1:
        raise ConfigurationError("graph must have at least one node")
    cols = _GhostColumns(configs, contexts)
    aggregate = _AggregateColumns(cols, graph.degrees().astype(int))
    # PIM-backed points run the gather near the banks: no aggregate
    # stage on the photonic side (its energy is zero and its latency
    # leaves the stage pipeline) — both pipeline variants are evaluated
    # as columns and selected per point, matching the scalar branch.
    pim_mask = np.fromiter(
        (cfg.memory_backend == "hbm-pim" for cfg in configs),
        dtype=bool,
        count=cols.n,
    )

    total_latency = ColumnLatency()
    total_energy = ColumnEnergy()
    for layer_idx, (d_in, d_out) in enumerate(model.layer_dims()):
        agg_ns = aggregate.latency_cycles(d_in) * cols.cycle_ns
        agg_energy = aggregate.energy_columns(d_in, model.reduction)
        if pim_mask.any():
            agg_energy = ColumnEnergy(
                laser_pj=np.where(pim_mask, 0.0, agg_energy.laser_pj),
                dac_pj=np.where(pim_mask, 0.0, agg_energy.dac_pj),
            )

        ops = gnn_layer_op_count(
            model.kind, graph, d_in, d_out, heads=model.heads
        )
        base_macs = graph.num_nodes * d_in * d_out
        extra_macs = max(ops.macs - base_macs, 0)
        per_node = cols.tile_cycles(d_out, d_in)
        waves = np.ceil(graph.num_nodes / cols.lanes)
        macs_per_cycle = cols.usable_rows * cols.usable_cols
        extra_cycles_total = np.ceil(extra_macs / macs_per_cycle)
        extra_cycles_serial = np.ceil(extra_cycles_total / cols.lanes)
        comb_cycles = waves * per_node + extra_cycles_serial
        comb_ns = comb_cycles * cols.cycle_ns
        comb_energy = energy_for_cycles_columns(
            graph.num_nodes * per_node + extra_cycles_total, cols.breakdown
        )

        elements = graph.num_nodes * d_out
        per_wave_elements = cols.lanes * np.array(
            [cfg.feature_lanes for cfg in configs], dtype=np.int64
        )
        update_waves = np.ceil(elements / per_wave_elements)
        update_compute_ns = update_waves * cols.cycle_ns
        soa_pj = elements * cols.activation_power * cols.cycle_ns
        if layer_idx == model.num_layers - 1:
            digital_ns, digital_pj = _softmax_columns(cols, elements)
        else:
            digital_ns = np.zeros(cols.n)
            digital_pj = np.zeros(cols.n)
        update_energy = ColumnEnergy(
            activation_pj=soa_pj, digital_pj=digital_pj
        )

        memory_energy, memory_latency = _memory_cost_columns(
            cols, graph, d_in, d_out
        )

        update_total_ns = update_compute_ns + digital_ns
        stage_sum = (agg_ns + comb_ns) + update_total_ns
        bottleneck = np.maximum(np.maximum(agg_ns, comb_ns), update_total_ns)
        pipelined_ns = bottleneck + 0.1 * (stage_sum - bottleneck)
        if pim_mask.any():
            stage_sum_pim = comb_ns + update_total_ns
            bottleneck_pim = np.maximum(comb_ns, update_total_ns)
            pipelined_ns = np.where(
                pim_mask,
                bottleneck_pim + 0.1 * (stage_sum_pim - bottleneck_pim),
                pipelined_ns,
            )
        stall_ns = np.maximum(memory_latency.memory_ns - pipelined_ns, 0.0)
        total_latency = total_latency + ColumnLatency(
            compute_ns=pipelined_ns,
            memory_ns=stall_ns,
            digital_ns=digital_ns,
        )
        total_energy = (
            total_energy
            + agg_energy
            + comb_energy
            + update_energy
            + memory_energy
        )

    static_pj = cols.static_mw * total_latency.total
    total_energy = total_energy + ColumnEnergy(static_pj=static_pj)
    ops_list = cols.ops_per_point(
        lambda bits: gnn_op_count(model, graph, bytes_per_value=bits // 8 or 1)
    )
    return StackedRunReports(
        platform="GHOST",
        workload=workload.name,
        ops=ops_list,
        latency=total_latency.as_arrays(cols.n),
        energy=total_energy.as_arrays(cols.n),
        bits_per_value=cols.bits,
        groups=cols.groups,
    )


def evaluate_mlp(
    configs: Sequence[GHOSTConfig],
    contexts: Sequence[Optional[ExecutionContext]],
    workload,
) -> StackedRunReports:
    """``GHOST.run_mlp`` over a whole configuration batch."""
    cols = _GhostColumns(configs, contexts)
    samples = workload.samples
    dims = list(workload.layer_dims)
    total_cycles = np.zeros(cols.n, dtype=np.int64)
    latency_cycles = np.zeros(cols.n, dtype=np.int64)
    soa_pj: object = 0.0
    for i, (d_in, d_out) in enumerate(dims):
        per_sample = cols.tile_cycles(d_out, d_in)
        latency_cycles = latency_cycles + (
            ceil_div(samples, cols.lanes) * per_sample
        )
        total_cycles = total_cycles + samples * per_sample
        if i < len(dims) - 1:  # hidden activations only
            soa_pj = soa_pj + (
                samples * d_out * cols.activation_power * cols.cycle_ns
            )
    compute_latency = ColumnLatency(
        compute_ns=latency_cycles * cols.cycle_ns
    )
    compute_energy = energy_for_cycles_columns(
        total_cycles, cols.breakdown
    ) + ColumnEnergy(activation_pj=soa_pj)

    ops_list = cols.ops_per_point(
        lambda bits: workload.op_count(bytes_per_value=bits // 8 or 1)
    )
    memory_energy, memory_latency = weight_stream_columns(
        [cfg.memory for cfg in configs],
        contexts,
        ops_list,
        cols.bits,
        compute_latency.total,
        np.ones(cols.n, dtype=np.int64),
        backends=[cfg.memory_backend for cfg in configs],
        geometries=[cfg.hbm for cfg in configs],
    )
    latency = compute_latency + memory_latency
    static_pj = cols.static_mw * latency.total
    energy = (
        compute_energy
        + memory_energy
        + ColumnEnergy(static_pj=static_pj)
    )
    return StackedRunReports(
        platform="GHOST",
        workload=workload.name,
        ops=ops_list,
        latency=latency.as_arrays(cols.n),
        energy=energy.as_arrays(cols.n),
        bits_per_value=cols.bits,
        groups=cols.groups,
    )


register_soa_evaluator("GHOST", WorkloadKind.GNN, evaluate_gnn)
register_soa_evaluator("GHOST", WorkloadKind.MLP, evaluate_mlp)
