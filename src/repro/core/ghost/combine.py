"""GHOST's combine block: V transform units applying the learned weights.

Fig. 7(b): each lane's transform unit is an MR bank array performing the
matrix-vector multiplication of the combine stage non-coherently.  All
lanes hold identical layer weights, which is what makes the weight-DAC
sharing optimization possible (one DAC bank tunes every lane's arrays).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.context import ExecutionContext
from repro.core.engine import ArrayExecutor
from repro.core.ghost.config import GHOSTConfig
from repro.core.reports import EnergyReport, LatencyReport
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CombineCost:
    """Cost of one layer's combine stage over a whole graph."""

    latency: LatencyReport
    energy: EnergyReport
    array_cycles: int


@dataclass
class CombineBlock:
    """Functional + cost model of the combine (transform) stage."""

    config: GHOSTConfig
    ctx: Optional[ExecutionContext] = None
    _executor: ArrayExecutor = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._executor = ArrayExecutor.from_config(
            self.config,
            weight_dacs_shared=self.config.weight_dac_sharing,
            ctx=self.ctx,
        )

    @property
    def executor(self) -> ArrayExecutor:
        """The block's array executor (shared with the MLP path)."""
        return self._executor

    # ------------------------------------------------------------------
    # Functional model
    # ------------------------------------------------------------------

    def forward(self, weights: np.ndarray, features: np.ndarray) -> np.ndarray:
        """Linear transform of every vertex: features @ weights.

        Args:
            weights: (in_dim, out_dim) combine weights (as stored by the
                :mod:`repro.nn.gnn` layers).
            features: (num_nodes, in_dim) aggregated features.

        Returns:
            (num_nodes, out_dim) transformed features.
        """
        weights = np.asarray(weights, dtype=float)
        features = np.asarray(features, dtype=float)
        if features.ndim != 2 or weights.ndim != 2:
            raise ConfigurationError("features and weights must be 2-D")
        if features.shape[1] != weights.shape[0]:
            raise ConfigurationError(
                f"in_dim mismatch: features {features.shape}, "
                f"weights {weights.shape}"
            )
        # The array computes W @ x: hold weights^T, stream feature vectors.
        return self._executor.matmul(weights.T, features.T).T

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------

    def node_cycles(self, in_dim: int, out_dim: int) -> int:
        """Photonic cycles for one vertex's transform on one lane."""
        return self._executor.cycles_for(out_dim, in_dim, batch=1)

    def layer_cost(
        self,
        num_nodes: int,
        in_dim: int,
        out_dim: int,
        extra_macs: int = 0,
    ) -> CombineCost:
        """Cost of one layer's combine stage.

        Args:
            num_nodes: vertices to transform.
            in_dim / out_dim: layer dimensions.
            extra_macs: additional MAC work routed through the transform
                arrays (GAT attention scores, GIN's second MLP layer,
                GraphSAGE's second weight path), converted to array cycles
                at the array's MAC rate.
        """
        if num_nodes < 0 or in_dim < 1 or out_dim < 1:
            raise ConfigurationError("invalid combine dimensions")
        if extra_macs < 0:
            raise ConfigurationError(f"extra_macs must be >= 0, got {extra_macs}")
        per_node = self.node_cycles(in_dim, out_dim)
        waves = math.ceil(num_nodes / self.config.lanes) if num_nodes else 0
        extra_cycles_total = math.ceil(extra_macs / self._executor.macs_per_cycle)
        extra_cycles_serial = math.ceil(extra_cycles_total / self.config.lanes)
        latency_cycles = waves * per_node + extra_cycles_serial
        latency = LatencyReport(
            compute_ns=latency_cycles * self.config.cycle_ns
        )
        total_cycles = num_nodes * per_node + extra_cycles_total
        energy = self._executor.energy_for_cycles(
            total_cycles, weight_refresh_cycles=self.config.weight_refresh_cycles
        )
        return CombineCost(
            latency=latency, energy=energy, array_cycles=total_cycles
        )
