"""The execution context threaded through every run path.

The paper's stated open challenge is fabrication-process variation, and
the library models it (:mod:`repro.photonics.variation`,
:mod:`repro.photonics.thermal`, :mod:`repro.photonics.noise`) — an
:class:`ExecutionContext` is the single object that carries those models
into ``Accelerator.run(workload, ctx=...)``:

- a **process-variation sample**: a :class:`ProcessVariationModel` plus a
  seed picks one fabricated die; every MR bank array samples correlated
  resonance errors from it, which turn into standing correction tuning
  power (via thermal-eigenmode-decomposition heater solves) and into
  ring-yield gating of the usable array rows/columns.
- a **thermal corner**: an ambient temperature rise shifts every ring's
  resonance (thermo-optic drift) and derates the HBM interface (hotter
  DRAM refreshes more often).
- an **analog noise model** for the functional simulation path.

Contexts are frozen and hashable, so the engine's memoized
device-physics curves key on them — corner A's numbers never pollute
corner B's.  A ``None`` context (or the default :data:`NOMINAL` context)
leaves every cost bit-identical to the nominal, context-free path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.serialization import config_from_dict, config_to_dict
from repro.errors import ConfigurationError
from repro.photonics.noise import AnalogNoiseModel
from repro.photonics.variation import ProcessVariationModel

#: Stride between the derived seeds of consecutive Monte-Carlo samples
#: (see :meth:`ExecutionContext.for_sample`).
SAMPLE_SEED_STRIDE = 1 << 20


@dataclass(frozen=True)
class ThermalCorner:
    """One ambient operating corner of the package.

    Attributes:
        name: corner name as it appears in sweep labels and tables.
        ambient_delta_k: ambient temperature rise over the calibration
            point; shifts every ring's resonance by ``drift_nm_per_k``
            per kelvin.
        drift_nm_per_k: thermo-optic resonance drift of the rings
            (~0.08 nm/K for silicon MRs); also converts required
            resonance corrections into heater temperature targets.
        hbm_derate: fraction of nominal HBM bandwidth available at this
            corner (hot DRAM spends more time refreshing); 1.0 = nominal.

    Example:
        >>> corner = ThermalCorner(name="hot", ambient_delta_k=30.0)
        >>> round(corner.resonance_offset_nm, 2)   # 30 K x 0.08 nm/K
        2.4
    """

    name: str = "nominal"
    ambient_delta_k: float = 0.0
    drift_nm_per_k: float = 0.08
    hbm_derate: float = 1.0

    def __post_init__(self) -> None:
        if self.drift_nm_per_k <= 0.0:
            raise ConfigurationError(
                f"thermal drift must be > 0 nm/K, got {self.drift_nm_per_k}"
            )
        if not 0.0 < self.hbm_derate <= 1.0:
            raise ConfigurationError(
                f"HBM derate must be in (0, 1], got {self.hbm_derate}"
            )

    @property
    def resonance_offset_nm(self) -> float:
        """Uniform resonance shift of every ring at this corner."""
        return self.ambient_delta_k * self.drift_nm_per_k


@dataclass(frozen=True)
class PinnedArrayPhysics:
    """Explicitly pinned context physics for one array geometry.

    The vectorized Monte-Carlo engine computes yield gating and
    correction power for hundreds of samples in one batched numpy pass,
    then replays representative samples through the ordinary run path by
    pinning the outcome instead of re-sampling it.

    Attributes:
        usable_rows / usable_cols: yield-gated array dimensions.
        correction_power_mw: standing variation-correction tuning power
            of the whole array (all banks).

    Example:
        >>> PinnedArrayPhysics(64, 64, 12.5).correction_power_mw
        12.5
    """

    usable_rows: int
    usable_cols: int
    correction_power_mw: float

    def __post_init__(self) -> None:
        if self.usable_rows < 0 or self.usable_cols < 0:
            raise ConfigurationError("usable array dims must be >= 0")
        if self.correction_power_mw < 0.0:
            raise ConfigurationError("correction power must be >= 0 mW")


@dataclass(frozen=True)
class ExecutionContext:
    """One evaluation corner: variation sample + thermal + noise + seed.

    Attributes:
        variation: process-variation statistics; ``None`` evaluates the
            nominal (perfect-fabrication) corner.
        thermal: the ambient thermal corner.
        seed: selects the fabricated die — two contexts that differ only
            in seed are two different dies from the same process.
        use_ted: correct resonance errors with thermal eigenmode
            decomposition (heater crosstalk reused) instead of naive
            per-ring heater control.
        tuner_range_nm: correction range of the TO tuner; rings whose
            folded resonance error exceeds it are dead (yield gating).
            ``None`` uses 0.55 x FSR, enough for any folded error.
        noise: analog noise model for the functional path; excluded from
            equality/hashing because it never affects cost physics.
        pinned: explicit per-geometry physics overrides, keyed by
            ``(rows, cols)`` (see :class:`PinnedArrayPhysics`).

    Example:
        >>> ExecutionContext().is_nominal        # default = nominal
        True
        >>> from repro.photonics.variation import ProcessVariationModel
        >>> ctx = ExecutionContext(variation=ProcessVariationModel(), seed=7)
        >>> ctx.affects_arrays, ctx.is_nominal
        (True, False)
        >>> ctx.for_sample(0).seed != ctx.for_sample(1).seed   # two dies
        True
    """

    variation: Optional[ProcessVariationModel] = None
    thermal: ThermalCorner = ThermalCorner()
    seed: int = 0
    use_ted: bool = True
    tuner_range_nm: Optional[float] = None
    noise: Optional[AnalogNoiseModel] = field(default=None, compare=False)
    pinned: Tuple[Tuple[Tuple[int, int], PinnedArrayPhysics], ...] = ()

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ConfigurationError(f"seed must be >= 0, got {self.seed}")
        if self.tuner_range_nm is not None and self.tuner_range_nm <= 0.0:
            raise ConfigurationError(
                f"tuner range must be > 0 nm, got {self.tuner_range_nm}"
            )

    @property
    def affects_arrays(self) -> bool:
        """Whether array physics (tuning power, yield) departs nominal."""
        return (
            self.variation is not None
            or self.thermal.resonance_offset_nm != 0.0
            or bool(self.pinned)
        )

    @property
    def affects_memory(self) -> bool:
        """Whether the memory system departs nominal at this corner."""
        return self.thermal.hbm_derate != 1.0

    @property
    def is_nominal(self) -> bool:
        """True if every cost model behaves exactly as with no context."""
        return not (self.affects_arrays or self.affects_memory)

    def pinned_for(self, rows: int, cols: int) -> Optional[PinnedArrayPhysics]:
        """The pinned physics entry for a geometry, if any."""
        for (r, c), physics in self.pinned:
            if (r, c) == (rows, cols):
                return physics
        return None

    def with_pinned(
        self, entries: Mapping[Tuple[int, int], PinnedArrayPhysics]
    ) -> "ExecutionContext":
        """This context with explicit per-geometry physics overrides."""
        return replace(
            self,
            variation=None,
            pinned=tuple(sorted(entries.items())),
        )

    def to_dict(self) -> Dict[str, Any]:
        """The context (variation, thermal, seed, ...) as plain dicts.

        Example:
            >>> ExecutionContext(seed=7).to_dict()["seed"]
            7
        """
        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExecutionContext":
        """Reconstruct a context from :meth:`to_dict` output.

        Missing fields keep their defaults; unknown fields and
        out-of-range values raise
        :class:`~repro.errors.ConfigurationError` with the offending
        path.

        Example:
            >>> ctx = ExecutionContext(
            ...     variation=ProcessVariationModel(), seed=3)
            >>> ExecutionContext.from_dict(ctx.to_dict()) == ctx
            True
            >>> ExecutionContext.from_dict({"seeed": 3})
            Traceback (most recent call last):
                ...
            repro.errors.ConfigurationError: ExecutionContext: unknown field(s) ['seeed']; valid fields: ['noise', 'pinned', 'seed', 'thermal', 'tuner_range_nm', 'use_ted', 'variation']
        """
        return config_from_dict(cls, data)

    def for_sample(self, index: int) -> "ExecutionContext":
        """The context of Monte-Carlo sample ``index`` (a distinct die).

        Derived deterministically from the base seed so a naive scalar
        sweep over samples and the batched vectorized engine draw exactly
        the same dies.
        """
        if index < 0:
            raise ConfigurationError(f"sample index must be >= 0, got {index}")
        return replace(self, seed=self.seed * SAMPLE_SEED_STRIDE + index + 1)


#: The default context: every cost path is bit-identical to ``ctx=None``.
NOMINAL = ExecutionContext()


def standard_corners() -> Dict[str, ExecutionContext]:
    """The canonical corner grid swept by ``repro corners`` and the
    corner axis of the sweep engine.

    - **nominal** — perfect fabrication, calibration-point ambient.
    - **typical** — the default process-variation statistics.
    - **slow-hot** — wide variation plus a +30 K ambient with HBM derate.
    - **fast-cold** — tight (well-controlled) process, cool ambient.

    Example:
        >>> sorted(standard_corners())
        ['fast-cold', 'nominal', 'slow-hot', 'typical']
        >>> standard_corners()["nominal"].is_nominal
        True
    """
    return {
        "nominal": ExecutionContext(),
        "typical": ExecutionContext(variation=ProcessVariationModel()),
        "slow-hot": ExecutionContext(
            variation=ProcessVariationModel(
                width_sigma_nm=3.0, thickness_sigma_nm=1.5
            ),
            thermal=ThermalCorner(
                name="slow-hot", ambient_delta_k=30.0, hbm_derate=0.9
            ),
        ),
        "fast-cold": ExecutionContext(
            variation=ProcessVariationModel(
                width_sigma_nm=1.0, thickness_sigma_nm=0.5
            ),
            thermal=ThermalCorner(name="fast-cold", ambient_delta_k=-10.0),
        ),
    }


def resolve_corner(name: str, seed: int = 0) -> Optional[ExecutionContext]:
    """The :class:`ExecutionContext` a named corner plus a seed denotes.

    This is the single resolution rule shared by the CLI
    (``--corner``/``--seed``) and the serving trace loader.  The nominal
    corner resolves to ``None`` — the context-free path — because a seed
    only picks a die where process variation exists.

    Example:
        >>> resolve_corner("nominal", seed=7) is None
        True
        >>> resolve_corner("typical", seed=7).seed
        7

    Raises:
        ConfigurationError: for unknown corner names.
    """
    corners = standard_corners()
    if name not in corners:
        raise ConfigurationError(
            f"unknown corner {name!r}; known corners: {sorted(corners)}"
        )
    base = corners[name]
    if base.is_nominal:
        return None
    return replace(base, seed=seed)
