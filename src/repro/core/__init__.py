"""The paper's primary contribution: the TRON and GHOST accelerators.

- :mod:`repro.core.reports` — structured latency/energy/run reports and
  the EPB / GOPS metric definitions shared by every platform model.
- :mod:`repro.core.base` — the accelerator + workload interfaces and the
  workload registry.
- :mod:`repro.core.scheduling` — pipeline latency composition.
- :mod:`repro.core.engine` — the shared photonic execution engine
  (tiled MR-bank matmul, memory-traffic model, pipeline composition).
- :mod:`repro.core.tron` — the transformer/LLM accelerator (Section V.C).
- :mod:`repro.core.ghost` — the GNN accelerator (Section V.D).
"""

from repro.core.reports import EnergyReport, LatencyReport, RunReport
from repro.core.base import (
    Accelerator,
    Workload,
    WorkloadKind,
    get_workload,
    list_workloads,
    register_workload,
)
from repro.core.context import (
    NOMINAL,
    ExecutionContext,
    PinnedArrayPhysics,
    ThermalCorner,
    standard_corners,
)
from repro.core.scheduling import PipelineStage, pipeline_latency_ns
from repro.core.tron import TRON, TRONConfig
from repro.core.ghost import GHOST, GHOSTConfig

__all__ = [
    "EnergyReport",
    "LatencyReport",
    "RunReport",
    "Accelerator",
    "Workload",
    "WorkloadKind",
    "get_workload",
    "list_workloads",
    "register_workload",
    "NOMINAL",
    "ExecutionContext",
    "PinnedArrayPhysics",
    "ThermalCorner",
    "standard_corners",
    "PipelineStage",
    "pipeline_latency_ns",
    "TRON",
    "TRONConfig",
    "GHOST",
    "GHOSTConfig",
]
