"""Open-loop arrival processes for the serving load generator.

A **closed-loop** load test submits a request, waits for the response,
and only then submits the next one — so the measured latency throttles
the offered load, and percentiles look flattering exactly when the
system is slowest (coordinated omission).  An **open-loop** generator
instead schedules arrival times *in advance* from a traffic model and
submits on schedule no matter how the system is doing; latency is
measured from the *scheduled arrival* to completion, which is what a
user behind a saturated service actually experiences.

:class:`ArrivalProcess` names the traffic model:

- ``uniform`` — deterministic arrivals at exactly ``rate_rps``.
- ``poisson`` — memoryless arrivals (exponential inter-arrival gaps),
  the canonical open-loop model.
- ``bursty`` — a two-state modulated Poisson process: geometric runs of
  requests arrive in a *burst* state (``burstiness`` times the mean
  rate) separated by runs in a slow state, with the slow rate chosen so
  the long-run mean stays ``rate_rps``.  This is the "bursty" arrival
  shape of flash-crowd traffic.

:func:`parse_arrivals` reads the CLI form (``poisson:5000``,
``bursty:5000:8``, ``uniform:200``), and :func:`latency_quantiles`
computes the p50/p95/p99 block every open-loop report carries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.errors import ConfigurationError

#: The supported arrival-process kinds.
ARRIVAL_KINDS = ("uniform", "poisson", "bursty")

#: Mean requests per state run of the bursty process.
BURST_RUN_LENGTH = 32


@dataclass(frozen=True)
class ArrivalProcess:
    """One open-loop traffic model: a kind plus its mean offered rate.

    Attributes:
        kind: one of :data:`ARRIVAL_KINDS`.
        rate_rps: long-run mean offered load, requests per second.
        burstiness: burst-state rate multiplier (``bursty`` only);
            the slow-state rate is derived so the mean stays
            ``rate_rps``.

    Example:
        >>> times = ArrivalProcess("poisson", 1000.0).times(8, seed=0)
        >>> len(times), bool((np.diff(times) >= 0).all())
        (8, True)
        >>> ArrivalProcess("warp", 10.0)
        Traceback (most recent call last):
            ...
        repro.errors.ConfigurationError: unknown arrival kind 'warp'; pick one of ('uniform', 'poisson', 'bursty')
    """

    kind: str
    rate_rps: float
    burstiness: float = 8.0

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ConfigurationError(
                f"unknown arrival kind {self.kind!r}; "
                f"pick one of {ARRIVAL_KINDS}"
            )
        if not self.rate_rps > 0.0:
            raise ConfigurationError(
                f"arrival rate must be > 0 req/s, got {self.rate_rps}"
            )
        if not self.burstiness > 1.0:
            raise ConfigurationError(
                f"burstiness must be > 1, got {self.burstiness}"
            )

    def times(self, num_requests: int, seed: int = 0) -> np.ndarray:
        """``num_requests`` scheduled arrival offsets (seconds, sorted).

        The schedule is deterministic in ``(kind, rate, burstiness,
        num_requests, seed)`` so benchmark runs are replayable.

        Example:
            >>> uniform = ArrivalProcess("uniform", 10.0).times(3)
            >>> [round(float(t), 3) for t in uniform]
            [0.0, 0.1, 0.2]
        """
        if num_requests < 1:
            raise ConfigurationError(
                f"need >= 1 arrival, got {num_requests}"
            )
        if self.kind == "uniform":
            return np.arange(num_requests, dtype=float) / self.rate_rps
        rng = np.random.default_rng(seed)
        if self.kind == "poisson":
            gaps = rng.exponential(1.0 / self.rate_rps, size=num_requests)
        else:  # bursty: two-state modulated Poisson, mean rate preserved
            # With half the requests in each state, the mean gap is
            # (1/b_on + 1/b_off) / (2 * rate); solving for mean rate
            # == rate_rps gives 1/b_off = 2 - 1/b_on.
            b_on = self.burstiness
            b_off = 1.0 / (2.0 - 1.0 / b_on)
            state_rate = {True: self.rate_rps * b_on,
                          False: self.rate_rps * b_off}
            gaps = np.empty(num_requests)
            filled = 0
            burst = bool(rng.integers(2))
            while filled < num_requests:
                run = 1 + int(rng.geometric(1.0 / BURST_RUN_LENGTH))
                run = min(run, num_requests - filled)
                gaps[filled:filled + run] = rng.exponential(
                    1.0 / state_rate[burst], size=run
                )
                filled += run
                burst = not burst
        times = np.cumsum(gaps)
        # Arrivals are offsets from the load generator's start; the
        # first request arrives after its own gap, not at t=0, which
        # keeps the offered rate honest for tiny request counts.
        return times

    def describe(self) -> str:
        """The CLI spelling of this process (``parse_arrivals`` inverse).

        Example:
            >>> parse_arrivals("bursty:500:4").describe()
            'bursty:500:4'
        """
        rate = f"{self.rate_rps:g}"
        if self.kind == "bursty":
            return f"bursty:{rate}:{self.burstiness:g}"
        return f"{self.kind}:{rate}"


def parse_arrivals(text: str) -> ArrivalProcess:
    """Parse the CLI arrival spec ``KIND:RATE[:BURSTINESS]``.

    Example:
        >>> process = parse_arrivals("poisson:5000")
        >>> process.kind, process.rate_rps
        ('poisson', 5000.0)
        >>> parse_arrivals("bursty:2000:16").burstiness
        16.0
        >>> parse_arrivals("5000")
        Traceback (most recent call last):
            ...
        repro.errors.ConfigurationError: arrival spec must look like 'poisson:RATE', 'bursty:RATE[:BURSTINESS]' or 'uniform:RATE', got '5000'
    """
    parts = str(text).split(":")
    if len(parts) < 2 or len(parts) > 3 or parts[0] not in ARRIVAL_KINDS:
        raise ConfigurationError(
            "arrival spec must look like 'poisson:RATE', "
            "'bursty:RATE[:BURSTINESS]' or 'uniform:RATE', "
            f"got {text!r}"
        )
    if len(parts) == 3 and parts[0] != "bursty":
        raise ConfigurationError(
            f"only 'bursty' takes a burstiness parameter, got {text!r}"
        )
    try:
        rate = float(parts[1])
    except ValueError:
        raise ConfigurationError(
            f"arrival rate must be a number, got {parts[1]!r}"
        ) from None
    kwargs = {}
    if len(parts) == 3:
        try:
            kwargs["burstiness"] = float(parts[2])
        except ValueError:
            raise ConfigurationError(
                f"burstiness must be a number, got {parts[2]!r}"
            ) from None
    return ArrivalProcess(parts[0], rate, **kwargs)


def latency_quantiles(latencies_s: Sequence[float]) -> Dict[str, float]:
    """The open-loop latency block: mean and p50/p95/p99 (seconds).

    Example:
        >>> block = latency_quantiles([0.001] * 98 + [0.101] * 2)
        >>> round(block["p50_latency_s"], 3), round(block["p99_latency_s"], 3)
        (0.001, 0.101)
    """
    if len(latencies_s) == 0:
        return {
            "mean_latency_s": 0.0,
            "p50_latency_s": 0.0,
            "p95_latency_s": 0.0,
            "p99_latency_s": 0.0,
        }
    values = np.asarray(latencies_s, dtype=float)
    p50, p95, p99 = np.percentile(values, (50, 95, 99))
    return {
        "mean_latency_s": float(values.mean()),
        "p50_latency_s": float(p50),
        "p95_latency_s": float(p95),
        "p99_latency_s": float(p99),
    }
