"""The request/response contract of the serving layer.

A :class:`ServeRequest` names everything that determines a cost report —
the workload, the target platform, the batch size folded into the
platform configuration, and the execution context (die + thermal corner)
— and a :class:`ServeResponse` carries the resulting
:class:`~repro.core.reports.RunReport` back together with serving
metadata: whether it was a cache hit, whether it was deduplicated
against an identical request in the same micro-batch, and the request's
service latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.base import WorkloadKind
from repro.core.context import ExecutionContext
from repro.core.reports import RunReport
from repro.errors import ConfigurationError

#: Valid ``ServeRequest.platform`` values.
PLATFORM_CHOICES = ("auto", "tron", "ghost")


@dataclass(frozen=True)
class ServeRequest:
    """One costing request: a frozen (workload, platform, ctx, batch).

    Attributes:
        workload: registered workload name (see
            :func:`repro.core.base.list_workloads`).
        platform: ``"tron"``, ``"ghost"``, or ``"auto"`` — auto routes
            GNN workloads to GHOST and everything else to TRON, exactly
            like the CLI.
        ctx: the evaluation corner (``None`` = nominal).
        batch: inferences sharing one weight-streaming pass; folded into
            the TRON configuration (GHOST costs full-graph inferences,
            so it only accepts ``batch=1``).

    Example:
        >>> ServeRequest(workload="BERT-base").platform
        'auto'
        >>> ServeRequest(workload="BERT-base", batch=0)
        Traceback (most recent call last):
            ...
        repro.errors.ConfigurationError: batch must be >= 1, got 0
    """

    workload: str
    platform: str = "auto"
    ctx: Optional[ExecutionContext] = None
    batch: int = 1

    def __post_init__(self) -> None:
        if not self.workload:
            raise ConfigurationError("a request needs a workload name")
        if self.platform not in PLATFORM_CHOICES:
            raise ConfigurationError(
                f"platform must be one of {PLATFORM_CHOICES}, "
                f"got {self.platform!r}"
            )
        if self.batch < 1:
            raise ConfigurationError(f"batch must be >= 1, got {self.batch}")

    def resolve_platform(self, kind: WorkloadKind) -> str:
        """The concrete platform this request runs on (auto-routing)."""
        if self.platform != "auto":
            return self.platform
        return "ghost" if kind is WorkloadKind.GNN else "tron"

    @classmethod
    def from_spec(cls, spec) -> "ServeRequest":
        """The request a run-kind :class:`~repro.api.ExperimentSpec`
        (or its dict form) denotes.

        The spec's context block resolves through the shared corner
        rule; its platform overrides may name only ``batch`` — the one
        knob the serving catalog parameterizes (anything else would
        silently serve a different platform than the spec describes).

        Example:
            >>> from repro.api import ExperimentSpec, PlatformSpec
            >>> spec = ExperimentSpec(
            ...     platform=PlatformSpec("tron", {"batch": 8}),
            ...     workload="BERT-base")
            >>> request = ServeRequest.from_spec(spec)
            >>> request.workload, request.batch
            ('BERT-base', 8)
        """
        from repro.api.spec import ExperimentSpec

        if isinstance(spec, dict):
            spec = ExperimentSpec.from_dict(spec)
        if spec.analysis.kind != "run":
            raise ConfigurationError(
                "only run-kind specs serve as requests; got analysis "
                f"kind {spec.analysis.kind!r}"
            )
        if not spec.workload:
            raise ConfigurationError("a serveable spec needs a workload")
        extra = sorted(set(spec.platform.overrides) - {"batch"})
        if extra:
            raise ConfigurationError(
                f"serving requests support only the 'batch' platform "
                f"override, got {extra}"
            )
        return cls(
            workload=spec.workload,
            platform=spec.platform.name,
            ctx=spec.context.resolve(),
            batch=int(spec.platform.overrides.get("batch", 1)),
        )


@dataclass
class ServeResponse:
    """The serving layer's answer to one :class:`ServeRequest`.

    Attributes:
        request: the originating request.
        report: the cost report, or ``None`` if the request failed
            (``error`` says why — e.g. the sampled die was dead).
        cached: served straight from the report cache.
        deduped: coalesced onto an identical request evaluated in the
            same micro-batch (shares that request's report object).
        error: failure description for dead dies / unmappable workloads.
        latency_s: service latency from scheduling start to resolution,
            including any batching delay.
    """

    request: ServeRequest
    report: Optional[RunReport]
    cached: bool = False
    deduped: bool = False
    error: Optional[str] = None
    latency_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the request produced a report."""
        return self.report is not None

    def to_dict(self) -> Dict:
        """JSON-serializable form of the response: the request fields as
        submitted (``platform`` is the requested target, possibly
        ``"auto"``; the report's own ``platform`` says where it ran),
        the serving metadata, and the report."""
        return {
            "workload": self.request.workload,
            "platform": self.request.platform,
            "batch": self.request.batch,
            "cached": self.cached,
            "deduped": self.deduped,
            "error": self.error,
            "latency_s": self.latency_s,
            "report": self.report.to_dict() if self.report else None,
        }
