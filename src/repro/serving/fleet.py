"""The sharded multi-process serving tier: :class:`ServingFleet`.

One :class:`~repro.serving.engine.ServingEngine` is a single process —
its throughput tops out at one core's worth of scheduler work.  The
fleet tier scales it out:

- **N worker processes**, each owning a private ``ServingEngine``
  (report cache + batching scheduler + physics memos).  Workers are fed
  entirely by plain documents over a multiprocessing queue
  (:func:`repro.serving.shard.request_to_wire`), so nothing but
  picklable dicts crosses the process boundary.
- A **shard router** (:class:`~repro.serving.shard.ShardRouter`) that
  hashes each request onto a fixed worker, so every shard's caches stay
  hot for its slice of the traffic.
- **Admission control** (:mod:`repro.serving.admission`): bounded
  per-shard in-flight queues and optional per-tenant token buckets.
  Past saturation the fleet *sheds explicitly* (an immediate
  :class:`FleetResponse` with ``shed=True``) instead of queueing
  without bound.
- An **open-loop load generator** (:meth:`ServingFleet.run_open_loop`)
  driven by :class:`~repro.serving.arrivals.ArrivalProcess` schedules,
  stamping every response with its *arrival-to-completion* latency —
  the honest percentile basis (no coordinated omission).

Requests and responses batch across the queues (``dispatch_batch`` per
queue item), which amortizes pickling to a few microseconds per request
— the IPC overhead `tools/profile_hotpaths.py --serving` makes visible.

A one-worker fleet produces responses whose report payloads are
bit-identical to the in-process engine on the same request stream (the
worker runs exactly the same scheduler code on exactly the same
documents); ``benchmarks/run_fleet_bench.py`` gates on this.

Example:
    >>> from repro.serving import ServeRequest
    >>> with ServingFleet(workers=1) as fleet:
    ...     response = fleet.serve([ServeRequest(workload="MLP-mnist")])[0]
    >>> response.ok, response.shed, response.report["platform"]
    (True, False, 'TRON')
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.serving.admission import AdmissionController
from repro.serving.arrivals import ArrivalProcess, latency_quantiles
from repro.serving.engine import LATENCY_WINDOW, ServingEngine
from repro.serving.request import ServeRequest
from repro.serving.shard import ShardRouter, request_to_wire, wire_to_request

#: Requests buffered per shard before a queue item is dispatched.
DISPATCH_BATCH = 64

#: Upper bound on requests a worker coalesces into one scheduler call.
WORKER_COALESCE = 256

#: Distinct request types whose routing + wire encoding the front door
#: memoizes (beyond it, routing still works — just uncached).
ROUTE_CACHE_BOUND = 65536


def merge_counters(dicts: Sequence[Dict]) -> Dict:
    """Sum worker accounting dicts recursively into one fleet view.

    Numeric leaves add, booleans OR, nested dicts merge; a ``hit_rate``
    sitting next to ``hits``/``misses`` counters is recomputed from the
    summed counters (rates never add).

    Example:
        >>> merge_counters([{"hits": 3, "misses": 1, "hit_rate": 0.75},
        ...                 {"hits": 1, "misses": 3, "hit_rate": 0.25}])
        {'hits': 4, 'misses': 4, 'hit_rate': 0.5}
    """
    merged: Dict = {}
    for entry in dicts:
        for key, value in entry.items():
            if isinstance(value, dict):
                merged[key] = merge_counters([merged.get(key, {}), value])
            elif isinstance(value, bool):
                merged[key] = bool(merged.get(key, False)) or value
            elif isinstance(value, (int, float)):
                merged[key] = merged.get(key, 0) + value
            else:
                merged[key] = value
    if "hit_rate" in merged and "hits" in merged and "misses" in merged:
        lookups = merged["hits"] + merged["misses"]
        merged["hit_rate"] = merged["hits"] / lookups if lookups else 0.0
    return merged


@dataclass
class FleetResponse:
    """The fleet's answer to one submission.

    Attributes:
        workload: the request's workload name.
        report: the serialized :class:`~repro.core.reports.RunReport`
            dict (``None`` for failures and sheds) — fleet responses
            carry *documents*, exactly what crossed the wire.
        cached / deduped: the worker's serving metadata.
        shed: rejected by admission control (never reached a worker).
        error: failure or shed reason.
        latency_s: the worker-side service latency.
        open_latency_s: arrival-to-completion latency on the parent
            clock — scheduled arrival (open loop) or submission time
            (closed loop) to response collection.
        shard / worker: where the request was routed / served.
    """

    workload: str
    report: Optional[Dict] = None
    cached: bool = False
    deduped: bool = False
    shed: bool = False
    error: Optional[str] = None
    latency_s: float = 0.0
    open_latency_s: float = 0.0
    shard: int = -1
    worker: int = -1

    @property
    def ok(self) -> bool:
        """Whether the request produced a report."""
        return self.report is not None


@dataclass
class OpenLoopResult:
    """One open-loop run: offered load in, honest percentiles out.

    ``throughput_rps`` counts *completed* requests over the span from
    first scheduled arrival to last completion; the latency block is
    arrival-to-completion over completed requests only (sheds are
    counted, not averaged in).
    """

    arrivals: str
    offered_rps: float
    submitted: int
    completed: int
    shed: int
    errors: int
    duration_s: float
    latency: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of run duration."""
        return self.completed / self.duration_s if self.duration_s else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form."""
        return {
            "arrivals": self.arrivals,
            "offered_rps": self.offered_rps,
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "errors": self.errors,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            **self.latency,
        }


@dataclass
class _Pending:
    """Parent-side bookkeeping of one in-flight request.

    ``future`` is only materialized on the public :meth:`submit` path;
    the whole-stream entry points skip it (a ``Future`` costs an RLock
    plus callback machinery per request) and read ``response`` directly
    after :meth:`~ServingFleet.drain` — the fleet's condition variable
    is the synchronization.
    """

    workload: str
    shard: int
    arrival_s: float
    future: Optional[Future] = None
    response: Optional[FleetResponse] = None

    def resolve(self, response: FleetResponse) -> None:
        """Deliver the response (future and/or direct slot)."""
        self.response = response
        if self.future is not None:
            self.future.set_result(response)


def _worker_main(
    worker_id: int,
    inbox,
    outbox,
    engine_kwargs: Dict[str, Any],
) -> None:
    """One shard: a private engine fed by wire documents.

    Reads ``("batch", [(id, wire_record), ...])`` items, greedily
    coalescing everything already queued (up to
    :data:`WORKER_COALESCE`) into one scheduler micro-batch, and
    replies with ``("batch", worker_id, [(id, response_dict), ...])``.
    A ``("stop", None)`` item drains the inbox, emits the engine's
    accounting as ``("stats", worker_id, {...})`` and exits.
    """
    engine = ServingEngine(**engine_kwargs)
    # Decode memo: the router tags each distinct request type with a
    # ``type_id``, so the (reflectively validating, ~100x slower than a
    # dict hit) ExecutionContext round-trip runs once per *type*, not
    # once per request.  Hot-shard traffic is exactly the repeated-type
    # case the fleet shards for.
    decoded: Dict[int, Any] = {}

    def decode(record):
        type_id = record.get("type_id")
        if type_id is None:
            return wire_to_request(record)
        request = decoded.get(type_id)
        if request is None:
            request = decoded[type_id] = wire_to_request(record)
        return request

    # Serialized-report memo: cache hits return the same RunReport
    # object, so its (breakdown-dict-building) to_dict runs once per
    # distinct report.  The report reference in the value keeps the id
    # stable for as long as the memo entry lives.
    report_payloads: Dict[int, tuple] = {}

    def encode(response):
        report = response.report
        if report is None:
            payload = None
        else:
            hit = report_payloads.get(id(report))
            if hit is None or hit[0] is not report:
                hit = (report, report.to_dict())
                report_payloads[id(report)] = hit
            payload = hit[1]
        return {
            "workload": response.request.workload,
            "platform": response.request.platform,
            "batch": response.request.batch,
            "cached": response.cached,
            "deduped": response.deduped,
            "error": response.error,
            "latency_s": response.latency_s,
            "report": payload,
        }

    stopping = False
    while not stopping:
        kind, payload = inbox.get()
        if kind == "stop":
            break
        batch = list(payload)
        while len(batch) < WORKER_COALESCE:
            try:
                kind, payload = inbox.get_nowait()
            except queue_module.Empty:
                break
            if kind == "stop":
                stopping = True
                break
            batch.extend(payload)
        ids = [request_id for request_id, _ in batch]
        requests = [decode(record) for _, record in batch]
        responses = engine.serve(requests)
        outbox.put(
            (
                "batch",
                worker_id,
                [
                    (request_id, encode(response))
                    for request_id, response in zip(ids, responses)
                ],
            )
        )
    from repro.core.engine import physics_cache_stats

    outbox.put(
        (
            "stats",
            worker_id,
            {
                "stats": engine.stats.to_dict(),
                "cache": engine.cache.stats.to_dict(),
                "scheduler": engine.scheduler.stats.to_dict(),
                "physics_cache": physics_cache_stats(),
            },
        )
    )


class ServingFleet:
    """N sharded worker processes behind one submission front door.

    Args:
        workers: worker-process count (= shard count).
        window: each worker engine's micro-batch window.
        cache_entries: each worker's report-cache bound.
        use_batched_physics: worker scheduler batched-physics path.
        max_queue: per-shard in-flight bound; submissions beyond it
            shed with an explicit response (see
            :mod:`repro.serving.admission`).
        tenant_rate_rps / tenant_burst: optional per-tenant quota.
        granularity: shard-key granularity (:class:`ShardRouter`).
        dispatch_batch: requests buffered per shard before a queue
            item is sent (IPC amortization).
        start_method: multiprocessing start method (default: ``fork``
            where available — workers inherit warmed module state —
            else the platform default).
    """

    def __init__(
        self,
        workers: int = 4,
        window: int = 64,
        cache_entries: int = 1024,
        use_batched_physics: bool = True,
        max_queue: int = 256,
        tenant_rate_rps: Optional[float] = None,
        tenant_burst: Optional[float] = None,
        granularity: str = "type",
        dispatch_batch: int = DISPATCH_BATCH,
        start_method: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"need >= 1 worker, got {workers}")
        if dispatch_batch < 1:
            raise ConfigurationError(
                f"dispatch_batch must be >= 1, got {dispatch_batch}"
            )
        self.workers = workers
        self.router = ShardRouter(num_shards=workers, granularity=granularity)
        self.admission = AdmissionController(
            max_queue=max_queue,
            tenant_rate_rps=tenant_rate_rps,
            tenant_burst=tenant_burst,
        )
        self.dispatch_batch = dispatch_batch
        self.worker_stats: Dict[int, Dict[str, Any]] = {}
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        ctx = multiprocessing.get_context(start_method)
        self._outbox = ctx.Queue()
        self._inboxes = [ctx.Queue() for _ in range(workers)]
        engine_kwargs = dict(
            cache_entries=cache_entries,
            max_pending=window,
            use_batched_physics=use_batched_physics,
        )
        self._processes = [
            ctx.Process(
                target=_worker_main,
                args=(i, self._inboxes[i], self._outbox, engine_kwargs),
                daemon=True,
                name=f"repro-fleet-{i}",
            )
            for i in range(workers)
        ]
        for process in self._processes:
            process.start()

        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self._next_id = 0
        self._routes: Dict[ServeRequest, tuple] = {}
        self._id_routes: Dict[int, tuple] = {}
        self._pending: Dict[int, _Pending] = {}
        self._in_flight = [0] * workers
        self._shard_counts = [0] * workers
        self._buffers: List[List] = [[] for _ in range(workers)]
        self._completed = 0
        self._errors = 0
        self._latency_sum_s = 0.0
        self._latencies: deque = deque(maxlen=LATENCY_WINDOW)
        self._first_submit_s: Optional[float] = None
        self._last_completion_s = 0.0
        self._closed = False
        self._collector = threading.Thread(
            target=self._collect, name="repro-fleet-collector", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def _now(self) -> float:
        """Seconds since fleet start (the fleet's shared clock)."""
        return time.perf_counter() - self._t0

    def _route(self, request: ServeRequest):
        """Memoized ``(shard, tagged wire record)`` of a request type.

        Routing (workload lookup, config fingerprint) and wire encoding
        (the exact :class:`ExecutionContext` round-trip) are pure in the
        request, so repeated types — the traffic the fleet shards for —
        pay them once.  The cached record carries a parent-assigned
        ``type_id`` the workers key their own decode memo on.
        """
        # Identity fast path: replayed streams submit the *same* request
        # objects, and `is`-checking skips the (nested-dataclass) hash.
        # The strong request reference in the value keeps the id valid.
        hit = self._id_routes.get(id(request))
        if hit is not None and hit[0] is request:
            return hit[1]
        try:
            entry = self._routes.get(request)
        except TypeError:  # unhashable payload: route uncached
            return self.router.shard_of(request), request_to_wire(request)
        if entry is None:
            shard = self.router.shard_of(request)
            record = request_to_wire(request)
            with self._lock:
                entry = self._routes.get(request)
                if entry is None:
                    if len(self._routes) >= ROUTE_CACHE_BOUND:
                        return shard, record
                    # The id must be assigned under the lock: two types
                    # sharing one id would collide in worker decode
                    # memos.
                    record["type_id"] = len(self._routes)
                    entry = (shard, record)
                    self._routes[request] = entry
        if len(self._id_routes) < ROUTE_CACHE_BOUND:
            self._id_routes[id(request)] = (request, entry)
        return entry

    def _submit_entry(
        self,
        request: ServeRequest,
        tenant: Optional[str],
        arrival_s: Optional[float],
        future: Optional[Future],
        route,
    ):
        """The one submission path: returns the in-flight ``_Pending``
        entry, or an immediate :class:`FleetResponse` for shed and
        unroutable requests (they never cross a process boundary)."""
        now = self._now()
        if arrival_s is None:
            arrival_s = now
        try:
            shard, record = (
                route if route is not None else self._route(request)
            )
        except ConfigurationError as exc:
            with self._lock:
                self._errors += 1
            return FleetResponse(workload=request.workload, error=str(exc))
        with self._lock:
            backlog = self._in_flight[shard]
        reason = self.admission.admit(
            in_flight=backlog, tenant=tenant, now_s=now
        )
        if reason is not None:
            return FleetResponse(
                workload=request.workload,
                shed=True,
                error=reason,
                shard=shard,
            )
        entry = _Pending(
            workload=request.workload,
            shard=shard,
            arrival_s=arrival_s,
            future=future,
        )
        with self._lock:
            if self._closed:
                raise ConfigurationError("fleet is closed")
            request_id = self._next_id
            self._next_id += 1
            self._pending[request_id] = entry
            self._in_flight[shard] += 1
            self._shard_counts[shard] += 1
            if self._first_submit_s is None:
                self._first_submit_s = arrival_s
            buffer = self._buffers[shard]
            buffer.append((request_id, record))
            ready = len(buffer) >= self.dispatch_batch
            if ready:
                self._buffers[shard] = []
        if ready:
            self._inboxes[shard].put(("batch", buffer))
        return entry

    def submit(
        self,
        request: ServeRequest,
        tenant: Optional[str] = None,
        arrival_s: Optional[float] = None,
    ) -> "Future[FleetResponse]":
        """Route one request through admission to its shard.

        ``arrival_s`` is the scheduled arrival on the fleet clock (open
        loop); it defaults to the submission instant (closed loop).
        Shed and unroutable requests resolve immediately — they never
        cross a process boundary.
        """
        future: "Future[FleetResponse]" = Future()
        out = self._submit_entry(request, tenant, arrival_s, future, None)
        if isinstance(out, FleetResponse):
            future.set_result(out)
        return future

    def flush(self) -> None:
        """Dispatch every buffered request to its shard queue."""
        for shard in range(self.workers):
            with self._lock:
                buffer = self._buffers[shard]
                self._buffers[shard] = []
            if buffer:
                self._inboxes[shard].put(("batch", buffer))

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Flush and wait until no request is in flight.

        Returns ``False`` on timeout.  If a worker process dies, its
        pending requests resolve with an error response instead of
        deadlocking the parent.
        """
        self.flush()
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._done:
            while self._pending:
                remaining = 0.25
                if deadline is not None:
                    remaining = min(remaining, deadline - time.monotonic())
                    if remaining <= 0.0:
                        return False
                self._done.wait(timeout=remaining)
                self._fail_dead_worker_pending()
        return True

    def _fail_dead_worker_pending(self) -> None:
        """Resolve pending entries whose worker process has died.

        Must be called with ``self._lock`` held (the ``_done``
        condition shares it).
        """
        dead = [
            shard
            for shard, process in enumerate(self._processes)
            if not process.is_alive()
        ]
        if not dead:
            return
        doomed = [
            (request_id, entry)
            for request_id, entry in self._pending.items()
            if entry.shard in set(dead)
        ]
        completion = self._now()
        resolved = []
        for request_id, entry in doomed:
            del self._pending[request_id]
            self._in_flight[entry.shard] -= 1
            self._errors += 1
            resolved.append(entry)
        if resolved:
            self._done.notify_all()
        for entry in resolved:
            entry.resolve(
                FleetResponse(
                    workload=entry.workload,
                    error=f"worker {entry.shard} died",
                    shard=entry.shard,
                    open_latency_s=completion - entry.arrival_s,
                )
            )

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------

    def _collect(self) -> None:
        """Collector thread: resolve responses, gather final stats."""
        stats_remaining = self.workers
        while stats_remaining:
            try:
                kind, worker_id, payload = self._outbox.get(timeout=0.25)
            except queue_module.Empty:
                if all(
                    not process.is_alive() for process in self._processes
                ) and self._outbox.empty():
                    break  # pragma: no cover - crashed-fleet escape hatch
                continue
            if kind == "stats":
                self.worker_stats[worker_id] = payload
                stats_remaining -= 1
                continue
            completion = self._now()
            resolved = []
            with self._lock:
                for request_id, response in payload:
                    entry = self._pending.pop(request_id, None)
                    if entry is None:  # pragma: no cover - protocol bug
                        continue
                    self._in_flight[entry.shard] -= 1
                    self._completed += 1
                    if response.get("report") is None:
                        self._errors += 1
                    open_latency = completion - entry.arrival_s
                    self._latency_sum_s += open_latency
                    self._latencies.append(open_latency)
                    self._last_completion_s = completion
                    resolved.append((entry, response, open_latency))
                self._done.notify_all()
            for entry, response, open_latency in resolved:
                entry.resolve(
                    FleetResponse(
                        workload=entry.workload,
                        report=response.get("report"),
                        cached=bool(response.get("cached")),
                        deduped=bool(response.get("deduped")),
                        error=response.get("error"),
                        latency_s=float(response.get("latency_s", 0.0)),
                        open_latency_s=open_latency,
                        shard=entry.shard,
                        worker=worker_id,
                    )
                )

    # ------------------------------------------------------------------
    # Whole-stream entry points
    # ------------------------------------------------------------------

    def serve(
        self,
        requests: Sequence[ServeRequest],
        tenants: Optional[Sequence[Optional[str]]] = None,
    ) -> List[FleetResponse]:
        """Closed-loop replay: submit everything, drain, responses in
        request order.

        A closed-loop caller *waits* at a full shard instead of being
        shed (backpressure) — shedding is the open-loop behavior, where
        arrivals cannot be paused.  Tenant-quota sheds still apply.
        """
        if tenants is None:
            tenants = [None] * len(requests)
        entries = []
        for request, tenant in zip(requests, tenants):
            try:
                route = self._route(request)
            except ConfigurationError:
                route = None  # _submit_entry resolves it to an error
            if route is not None:
                self._wait_for_room(route[0])
            entries.append(
                self._submit_entry(request, tenant, None, None, route)
            )
        self.drain()
        return [
            entry if isinstance(entry, FleetResponse) else entry.response
            for entry in entries
        ]

    def _wait_for_room(self, shard: int) -> None:
        """Block until ``shard`` is below its admission bound."""
        while True:
            with self._lock:
                backlog = self._in_flight[shard]
            if backlog < self.admission.max_queue:
                return
            self.flush()  # a buffered backlog cannot drain itself
            with self._done:
                self._done.wait(timeout=0.05)
                self._fail_dead_worker_pending()

    def run_open_loop(
        self,
        requests: Sequence[ServeRequest],
        process: ArrivalProcess,
        seed: int = 0,
        tenants: Optional[Sequence[Optional[str]]] = None,
        drain_timeout: Optional[float] = None,
    ) -> OpenLoopResult:
        """Offer ``requests`` on an :class:`ArrivalProcess` schedule.

        Each request is submitted at (or as soon as possible after) its
        scheduled arrival regardless of completions — the open loop.
        Latency percentiles are arrival-to-completion over completed
        requests; shed requests are counted separately.
        """
        if tenants is None:
            tenants = [None] * len(requests)
        times = process.times(len(requests), seed=seed)
        start = self._now()
        entries = []
        for request, tenant, offset in zip(requests, tenants, times):
            target = start + float(offset)
            while True:
                gap = target - self._now()
                if gap <= 0.0:
                    break
                # The generator is ahead of schedule: dispatch buffered
                # work instead of letting it idle (sub-saturation
                # latency stays honest, not batch-boundary-quantized).
                self.flush()
                time.sleep(min(gap, 0.001))
            entries.append(
                self._submit_entry(request, tenant, target, None, None)
            )
        self.drain(timeout=drain_timeout)
        outcomes = [
            entry if isinstance(entry, FleetResponse) else entry.response
            for entry in entries
        ]
        responses = [r for r in outcomes if r is not None]
        completed = [r for r in responses if not r.shed and r.ok]
        shed = sum(r.shed for r in responses)
        errors = sum(1 for r in responses if not r.shed and not r.ok)
        duration = max(self._now() - start, 1e-9)
        return OpenLoopResult(
            arrivals=process.describe(),
            offered_rps=process.rate_rps,
            submitted=len(requests),
            completed=len(completed),
            shed=shed,
            errors=errors,
            duration_s=duration,
            latency=latency_quantiles(
                [r.open_latency_s for r in completed]
            ),
        )

    # ------------------------------------------------------------------
    # Accounting + lifecycle
    # ------------------------------------------------------------------

    def fleet_stats(self) -> Dict[str, Any]:
        """The fleet-level accounting block of the ``repro.serve/1``
        envelope: parent-side routing/admission/latency counters plus
        (after :meth:`close`) every worker engine's own stats."""
        with self._lock:
            completed = self._completed
            latency = latency_quantiles(list(self._latencies))
            mean = (
                self._latency_sum_s / completed if completed else 0.0
            )
            wall = self._last_completion_s - (self._first_submit_s or 0.0)
        latency["mean_latency_s"] = mean
        return {
            "workers": self.workers,
            "granularity": self.router.granularity,
            "completed": completed,
            "wall_s": wall,
            "throughput_rps": completed / wall if wall > 0.0 else 0.0,
            "open_loop_latency": latency,
            "admission": self.admission.stats.to_dict(),
            "shard_requests": list(self._shard_counts),
            "worker_stats": [
                self.worker_stats.get(i, {}) for i in range(self.workers)
            ],
        }

    def aggregate_stats(self) -> Dict[str, Any]:
        """Worker engine stats summed fleet-wide, in the exact shape of
        :meth:`ServingStats.to_dict` (percentiles from the parent's
        arrival-to-completion window — the honest open-loop numbers).

        Only meaningful after :meth:`close` (workers report their
        accounting as they stop)."""
        counters = {
            "requests": 0,
            "errors": 0,
            "cache_hits": 0,
            "deduped": 0,
            "flushes": 0,
        }
        busy_s = 0.0
        for stats in self.worker_stats.values():
            engine_stats = stats.get("stats", {})
            for key in counters:
                counters[key] += int(engine_stats.get(key, 0))
            busy_s += float(engine_stats.get("busy_s", 0.0))
        fleet = self.fleet_stats()
        requests = counters["requests"]
        latency = fleet["open_loop_latency"]
        return {
            **counters,
            "busy_s": busy_s,
            "hit_rate": (
                counters["cache_hits"] / requests if requests else 0.0
            ),
            "throughput_rps": fleet["throughput_rps"],
            "mean_latency_s": latency["mean_latency_s"],
            "p50_latency_s": latency["p50_latency_s"],
            "p95_latency_s": latency["p95_latency_s"],
            "p99_latency_s": latency["p99_latency_s"],
        }

    def close(self, timeout: float = 60.0) -> None:
        """Drain, stop every worker, and collect their final stats."""
        with self._lock:
            if self._closed:
                return
        self.drain(timeout=timeout)
        with self._lock:
            self._closed = True
        for inbox in self._inboxes:
            inbox.put(("stop", None))
        self._collector.join(timeout=timeout)
        for process in self._processes:
            process.join(timeout=timeout)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
        for inbox in self._inboxes:
            inbox.close()
        self._outbox.close()

    def __enter__(self) -> "ServingFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
