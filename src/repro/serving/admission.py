"""Admission control: bounded queues and per-tenant token-bucket quotas.

Past saturation an unprotected serving tier queues without bound —
latency grows with the backlog and a load spike turns into minutes of
stale work.  The fleet front-end instead **sheds explicitly**: every
submission passes the :class:`AdmissionController`, which rejects a
request (with a machine-readable reason) when

- its target shard already holds ``max_queue`` requests in flight
  (bounded per-shard queues: backlog, and therefore queueing delay, is
  capped), or
- the submitting tenant has exhausted its :class:`TokenBucket` quota
  (one misbehaving tenant cannot starve the rest of the fleet).

A shed request costs a dictionary lookup and an immediate response —
never a worker round-trip — which is what keeps the tier live past
saturation (see ``docs/serving.md`` and ``BENCH_fleet.json``).

Both checks are deterministic in the caller-supplied clock, so the
policies are unit-testable without wall time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ConfigurationError

#: Shed reasons the controller can return.
SHED_QUEUE = "shed:queue-full"
SHED_QUOTA = "shed:tenant-quota"


class TokenBucket:
    """A standard token bucket: ``rate_rps`` steady state, ``burst`` cap.

    Example:
        >>> bucket = TokenBucket(rate_rps=1.0, burst=2.0)
        >>> bucket.try_take(now_s=0.0), bucket.try_take(now_s=0.0)
        (True, True)
        >>> bucket.try_take(now_s=0.0)      # burst spent
        False
        >>> bucket.try_take(now_s=1.0)      # one second refills one token
        True
    """

    def __init__(self, rate_rps: float, burst: float) -> None:
        if not rate_rps > 0.0:
            raise ConfigurationError(
                f"token rate must be > 0 req/s, got {rate_rps}"
            )
        if not burst >= 1.0:
            raise ConfigurationError(f"burst must be >= 1, got {burst}")
        self.rate_rps = rate_rps
        self.burst = burst
        self._tokens = burst
        self._last_s = 0.0

    def try_take(self, now_s: float) -> bool:
        """Take one token at clock ``now_s`` if the bucket allows it."""
        elapsed = max(0.0, now_s - self._last_s)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate_rps)
        self._last_s = now_s
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass
class AdmissionStats:
    """Admission accounting of one controller.

    Attributes:
        submitted: admission decisions taken.
        admitted: requests allowed through to a shard.
        shed_queue: rejected because the target shard's bounded queue
            was full.
        shed_quota: rejected because the tenant's token bucket was dry.
    """

    submitted: int = 0
    admitted: int = 0
    shed_queue: int = 0
    shed_quota: int = 0

    @property
    def shed(self) -> int:
        """Total requests shed (all reasons)."""
        return self.shed_queue + self.shed_quota

    @property
    def shed_rate(self) -> float:
        """Fraction of submissions shed."""
        return self.shed / self.submitted if self.submitted else 0.0

    def to_dict(self) -> Dict[str, float]:
        """JSON-serializable form."""
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "shed_queue": self.shed_queue,
            "shed_quota": self.shed_quota,
            "shed_rate": self.shed_rate,
        }


@dataclass
class AdmissionController:
    """The fleet's admission policy: queue bounds + tenant quotas.

    Args:
        max_queue: per-shard in-flight bound; a request targeting a
            shard at the bound is shed with :data:`SHED_QUEUE`.
        tenant_rate_rps: per-tenant steady-state quota (``None``
            disables quotas).
        tenant_burst: per-tenant burst allowance (defaults to one
            second's worth of the rate, at least 1).

    Example:
        >>> controller = AdmissionController(max_queue=2,
        ...                                  tenant_rate_rps=1.0,
        ...                                  tenant_burst=1.0)
        >>> controller.admit(in_flight=0, tenant="a", now_s=0.0)
        >>> controller.admit(in_flight=2, tenant="a", now_s=1.0)
        'shed:queue-full'
        >>> controller.admit(in_flight=0, tenant="a", now_s=1.0)
        >>> controller.admit(in_flight=0, tenant="a", now_s=1.0)
        'shed:tenant-quota'
        >>> controller.stats.to_dict()["shed_queue"]
        1
    """

    max_queue: int = 256
    tenant_rate_rps: Optional[float] = None
    tenant_burst: Optional[float] = None
    stats: AdmissionStats = field(default_factory=AdmissionStats)

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ConfigurationError(
                f"max_queue must be >= 1, got {self.max_queue}"
            )
        if self.tenant_burst is None and self.tenant_rate_rps is not None:
            self.tenant_burst = max(1.0, self.tenant_rate_rps)
        self._buckets: Dict[Optional[str], TokenBucket] = {}
        self._lock = threading.Lock()

    def admit(
        self,
        in_flight: int,
        tenant: Optional[str] = None,
        now_s: float = 0.0,
    ) -> Optional[str]:
        """One admission decision: ``None`` to admit, else a shed reason.

        ``in_flight`` is the target shard's current backlog (queued +
        executing); ``now_s`` is the caller's monotonic clock, which
        drives the quota refill.
        """
        with self._lock:
            self.stats.submitted += 1
            if in_flight >= self.max_queue:
                self.stats.shed_queue += 1
                return SHED_QUEUE
            if self.tenant_rate_rps is not None:
                bucket = self._buckets.get(tenant)
                if bucket is None:
                    bucket = self._buckets[tenant] = TokenBucket(
                        self.tenant_rate_rps, self.tenant_burst
                    )
                if not bucket.try_take(now_s):
                    self.stats.shed_quota += 1
                    return SHED_QUOTA
            self.stats.admitted += 1
            return None
