"""Request traces: the JSON interchange format and a traffic generator.

A **trace** is the serialized form of a request stream — what a
production front-end would log and what ``repro serve --trace`` replays.
The format (documented in ``docs/serving.md``) is a JSON object::

    {"schema": "repro.trace/1",
     "requests": [
        {"workload": "BERT-base", "platform": "auto",
         "corner": "typical", "seed": 3, "batch": 8},
        ...]}

Every field but ``workload`` is optional (defaults: ``platform`` auto,
``corner`` nominal, ``seed`` 0, ``batch`` 1).  The corner + seed pair
resolves to an :class:`~repro.core.context.ExecutionContext` through
:func:`repro.core.context.resolve_corner` — the same rule the CLI's
``--corner``/``--seed`` flags use.

Besides the flat form, a record may be an embedded run-kind
``repro.spec/1`` document (recognized by its ``schema`` field), or the
*tenant-wrapped* form the multi-tenant traffic model
(:mod:`repro.streaming.traffic`) emits::

    {"tenant": "tenant-0", "spec": {"schema": "repro.spec/1", ...}}

The optional top-level ``"arrivals"`` field records the arrival spec
the trace was shaped for (e.g. ``"diurnal:poisson:500"``) so replay
tooling can reproduce the intended open-loop schedule.

:func:`generate_trace` synthesizes realistic mixed LLM+GNN traffic: a
bounded catalog of distinct request types (workload x corner x die x
batch) sampled under a Zipf popularity law, which is what gives real
serving workloads their high repeat skew — and what makes the report
cache and in-batch deduplication worth their keep.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.context import resolve_corner
from repro.errors import ConfigurationError
from repro.serving.request import ServeRequest

#: Schema tag of the trace interchange format.
TRACE_SCHEMA = "repro.trace/1"

#: Transformer / MLP / suite workloads of the stock generator mix.
LLM_WORKLOADS = (
    "BERT-base",
    "BERT-large",
    "DistilBERT",
    "GPT-2",
    "ViT-base",
    "MLP-mnist",
    "MLP-recsys",
    "LLM-serving-mix",
)

#: GNN workloads of the stock generator mix.
GNN_WORKLOADS = (
    "GCN-cora",
    "GCN-citeseer",
    "GCN-pubmed",
    "GRAPHSAGE-cora",
    "GIN-citeseer",
    "GAT-pubmed",
)

#: Corner popularity of generated traffic: most requests run nominal
#: fleet-wide, a sizable share on typical dies, tails on the extremes.
CORNER_WEIGHTS = {
    "nominal": 0.50,
    "typical": 0.30,
    "slow-hot": 0.15,
    "fast-cold": 0.05,
}

#: TRON batch sizes of generated traffic and their popularity.
BATCH_WEIGHTS = {1: 0.5, 8: 0.3, 32: 0.2}


def record_to_request(record: Dict) -> ServeRequest:
    """A trace record (plain dict) as a :class:`ServeRequest`.

    A record is the flat trace form below, an embedded run-kind
    ``repro.spec/1`` document (recognized by its ``schema`` field), or
    the tenant-wrapped form ``{"tenant": ..., "spec": <spec doc>}``
    (recognized by its ``spec`` field) — declarative specs serve
    directly either way; the wrapper only adds the tenant identity
    (read it with :func:`record_tenant`).

    Example:
        >>> record_to_request({"workload": "BERT-base"}).batch
        1
        >>> record_to_request({"workload": "GCN-cora", "corner": "typical",
        ...                    "seed": 3}).ctx.seed
        3
        >>> record_to_request({"schema": "repro.spec/1",
        ...                    "workload": "BERT-base"}).workload
        'BERT-base'
        >>> record_to_request({"tenant": "acme",
        ...     "spec": {"schema": "repro.spec/1",
        ...              "workload": "GPT-2"}}).workload
        'GPT-2'
    """
    if "spec" in record:
        extra = set(record) - {"tenant", "spec"}
        if extra:
            raise ConfigurationError(
                f"tenant-wrapped trace record has unknown field(s) "
                f"{sorted(extra)}; known fields: ['spec', 'tenant']"
            )
        spec = record["spec"]
        if not isinstance(spec, dict) or "schema" not in spec:
            raise ConfigurationError(
                "a trace record's 'spec' must be an embedded repro.spec/1 "
                f"document, got {spec!r}"
            )
        return ServeRequest.from_spec(spec)
    if "schema" in record:
        return ServeRequest.from_spec(record)
    if "workload" not in record:
        raise ConfigurationError(f"trace record lacks a workload: {record}")
    known = {"workload", "platform", "corner", "seed", "batch"}
    unknown = set(record) - known
    if unknown:
        raise ConfigurationError(
            f"trace record has unknown field(s) {sorted(unknown)}; "
            f"known fields: {sorted(known)}"
        )
    corner = record.get("corner", "nominal")
    seed = int(record.get("seed", 0))
    return ServeRequest(
        workload=record["workload"],
        platform=record.get("platform", "auto"),
        ctx=resolve_corner(corner, seed),
        batch=int(record.get("batch", 1)),
    )


def record_tenant(record: Dict) -> Optional[str]:
    """The tenant a trace record belongs to, if it names one.

    Example:
        >>> record_tenant({"workload": "BERT-base"}) is None
        True
        >>> record_tenant({"tenant": "acme", "spec": {"schema": "x"}})
        'acme'
    """
    tenant = record.get("tenant")
    return str(tenant) if tenant is not None else None


def load_trace_payload(path: Union[str, pathlib.Path]) -> Dict:
    """The raw validated payload of a trace file (schema-checked)."""
    payload = json.loads(pathlib.Path(path).read_text())
    if not isinstance(payload, dict) or "requests" not in payload:
        raise ConfigurationError(
            f"{path}: not a trace file (expected an object with a "
            "'requests' list)"
        )
    schema = payload.get("schema")
    if schema != TRACE_SCHEMA:
        raise ConfigurationError(
            f"{path}: unsupported trace schema {schema!r} "
            f"(this build reads {TRACE_SCHEMA!r})"
        )
    return payload


def load_trace(path: Union[str, pathlib.Path]) -> List[ServeRequest]:
    """Parse a trace file into requests (validating the schema tag)."""
    payload = load_trace_payload(path)
    return [record_to_request(record) for record in payload["requests"]]


def save_trace(
    records: Sequence[Dict],
    path: Union[str, pathlib.Path],
    arrivals: Optional[str] = None,
) -> None:
    """Write trace records to ``path`` in the interchange format.

    ``arrivals``, when given, is stored as the trace's arrival-spec
    hint (the open-loop schedule the trace was generated for).
    """
    payload: Dict = {"schema": TRACE_SCHEMA, "requests": list(records)}
    if arrivals is not None:
        payload["arrivals"] = str(arrivals)
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def generate_trace(
    num_requests: int = 1000,
    seed: int = 0,
    catalog_size: int = 48,
    llm_fraction: float = 0.7,
    skew: float = 1.1,
    die_seeds: int = 4,
) -> List[Dict]:
    """Synthesize a mixed LLM+GNN request trace with repeat skew.

    The generator first draws a catalog of ``catalog_size`` distinct
    request types — workload (LLM-side with probability
    ``llm_fraction``, GNN-side otherwise), execution corner
    (:data:`CORNER_WEIGHTS`), die seed (``die_seeds`` dies per fleet)
    and TRON batch (:data:`BATCH_WEIGHTS`) — then samples
    ``num_requests`` requests from it under a Zipf law with exponent
    ``skew`` (type popularity ~ 1/rank^skew).  The result mimics
    production traffic: a few very hot request types, a long cold tail.

    Returns trace *records* (plain dicts) ready for :func:`save_trace`;
    convert with :func:`record_to_request` to serve them directly.

    Example:
        >>> records = generate_trace(num_requests=10, seed=1)
        >>> len(records)
        10
        >>> sorted(records[0]) == ['batch', 'corner', 'platform',
        ...                        'seed', 'workload']
        True
    """
    if num_requests < 1:
        raise ConfigurationError(
            f"need >= 1 request, got {num_requests}"
        )
    if catalog_size < 1:
        raise ConfigurationError(f"need >= 1 type, got {catalog_size}")
    if not 0.0 <= llm_fraction <= 1.0:
        raise ConfigurationError(
            f"llm fraction must be in [0, 1], got {llm_fraction}"
        )
    if skew < 0.0:
        raise ConfigurationError(f"skew must be >= 0, got {skew}")
    if die_seeds < 1:
        raise ConfigurationError(f"need >= 1 die seed, got {die_seeds}")
    rng = np.random.default_rng(seed)
    corner_names = list(CORNER_WEIGHTS)
    corner_p = np.array([CORNER_WEIGHTS[c] for c in corner_names])
    corner_p = corner_p / corner_p.sum()
    batch_sizes = list(BATCH_WEIGHTS)
    batch_p = np.array([BATCH_WEIGHTS[b] for b in batch_sizes])
    batch_p = batch_p / batch_p.sum()

    catalog: List[Dict] = []
    seen = set()
    attempts = 0
    while len(catalog) < catalog_size:
        attempts += 1
        if attempts > 100 * catalog_size:
            raise ConfigurationError(
                f"cannot draw {catalog_size} distinct request types from "
                "the workload/corner/die/batch space; lower catalog_size"
            )
        if rng.random() < llm_fraction:
            workload = str(rng.choice(LLM_WORKLOADS))
            batch = int(rng.choice(batch_sizes, p=batch_p))
        else:
            workload = str(rng.choice(GNN_WORKLOADS))
            batch = 1  # GHOST costs full-graph inferences
        corner = str(rng.choice(corner_names, p=corner_p))
        # A die seed only means something where variation exists.
        die = int(rng.integers(die_seeds)) if corner != "nominal" else 0
        record = {
            "workload": workload,
            "platform": "auto",
            "corner": corner,
            "seed": die,
            "batch": batch,
        }
        fingerprint = tuple(sorted(record.items()))
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        catalog.append(record)

    ranks = np.arange(1, catalog_size + 1, dtype=float)
    popularity = ranks**-skew
    popularity = popularity / popularity.sum()
    choices = rng.choice(catalog_size, size=num_requests, p=popularity)
    return [dict(catalog[int(i)]) for i in choices]
