"""The bounded, stats-instrumented report cache of the serving layer.

Cost reports are pure functions of the ``(workload, accelerator
configuration, execution context)`` triple — the same request always
produces the same :class:`~repro.core.reports.RunReport` — so the
serving layer memoizes them.  The cache key freezes all three
components:

- the **workload name** (registry names are canonical);
- a **configuration fingerprint** (:func:`config_fingerprint`) digesting
  the accelerator's full configuration dataclass, so two platforms that
  differ in any knob — batch, array geometry, converter energies —
  never share an entry;
- the **execution context**, normalized so that ``None`` and any
  nominal context share one entry (they are bit-identical by
  construction; see :func:`normalize_context`).

Eviction is LRU under a hard entry bound, and every lookup is counted,
so hit rates are first-class observables (``repro serve --stats``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.context import ExecutionContext
from repro.core.engine.diskcache import fingerprint
from repro.core.reports import RunReport
from repro.errors import ConfigurationError

#: A frozen cache key: (workload name, config fingerprint, context).
CacheKey = Tuple[str, str, Optional[ExecutionContext]]


def config_fingerprint(config: object) -> str:
    """A short stable digest of an accelerator configuration.

    Configuration dataclasses nest only other dataclasses and scalars,
    so their ``repr`` is a complete, deterministic serialization of
    every knob — hashing it distinguishes any two configurations that
    could produce different reports.  The scheme is shared with the
    engine's persistent physics cache
    (:func:`repro.core.engine.diskcache.fingerprint`).

    Example:
        >>> from repro.core.tron import TRONConfig
        >>> a = config_fingerprint(TRONConfig())
        >>> a == config_fingerprint(TRONConfig())
        True
        >>> a == config_fingerprint(TRONConfig(batch=8))
        False
    """
    return fingerprint(config)


def normalize_context(
    ctx: Optional[ExecutionContext],
) -> Optional[ExecutionContext]:
    """The canonical cache-key form of an execution context.

    ``None`` and every nominal context cost bit-identically, so they
    normalize to ``None`` and share one cache entry; any other context
    is its own key (contexts are frozen and hashable).

    Example:
        >>> from repro.core.context import NOMINAL, resolve_corner
        >>> normalize_context(NOMINAL) is None
        True
        >>> normalize_context(resolve_corner("typical", 3)).seed
        3
    """
    if ctx is None or ctx.is_nominal:
        return None
    return ctx


@dataclass
class CacheStats:
    """Lookup accounting of one :class:`ReportCache`.

    Attributes:
        hits / misses: lookup outcomes since construction (or the last
            ``reset``).
        insertions: successful ``put`` calls.
        evictions: entries dropped to enforce the bound.
    """

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, float]:
        """JSON-serializable form."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class ReportCache:
    """A bounded LRU cache of :class:`RunReport` keyed by request triple.

    Thread-safe: the serving front-end flushes micro-batches from a
    worker thread while ``submit`` calls keep arriving.

    Example:
        >>> cache = ReportCache(max_entries=2)
        >>> cache.get(("w", "cfg", None)) is None   # cold
        True
        >>> from repro.core import TRON, get_workload
        >>> report = TRON().run(get_workload("MLP-mnist"))
        >>> cache.put(("w", "cfg", None), report)
        >>> cache.get(("w", "cfg", None)) is report
        True
        >>> cache.stats.hits, cache.stats.misses
        (1, 1)
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"cache needs >= 1 entry, got {max_entries}"
            )
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[CacheKey, RunReport]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        """Membership probe; does not count as a lookup or touch LRU."""
        return key in self._entries

    def get(self, key: CacheKey) -> Optional[RunReport]:
        """The cached report for ``key``, or ``None`` (counted either way)."""
        with self._lock:
            report = self._entries.get(key)
            if report is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return report

    def put(self, key: CacheKey, report: RunReport) -> None:
        """Insert (or refresh) an entry, evicting LRU past the bound."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = report
            self.stats.insertions += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (stats are kept; use ``reset_stats`` too)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the lookup accounting."""
        with self._lock:
            self.stats = CacheStats()
