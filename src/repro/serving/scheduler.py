"""The batching scheduler: coalesce, deduplicate, batch the physics.

Given a micro-batch of :class:`~repro.serving.request.ServeRequest`\\ s,
the scheduler serves each one through the cheapest sufficient path:

1. **Cache** — a request whose ``(workload, config, context)`` triple is
   already cached resolves immediately.
2. **Dedup** — identical misses inside the batch collapse onto one
   evaluation; every duplicate shares the resulting report object.
3. **Batched physics** — the remaining unique jobs group by
   ``(platform, batch, context family)``, where a family is everything
   but the die seed.  All distinct dies of a group evaluate through one
   batched pass of the engine's corner physics
   (:func:`repro.core.engine.batch_context_physics_for`) instead of N
   scalar draws + TED solves; each job then replays through the ordinary
   run path with its die's physics pinned, which is bit-identical to a
   direct scalar run (the cost model reads exactly the pinned fields).

Groups evaluate concurrently.  The scheduler is synchronous; the
asynchronous submission front-end lives in
:mod:`repro.serving.engine`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.base import Accelerator, Workload, get_workload
from repro.core.context import ExecutionContext, PinnedArrayPhysics
from repro.core.engine import batch_context_physics_for
from repro.core.ghost import GHOST
from repro.core.reports import RunReport
from repro.core.tron import TRON, TRONConfig
from repro.errors import ConfigurationError, MappingError, YieldError
from repro.serving.cache import (
    CacheKey,
    ReportCache,
    config_fingerprint,
    normalize_context,
)
from repro.serving.request import ServeRequest, ServeResponse

#: platform name -> factory taking the request batch size.
PlatformCatalog = Dict[str, Callable[[int], Accelerator]]


def _make_tron(batch: int) -> Accelerator:
    return TRON(TRONConfig(batch=batch))


def _make_ghost(batch: int) -> Accelerator:
    if batch != 1:
        raise ConfigurationError(
            "GHOST costs full-graph inferences; batched requests must "
            "target tron (got batch={})".format(batch)
        )
    return GHOST()


def default_platform_catalog() -> PlatformCatalog:
    """The stock platform factories the scheduler routes requests to."""
    return {"tron": _make_tron, "ghost": _make_ghost}


@dataclass
class _Job:
    """One unique (deduplicated) evaluation inside a micro-batch."""

    key: CacheKey
    request: ServeRequest
    workload: Workload
    platform: str
    indices: List[int] = field(default_factory=list)
    report: Optional[RunReport] = None
    error: Optional[str] = None
    finished_s: float = 0.0


@dataclass
class SchedulerStats:
    """Evaluation accounting of one :class:`BatchingScheduler`.

    Attributes:
        requests: requests scheduled.
        cache_hits: requests served from the report cache.
        deduped: requests coalesced onto an identical in-batch request.
        evaluated: unique jobs that went through the run path.
        errors: jobs that failed (dead die, unmappable workload).
        groups: per-(platform, batch, context-family) groups formed.
        physics_batches: batched corner-physics passes issued.
        batched_dies: dies whose physics came from a batched pass.
    """

    requests: int = 0
    cache_hits: int = 0
    deduped: int = 0
    evaluated: int = 0
    errors: int = 0
    groups: int = 0
    physics_batches: int = 0
    batched_dies: int = 0

    def to_dict(self) -> Dict[str, int]:
        """JSON-serializable form."""
        return {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "deduped": self.deduped,
            "evaluated": self.evaluated,
            "errors": self.errors,
            "groups": self.groups,
            "physics_batches": self.physics_batches,
            "batched_dies": self.batched_dies,
        }


class BatchingScheduler:
    """Coalesces request streams into grouped, deduplicated evaluations.

    Args:
        cache: the shared report cache (``None`` disables caching).
        catalog: platform name -> accelerator factory; defaults to the
            stock TRON/GHOST catalog.
        use_batched_physics: evaluate each group's distinct dies through
            one batched corner-physics pass (disable to force scalar
            per-request physics — the numbers are identical; this is a
            benchmarking aid).
        max_workers: thread-pool width for concurrent group evaluation.
    """

    def __init__(
        self,
        cache: Optional[ReportCache] = None,
        catalog: Optional[PlatformCatalog] = None,
        use_batched_physics: bool = True,
        max_workers: Optional[int] = None,
    ) -> None:
        self.cache = cache
        self.catalog = (
            default_platform_catalog() if catalog is None else catalog
        )
        self.use_batched_physics = use_batched_physics
        self.max_workers = max_workers
        self.stats = SchedulerStats()
        self._fingerprints: Dict[Tuple[str, int], str] = {}
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Key construction
    # ------------------------------------------------------------------

    def _fingerprint(self, platform: str, batch: int) -> str:
        """Memoized configuration fingerprint of a catalog platform."""
        key = (platform, batch)
        with self._stats_lock:
            cached = self._fingerprints.get(key)
        if cached is not None:
            return cached
        factory = self.catalog.get(platform)
        if factory is None:
            raise ConfigurationError(
                f"unknown platform {platform!r}; catalog has "
                f"{sorted(self.catalog)}"
            )
        accelerator = factory(batch)
        config = getattr(accelerator, "config", accelerator.name)
        fingerprint = config_fingerprint(config)
        with self._stats_lock:
            self._fingerprints[key] = fingerprint
        return fingerprint

    def _resolve(self, request: ServeRequest):
        """(workload, platform, cache key) of a request — the single
        key-construction rule of the scheduler."""
        workload = get_workload(request.workload)
        platform = request.resolve_platform(workload.kind)
        key = (
            request.workload,
            self._fingerprint(platform, request.batch),
            normalize_context(request.ctx),
        )
        return workload, platform, key

    def cache_key(self, request: ServeRequest) -> CacheKey:
        """The frozen cache key of a request (see :mod:`.cache`)."""
        return self._resolve(request)[2]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(
        self, requests: Sequence[ServeRequest]
    ) -> List[ServeResponse]:
        """Serve one micro-batch, returning responses in request order."""
        requests = list(requests)
        start = time.perf_counter()
        with self._stats_lock:
            self.stats.requests += len(requests)
        responses: List[Optional[ServeResponse]] = [None] * len(requests)

        # Pass 1: cache lookups + in-batch dedup.  A request that cannot
        # even resolve (unknown workload, unroutable platform/batch)
        # fails alone; it must not sink the micro-batch.
        jobs: Dict[CacheKey, _Job] = {}
        resolution_errors = cache_hits = deduped = 0
        for i, request in enumerate(requests):
            try:
                workload, platform, key = self._resolve(request)
            except (ConfigurationError, MappingError) as exc:
                resolution_errors += 1
                responses[i] = ServeResponse(
                    request=request,
                    report=None,
                    error=str(exc),
                    latency_s=time.perf_counter() - start,
                )
                continue
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                cache_hits += 1
                responses[i] = ServeResponse(
                    request=request,
                    report=cached,
                    cached=True,
                    latency_s=time.perf_counter() - start,
                )
                continue
            job = jobs.get(key)
            if job is None:
                jobs[key] = job = _Job(
                    key=key,
                    request=request,
                    workload=workload,
                    platform=platform,
                )
            else:
                deduped += 1
            job.indices.append(i)
        with self._stats_lock:
            self.stats.errors += resolution_errors
            self.stats.cache_hits += cache_hits
            self.stats.deduped += deduped

        # Pass 2: group unique jobs by (platform, batch, context family).
        groups: Dict[Tuple, List[_Job]] = {}
        for job in jobs.values():
            ctx = normalize_context(job.request.ctx)
            family = self._family(ctx)
            groups.setdefault(
                (job.platform, job.request.batch, family), []
            ).append(job)
        with self._stats_lock:
            self.stats.groups += len(groups)

        # Pass 3: evaluate groups (concurrently when there are several).
        items = list(groups.items())
        if len(items) > 1:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                list(pool.map(self._evaluate_group, items))
        else:
            for item in items:
                self._evaluate_group(item)

        # Pass 4: fan reports back out to every request of each job.
        for job in jobs.values():
            latency = job.finished_s - start
            for rank, i in enumerate(job.indices):
                responses[i] = ServeResponse(
                    request=requests[i],
                    report=job.report,
                    deduped=rank > 0,
                    error=job.error,
                    latency_s=latency,
                )
        missing = [i for i, r in enumerate(responses) if r is None]
        if missing:  # pragma: no cover - scheduler invariant
            raise RuntimeError(
                f"scheduler bug: request(s) {missing} got no response"
            )
        return responses

    @staticmethod
    def _family(
        ctx: Optional[ExecutionContext],
    ) -> Optional[ExecutionContext]:
        """The group key of a context: everything but the die seed.

        Nominal (``None``) and pinned contexts form their own groups and
        evaluate scalar; sampling contexts that differ only in seed land
        in one family and share a batched physics pass.
        """
        if ctx is None or ctx.pinned or not ctx.affects_arrays:
            return ctx
        return replace(ctx, seed=0)

    def _evaluate_group(self, item: Tuple[Tuple, List[_Job]]) -> None:
        (platform, batch, family), group_jobs = item
        try:
            accelerator = self.catalog[platform](batch)
        except ConfigurationError as exc:
            for job in group_jobs:
                job.error = str(exc)
                job.finished_s = time.perf_counter()
            with self._stats_lock:
                self.stats.errors += len(group_jobs)
            return
        pinned_ctx = self._pin_group_physics(accelerator, family, group_jobs)
        evaluated = errors = 0
        for job in group_jobs:
            ctx = normalize_context(job.request.ctx)
            run_ctx = pinned_ctx.get(ctx, ctx)
            try:
                job.report = accelerator.run(job.workload, ctx=run_ctx)
                evaluated += 1
            except (YieldError, MappingError, ConfigurationError) as exc:
                job.error = str(exc)
                errors += 1
            job.finished_s = time.perf_counter()
            if job.report is not None and self.cache is not None:
                self.cache.put(job.key, job.report)
        with self._stats_lock:
            self.stats.evaluated += evaluated
            self.stats.errors += errors

    def _pin_group_physics(
        self,
        accelerator: Accelerator,
        family: Optional[ExecutionContext],
        group_jobs: List[_Job],
    ) -> Dict[ExecutionContext, ExecutionContext]:
        """ctx -> pinned-physics ctx for every distinct die of a group.

        One batched corner-physics pass per array geometry covers all
        the group's dies; each die's outcome (usable dims + correction
        power) is pinned onto its context, so the subsequent run-path
        evaluations skip the per-die draws and TED solves while
        producing bit-identical reports.
        """
        if (
            not self.use_batched_physics
            or family is None
            or family.pinned
            or not family.affects_arrays
        ):
            return {}
        specs = getattr(accelerator, "array_specs", None)
        if specs is None:
            return {}
        geometries: Dict[Tuple[int, int], object] = {}
        for spec in specs():
            geometries.setdefault((spec.rows, spec.cols), spec)
        contexts = sorted(
            {normalize_context(job.request.ctx) for job in group_jobs},
            key=lambda c: c.seed,
        )
        pinned: Dict[ExecutionContext, Dict] = {c: {} for c in contexts}
        for (rows, cols), spec in geometries.items():
            batch_physics = batch_context_physics_for(spec, contexts)
            with self._stats_lock:
                self.stats.physics_batches += 1
            for i, ctx in enumerate(contexts):
                pinned[ctx][(rows, cols)] = PinnedArrayPhysics(
                    usable_rows=int(batch_physics.usable_rows[i]),
                    usable_cols=int(batch_physics.usable_cols[i]),
                    correction_power_mw=float(
                        batch_physics.correction_power_mw[i]
                    ),
                )
        with self._stats_lock:
            self.stats.batched_dies += len(contexts)
        return {ctx: ctx.with_pinned(entries) for ctx, entries in pinned.items()}
