"""The serving front-end: synchronous batches and async submission.

:class:`ServingEngine` is the object a traffic source talks to.  It owns
the report cache and the batching scheduler, and exposes two entry
points:

- :meth:`ServingEngine.serve` — cost a whole request sequence
  synchronously (one scheduler micro-batch) and return the responses in
  request order.
- :meth:`ServingEngine.submit` — enqueue one request and get a
  :class:`concurrent.futures.Future` back.  Pending requests flush as a
  micro-batch once ``max_pending`` accumulate (or on :meth:`flush` /
  :meth:`drain`); a single worker thread executes flushes in arrival
  order, so the cache warms monotonically and responses stay
  deterministic.

Every response carries its service latency, and the engine aggregates
fleet-level accounting (:class:`ServingStats`) — throughput, hit rate,
latency percentiles — which ``repro serve --stats`` prints.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

#: Most-recent request latencies retained for the percentile stats —
#: the window keeps a long-lived engine's accounting O(1) per request.
LATENCY_WINDOW = 4096

from repro.errors import ConfigurationError
from repro.serving.cache import ReportCache
from repro.serving.request import ServeRequest, ServeResponse
from repro.serving.scheduler import BatchingScheduler, PlatformCatalog


@dataclass
class ServingStats:
    """Fleet-level accounting of one :class:`ServingEngine`.

    Attributes:
        requests: requests resolved (served or failed).
        errors: requests that produced no report.
        cache_hits / deduped: requests served without a run-path
            evaluation (from the cache / coalesced in-batch).
        flushes: micro-batches executed.
        busy_s: wall time spent inside scheduler execution.
        latency_sum_s: running sum of every service latency (exact mean
            at any fleet size).
        recent_latencies_s: the last :data:`LATENCY_WINDOW` latencies —
            a bounded window, so a long-lived engine's percentile stats
            stay O(1) per request instead of growing without bound.
    """

    requests: int = 0
    errors: int = 0
    cache_hits: int = 0
    deduped: int = 0
    flushes: int = 0
    busy_s: float = 0.0
    latency_sum_s: float = 0.0
    recent_latencies_s: Deque[float] = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW)
    )

    def record_latency(self, latency_s: float) -> None:
        """Fold one request latency into the running accounting."""
        self.latency_sum_s += latency_s
        self.recent_latencies_s.append(latency_s)

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from the report cache."""
        return self.cache_hits / self.requests if self.requests else 0.0

    @property
    def throughput_rps(self) -> float:
        """Requests per second of scheduler busy time."""
        return self.requests / self.busy_s if self.busy_s > 0.0 else 0.0

    @property
    def mean_latency_s(self) -> float:
        """Mean service latency over all requests (exact)."""
        return self.latency_sum_s / self.requests if self.requests else 0.0

    def _percentile(self, q: float) -> float:
        """``q``-th percentile service latency over the recent window."""
        if not self.recent_latencies_s:
            return 0.0
        return float(np.percentile(self.recent_latencies_s, q))

    @property
    def p50_latency_s(self) -> float:
        """Median service latency over the recent window."""
        return self._percentile(50)

    @property
    def p95_latency_s(self) -> float:
        """95th-percentile service latency over the recent window."""
        return self._percentile(95)

    @property
    def p99_latency_s(self) -> float:
        """99th-percentile service latency over the recent window."""
        return self._percentile(99)

    def to_dict(self) -> Dict:
        """JSON-serializable form (no per-request arrays)."""
        return {
            "requests": self.requests,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "deduped": self.deduped,
            "flushes": self.flushes,
            "busy_s": self.busy_s,
            "hit_rate": self.hit_rate,
            "throughput_rps": self.throughput_rps,
            "mean_latency_s": self.mean_latency_s,
            "p50_latency_s": self.p50_latency_s,
            "p95_latency_s": self.p95_latency_s,
            "p99_latency_s": self.p99_latency_s,
        }


class ServingEngine:
    """Batched, cached request serving over the TRON/GHOST cost models.

    Args:
        cache_entries: report-cache bound (LRU beyond it).
        max_pending: submissions that trigger an automatic flush.
        use_batched_physics: evaluate each request group's dies through
            one batched corner-physics pass (see the scheduler).
        catalog: platform name -> accelerator factory override.
        max_workers: thread-pool width for concurrent group evaluation
            inside one flush.

    Example:
        >>> engine = ServingEngine()
        >>> r1, r2 = engine.serve([ServeRequest(workload="MLP-mnist"),
        ...                        ServeRequest(workload="MLP-mnist")])
        >>> r1.report.platform, r2.deduped
        ('TRON', True)
        >>> engine.serve([ServeRequest(workload="MLP-mnist")])[0].cached
        True
    """

    def __init__(
        self,
        cache_entries: int = 1024,
        max_pending: int = 64,
        use_batched_physics: bool = True,
        catalog: Optional[PlatformCatalog] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        if max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        self.cache = ReportCache(max_entries=cache_entries)
        self.scheduler = BatchingScheduler(
            cache=self.cache,
            catalog=catalog,
            use_batched_physics=use_batched_physics,
            max_workers=max_workers,
        )
        self.max_pending = max_pending
        self.stats = ServingStats()
        self._pending: List[tuple] = []
        self._lock = threading.Lock()
        # One worker: flushes execute in arrival order, which keeps the
        # cache-warming sequence (and therefore every response)
        # deterministic for a given submission order.
        self._flusher = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self._outstanding: List[Future] = []

    # ------------------------------------------------------------------
    # Synchronous path
    # ------------------------------------------------------------------

    def serve(
        self, requests: Sequence[ServeRequest]
    ) -> List[ServeResponse]:
        """Cost ``requests`` as one micro-batch; responses in order."""
        start = time.perf_counter()
        responses = self.scheduler.execute(requests)
        self._absorb(responses, time.perf_counter() - start)
        return responses

    def serve_specs(self, specs: Sequence) -> List[ServeResponse]:
        """Cost a sequence of run-kind :class:`~repro.api.ExperimentSpec`
        documents (or their dict forms) as one micro-batch.

        Example:
            >>> from repro.api import ExperimentSpec
            >>> engine = ServingEngine()
            >>> spec = ExperimentSpec(workload="MLP-mnist")
            >>> engine.serve_specs([spec])[0].report.platform
            'TRON'
        """
        return self.serve([ServeRequest.from_spec(spec) for spec in specs])

    # ------------------------------------------------------------------
    # Asynchronous path
    # ------------------------------------------------------------------

    def submit_spec(self, spec) -> "Future[ServeResponse]":
        """Enqueue the request a run-kind spec denotes (see
        :meth:`ServeRequest.from_spec <repro.serving.request.
        ServeRequest.from_spec>`)."""
        return self.submit(ServeRequest.from_spec(spec))

    def submit(self, request: ServeRequest) -> "Future[ServeResponse]":
        """Enqueue one request; flushes automatically at ``max_pending``."""
        future: "Future[ServeResponse]" = Future()
        with self._lock:
            self._pending.append((request, future))
            ready = len(self._pending) >= self.max_pending
        if ready:
            self.flush()
        return future

    def flush(self) -> None:
        """Hand the current pending micro-batch to the flush worker."""
        with self._lock:
            batch = self._pending
            self._pending = []
            if not batch:
                return
            self._outstanding.append(
                self._flusher.submit(self._run_batch, batch)
            )

    def drain(self) -> None:
        """Flush and block until every outstanding micro-batch resolves."""
        self.flush()
        while True:
            with self._lock:
                outstanding = self._outstanding
                self._outstanding = []
            if not outstanding:
                return
            for future in outstanding:
                future.result()

    def close(self) -> None:
        """Drain and shut the flush worker down."""
        self.drain()
        self._flusher.shutdown(wait=True)

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _run_batch(self, batch: List[tuple]) -> None:
        requests = [request for request, _ in batch]
        try:
            start = time.perf_counter()
            responses = self.scheduler.execute(requests)
            self._absorb(responses, time.perf_counter() - start)
        except BaseException as exc:  # pragma: no cover - defensive
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            raise
        for (_, future), response in zip(batch, responses):
            future.set_result(response)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _absorb(
        self, responses: Sequence[ServeResponse], busy_s: float
    ) -> None:
        with self._lock:
            self.stats.flushes += 1
            self.stats.busy_s += busy_s
            for response in responses:
                self.stats.requests += 1
                if not response.ok:
                    self.stats.errors += 1
                if response.cached:
                    self.stats.cache_hits += 1
                if response.deduped:
                    self.stats.deduped += 1
                self.stats.record_latency(response.latency_s)
