"""Shard routing and the worker wire format of the fleet tier.

The fleet front-end (:mod:`repro.serving.fleet`) spreads requests over
N worker processes.  Two rules live here:

**Routing.**  :class:`ShardRouter` maps a request to a shard with a
*stable* hash — ``hash()`` is salted per process, so routing uses the
same SHA-256 digest scheme as the report/physics caches
(:func:`repro.core.engine.diskcache.fingerprint`).  Two granularities:

- ``"config"`` — the shard key is ``(platform, config fingerprint)``,
  the ISSUE's minimal scheme: every request for one accelerator
  configuration lands on one worker, so that worker's *physics memos*
  (keyed by array geometry + context) stay maximally hot.
- ``"type"`` (default) — the key additionally folds in the workload
  name and normalized context, i.e. exactly the report-cache key.  Any
  deterministic function of the request keeps each shard's
  `ReportCache` hot (a given request type always routes to the same
  worker); the finer key also spreads a skewed catalog over many more
  workers than there are distinct configurations.

**Wire format.**  Workers are separate processes fed entirely by
*documents*: :func:`request_to_wire` serializes a
:class:`~repro.serving.request.ServeRequest` into a plain dict (the
execution context through its exact
:meth:`~repro.core.context.ExecutionContext.to_dict` round-trip), and
:func:`wire_to_request` rebuilds it bit-identically on the worker side.
The same codec accepts flat ``repro.trace/1`` records and run-kind
``repro.spec/1`` documents, so a trace file can stream to workers
without ever constructing parent-side request objects.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.base import get_workload
from repro.core.context import ExecutionContext
from repro.core.engine.diskcache import fingerprint
from repro.errors import ConfigurationError
from repro.serving.cache import config_fingerprint, normalize_context
from repro.serving.request import ServeRequest
from repro.serving.scheduler import PlatformCatalog, default_platform_catalog

#: The supported shard-key granularities.
GRANULARITIES = ("type", "config")


def request_to_wire(request: ServeRequest) -> Dict:
    """The plain-dict wire form of a request (exact round-trip).

    Example:
        >>> from repro.core.context import resolve_corner
        >>> request = ServeRequest(workload="BERT-base", batch=8,
        ...                        ctx=resolve_corner("typical", 3))
        >>> wire_to_request(request_to_wire(request)) == request
        True
    """
    return {
        "workload": request.workload,
        "platform": request.platform,
        "batch": request.batch,
        "context": request.ctx.to_dict() if request.ctx else None,
    }


def wire_to_request(record: Dict) -> ServeRequest:
    """Rebuild a :class:`ServeRequest` from any wire document.

    Accepts the fleet wire form (``context`` as a serialized
    :class:`ExecutionContext`), a flat ``repro.trace/1`` record
    (``corner``/``seed``), or an embedded run-kind ``repro.spec/1``
    document — everything a trace file or a fleet queue may carry.

    Example:
        >>> wire_to_request({"workload": "GCN-cora"}).platform
        'auto'
        >>> wire_to_request({"workload": "BERT-base", "platform": "tron",
        ...                  "batch": 8, "context": None}).batch
        8
    """
    if "context" in record:
        ctx = record["context"]
        return ServeRequest(
            workload=record["workload"],
            platform=record.get("platform", "auto"),
            ctx=ExecutionContext.from_dict(ctx) if ctx is not None else None,
            batch=int(record.get("batch", 1)),
        )
    from repro.serving.trace import record_to_request

    return record_to_request(record)


class ShardRouter:
    """Deterministic request → shard assignment for ``num_shards``.

    Args:
        num_shards: worker count to spread over.
        granularity: ``"type"`` (report-cache key; default) or
            ``"config"`` (``(platform, config fingerprint)`` only) —
            see the module docstring for the trade-off.
        catalog: platform name → accelerator factory (the scheduler's
            catalog), used to fingerprint configurations.

    Example:
        >>> router = ShardRouter(num_shards=4)
        >>> a = router.shard_of(ServeRequest(workload="MLP-mnist"))
        >>> b = router.shard_of(ServeRequest(workload="MLP-mnist"))
        >>> a == b and 0 <= a < 4        # stable, in range
        True
        >>> ShardRouter(num_shards=1, granularity="frequency")
        Traceback (most recent call last):
            ...
        repro.errors.ConfigurationError: unknown shard granularity 'frequency'; pick one of ('type', 'config')
    """

    def __init__(
        self,
        num_shards: int,
        granularity: str = "type",
        catalog: Optional[PlatformCatalog] = None,
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError(
                f"need >= 1 shard, got {num_shards}"
            )
        if granularity not in GRANULARITIES:
            raise ConfigurationError(
                f"unknown shard granularity {granularity!r}; "
                f"pick one of {GRANULARITIES}"
            )
        self.num_shards = num_shards
        self.granularity = granularity
        self.catalog = (
            default_platform_catalog() if catalog is None else catalog
        )
        self.requests_per_shard: List[int] = [0] * num_shards
        self._fingerprints: Dict[Tuple[str, int], str] = {}
        self._shards: Dict[Tuple, int] = {}
        self._lock = threading.Lock()

    def _config_fingerprint(self, platform: str, batch: int) -> str:
        """Memoized configuration fingerprint (the scheduler's scheme)."""
        key = (platform, batch)
        with self._lock:
            cached = self._fingerprints.get(key)
        if cached is not None:
            return cached
        factory = self.catalog.get(platform)
        if factory is None:
            raise ConfigurationError(
                f"unknown platform {platform!r}; catalog has "
                f"{sorted(self.catalog)}"
            )
        accelerator = factory(batch)
        config = getattr(accelerator, "config", accelerator.name)
        digest = config_fingerprint(config)
        with self._lock:
            self._fingerprints[key] = digest
        return digest

    def shard_key(self, request: ServeRequest) -> Tuple:
        """The frozen routing key of a request (before hashing)."""
        workload = get_workload(request.workload)
        platform = request.resolve_platform(workload.kind)
        digest = self._config_fingerprint(platform, request.batch)
        if self.granularity == "config":
            return (platform, digest)
        return (
            platform,
            digest,
            request.workload,
            normalize_context(request.ctx),
        )

    def shard_of(self, request: ServeRequest, count: bool = False) -> int:
        """The shard index of a request (stable across processes).

        ``count=True`` additionally records the assignment in
        :attr:`requests_per_shard` — the router's load-spread
        observability.
        """
        key = self.shard_key(request)
        with self._lock:
            shard = self._shards.get(key)
        if shard is None:
            shard = int(fingerprint(key), 16) % self.num_shards
            with self._lock:
                self._shards[key] = shard
        if count:
            self.count_assignment(shard)
        return shard

    def count_assignment(self, shard: int) -> None:
        """Record one routed request in :attr:`requests_per_shard`."""
        with self._lock:
            self.requests_per_shard[shard] += 1
