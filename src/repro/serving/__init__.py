"""The batched serving subsystem (request -> report at fleet scale).

The ROADMAP's north star is serving heavy cost-query traffic; this
package is the layer that makes one-at-a-time ``Accelerator.run`` calls
scale:

- :mod:`repro.serving.request` — the :class:`ServeRequest` /
  :class:`ServeResponse` contract.
- :mod:`repro.serving.cache` — the bounded, stats-instrumented
  :class:`ReportCache` keyed on the frozen
  ``(workload, config-fingerprint, context)`` triple.
- :mod:`repro.serving.scheduler` — the :class:`BatchingScheduler`:
  coalesces request streams into per-(platform, context-family) groups,
  deduplicates identical requests, and evaluates each group's dies
  through one batched corner-physics pass.
- :mod:`repro.serving.engine` — the :class:`ServingEngine` front-end:
  synchronous batches plus ``concurrent.futures`` async submission,
  with per-request latency and fleet-level hit-rate accounting.
- :mod:`repro.serving.trace` — the JSON trace format and the mixed
  LLM+GNN traffic generator behind ``repro serve`` / ``repro
  gen-trace``.

See ``docs/serving.md`` for cache keying rules, batching semantics and
the trace format.
"""

from repro.serving.cache import (
    CacheKey,
    CacheStats,
    ReportCache,
    config_fingerprint,
    normalize_context,
)
from repro.serving.engine import ServingEngine, ServingStats
from repro.serving.request import (
    PLATFORM_CHOICES,
    ServeRequest,
    ServeResponse,
)
from repro.serving.scheduler import (
    BatchingScheduler,
    SchedulerStats,
    default_platform_catalog,
)
from repro.serving.trace import (
    TRACE_SCHEMA,
    generate_trace,
    load_trace,
    record_to_request,
    save_trace,
)

__all__ = [
    "BatchingScheduler",
    "CacheKey",
    "CacheStats",
    "PLATFORM_CHOICES",
    "ReportCache",
    "SchedulerStats",
    "ServeRequest",
    "ServeResponse",
    "ServingEngine",
    "ServingStats",
    "TRACE_SCHEMA",
    "config_fingerprint",
    "default_platform_catalog",
    "generate_trace",
    "load_trace",
    "normalize_context",
    "record_to_request",
    "save_trace",
]
