"""The batched serving subsystem (request -> report at fleet scale).

The ROADMAP's north star is serving heavy cost-query traffic; this
package is the layer that makes one-at-a-time ``Accelerator.run`` calls
scale:

- :mod:`repro.serving.request` — the :class:`ServeRequest` /
  :class:`ServeResponse` contract.
- :mod:`repro.serving.cache` — the bounded, stats-instrumented
  :class:`ReportCache` keyed on the frozen
  ``(workload, config-fingerprint, context)`` triple.
- :mod:`repro.serving.scheduler` — the :class:`BatchingScheduler`:
  coalesces request streams into per-(platform, context-family) groups,
  deduplicates identical requests, and evaluates each group's dies
  through one batched corner-physics pass.
- :mod:`repro.serving.engine` — the :class:`ServingEngine` front-end:
  synchronous batches plus ``concurrent.futures`` async submission,
  with per-request latency and fleet-level hit-rate accounting.
- :mod:`repro.serving.trace` — the JSON trace format and the mixed
  LLM+GNN traffic generator behind ``repro serve`` / ``repro
  gen-trace``.
- :mod:`repro.serving.arrivals` — open-loop arrival processes
  (uniform / Poisson / bursty) for honest offered-load generation.
- :mod:`repro.serving.admission` — bounded queues and per-tenant
  token-bucket quotas; past saturation the tier sheds explicitly.
- :mod:`repro.serving.shard` — stable request -> shard hashing and the
  plain-document wire codec of the fleet tier.
- :mod:`repro.serving.fleet` — the :class:`ServingFleet`: N sharded
  worker processes (each a private ``ServingEngine``) behind one
  admission-controlled front door, with an open-loop load runner.

See ``docs/serving.md`` for cache keying rules, batching semantics,
the trace format and the fleet tier.
"""

from repro.serving.admission import (
    SHED_QUEUE,
    SHED_QUOTA,
    AdmissionController,
    AdmissionStats,
    TokenBucket,
)
from repro.serving.arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    latency_quantiles,
    parse_arrivals,
)
from repro.serving.cache import (
    CacheKey,
    CacheStats,
    ReportCache,
    config_fingerprint,
    normalize_context,
)
from repro.serving.engine import ServingEngine, ServingStats
from repro.serving.fleet import FleetResponse, OpenLoopResult, ServingFleet
from repro.serving.request import (
    PLATFORM_CHOICES,
    ServeRequest,
    ServeResponse,
)
from repro.serving.scheduler import (
    BatchingScheduler,
    SchedulerStats,
    default_platform_catalog,
)
from repro.serving.shard import (
    GRANULARITIES,
    ShardRouter,
    request_to_wire,
    wire_to_request,
)
from repro.serving.trace import (
    TRACE_SCHEMA,
    generate_trace,
    load_trace,
    record_to_request,
    save_trace,
)

__all__ = [
    "ARRIVAL_KINDS",
    "AdmissionController",
    "AdmissionStats",
    "ArrivalProcess",
    "BatchingScheduler",
    "CacheKey",
    "CacheStats",
    "FleetResponse",
    "GRANULARITIES",
    "OpenLoopResult",
    "PLATFORM_CHOICES",
    "ReportCache",
    "SHED_QUEUE",
    "SHED_QUOTA",
    "SchedulerStats",
    "ServeRequest",
    "ServeResponse",
    "ServingEngine",
    "ServingFleet",
    "ServingStats",
    "ShardRouter",
    "TRACE_SCHEMA",
    "TokenBucket",
    "config_fingerprint",
    "default_platform_catalog",
    "generate_trace",
    "latency_quantiles",
    "load_trace",
    "normalize_context",
    "parse_arrivals",
    "record_to_request",
    "request_to_wire",
    "save_trace",
    "wire_to_request",
]
