"""Digital helper blocks: softmax LUT, adder trees, control, registers.

The paper keeps operations that are awkward in analog optics in the
digital domain: softmax "using lookup tables (LUTs) and simple digital
circuits" (Sections V.C and V.D).  These are small, well-characterized
blocks; energies are per-operation figures typical of 28-32 nm synthesis
results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SoftmaxLUT:
    """Digital softmax unit: exp via LUT, sum, then reciprocal-multiply.

    Functional semantics are exact softmax (the LUT is dense enough that
    its quantization is folded into the global analog noise model); the
    cost model charges per-element LUT lookups, adds and multiplies.

    Attributes:
        entries: LUT depth (spans the clipped exponent input range).
        lookup_energy_pj: one LUT read.
        add_energy_pj: one accumulation.
        mul_energy_pj: one normalization multiply.
        clock_ghz: digital clock for latency accounting.
        lanes: parallel lanes processing elements concurrently.
    """

    entries: int = 1024
    lookup_energy_pj: float = 0.4
    add_energy_pj: float = 0.1
    mul_energy_pj: float = 0.25
    clock_ghz: float = 2.0
    lanes: int = 16

    def __post_init__(self) -> None:
        if self.entries < 2:
            raise ConfigurationError(f"LUT needs >= 2 entries, got {self.entries}")
        if self.clock_ghz <= 0.0:
            raise ConfigurationError(f"clock must be > 0 GHz, got {self.clock_ghz}")
        if self.lanes < 1:
            raise ConfigurationError(f"need >= 1 lane, got {self.lanes}")

    def apply(self, logits: np.ndarray, axis: int = -1) -> np.ndarray:
        """Numerically stable softmax along ``axis``."""
        logits = np.asarray(logits, dtype=float)
        shifted = logits - logits.max(axis=axis, keepdims=True)
        exps = np.exp(shifted)
        return exps / exps.sum(axis=axis, keepdims=True)

    def energy_pj(self, num_elements: int) -> float:
        """Energy to softmax ``num_elements`` values."""
        if num_elements < 0:
            raise ConfigurationError(
                f"element count must be >= 0, got {num_elements}"
            )
        per_element = self.lookup_energy_pj + self.add_energy_pj + self.mul_energy_pj
        return num_elements * per_element

    def latency_ns(self, num_elements: int) -> float:
        """Latency: two passes (exp+sum, normalize) over lane-parallel data."""
        if num_elements < 0:
            raise ConfigurationError(
                f"element count must be >= 0, got {num_elements}"
            )
        cycles = 2 * math.ceil(num_elements / self.lanes)
        return cycles / self.clock_ghz


@dataclass(frozen=True)
class AdderTree:
    """Digital adder tree for partial-sum accumulation.

    Attributes:
        fan_in: inputs reduced per operation.
        add_energy_pj: one two-input add.
        clock_ghz: pipeline clock (one tree level per cycle).
    """

    fan_in: int
    add_energy_pj: float = 0.1
    clock_ghz: float = 2.0

    def __post_init__(self) -> None:
        if self.fan_in < 2:
            raise ConfigurationError(f"fan-in must be >= 2, got {self.fan_in}")
        if self.clock_ghz <= 0.0:
            raise ConfigurationError(f"clock must be > 0 GHz, got {self.clock_ghz}")

    @property
    def depth(self) -> int:
        """Tree depth (pipeline stages)."""
        return math.ceil(math.log2(self.fan_in))

    def reduce(self, values: np.ndarray) -> float:
        """Sum up to ``fan_in`` values (functional)."""
        values = np.asarray(values, dtype=float)
        if values.ndim != 1 or values.size > self.fan_in:
            raise ConfigurationError(
                f"expected <= {self.fan_in} values, got shape {values.shape}"
            )
        return float(values.sum())

    def energy_pj(self, active_inputs: int) -> float:
        """Energy of one reduction over ``active_inputs`` values."""
        if active_inputs < 0 or active_inputs > self.fan_in:
            raise ConfigurationError(
                f"active inputs must be in [0, {self.fan_in}], got {active_inputs}"
            )
        return max(active_inputs - 1, 0) * self.add_energy_pj

    @property
    def latency_ns(self) -> float:
        """Latency of one (pipelined) reduction."""
        return self.depth / self.clock_ghz


@dataclass(frozen=True)
class ControlUnit:
    """Sequencing/control overhead of an accelerator tile.

    Charged as a constant power while the tile is active; the default is a
    small controller plus address generators.
    """

    power_mw: float = 25.0

    def __post_init__(self) -> None:
        if self.power_mw < 0.0:
            raise ConfigurationError(f"power must be >= 0 mW, got {self.power_mw}")

    def energy_pj(self, active_time_ns: float) -> float:
        """Control energy over an active window."""
        if active_time_ns < 0.0:
            raise ConfigurationError(
                f"active time must be >= 0 ns, got {active_time_ns}"
            )
        return self.power_mw * active_time_ns


@dataclass(frozen=True)
class RegisterFile:
    """Small flip-flop register file (latency-free staging storage)."""

    num_entries: int = 64
    word_bits: int = 64
    access_energy_pj: float = 0.3

    def __post_init__(self) -> None:
        if self.num_entries < 1:
            raise ConfigurationError(
                f"need >= 1 entry, got {self.num_entries}"
            )
        if self.word_bits < 1:
            raise ConfigurationError(
                f"word width must be >= 1 bit, got {self.word_bits}"
            )

    @property
    def capacity_bytes(self) -> int:
        """Total capacity in bytes."""
        return self.num_entries * self.word_bits // 8

    def transfer_energy_pj(self, num_bytes: int) -> float:
        """Energy to stream ``num_bytes`` through the register file."""
        if num_bytes < 0:
            raise ConfigurationError(f"byte count must be >= 0, got {num_bytes}")
        accesses = math.ceil(num_bytes * 8 / self.word_bits)
        return accesses * self.access_energy_pj
