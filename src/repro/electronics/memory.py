"""CACTI-substitute memory models: SRAM buffers, eDRAM, HBM channels.

CACTI's headline outputs for an SRAM array are access energy, access
latency and leakage power as functions of capacity, word width and port
count.  Across its own published result tables these follow well-known
scaling laws (Thoziyoor et al., "CACTI 5.1", HP Labs tech report):

- access energy grows ~ sqrt(capacity) (bitline/wordline lengths),
- access latency grows ~ sqrt(capacity) (wire delay dominated),
- leakage grows linearly with capacity.

We anchor those laws at a calibration point taken from published CACTI
32 nm numbers (a 32 KB SRAM: ~20 pJ/access, ~0.6 ns, ~15 mW leakage) and
expose the same interface an architecture model needs.  DESIGN.md
section 1 documents this substitution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Calibration anchor: a 32 KB, 64-bit wide, single-port SRAM at 32 nm.
_ANCHOR_CAPACITY_BYTES = 32 * 1024
_ANCHOR_ACCESS_ENERGY_PJ = 20.0
_ANCHOR_ACCESS_LATENCY_NS = 0.6
_ANCHOR_LEAKAGE_MW = 1.5
_ANCHOR_WORD_BITS = 64


@dataclass(frozen=True)
class SRAMBuffer:
    """An on-chip SRAM buffer (CACTI-substitute).

    Attributes:
        capacity_bytes: total capacity.
        word_bits: bits transferred per access.
        ports: number of read/write ports (energy and leakage scale with
            port count; latency mildly).
        banks: number of independent banks; banking divides the effective
            capacity seen by each access, reducing energy/latency at the
            cost of slightly more leakage.
    """

    capacity_bytes: int
    word_bits: int = 64
    ports: int = 1
    banks: int = 1

    def __post_init__(self) -> None:
        if self.capacity_bytes < 64:
            raise ConfigurationError(
                f"SRAM capacity must be >= 64 B, got {self.capacity_bytes}"
            )
        if self.word_bits < 1:
            raise ConfigurationError(
                f"word width must be >= 1 bit, got {self.word_bits}"
            )
        if self.ports < 1:
            raise ConfigurationError(f"need >= 1 port, got {self.ports}")
        if self.banks < 1 or self.banks > self.capacity_bytes // 64:
            raise ConfigurationError(
                f"banks must be in [1, capacity/64], got {self.banks}"
            )

    @property
    def _bank_capacity(self) -> float:
        return self.capacity_bytes / self.banks

    @property
    def read_energy_pj(self) -> float:
        """Energy of one read access."""
        capacity_scale = math.sqrt(self._bank_capacity / _ANCHOR_CAPACITY_BYTES)
        width_scale = self.word_bits / _ANCHOR_WORD_BITS
        port_scale = 1.0 + 0.35 * (self.ports - 1)
        return (
            _ANCHOR_ACCESS_ENERGY_PJ * capacity_scale * width_scale * port_scale
        )

    @property
    def write_energy_pj(self) -> float:
        """Energy of one write access (slightly above read: full bitline swing)."""
        return 1.1 * self.read_energy_pj

    @property
    def access_latency_ns(self) -> float:
        """Latency of one access."""
        capacity_scale = math.sqrt(self._bank_capacity / _ANCHOR_CAPACITY_BYTES)
        port_scale = 1.0 + 0.1 * (self.ports - 1)
        return _ANCHOR_ACCESS_LATENCY_NS * capacity_scale * port_scale

    @property
    def leakage_mw(self) -> float:
        """Static leakage power of the whole buffer."""
        capacity_scale = self.capacity_bytes / _ANCHOR_CAPACITY_BYTES
        port_scale = 1.0 + 0.2 * (self.ports - 1)
        bank_overhead = 1.0 + 0.05 * (self.banks - 1)
        return _ANCHOR_LEAKAGE_MW * capacity_scale * port_scale * bank_overhead

    def transfer_energy_pj(self, num_bytes: int, write: bool = False) -> float:
        """Energy to stream ``num_bytes`` through this buffer."""
        if num_bytes < 0:
            raise ConfigurationError(f"byte count must be >= 0, got {num_bytes}")
        accesses = math.ceil(num_bytes * 8 / self.word_bits)
        per_access = self.write_energy_pj if write else self.read_energy_pj
        return accesses * per_access

    def transfer_latency_ns(self, num_bytes: int) -> float:
        """Latency to stream ``num_bytes``, overlapping banked accesses."""
        if num_bytes < 0:
            raise ConfigurationError(f"byte count must be >= 0, got {num_bytes}")
        accesses = math.ceil(num_bytes * 8 / self.word_bits)
        parallel = self.banks * self.ports
        serial_accesses = math.ceil(accesses / parallel)
        return serial_accesses * self.access_latency_ns


@dataclass(frozen=True)
class EDRAMBuffer:
    """Embedded-DRAM buffer — denser but slower than SRAM, plus refresh.

    Used for the larger intermediate buffers (e.g. GHOST's vertex feature
    store) where SRAM leakage would dominate.
    """

    capacity_bytes: int
    word_bits: int = 128

    def __post_init__(self) -> None:
        if self.capacity_bytes < 1024:
            raise ConfigurationError(
                f"eDRAM capacity must be >= 1 KiB, got {self.capacity_bytes}"
            )
        if self.word_bits < 1:
            raise ConfigurationError(
                f"word width must be >= 1 bit, got {self.word_bits}"
            )

    @property
    def read_energy_pj(self) -> float:
        """Energy of one read access (destructive read + restore)."""
        capacity_scale = math.sqrt(self.capacity_bytes / (1024 * 1024))
        width_scale = self.word_bits / 128
        return 50.0 * capacity_scale * width_scale

    @property
    def write_energy_pj(self) -> float:
        """Energy of one write access."""
        return self.read_energy_pj

    @property
    def access_latency_ns(self) -> float:
        """Latency of one access (sense + restore make eDRAM ~2x SRAM)."""
        capacity_scale = math.sqrt(self.capacity_bytes / (1024 * 1024))
        return 6.0 * capacity_scale

    @property
    def refresh_power_mw(self) -> float:
        """Refresh power, linear in capacity."""
        return 5.0 * self.capacity_bytes / (1024 * 1024)

    def transfer_energy_pj(self, num_bytes: int, write: bool = False) -> float:
        """Energy to stream ``num_bytes`` through this buffer."""
        if num_bytes < 0:
            raise ConfigurationError(f"byte count must be >= 0, got {num_bytes}")
        accesses = math.ceil(num_bytes * 8 / self.word_bits)
        per_access = self.write_energy_pj if write else self.read_energy_pj
        return accesses * per_access


@dataclass(frozen=True)
class HBMChannel:
    """One high-bandwidth-memory channel (off-chip model weights).

    TransPIM-style transformer accelerators stream weights from HBM; both
    TRON and GHOST must fetch model parameters and (for GHOST) graph data
    from off-chip memory.  Energy per bit and channel bandwidth follow
    published HBM2 figures (~4-7 pJ/bit end to end, 16 GB/s per channel
    per pseudo-channel pair).
    """

    bandwidth_gbps: float = 128.0  # gigabits per second per channel
    energy_per_bit_pj: float = 4.0
    channels: int = 8

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0.0:
            raise ConfigurationError(
                f"bandwidth must be > 0 Gb/s, got {self.bandwidth_gbps}"
            )
        if self.energy_per_bit_pj <= 0.0:
            raise ConfigurationError(
                f"energy/bit must be > 0 pJ, got {self.energy_per_bit_pj}"
            )
        if self.channels < 1:
            raise ConfigurationError(f"need >= 1 channel, got {self.channels}")

    @property
    def total_bandwidth_gbps(self) -> float:
        """Aggregate bandwidth across channels (Gb/s)."""
        return self.bandwidth_gbps * self.channels

    def transfer_energy_pj(self, num_bytes: int) -> float:
        """Energy to move ``num_bytes`` across the HBM interface."""
        if num_bytes < 0:
            raise ConfigurationError(f"byte count must be >= 0, got {num_bytes}")
        return num_bytes * 8 * self.energy_per_bit_pj

    def transfer_latency_ns(self, num_bytes: int) -> float:
        """Latency to move ``num_bytes`` at full aggregate bandwidth."""
        if num_bytes < 0:
            raise ConfigurationError(f"byte count must be >= 0, got {num_bytes}")
        bits = num_bytes * 8
        return bits / self.total_bandwidth_gbps


@dataclass(frozen=True)
class MemorySystem:
    """The memory hierarchy an accelerator hangs off: HBM + global SRAM.

    Architecture models route weight/activation traffic through this
    object so the energy ledger can separate off-chip from on-chip bytes.
    """

    hbm: HBMChannel = HBMChannel()
    # Wide (256-bit) ports: accelerator buffers stream whole vectors, not
    # scalar words, so the port width matches the datapath.
    global_buffer: SRAMBuffer = SRAMBuffer(
        capacity_bytes=2 * 1024 * 1024, word_bits=256, banks=16
    )

    def load_from_offchip(self, num_bytes: int) -> tuple:
        """(energy_pj, latency_ns) to bring bytes from HBM into the buffer."""
        energy = self.hbm.transfer_energy_pj(
            num_bytes
        ) + self.global_buffer.transfer_energy_pj(num_bytes, write=True)
        latency = max(
            self.hbm.transfer_latency_ns(num_bytes),
            self.global_buffer.transfer_latency_ns(num_bytes),
        )
        return energy, latency

    def read_onchip(self, num_bytes: int) -> tuple:
        """(energy_pj, latency_ns) to read bytes from the global buffer."""
        return (
            self.global_buffer.transfer_energy_pj(num_bytes),
            self.global_buffer.transfer_latency_ns(num_bytes),
        )
