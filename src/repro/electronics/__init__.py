"""Electronic substrate: memories, buffers and digital logic.

The paper uses HP CACTI for "all the memories and buffers employed in our
accelerators" (Section VI).  CACTI is itself an analytic model, so this
package replaces it with a parametric model calibrated to published CACTI
outputs (:mod:`repro.electronics.memory`), plus the small digital blocks
both accelerators need — softmax lookup tables, adder trees and control
sequencing (:mod:`repro.electronics.digital`).
"""

from repro.electronics.memory import (
    SRAMBuffer,
    EDRAMBuffer,
    HBMChannel,
    MemorySystem,
)
from repro.electronics.digital import (
    SoftmaxLUT,
    AdderTree,
    ControlUnit,
    RegisterFile,
)

__all__ = [
    "SRAMBuffer",
    "EDRAMBuffer",
    "HBMChannel",
    "MemorySystem",
    "SoftmaxLUT",
    "AdderTree",
    "ControlUnit",
    "RegisterFile",
]
