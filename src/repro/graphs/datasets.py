"""Dataset-statistics replicas of the graphs used in the GHOST evaluation.

We cannot ship Cora/Citeseer/Pubmed, but the accelerator's cost depends
only on node/edge counts, degree shape and feature widths (DESIGN.md
section 1).  Each :class:`DatasetStats` records the published statistics;
:func:`synthesize_dataset` generates a graph matching them using a
degree-preserving configuration-model-style construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.graphs.graph import CSRGraph


@dataclass(frozen=True)
class DatasetStats:
    """Published statistics of a graph benchmark dataset.

    Attributes:
        name: dataset name.
        num_nodes: vertex count.
        num_edges: undirected edge count (arcs stored = 2x this).
        feature_dim: input feature width.
        num_classes: label count (GNN output width).
        power_law: whether the degree distribution is heavy-tailed.
    """

    name: str
    num_nodes: int
    num_edges: int
    feature_dim: int
    num_classes: int
    power_law: bool = False

    def __post_init__(self) -> None:
        if self.num_nodes < 1 or self.num_edges < 0:
            raise ConfigurationError("node/edge counts must be positive")
        if self.feature_dim < 1 or self.num_classes < 2:
            raise ConfigurationError("feature_dim >= 1 and num_classes >= 2 required")

    @property
    def average_degree(self) -> float:
        """Mean undirected degree (2E / N)."""
        return 2.0 * self.num_edges / self.num_nodes


#: Citation / co-purchase graphs from the GHOST evaluation (published stats).
DATASET_ZOO: Dict[str, DatasetStats] = {
    "cora": DatasetStats(
        name="cora",
        num_nodes=2708,
        num_edges=5278,
        feature_dim=1433,
        num_classes=7,
    ),
    "citeseer": DatasetStats(
        name="citeseer",
        num_nodes=3327,
        num_edges=4552,
        feature_dim=3703,
        num_classes=6,
    ),
    "pubmed": DatasetStats(
        name="pubmed",
        num_nodes=19717,
        num_edges=44324,
        feature_dim=500,
        num_classes=3,
    ),
    # Subsampled replicas of the larger graphs (full Reddit/Amazon would
    # make the pure-python functional models needlessly slow; the cost
    # models use the *stats*, which can be scaled separately).
    "reddit-sample": DatasetStats(
        name="reddit-sample",
        num_nodes=8192,
        num_edges=196608,
        feature_dim=602,
        num_classes=41,
        power_law=True,
    ),
    "amazon-sample": DatasetStats(
        name="amazon-sample",
        num_nodes=4096,
        num_edges=65536,
        feature_dim=200,
        num_classes=10,
        power_law=True,
    ),
}


def get_dataset_stats(name: str) -> DatasetStats:
    """Look up a dataset's statistics by name.

    Raises:
        ConfigurationError: for unknown names (message lists valid ones).
    """
    try:
        return DATASET_ZOO[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown dataset {name!r}; known datasets: {sorted(DATASET_ZOO)}"
        ) from None


def synthesize_dataset(
    stats: DatasetStats, rng: Optional[np.random.Generator] = None
) -> Tuple[CSRGraph, np.ndarray]:
    """Generate a (graph, features) pair matching a dataset's statistics.

    Degree sequence: uniform-random pairing for citation-style graphs,
    Zipf-weighted pairing for power-law graphs.  The edge count matches
    the published figure up to collision losses (< a few percent).

    Returns:
        A CSR graph and a (num_nodes, feature_dim) feature matrix with
        sparse, non-negative entries (bag-of-words-like).
    """
    rng = rng or np.random.default_rng(0)
    n = stats.num_nodes
    if stats.power_law:
        weights = 1.0 / np.arange(1, n + 1) ** 0.8
        weights /= weights.sum()
    else:
        weights = np.full(n, 1.0 / n)
    sources = rng.choice(n, size=stats.num_edges, p=weights)
    targets = rng.choice(n, size=stats.num_edges, p=weights)
    mask = sources != targets
    graph = CSRGraph.from_edges(
        n,
        zip(sources[mask].tolist(), targets[mask].tolist()),
        undirected=True,
        num_node_features=stats.feature_dim,
    )
    # Sparse non-negative features: ~1% density, like bag-of-words vectors.
    density = min(0.05, max(0.01, 50.0 / stats.feature_dim))
    features = np.zeros((n, stats.feature_dim))
    nnz_per_row = max(1, int(density * stats.feature_dim))
    for row in range(n):
        cols = rng.choice(stats.feature_dim, size=nnz_per_row, replace=False)
        features[row, cols] = rng.random(nnz_per_row)
    return graph, features
