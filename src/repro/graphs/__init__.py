"""Graph substrate: CSR graphs, generators, dataset replicas, partitioning.

GHOST's cost depends on graph structure — node/edge counts, degree
distribution and feature widths.  The paper evaluates on standard citation
and social graphs; we replicate their published statistics with synthetic
generators (DESIGN.md section 1) and provide the buffer-and-partition
blocking GHOST uses to regularize memory accesses (Section V.D).
"""

from repro.graphs.graph import CSRGraph
from repro.graphs.generators import (
    erdos_renyi,
    barabasi_albert,
    rmat,
    stochastic_block_model,
)
from repro.graphs.datasets import (
    DATASET_ZOO,
    DatasetStats,
    get_dataset_stats,
    synthesize_dataset,
)
from repro.graphs.partition import GraphPartitioner, PartitionBlock, PartitionSchedule

__all__ = [
    "CSRGraph",
    "erdos_renyi",
    "barabasi_albert",
    "rmat",
    "stochastic_block_model",
    "DATASET_ZOO",
    "DatasetStats",
    "get_dataset_stats",
    "synthesize_dataset",
    "GraphPartitioner",
    "PartitionBlock",
    "PartitionSchedule",
]
