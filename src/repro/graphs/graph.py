"""Compressed sparse row (CSR) graph container.

The single graph type used across the library: GNN functional models
iterate neighbourhoods through it, GHOST's mapper reads its degree
statistics, and the partitioner slices it into blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class CSRGraph:
    """A directed graph in CSR form (undirected graphs store both arcs).

    Attributes:
        indptr: (num_nodes + 1,) row pointers.
        indices: (num_edges,) column indices (neighbour ids).
        num_node_features: width of per-node feature vectors (metadata used
            by cost models; features themselves live with the caller).
    """

    indptr: np.ndarray
    indices: np.ndarray
    num_node_features: int = 0

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        if self.indptr.ndim != 1 or self.indptr.size < 1:
            raise ConfigurationError("indptr must be a non-empty 1-D array")
        if self.indptr[0] != 0:
            raise ConfigurationError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise ConfigurationError("indptr must be non-decreasing")
        if self.indices.ndim != 1:
            raise ConfigurationError("indices must be 1-D")
        if self.indptr[-1] != self.indices.size:
            raise ConfigurationError(
                f"indptr[-1]={self.indptr[-1]} != len(indices)={self.indices.size}"
            )
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.num_nodes
        ):
            raise ConfigurationError("neighbour index out of range")
        if self.num_node_features < 0:
            raise ConfigurationError(
                f"feature width must be >= 0, got {self.num_node_features}"
            )

    @property
    def num_nodes(self) -> int:
        """Number of vertices."""
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of stored arcs (an undirected edge counts twice)."""
        return self.indices.size

    def neighbors(self, node: int) -> np.ndarray:
        """Neighbour ids of a vertex."""
        if not 0 <= node < self.num_nodes:
            raise ConfigurationError(
                f"node {node} out of range [0, {self.num_nodes})"
            )
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def degree(self, node: int) -> int:
        """Out-degree of a vertex."""
        if not 0 <= node < self.num_nodes:
            raise ConfigurationError(
                f"node {node} out of range [0, {self.num_nodes})"
            )
        return int(self.indptr[node + 1] - self.indptr[node])

    def degrees(self) -> np.ndarray:
        """Out-degrees of all vertices."""
        return np.diff(self.indptr).astype(float)

    @property
    def average_degree(self) -> float:
        """Mean out-degree."""
        if self.num_nodes == 0:
            return 0.0
        return self.num_edges / self.num_nodes

    @property
    def max_degree(self) -> int:
        """Maximum out-degree."""
        if self.num_nodes == 0:
            return 0
        return int(self.degrees().max())

    def degree_percentile(self, q: float) -> float:
        """Degree at percentile ``q`` (0-100) — used by workload balancing."""
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(self.degrees(), q))

    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: Iterable[Tuple[int, int]],
        undirected: bool = True,
        num_node_features: int = 0,
    ) -> "CSRGraph":
        """Build from an edge list; deduplicates and drops self-loops."""
        if num_nodes < 1:
            raise ConfigurationError(f"need >= 1 node, got {num_nodes}")
        pairs = set()
        for u, v in edges:
            if not (0 <= u < num_nodes and 0 <= v < num_nodes):
                raise ConfigurationError(
                    f"edge ({u}, {v}) out of range for {num_nodes} nodes"
                )
            if u == v:
                continue
            pairs.add((u, v))
            if undirected:
                pairs.add((v, u))
        if pairs:
            arr = np.array(sorted(pairs), dtype=np.int64)
            sources, targets = arr[:, 0], arr[:, 1]
        else:
            sources = np.empty(0, dtype=np.int64)
            targets = np.empty(0, dtype=np.int64)
        counts = np.bincount(sources, minlength=num_nodes)
        indptr = np.concatenate([[0], np.cumsum(counts)])
        return cls(
            indptr=indptr, indices=targets, num_node_features=num_node_features
        )

    def to_dense_adjacency(self) -> np.ndarray:
        """Dense (num_nodes x num_nodes) 0/1 adjacency matrix."""
        adj = np.zeros((self.num_nodes, self.num_nodes))
        for v in range(self.num_nodes):
            adj[v, self.neighbors(v)] = 1.0
        return adj

    def is_symmetric(self) -> bool:
        """Whether every arc has its reverse (undirected storage)."""
        forward = set(
            (int(u), int(v))
            for u in range(self.num_nodes)
            for v in self.neighbors(u)
        )
        return all((v, u) in forward for (u, v) in forward)

    def subgraph(self, nodes: np.ndarray) -> "CSRGraph":
        """Induced subgraph on a node subset (ids are remapped to 0..k-1)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size == 0:
            raise ConfigurationError("subgraph needs at least one node")
        if nodes.min() < 0 or nodes.max() >= self.num_nodes:
            raise ConfigurationError("subgraph node id out of range")
        remap = {int(old): new for new, old in enumerate(nodes)}
        edges = []
        for old in nodes:
            for nb in self.neighbors(int(old)):
                if int(nb) in remap:
                    edges.append((remap[int(old)], remap[int(nb)]))
        return CSRGraph.from_edges(
            num_nodes=nodes.size,
            edges=edges,
            undirected=False,
            num_node_features=self.num_node_features,
        )
