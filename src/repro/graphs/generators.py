"""Synthetic graph generators: ER, Barabási–Albert, R-MAT and SBM.

These produce the degree-distribution regimes that stress GNN
accelerators differently: ER graphs are uniform (easy to balance), BA and
R-MAT graphs are power-law (the irregular, hub-dominated workloads the
paper's buffer-and-partition optimization targets), and SBMs have
community structure (locality the partitioner can exploit).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.graphs.graph import CSRGraph


def _resolve_rng(
    rng: Optional[np.random.Generator], seed: Optional[int]
) -> np.random.Generator:
    """Resolve the ``rng``/``seed`` pair every generator accepts.

    ``seed`` derives a fresh :class:`numpy.random.Generator`, so callers
    (temporal delta streams, tests) control determinism without sharing
    a generator object.  Passing both is ambiguous and rejected.
    """
    if rng is not None and seed is not None:
        raise ConfigurationError("pass rng or seed, not both")
    if seed is not None:
        return np.random.default_rng(seed)
    return rng or np.random.default_rng(0)


def erdos_renyi(
    num_nodes: int,
    edge_probability: float,
    rng: Optional[np.random.Generator] = None,
    num_node_features: int = 0,
    seed: Optional[int] = None,
) -> CSRGraph:
    """Erdős–Rényi G(n, p) undirected graph."""
    if num_nodes < 1:
        raise ConfigurationError(f"need >= 1 node, got {num_nodes}")
    if not 0.0 <= edge_probability <= 1.0:
        raise ConfigurationError(
            f"edge probability must be in [0, 1], got {edge_probability}"
        )
    rng = _resolve_rng(rng, seed)
    upper = rng.random((num_nodes, num_nodes)) < edge_probability
    upper = np.triu(upper, k=1)
    sources, targets = np.nonzero(upper)
    return CSRGraph.from_edges(
        num_nodes,
        zip(sources.tolist(), targets.tolist()),
        undirected=True,
        num_node_features=num_node_features,
    )


def barabasi_albert(
    num_nodes: int,
    attachment: int,
    rng: Optional[np.random.Generator] = None,
    num_node_features: int = 0,
    seed: Optional[int] = None,
) -> CSRGraph:
    """Barabási–Albert preferential-attachment graph (power-law degrees)."""
    if num_nodes < 2:
        raise ConfigurationError(f"need >= 2 nodes, got {num_nodes}")
    if attachment < 1 or attachment >= num_nodes:
        raise ConfigurationError(
            f"attachment must be in [1, num_nodes), got {attachment}"
        )
    rng = _resolve_rng(rng, seed)
    edges = []
    # Seed clique of `attachment + 1` nodes.
    seed_size = attachment + 1
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            edges.append((u, v))
    # Repeated-node list implements preferential attachment in O(E).
    repeated = [u for edge in edges for u in edge]
    for new_node in range(seed_size, num_nodes):
        chosen = set()
        while len(chosen) < attachment:
            pick = repeated[rng.integers(0, len(repeated))]
            chosen.add(pick)
        for target in chosen:
            edges.append((new_node, target))
            repeated.extend([new_node, target])
    return CSRGraph.from_edges(
        num_nodes, edges, undirected=True, num_node_features=num_node_features
    )


def rmat(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    rng: Optional[np.random.Generator] = None,
    num_node_features: int = 0,
    seed: Optional[int] = None,
) -> CSRGraph:
    """R-MAT (recursive matrix) generator — Graph500-style skewed graphs.

    Args:
        scale: log2 of the node count.
        edge_factor: edges per node before deduplication.
        a, b, c: quadrant probabilities (d = 1 - a - b - c).
    """
    if scale < 1 or scale > 24:
        raise ConfigurationError(f"scale must be in [1, 24], got {scale}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0.0:
        raise ConfigurationError("quadrant probabilities must be >= 0 and sum <= 1")
    rng = _resolve_rng(rng, seed)
    num_nodes = 1 << scale
    num_edges = num_nodes * edge_factor
    sources = np.zeros(num_edges, dtype=np.int64)
    targets = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        r = rng.random(num_edges)
        # Quadrant choice: a (00), b (01), c (10), d (11).
        right = (r >= a) & (r < a + b) | (r >= a + b + c)
        down = r >= a + b
        sources |= down.astype(np.int64) << level
        targets |= right.astype(np.int64) << level
    mask = sources != targets
    return CSRGraph.from_edges(
        num_nodes,
        zip(sources[mask].tolist(), targets[mask].tolist()),
        undirected=True,
        num_node_features=num_node_features,
    )


def stochastic_block_model(
    block_sizes,
    p_within: float,
    p_between: float,
    rng: Optional[np.random.Generator] = None,
    num_node_features: int = 0,
    seed: Optional[int] = None,
) -> CSRGraph:
    """Stochastic block model with uniform within/between probabilities."""
    block_sizes = list(block_sizes)
    if not block_sizes or any(size < 1 for size in block_sizes):
        raise ConfigurationError("block sizes must be positive")
    for name, p in (("p_within", p_within), ("p_between", p_between)):
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"{name} must be in [0, 1], got {p}")
    rng = _resolve_rng(rng, seed)
    num_nodes = sum(block_sizes)
    labels = np.repeat(np.arange(len(block_sizes)), block_sizes)
    same_block = labels[:, None] == labels[None, :]
    probs = np.where(same_block, p_within, p_between)
    upper = rng.random((num_nodes, num_nodes)) < probs
    upper = np.triu(upper, k=1)
    sources, targets = np.nonzero(upper)
    return CSRGraph.from_edges(
        num_nodes,
        zip(sources.tolist(), targets.tolist()),
        undirected=True,
        num_node_features=num_node_features,
    )
