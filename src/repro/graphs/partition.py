"""Buffer-and-partition blocking of a graph (paper Section V.D).

GHOST "split[s] the input graph into blocks of N and V where the
aggregate block then is composed of N edge control units, V gather units,
and V reduce units".  Each schedule step assigns V output vertices to the
execution lanes while N input vertices are staged in the edge-control
buffers; a step completes when every output vertex has seen all of its
neighbours, which may take several input blocks.

The partitioner quantifies the memory-traffic benefit: without blocking,
every edge is an irregular off-chip fetch; with blocking, each input
block is fetched once per output block that needs it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

import numpy as np

from repro.errors import ConfigurationError
from repro.graphs.graph import CSRGraph


@dataclass(frozen=True)
class PartitionBlock:
    """One (output block, input block) work unit.

    Attributes:
        output_start / output_end: vertex id range processed by the lanes.
        input_start / input_end: vertex id range staged in the buffers.
        num_edges: edges between the two ranges (actual aggregation work).
    """

    output_start: int
    output_end: int
    input_start: int
    input_end: int
    num_edges: int

    @property
    def num_outputs(self) -> int:
        return self.output_end - self.output_start

    @property
    def num_inputs(self) -> int:
        return self.input_end - self.input_start


@dataclass
class PartitionSchedule:
    """The full block schedule for one graph and one (V, N) blocking.

    Attributes:
        blocks: work units in execution order.
        lanes: V (output vertices per step).
        input_block: N (input vertices staged per step).
        num_nodes / num_edges: graph totals for traffic accounting.
        feature_bytes: bytes per feature vector element after quantization.
    """

    blocks: List[PartitionBlock]
    lanes: int
    input_block: int
    num_nodes: int
    num_edges: int
    feature_dim: int
    feature_bytes: int = 1  # 8-bit quantization

    @property
    def num_steps(self) -> int:
        """Schedule length in block-steps."""
        return len(self.blocks)

    @property
    def nonempty_blocks(self) -> List[PartitionBlock]:
        """Blocks that carry at least one edge (empty ones are skipped by
        the scheduler at zero cost)."""
        return [b for b in self.blocks if b.num_edges > 0]

    @property
    def input_fetches(self) -> int:
        """Input vertices fetched across the schedule (with blocking)."""
        return sum(b.num_inputs for b in self.nonempty_blocks)

    @property
    def unblocked_fetches(self) -> int:
        """Input fetches without blocking: one per edge."""
        return self.num_edges

    @property
    def fetch_savings(self) -> float:
        """Ratio of unblocked to blocked fetch traffic (> 1 is a win)."""
        fetched = self.input_fetches
        if fetched == 0:
            return 1.0
        return self.unblocked_fetches / fetched

    def traffic_bytes(self, blocked: bool = True) -> int:
        """Feature bytes moved from memory for aggregation inputs."""
        vector_bytes = self.feature_dim * self.feature_bytes
        fetches = self.input_fetches if blocked else self.unblocked_fetches
        return fetches * vector_bytes


@dataclass
class GraphPartitioner:
    """Builds :class:`PartitionSchedule` objects for a (V, N) blocking.

    Attributes:
        lanes: V — execution lanes (output vertices per step).
        input_block: N — input vertices staged per step.
    """

    lanes: int
    input_block: int

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise ConfigurationError(f"lanes must be >= 1, got {self.lanes}")
        if self.input_block < 1:
            raise ConfigurationError(
                f"input block must be >= 1, got {self.input_block}"
            )

    def schedule(self, graph: CSRGraph) -> PartitionSchedule:
        """Blocked schedule covering every edge of ``graph`` exactly once."""
        n = graph.num_nodes
        blocks: List[PartitionBlock] = []
        for out_start in range(0, n, self.lanes):
            out_end = min(out_start + self.lanes, n)
            # Count edges from this output block into each input block.
            edge_counts = np.zeros(-(-n // self.input_block), dtype=np.int64)
            for v in range(out_start, out_end):
                neighbours = graph.neighbors(v)
                if neighbours.size:
                    np.add.at(edge_counts, neighbours // self.input_block, 1)
            for block_idx, count in enumerate(edge_counts):
                in_start = block_idx * self.input_block
                in_end = min(in_start + self.input_block, n)
                blocks.append(
                    PartitionBlock(
                        output_start=out_start,
                        output_end=out_end,
                        input_start=in_start,
                        input_end=in_end,
                        num_edges=int(count),
                    )
                )
        return PartitionSchedule(
            blocks=blocks,
            lanes=self.lanes,
            input_block=self.input_block,
            num_nodes=n,
            num_edges=graph.num_edges,
            feature_dim=max(graph.num_node_features, 1),
        )

    def sweep_input_blocks(
        self, graph: CSRGraph, candidates
    ) -> List[PartitionSchedule]:
        """Schedules for several N values — the blocking design sweep."""
        schedules = []
        for candidate in candidates:
            partitioner = GraphPartitioner(lanes=self.lanes, input_block=candidate)
            schedules.append(partitioner.schedule(graph))
        return schedules
