"""MR tuning circuits: electro-optic, thermo-optic, and the hybrid policy.

Section V.A of the paper: EO tuning is fast and cheap but covers only a
small resonance shift; TO tuning covers a large range (up to a full FSR)
but is slow and power hungry.  The accelerators use a *hybrid* policy —
EO for the frequent small shifts that encode parameters, TO engaged only
infrequently when a large shift is required — plus thermal eigenmode
decomposition (TED, see :mod:`repro.photonics.thermal`) to cut TO power.

Typical device numbers follow the values used across this group's
accelerator papers (CrossLight DAC'21, SONIC ASPDAC'22, RecLight ISVLSI'22):
EO tuning ~4 uW average power with sub-ns latency and ~0.6 nm usable range;
TO tuning ~275 uW/nm with ~4 us time constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.errors import ConfigurationError


def hold_power_mw_kernel(
    shifts_nm,
    eo_max_shift_nm: float = 0.6,
    eo_power_mw: float = 0.004,
    to_efficiency_nm_per_mw: float = 0.25,
    ted_power_factor: float = 1.0,
):
    """Vectorized hybrid-tuner hold power for an array of resonance shifts.

    The batched form of :meth:`HybridTuner.average_hold_power_mw`'s
    per-shift policy: shifts within the EO range cost the constant EO
    hold power; larger shifts engage the TO heater for the coarse part
    (``|shift| - eo_max``) plus the EO fine tuner.  Accepts any array
    shape (broadcasting over design-parameter arrays as well as shift
    arrays) and returns the per-shift hold powers in mW with the
    broadcast shape.

    Every arithmetic step mirrors the scalar policy exactly, so a
    one-element batch is bit-identical to the scalar path — the sweep
    engine relies on this to reconstruct reports that match scalar runs.
    """
    magnitude = np.abs(np.asarray(shifts_nm, dtype=float))
    eo_max = np.asarray(eo_max_shift_nm, dtype=float)
    coarse = magnitude - eo_max
    to_power = (
        np.abs(coarse) / to_efficiency_nm_per_mw * ted_power_factor
        + eo_power_mw
    )
    return np.where(magnitude <= eo_max, eo_power_mw, to_power)


class TuningMechanism(Enum):
    """Which physical effect produced a resonance shift."""

    EO = "electro-optic"
    TO = "thermo-optic"
    HYBRID = "hybrid (TO coarse + EO fine)"


@dataclass(frozen=True)
class TuningEvent:
    """Cost record for one resonance-shift operation.

    Attributes:
        delta_lambda_nm: the (absolute) resonance shift applied.
        mechanism: which tuner(s) produced it.
        power_mw: average electrical power drawn while the shift is held.
        latency_ns: time until the shift settles.
        energy_pj: settling energy (power * latency); holding energy is
            accounted separately by the architecture model via ``power_mw``.
    """

    delta_lambda_nm: float
    mechanism: TuningMechanism
    power_mw: float
    latency_ns: float

    @property
    def energy_pj(self) -> float:
        return self.power_mw * self.latency_ns


@dataclass
class EOTuner:
    """Electro-optic (carrier-injection/depletion) tuner.

    Attributes:
        max_shift_nm: usable tuning range; EO index change saturates, so
            shifts beyond this must fall back to TO tuning.
        power_mw: average power while holding a shift (weakly dependent on
            the shift magnitude for depletion-mode tuners, so modelled
            constant).
        latency_ns: settling latency (carrier dynamics, sub-ns).
    """

    max_shift_nm: float = 0.6
    power_mw: float = 0.004  # 4 uW
    latency_ns: float = 0.1

    def __post_init__(self) -> None:
        if self.max_shift_nm <= 0.0:
            raise ConfigurationError(
                f"EO max shift must be > 0 nm, got {self.max_shift_nm}"
            )
        if self.power_mw < 0.0 or self.latency_ns < 0.0:
            raise ConfigurationError("EO power and latency must be >= 0")

    def can_reach(self, delta_lambda_nm: float) -> bool:
        """Whether the requested shift lies inside the EO range."""
        return abs(delta_lambda_nm) <= self.max_shift_nm

    def tune(self, delta_lambda_nm: float) -> TuningEvent:
        """Apply a shift; raises if it exceeds the EO range."""
        if not self.can_reach(delta_lambda_nm):
            raise ConfigurationError(
                f"EO tuner cannot reach {delta_lambda_nm:.3f} nm "
                f"(range +/-{self.max_shift_nm:.3f} nm)"
            )
        return TuningEvent(
            delta_lambda_nm=abs(delta_lambda_nm),
            mechanism=TuningMechanism.EO,
            power_mw=self.power_mw,
            latency_ns=self.latency_ns,
        )


@dataclass
class TOTuner:
    """Thermo-optic (integrated heater) tuner.

    Attributes:
        efficiency_nm_per_mw: resonance shift per milliwatt of heater power.
        max_shift_nm: range limit — a well-designed heater reaches a full
            FSR, so set this from the ring's FSR.
        latency_ns: thermal time constant (microseconds).
        ted_power_factor: multiplicative reduction of heater power when the
            thermal eigenmode decomposition method is enabled (Section V.A);
            1.0 disables TED.
    """

    efficiency_nm_per_mw: float = 0.25
    max_shift_nm: float = 20.0
    latency_ns: float = 4000.0
    ted_power_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.efficiency_nm_per_mw <= 0.0:
            raise ConfigurationError(
                f"TO efficiency must be > 0 nm/mW, got {self.efficiency_nm_per_mw}"
            )
        if self.max_shift_nm <= 0.0:
            raise ConfigurationError(
                f"TO max shift must be > 0 nm, got {self.max_shift_nm}"
            )
        if not 0.0 < self.ted_power_factor <= 1.0:
            raise ConfigurationError(
                f"TED power factor must be in (0, 1], got {self.ted_power_factor}"
            )

    def can_reach(self, delta_lambda_nm: float) -> bool:
        """Whether the requested shift lies inside the TO range."""
        return abs(delta_lambda_nm) <= self.max_shift_nm

    def power_for_shift_mw(self, delta_lambda_nm: float) -> float:
        """Heater power needed to hold a given shift (TED applied)."""
        return abs(delta_lambda_nm) / self.efficiency_nm_per_mw * self.ted_power_factor

    def tune(self, delta_lambda_nm: float) -> TuningEvent:
        """Apply a shift; raises if it exceeds the TO range."""
        if not self.can_reach(delta_lambda_nm):
            raise ConfigurationError(
                f"TO tuner cannot reach {delta_lambda_nm:.3f} nm "
                f"(range +/-{self.max_shift_nm:.3f} nm)"
            )
        return TuningEvent(
            delta_lambda_nm=abs(delta_lambda_nm),
            mechanism=TuningMechanism.TO,
            power_mw=self.power_for_shift_mw(delta_lambda_nm),
            latency_ns=self.latency_ns,
        )


@dataclass
class HybridTuner:
    """The paper's hybrid EO+TO tuning policy (Section V.A).

    Small, frequent shifts (parameter imprinting every photonic cycle) use
    the fast EO tuner.  Shifts beyond the EO range engage the slow TO
    heater for the coarse part and the EO tuner for the residual fine
    part.  The policy tracks how often TO was engaged so architecture
    models can amortize its latency over many cycles.

    Attributes:
        eo: the electro-optic tuner.
        to: the thermo-optic tuner.
    """

    eo: EOTuner = field(default_factory=EOTuner)
    to: TOTuner = field(default_factory=TOTuner)
    eo_events: int = field(default=0, init=False)
    to_events: int = field(default=0, init=False)

    @property
    def max_shift_nm(self) -> float:
        """Total reachable shift (TO coarse + EO fine)."""
        return self.to.max_shift_nm + self.eo.max_shift_nm

    def tune(self, delta_lambda_nm: float) -> TuningEvent:
        """Apply a shift with the hybrid policy.

        Returns a :class:`TuningEvent` whose power is the sum of the engaged
        mechanisms and whose latency is the slowest engaged mechanism.
        """
        magnitude = abs(delta_lambda_nm)
        if self.eo.can_reach(magnitude):
            self.eo_events += 1
            return self.eo.tune(magnitude)
        if magnitude > self.max_shift_nm:
            raise ConfigurationError(
                f"hybrid tuner cannot reach {magnitude:.3f} nm "
                f"(range +/-{self.max_shift_nm:.3f} nm)"
            )
        # TO provides the coarse shift down to the EO range boundary; EO
        # covers the residual so the heater setpoint changes infrequently.
        coarse = magnitude - self.eo.max_shift_nm
        to_event = self.to.tune(coarse)
        eo_event = self.eo.tune(self.eo.max_shift_nm)
        self.to_events += 1
        self.eo_events += 1
        return TuningEvent(
            delta_lambda_nm=magnitude,
            mechanism=TuningMechanism.HYBRID,
            power_mw=to_event.power_mw + eo_event.power_mw,
            latency_ns=max(to_event.latency_ns, eo_event.latency_ns),
        )

    def average_hold_power_mw(self, shifts_nm) -> float:
        """Mean holding power over a sequence of requested shifts.

        Architecture models call this with the distribution of weight
        shifts a bank will hold during steady-state inference.  The
        per-shift policy is the shared :func:`hold_power_mw_kernel`;
        the accumulation stays sequential so the mean is bit-identical
        to the historical per-shift loop.
        """
        shifts = list(shifts_nm)
        if not shifts:
            return 0.0
        powers = hold_power_mw_kernel(
            shifts,
            eo_max_shift_nm=self.eo.max_shift_nm,
            eo_power_mw=self.eo.power_mw,
            to_efficiency_nm_per_mw=self.to.efficiency_nm_per_mw,
            ted_power_factor=self.to.ted_power_factor,
        )
        total = 0.0
        for power in powers:
            total += float(power)
        return total / len(shifts)

    def reset_counters(self) -> None:
        """Zero the EO/TO engagement counters."""
        self.eo_events = 0
        self.to_events = 0
