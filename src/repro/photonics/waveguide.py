"""Optical loss budgets, WDM buses and the laser power solver.

The laser must deliver enough power that, after every splitter, coupler,
MR pass-by and centimetre of waveguide, the photodetector still sees a
signal above its sensitivity floor.  This link-budget closure determines
the laser (and therefore total) power of both accelerators, and it caps
how *large* an MR bank array can be before the budget no longer closes —
the fundamental scale limit of analog photonic matmul.

Loss values default to the figures used across the CrossLight / SONIC /
TRON / GHOST papers (per-element dB losses of silicon photonic PDKs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.errors import ConfigurationError, LinkBudgetError
from repro.photonics.devices import Photodetector, VCSEL
from repro.units import dbm_to_mw, mw_to_dbm


@dataclass(frozen=True)
class LossBudget:
    """Per-element insertion losses of an optical path (all in dB).

    Attributes:
        propagation_db_per_cm: waveguide propagation loss.
        per_mr_through_db: loss of passing *by* one (off-resonance) MR.
        per_mr_drop_db: loss of being dropped through an on-resonance MR.
        splitter_db: excess loss of one Y-splitter stage.
        coupler_db: fibre/laser-to-chip coupling loss.
        combiner_db: excess loss of one combiner stage.
        ec_penalty_db: aggregate penalty for crossings and bends.
    """

    propagation_db_per_cm: float = 0.274
    per_mr_through_db: float = 0.02
    per_mr_drop_db: float = 0.5
    splitter_db: float = 0.13
    coupler_db: float = 1.5
    combiner_db: float = 0.13
    ec_penalty_db: float = 0.5

    def __post_init__(self) -> None:
        for name in (
            "propagation_db_per_cm",
            "per_mr_through_db",
            "per_mr_drop_db",
            "splitter_db",
            "coupler_db",
            "combiner_db",
            "ec_penalty_db",
        ):
            if getattr(self, name) < 0.0:
                raise ConfigurationError(f"{name} must be >= 0 dB")

    def path_loss_db(
        self,
        waveguide_cm: float,
        mrs_passed: int,
        mrs_dropped: int = 0,
        splitter_stages: int = 0,
        combiner_stages: int = 0,
    ) -> float:
        """Total insertion loss of a path through the accelerator (dB).

        Splitting a signal ``2**splitter_stages`` ways additionally costs
        3.01 dB of *intrinsic* power division per stage on top of the
        excess loss.
        """
        if waveguide_cm < 0.0 or mrs_passed < 0 or mrs_dropped < 0:
            raise ConfigurationError("path parameters must be >= 0")
        intrinsic_split_db = 3.0103 * splitter_stages
        return (
            self.coupler_db
            + self.propagation_db_per_cm * waveguide_cm
            + self.per_mr_through_db * mrs_passed
            + self.per_mr_drop_db * mrs_dropped
            + (self.splitter_db + 0.0) * splitter_stages
            + intrinsic_split_db
            + self.combiner_db * combiner_stages
            + self.ec_penalty_db
        )


@dataclass
class WDMBus:
    """A waveguide carrying a WDM comb through a series of MR banks.

    Used by the functional models to track per-wavelength power as signals
    traverse imprint stages; used by the cost models to count MR pass-bys
    for the loss budget.

    Attributes:
        num_wavelengths: channels multiplexed on this bus.
        launch_power_mw: per-channel power at the bus input.
        budget: the loss budget applied to propagation on this bus.
    """

    num_wavelengths: int
    launch_power_mw: float = 1.0
    budget: LossBudget = field(default_factory=LossBudget)
    _stage_losses_db: List[float] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.num_wavelengths < 1:
            raise ConfigurationError(
                f"need >= 1 wavelength, got {self.num_wavelengths}"
            )
        if self.launch_power_mw <= 0.0:
            raise ConfigurationError(
                f"launch power must be > 0 mW, got {self.launch_power_mw}"
            )

    def add_bank_stage(self, mrs_in_bank: int) -> None:
        """Record traversal of one MR bank (each channel passes all MRs)."""
        if mrs_in_bank < 1:
            raise ConfigurationError(f"bank must have >= 1 MR, got {mrs_in_bank}")
        self._stage_losses_db.append(self.budget.per_mr_through_db * mrs_in_bank)

    def add_waveguide(self, length_cm: float) -> None:
        """Record a stretch of plain waveguide."""
        if length_cm < 0.0:
            raise ConfigurationError(f"length must be >= 0 cm, got {length_cm}")
        self._stage_losses_db.append(self.budget.propagation_db_per_cm * length_cm)

    @property
    def accumulated_loss_db(self) -> float:
        """Loss accumulated by all recorded stages."""
        return sum(self._stage_losses_db)

    @property
    def output_power_mw(self) -> float:
        """Per-channel power at the current end of the bus."""
        return self.launch_power_mw * 10.0 ** (-self.accumulated_loss_db / 10.0)


@dataclass(frozen=True)
class LaserPowerSolver:
    """Solves the per-wavelength laser power for link-budget closure.

    P_laser(dBm) >= sensitivity(dBm) + total path loss(dB) + margin(dB)

    Attributes:
        budget: loss model.
        detector: the photodetector terminating the path.
        margin_db: engineering margin on top of the sensitivity floor.
    """

    budget: LossBudget = LossBudget()
    detector: Photodetector = Photodetector()
    margin_db: float = 1.0

    def required_laser_power_mw(
        self,
        waveguide_cm: float,
        mrs_passed: int,
        mrs_dropped: int = 0,
        splitter_stages: int = 0,
        combiner_stages: int = 0,
    ) -> float:
        """Minimum per-wavelength laser power for this path (mW)."""
        loss_db = self.budget.path_loss_db(
            waveguide_cm,
            mrs_passed,
            mrs_dropped=mrs_dropped,
            splitter_stages=splitter_stages,
            combiner_stages=combiner_stages,
        )
        required_dbm = self.detector.sensitivity_dbm + loss_db + self.margin_db
        return dbm_to_mw(required_dbm)

    def check_budget(
        self,
        laser_power_mw: float,
        waveguide_cm: float,
        mrs_passed: int,
        mrs_dropped: int = 0,
        splitter_stages: int = 0,
        combiner_stages: int = 0,
    ) -> float:
        """Margin (dB) by which a laser power closes the budget.

        Raises:
            LinkBudgetError: if the budget does not close.
        """
        if laser_power_mw <= 0.0:
            raise ConfigurationError(
                f"laser power must be > 0 mW, got {laser_power_mw}"
            )
        loss_db = self.budget.path_loss_db(
            waveguide_cm,
            mrs_passed,
            mrs_dropped=mrs_dropped,
            splitter_stages=splitter_stages,
            combiner_stages=combiner_stages,
        )
        received_dbm = mw_to_dbm(laser_power_mw) - loss_db
        margin = received_dbm - self.detector.sensitivity_dbm
        if margin < 0.0:
            raise LinkBudgetError(
                f"link budget fails to close: received {received_dbm:.1f} dBm "
                f"is {-margin:.1f} dB below the {self.detector.sensitivity_dbm:.1f} "
                f"dBm sensitivity floor"
            )
        return margin

    def max_array_size(
        self,
        laser_power_mw: float,
        waveguide_cm_per_mr: float = 0.002,
        max_size: int = 512,
    ) -> int:
        """Largest square MR bank array the budget supports.

        Each added column means one more MR pass-by and a little more
        waveguide; each doubling of rows costs one splitter stage.  Returns
        the largest N such that an N x N array still closes the budget.

        Raises:
            LinkBudgetError: if even a 1x1 array cannot close.
        """
        best = 0
        for size in range(1, max_size + 1):
            splitter_stages = int(np.ceil(np.log2(size))) if size > 1 else 0
            try:
                self.check_budget(
                    laser_power_mw,
                    waveguide_cm=waveguide_cm_per_mr * size,
                    mrs_passed=size,
                    mrs_dropped=0,
                    splitter_stages=splitter_stages,
                    combiner_stages=splitter_stages,
                )
            except LinkBudgetError:
                break
            best = size
        if best == 0:
            raise LinkBudgetError(
                f"laser power {laser_power_mw} mW cannot close even a 1x1 array"
            )
        return best


def total_laser_wall_power_mw(
    per_wavelength_mw: float,
    num_wavelengths: int,
    num_waveguides: int,
    laser: VCSEL = VCSEL(),
) -> float:
    """Electrical wall power of the laser bank feeding an accelerator."""
    if per_wavelength_mw <= 0.0:
        raise ConfigurationError(
            f"per-wavelength power must be > 0 mW, got {per_wavelength_mw}"
        )
    if num_wavelengths < 1 or num_waveguides < 1:
        raise ConfigurationError("wavelength and waveguide counts must be >= 1")
    optical_total = per_wavelength_mw * num_wavelengths * num_waveguides
    return optical_total / laser.wall_plug_efficiency
